"""Unit tests for repro.core: scenarios, optimizations, adaptive tuning."""

import pytest

from repro.calibration import KB, MB
from repro.core import (EXPERIMENTS, MessageCoalescer, PathEstimate,
                        auto_tune, back_to_back, coalesced_message_rate,
                        decoalesce, hierarchical_allreduce,
                        hierarchical_barrier, lan, probe_path,
                        recommend_tuning, run_experiment, wan_clusters,
                        wan_pair)
from repro.mpi import MPIJob


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------

def test_wan_pair_structure():
    s = wan_pair(50.0)
    assert s.fabric.wan.delay_us == 50.0
    assert s.a is not s.b


def test_wan_clusters_sizes():
    s = wan_clusters(3, 2, 0.0)
    assert len(s.fabric.cluster_a) == 3
    assert len(s.fabric.cluster_b) == 2


def test_back_to_back_has_no_wan():
    s = back_to_back()
    assert s.fabric.wan is None


def test_lan_scenario_nodes():
    s = lan(4)
    assert len(s.fabric.nodes) == 4


# ---------------------------------------------------------------------------
# message coalescing
# ---------------------------------------------------------------------------

def _pair(delay=0.0):
    s = wan_pair(delay)
    job = MPIJob(s.fabric, nprocs=2, ppn=1, placement="cyclic")
    return s.sim, job.procs[0], job.procs[1]


def test_coalescer_flushes_at_threshold():
    sim, a, b = _pair()
    co = MessageCoalescer(a, b.rank, threshold=1000)
    assert co.add(400) is None
    assert co.add(400) is None
    req = co.add(400)  # 1200 >= 1000
    assert req is not None
    assert co.flushes == 1
    assert co.messages_absorbed == 3


def test_coalescer_manual_flush_and_empty_flush():
    sim, a, b = _pair()
    co = MessageCoalescer(a, b.rank, threshold=1 * MB)
    assert co.flush() is None  # nothing buffered
    co.add(10)
    assert co.flush() is not None


def test_coalescer_rejects_bad_input():
    sim, a, b = _pair()
    with pytest.raises(ValueError):
        MessageCoalescer(a, b.rank, threshold=0)
    co = MessageCoalescer(a, b.rank)
    with pytest.raises(ValueError):
        co.add(0)


def test_decoalesce_roundtrip():
    batch = ("coalesced", [(100, "a"), (200, "b")])
    assert decoalesce(batch) == [(100, "a"), (200, "b")]
    with pytest.raises(ValueError):
        decoalesce("nope")


def test_coalescing_improves_small_message_rate_over_wan():
    sim, a, b = _pair(delay=1000.0)
    base = coalesced_message_rate(sim, a, b, msg_bytes=512, count=128,
                                  threshold=None)
    sim2, a2, b2 = _pair(delay=1000.0)
    fast = coalesced_message_rate(sim2, a2, b2, msg_bytes=512, count=128,
                                  threshold=64 * KB)
    assert fast > 2 * base


# ---------------------------------------------------------------------------
# adaptive tuning
# ---------------------------------------------------------------------------

def test_probe_path_measures_rtt():
    s = wan_pair(1000.0)
    est = probe_path(s.sim, s.fabric)
    assert est.rtt_us == pytest.approx(2000.0, rel=0.05)
    assert est.bandwidth_mbps > 100


def test_bdp_property():
    est = PathEstimate(rtt_us=2000.0, bandwidth_mbps=500.0)
    assert est.bdp_bytes == 1e6


def test_recommend_tuning_scales_with_delay():
    near = recommend_tuning(PathEstimate(20.0, 900.0))
    far = recommend_tuning(PathEstimate(20000.0, 900.0))
    assert far.eager_threshold > near.eager_threshold
    assert near.eager_threshold >= 8 * KB
    assert far.eager_threshold <= 1 * MB


def test_recommend_tuning_switches_bcast_over_wan():
    far = recommend_tuning(PathEstimate(2000.0, 900.0))
    assert far.bcast_algorithm == "hierarchical"
    near = recommend_tuning(PathEstimate(20.0, 900.0))
    assert near.bcast_algorithm == "auto"


def test_recommend_tuning_rejects_bad_rtt():
    with pytest.raises(ValueError):
        recommend_tuning(PathEstimate(0.0, 100.0))


def test_auto_tune_end_to_end():
    s = wan_pair(10000.0)
    tuning = auto_tune(s.sim, s.fabric)
    assert tuning.eager_threshold > 8 * KB
    assert tuning.bcast_algorithm == "hierarchical"


# ---------------------------------------------------------------------------
# hierarchical collectives (extension)
# ---------------------------------------------------------------------------

def test_hierarchical_allreduce_completes_on_all_ranks():
    s = wan_clusters(2, 2, 100.0)
    job = MPIJob(s.fabric, ppn=1, placement="block")

    def prog(proc):
        return (yield from hierarchical_allreduce(proc, 4 * KB))

    assert job.run(prog) == [("allreduce", 4 * KB)] * 4


def test_hierarchical_barrier_synchronizes():
    s = wan_clusters(2, 2, 0.0)
    job = MPIJob(s.fabric, ppn=1, placement="block")
    seen = {}

    def prog(proc):
        yield from proc.compute(50.0 * (proc.rank + 1))
        yield from hierarchical_barrier(proc)
        seen[proc.rank] = proc.sim.now

    job.run(prog)
    assert min(seen.values()) >= 200.0


def test_hierarchical_allreduce_fewer_wan_crossings():
    from repro.mpi.collectives import allreduce
    crossings = {}
    for name, fn in (("flat", allreduce),
                     ("hier", hierarchical_allreduce)):
        s = wan_clusters(4, 4, 0.0)
        job = MPIJob(s.fabric, ppn=1, placement="block")

        def prog(proc, fn=fn):
            yield from fn(proc, 64 * KB)

        job.run(prog)
        crossings[name] = s.fabric.wan.bytes_carried
    assert crossings["hier"] < crossings["flat"]


# ---------------------------------------------------------------------------
# experiment registry
# ---------------------------------------------------------------------------

def test_registry_covers_every_figure_and_table():
    expected = {"table1", "fig03", "fig04a", "fig04b", "fig05a", "fig05b",
                "fig06a", "fig06b", "fig07a", "fig07b", "fig08a", "fig08b",
                "fig09a", "fig09b", "fig10", "fig11", "fig12", "fig13a",
                "fig13b", "fig13c"}
    assert expected.issubset(EXPERIMENTS.keys())


def test_experiment_result_formatting():
    res = run_experiment("table1")
    text = res.to_text()
    assert "table1" in text
    assert "2000 km" in text
    assert res.column("distance")[0] == "1 km"


def test_unknown_experiment_raises():
    with pytest.raises(KeyError):
        run_experiment("fig99")
