"""Unit tests for MPI point-to-point: matching, eager, rendezvous."""

import pytest

from repro.calibration import KB, MB
from repro.fabric import build_cluster_of_clusters
from repro.mpi import ANY_SOURCE, ANY_TAG, MPIJob, MPITuning
from repro.sim import Simulator


def _job(nprocs=2, delay=0.0, nodes=(1, 1), tuning=None, placement="cyclic",
         ppn=1):
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, nodes[0], nodes[1],
                                       wan_delay_us=delay)
    job = MPIJob(fabric, nprocs=nprocs, ppn=ppn, placement=placement,
                 tuning=tuning or MPITuning())
    return sim, job


# ---------------------------------------------------------------------------
# basic semantics
# ---------------------------------------------------------------------------

def test_eager_send_recv_payload():
    sim, job = _job()

    def prog(proc):
        if proc.rank == 0:
            yield from proc.send(1, 100, tag=5, payload={"x": 1})
        else:
            req = yield from proc.recv(src=0, tag=5)
            return (req.src, req.tag, req.size, req.data)

    results = job.run(prog)
    assert results[1] == (0, 5, 100, {"x": 1})


def test_rendezvous_send_recv_payload():
    sim, job = _job()

    def prog(proc):
        if proc.rank == 0:
            yield from proc.send(1, 1 * MB, tag=5, payload="bulk")
        else:
            req = yield from proc.recv(src=0, tag=5)
            return req.data

    assert job.run(prog)[1] == "bulk"


def test_messages_arrive_in_order_same_pair():
    sim, job = _job()
    N = 30

    def prog(proc):
        if proc.rank == 0:
            for i in range(N):
                proc.isend(1, 64, tag=1, payload=i)
            yield from proc.recv(src=1, tag=2)
        else:
            got = []
            for _ in range(N):
                req = yield from proc.recv(src=0, tag=1)
                got.append(req.data)
            yield from proc.send(0, 1, tag=2)
            return got

    assert job.run(prog)[1] == list(range(N))


def test_tag_matching_selects_correct_message():
    sim, job = _job()

    def prog(proc):
        if proc.rank == 0:
            proc.isend(1, 10, tag=7, payload="seven")
            proc.isend(1, 10, tag=9, payload="nine")
            yield from proc.recv(src=1, tag=0)
        else:
            nine = yield from proc.recv(src=0, tag=9)
            seven = yield from proc.recv(src=0, tag=7)
            yield from proc.send(0, 1, tag=0)
            return (nine.data, seven.data)

    assert job.run(prog)[1] == ("nine", "seven")


def test_wildcard_source_and_tag():
    sim, job = _job(nprocs=3, nodes=(2, 1))

    def prog(proc):
        if proc.rank == 0:
            got = []
            for _ in range(2):
                req = yield from proc.recv(src=ANY_SOURCE, tag=ANY_TAG)
                got.append(req.src)
            return sorted(got)
        yield from proc.send(0, 32, tag=proc.rank)

    assert job.run(prog)[0] == [1, 2]


def test_unexpected_messages_buffered():
    sim, job = _job()

    def prog(proc):
        if proc.rank == 0:
            proc.isend(1, 100, tag=3, payload="early")
            yield from proc.recv(src=1, tag=4)
        else:
            yield from proc.compute(500.0)  # message arrives before recv
            req = yield from proc.recv(src=0, tag=3)
            yield from proc.send(0, 1, tag=4)
            return req.data

    assert job.run(prog)[1] == "early"


def test_rendezvous_waits_for_matching_recv():
    """RTS must not transfer data until the receive is posted."""
    sim, job = _job()
    timeline = {}

    def prog(proc):
        if proc.rank == 0:
            req = proc.isend(1, 1 * MB, tag=3)
            yield req.event
            timeline["send_done"] = sim.now
        else:
            yield from proc.compute(5000.0)
            timeline["recv_posted"] = sim.now
            yield from proc.recv(src=0, tag=3)

    job.run(prog)
    assert timeline["send_done"] > timeline["recv_posted"]


def test_self_send_rejected():
    sim, job = _job()

    def prog(proc):
        if proc.rank == 0:
            with pytest.raises(ValueError):
                proc.isend(0, 10)
        yield proc.sim.timeout(1.0)

    job.run(prog)


def test_negative_size_rejected():
    sim, job = _job()

    def prog(proc):
        if proc.rank == 0:
            with pytest.raises(ValueError):
                proc.isend(1, -1)
        yield proc.sim.timeout(1.0)

    job.run(prog)


def test_sendrecv_crosses_without_deadlock():
    sim, job = _job()

    def prog(proc):
        peer = 1 - proc.rank
        req = yield from proc.sendrecv(peer, 256 * KB)
        return req.size

    assert job.run(prog) == [256 * KB, 256 * KB]


def test_isend_overlaps_with_compute():
    sim, job = _job(delay=1000.0)

    def prog(proc):
        if proc.rank == 0:
            t0 = sim.now
            req = proc.isend(1, 1 * MB, tag=1)
            yield from proc.compute(3000.0)  # overlaps the WAN transfer
            yield req.event
            return sim.now - t0
        yield from proc.recv(src=0, tag=1)

    elapsed = job.run(prog)[0]
    # transfer needs >= 2 RTTs (rendezvous) ~ 4000+; compute is absorbed
    assert elapsed < 3000.0 + 4000.0


# ---------------------------------------------------------------------------
# protocol selection / tuning
# ---------------------------------------------------------------------------

def test_threshold_selects_protocol():
    sim, job = _job(tuning=MPITuning(eager_threshold=1 * KB))
    kinds = {}

    def prog(proc):
        if proc.rank == 0:
            kinds["small"] = 1023 < job.tuning.eager_threshold
            yield from proc.send(1, 1023)
            yield from proc.send(1, 1024)
        else:
            yield from proc.recv(src=0)
            yield from proc.recv(src=0)
            return proc.messages_sent  # CTS for the rendezvous one only

    # receiver sent exactly one control message (the CTS)
    assert job.run(prog)[1] == 1


def test_higher_threshold_improves_medium_bw_at_high_delay():
    from repro.mpi.benchmarks import run_osu_bw
    sim = Simulator()
    f = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=10000.0)
    orig = run_osu_bw(sim, f, 16 * KB, window=16, iters=3)
    sim2 = Simulator()
    f2 = build_cluster_of_clusters(sim2, 1, 1, wan_delay_us=10000.0)
    tuned = run_osu_bw(sim2, f2, 16 * KB, window=16, iters=3,
                       tuning=MPITuning(eager_threshold=64 * KB))
    assert tuned > 1.5 * orig


def test_mpi_latency_tracks_wan_delay():
    from repro.mpi.benchmarks import run_osu_latency
    sim = Simulator()
    f = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=0.0)
    base = run_osu_latency(sim, f, 8, iters=10)
    sim2 = Simulator()
    f2 = build_cluster_of_clusters(sim2, 1, 1, wan_delay_us=500.0)
    far = run_osu_latency(sim2, f2, 8, iters=10)
    assert far == pytest.approx(base + 500.0, rel=0.02)


# ---------------------------------------------------------------------------
# placement
# ---------------------------------------------------------------------------

def test_block_placement_splits_clusters():
    sim, job = _job(nprocs=4, nodes=(2, 2), placement="block")
    assert job.cluster_of == ["A", "A", "B", "B"]


def test_cyclic_placement_alternates():
    sim, job = _job(nprocs=4, nodes=(2, 2), placement="cyclic")
    assert job.cluster_of == ["A", "B", "A", "B"]


def test_ppn_places_multiple_ranks_per_node():
    sim, job = _job(nprocs=4, nodes=(1, 1), placement="block", ppn=2)
    assert job.procs[0].node is job.procs[1].node
    assert job.procs[2].node is job.procs[3].node
    assert job.procs[0].node is not job.procs[2].node


def test_too_many_ranks_rejected():
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, 1, 1)
    with pytest.raises(ValueError):
        MPIJob(fabric, nprocs=5, ppn=1)


def test_invalid_placement_rejected():
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, 1, 1)
    with pytest.raises(ValueError):
        MPIJob(fabric, placement="scatter")


def test_ranks_in_cluster_query():
    sim, job = _job(nprocs=4, nodes=(2, 2), placement="block")
    assert job.ranks_in_cluster("A") == [0, 1]
    assert job.ranks_in_cluster("B") == [2, 3]
    assert job.clusters() == ["A", "B"]
