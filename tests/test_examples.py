"""Smoke tests for the example scripts.

Every example must at least compile; the two fastest also run end to end
(the rest are exercised by the benchmark suite through the same code
paths, so re-running them here would only duplicate minutes of work).
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

ALL = ["quickstart.py", "mpi_wan_tuning.py", "nfs_over_wan.py",
       "nas_cluster_of_clusters.py", "parallel_streams.py",
       "distributed_locking.py"]


def test_all_examples_exist():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert set(ALL).issubset(present)


@pytest.mark.parametrize("name", ALL)
def test_example_compiles(name):
    py_compile.compile(str(EXAMPLES / name), doraise=True)


@pytest.mark.parametrize("name", ["distributed_locking.py",
                                  "mpi_wan_tuning.py"])
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()
