"""Integration tests: the paper's headline shapes, end to end.

Each test pins one qualitative claim from the paper's evaluation; the
benchmark suite regenerates the full tables, but these assertions are
what must never regress.
"""

import pytest

from repro.calibration import DEFAULT_PROFILE, KB, MB
from repro.core import run_experiment, wan_pair
from repro.verbs import perftest


# ---------------------------------------------------------------------------
# §3.2 — verbs
# ---------------------------------------------------------------------------

def test_ud_bandwidth_is_delay_independent():
    bws = []
    for delay in (0.0, 10000.0):
        s = wan_pair(delay)
        bws.append(perftest.run_send_bw(s.sim, s.a, s.b, 2048, iters=100,
                                        transport="ud"))
    assert bws[1] == pytest.approx(bws[0], rel=0.02)
    assert bws[0] > 0.9 * DEFAULT_PROFILE.sdr_rate


def test_rc_large_messages_reach_peak_at_every_delay():
    for delay in (0.0, 1000.0, 10000.0):
        s = wan_pair(delay)
        bw = perftest.run_send_bw(s.sim, s.a, s.b, 4 * MB, iters=20)
        assert bw > 0.9 * DEFAULT_PROFILE.sdr_rate


def test_rc_medium_messages_collapse_with_delay():
    s0 = wan_pair(0.0)
    base = perftest.run_send_bw(s0.sim, s0.a, s0.b, 64 * KB, iters=48)
    s1 = wan_pair(1000.0)
    far = perftest.run_send_bw(s1.sim, s1.a, s1.b, 64 * KB, iters=48)
    s2 = wan_pair(10000.0)
    vfar = perftest.run_send_bw(s2.sim, s2.a, s2.b, 64 * KB, iters=48)
    assert far < 0.7 * base
    assert vfar < 0.1 * base


def test_rc_bandwidth_matches_window_over_rtt():
    """The quantitative window/RTT law behind Fig. 5."""
    delay = 5000.0
    size = 128 * KB
    window = DEFAULT_PROFILE.rc_send_window
    s = wan_pair(delay)
    bw = perftest.run_send_bw(s.sim, s.a, s.b, size, iters=64)
    predicted = window * size / (2 * delay)  # inflight / RTT
    # window-limited arrivals are bursty, so a finite first-to-last
    # measurement reads slightly high; the law must still hold to ~30%
    assert 0.8 * predicted < bw < 1.4 * predicted


# ---------------------------------------------------------------------------
# §3.3 / §3.4 — IPoIB and MPI optimizations
# ---------------------------------------------------------------------------

def test_parallel_streams_claim():
    """Paper abstract: parallel streams improve high-delay throughput
    by a large factor (quoted 'up to 50%')."""
    res = run_experiment("opt_streams")
    gains = res.column("gain_%")
    assert max(gains) > 40.0


def test_threshold_tuning_claim():
    """Paper §3.4: tuning the rendezvous threshold helps medium messages
    at 10 ms delay (quoted up to ~83% bidirectional)."""
    res = run_experiment("fig09a")
    assert max(res.column("improvement_%")) > 50.0


def test_hierarchical_bcast_claim():
    """Paper §3.4: hierarchical bcast wins for medium/large messages,
    with gains up to ~90% at high delay."""
    res = run_experiment("fig11")
    rows = res.rows
    # small messages: comparable (within 25%); largest at 1ms: big win
    small = [r for r in rows if r[1] == 4 * KB]
    assert all(abs(r[4]) < 25.0 for r in small)
    big_far = [r for r in rows if r[1] == 128 * KB and r[0] == "1000us"]
    assert big_far and big_far[0][4] > 50.0


def test_mpi_rendezvous_dip():
    """Fig. 8: medium (rendezvous) sizes suffer more than large ones."""
    from repro.mpi.benchmarks import run_osu_bw
    s = wan_pair(1000.0)
    mid = run_osu_bw(s.sim, s.fabric, 32 * KB, window=32, iters=4)
    s = wan_pair(1000.0)
    big = run_osu_bw(s.sim, s.fabric, 4 * MB, window=16, iters=3)
    assert big > 5 * mid


def test_message_rate_scales_with_pairs():
    """Fig. 10: aggregate message rate grows with pair count."""
    from repro.core import wan_clusters
    from repro.mpi.benchmarks import run_osu_mbw_mr
    rates = []
    for pairs in (4, 16):
        s = wan_clusters(pairs, pairs, 1000.0)
        _, rate = run_osu_mbw_mr(s.sim, s.fabric, pairs, 1024, window=32,
                                 iters=3)
        rates.append(rate)
    assert rates[1] > 3 * rates[0]


# ---------------------------------------------------------------------------
# §3.5 / §3.7 — applications and NFS
# ---------------------------------------------------------------------------

def test_nas_tolerance_ordering():
    res = run_experiment("fig12")
    by_bench = {r[0]: r for r in res.rows}
    # last column = slowdown at 10ms
    assert by_bench["IS"][-1] < 1.3
    assert by_bench["CG"][-1] > 1.8


def test_nfs_transport_crossover():
    low = run_experiment("fig13b")
    high = run_experiment("fig13c")
    # at 8 streams: RDMA best at 10us, IPoIB-RC best at 1ms
    row_low = low.rows[-1]
    row_high = high.rows[-1]
    rdma_l, rc_l, ud_l = row_low[1], row_low[2], row_low[3]
    rdma_h, rc_h, _ = row_high[1], row_high[2], row_high[3]
    assert rdma_l > rc_l > ud_l
    assert rc_h > 3 * rdma_h


# ---------------------------------------------------------------------------
# cross-checks between layers
# ---------------------------------------------------------------------------

def test_mpi_peak_close_to_verbs_peak():
    from repro.mpi.benchmarks import run_osu_bw
    s = wan_pair(0.0)
    verbs = perftest.run_write_bw(s.sim, s.a, s.b, 4 * MB, iters=16)
    s = wan_pair(0.0)
    mpi = run_osu_bw(s.sim, s.fabric, 4 * MB, window=64, iters=3)
    assert 0.85 * verbs < mpi <= verbs * 1.01


def test_nfs_rdma_tracks_verbs_4k_curve():
    """Paper §3.7: NFS/RDMA's delay curve mirrors the verbs 4K curve."""
    from repro.nfs import run_iozone_read
    ratios = []
    for delay in (100.0, 1000.0):
        s = wan_pair(delay)
        verbs4k = perftest.run_send_bw(s.sim, s.a, s.b, 4 * KB, iters=64)
        s = wan_pair(delay)
        nfs = run_iozone_read(s.sim, s.fabric, s.a, s.b, "rdma",
                              n_streams=4, read_bytes=4 * MB)
        ratios.append(nfs / verbs4k)
    # both window-limited the same way => roughly constant ratio
    assert ratios[1] == pytest.approx(ratios[0], rel=0.5)
