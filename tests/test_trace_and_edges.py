"""Frame tracing tests plus edge-case coverage across layers."""


from repro.calibration import DEFAULT_PROFILE, KB, MB
from repro.core import wan_pair
from repro.fabric import FrameTracer, build_back_to_back, \
    build_cluster_of_clusters
from repro.mpi import ANY_TAG, MPIJob
from repro.sim import Simulator
from repro.verbs import RecvWR, create_connected_rc_pair, perftest


# ---------------------------------------------------------------------------
# tracer
# ---------------------------------------------------------------------------

def test_tracer_records_deliveries():
    sim = Simulator()
    fabric = build_back_to_back(sim)
    tracer = FrameTracer()
    tracer.attach(fabric.nodes[1].hca)
    qa, qb = create_connected_rc_pair(*fabric.nodes)
    qb.post_recv(RecvWR(1 << 20))
    qa.send(5000)
    sim.run(until=2000.0)
    assert tracer.count("rc_data") == 1
    assert tracer.bytes_seen("rc_data") == 5000
    rec = tracer.records[0]
    assert rec.src_lid == fabric.nodes[0].lid
    assert rec.wire_bytes > rec.size  # headers accounted


def test_tracer_predicate_filters():
    sim = Simulator()
    fabric = build_back_to_back(sim)
    tracer = FrameTracer(predicate=lambda f: f.kind == "rc_ack")
    tracer.attach(fabric.nodes[0].hca)
    qa, qb = create_connected_rc_pair(*fabric.nodes)
    qb.post_recv(RecvWR(1 << 20))
    qa.send(100)
    sim.run(until=1000.0)
    assert tracer.count() == tracer.count("rc_ack") == 1


def test_tracer_measures_wan_crossings_of_collective():
    from repro.mpi.collectives import bcast
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, 2, 2, wan_delay_us=0.0)
    tracer = FrameTracer(predicate=lambda f: f.kind == "rc_write")
    tracer.attach(fabric.wan.b)
    job = MPIJob(fabric, ppn=1, placement="block")

    def prog(proc):
        yield from bcast(proc, 64 * KB, root=0, algorithm="hierarchical")

    job.run(prog)
    # exactly one rendezvous payload crossed toward cluster B
    assert tracer.count() == 1
    assert tracer.bytes_seen() == 64 * KB


def test_tracer_detach_restores():
    sim = Simulator()
    fabric = build_back_to_back(sim)
    hca = fabric.nodes[1].hca
    tracer = FrameTracer()
    tracer.attach(hca)
    assert "receive_frame" in hca.__dict__  # tap installed
    tracer.detach_all()
    assert "receive_frame" not in hca.__dict__  # class method restored


def test_tracer_limit_drops_excess():
    sim = Simulator()
    fabric = build_back_to_back(sim)
    tracer = FrameTracer(limit=2)
    tracer.attach(fabric.nodes[1].hca)
    qa, qb = create_connected_rc_pair(*fabric.nodes)
    for _ in range(5):
        qb.post_recv(RecvWR(1 << 20))
    for _ in range(5):
        qa.send(100)
    sim.run(until=1000.0)
    assert len(tracer) == 2
    assert tracer.dropped == 3


def test_tracer_time_window_query():
    sim = Simulator()
    fabric = build_back_to_back(sim)
    tracer = FrameTracer()
    tracer.attach(fabric.nodes[1].hca)
    qa, qb = create_connected_rc_pair(*fabric.nodes)
    qb.post_recv(RecvWR(1 << 20))
    qa.send(100)
    sim.run(until=1000.0)
    t = tracer.records[0].time_us
    assert tracer.between(t, t + 1)
    assert not tracer.between(t + 1, t + 2)


# ---------------------------------------------------------------------------
# verbs edges
# ---------------------------------------------------------------------------

def test_ud_bidirectional_bandwidth():
    s = wan_pair(0.0)
    bibw = perftest.run_bidir_bw(s.sim, s.a, s.b, 2048, iters=100,
                                 transport="ud")
    assert bibw > 1.8 * DEFAULT_PROFILE.sdr_rate * 0.9


def test_rc_zero_byte_send():
    sim = Simulator()
    fabric = build_back_to_back(sim)
    qa, qb = create_connected_rc_pair(*fabric.nodes)
    qb.post_recv(RecvWR(0))
    qa.send(0, payload="empty")

    def receiver():
        wc = yield qb.recv_cq.wait()
        return (wc.byte_len, wc.payload)

    assert sim.run(until=sim.process(receiver())) == (0, "empty")


def test_write_latency_less_than_send_latency():
    s = wan_pair(0.0)
    send = perftest.run_send_lat(s.sim, s.a, s.b, 2, iters=30)
    s = wan_pair(0.0)
    write = perftest.run_write_lat(s.sim, s.a, s.b, 2, iters=30)
    assert write < send  # RDMA bypasses the recv WQE


def test_qp_close_deregisters():
    sim = Simulator()
    fabric = build_back_to_back(sim)
    qa, qb = create_connected_rc_pair(*fabric.nodes)
    qpn = qb.qpn
    qb.close()
    assert fabric.nodes[1].hca._qps.get(qpn) is None


# ---------------------------------------------------------------------------
# MPI edges
# ---------------------------------------------------------------------------

def test_rendezvous_matches_any_tag():
    s = wan_pair(0.0)
    job = MPIJob(s.fabric, nprocs=2, ppn=1, placement="cyclic")

    def prog(proc):
        if proc.rank == 0:
            yield from proc.send(1, 1 * MB, tag=42, payload="wild")
        else:
            req = yield from proc.recv(src=0, tag=ANY_TAG)
            return (req.tag, req.data)

    assert job.run(prog)[1] == (42, "wild")


def test_two_rendezvous_same_tag_complete_in_order():
    s = wan_pair(0.0)
    job = MPIJob(s.fabric, nprocs=2, ppn=1, placement="cyclic")

    def prog(proc):
        if proc.rank == 0:
            a = proc.isend(1, 1 * MB, tag=1, payload="first")
            b = proc.isend(1, 1 * MB, tag=1, payload="second")
            yield from proc.waitall([a, b])
        else:
            r1 = yield from proc.recv(src=0, tag=1)
            r2 = yield from proc.recv(src=0, tag=1)
            return (r1.data, r2.data)

    assert job.run(prog)[1] == ("first", "second")


def test_eager_and_rendezvous_interleave_per_pair_order():
    s = wan_pair(0.0)
    job = MPIJob(s.fabric, nprocs=2, ppn=1, placement="cyclic")

    def prog(proc):
        if proc.rank == 0:
            proc.isend(1, 64, tag=1, payload="small1")
            proc.isend(1, 1 * MB, tag=2, payload="big")
            proc.isend(1, 64, tag=3, payload="small2")
            yield from proc.recv(src=1, tag=9)
        else:
            got = []
            for tag in (1, 2, 3):
                req = yield from proc.recv(src=0, tag=tag)
                got.append(req.data)
            yield from proc.send(0, 1, tag=9)
            return got

    assert job.run(prog)[1] == ["small1", "big", "small2"]


def test_mpi_many_small_jobs_on_lan_fabric():
    """MPIJob works on a plain LAN fabric (no WAN segment)."""
    from repro.fabric import build_cluster
    sim = Simulator()
    fabric = build_cluster(sim, 4)
    job = MPIJob(fabric, ppn=1)
    assert job.size == 4
    assert job.clusters() == ["lan"]

    def prog(proc):
        if proc.rank == 0:
            yield from proc.send(1, 128)
        elif proc.rank == 1:
            yield from proc.recv(src=0)
        else:
            yield proc.sim.timeout(1.0)

    job.run(prog)


# ---------------------------------------------------------------------------
# NFS / TCP edges
# ---------------------------------------------------------------------------

def test_nfs_write_over_rdma_transport():
    from repro.nfs import mount
    s = wan_pair(10.0)
    server, factory = mount(s.fabric, s.a, s.b, "rdma")
    server.export("/w", 0)
    out = {}

    def main():
        client = yield from factory()
        out["n"] = yield from client.write("/w", 0, 128 * KB)

    s.sim.run(until=s.sim.process(main()))
    assert out["n"] == 128 * KB


def test_tcp_record_spanning_many_segments():
    from repro.ipoib.interface import IPoIBNetwork
    from repro.tcp import TcpStack
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, 1, 1)
    net = IPoIBNetwork(fabric, mode="ud")
    sa = TcpStack(net.add_interface(fabric.cluster_a[0]))
    sb = TcpStack(net.add_interface(fabric.cluster_b[0]))
    listener = sb.listen(80)
    out = {}

    def server():
        sock = yield listener.accept()
        off, obj = yield sock.recv_record()
        out["r"] = (off, obj)

    def client():
        sock = yield sa.connect(sb.lid, 80)
        sock.send(500 * KB, record="huge")  # ~256 UD segments

    d = sim.process(server())
    sim.process(client())
    sim.run(until=d)
    assert out["r"] == (500 * KB, "huge")
