"""Backend-conformance wall for the distributed experiment engine.

The contract (ISSUE 7): the rendered store is **byte-identical to a
serial run for every execution backend, every worker count, and every
arrival/completion order** — and the distributed machinery survives
chaos (SIGKILLed workers, silent leases, duplicate results, garbage
frames) without ever corrupting that store or hanging.

Layers covered:

* pure planning: stable sharding (``shard_of``/``plan_shards``),
  request-order task decomposition;
* the lease state machine (``LeaseTable``) with a hand-cranked clock —
  no sockets, no sleeps;
* the wire protocol — roundtrip, truncation, garbage, fuzz: fail
  closed, never hang;
* each backend end-to-end through ``run_experiments`` against the
  serial baseline, including socket workers joining in shuffled order,
  killed mid-lease, expiring leases, and sharing the remote cell
  cache.

Socket tests run workers as in-process *threads* (the worker loop is
thread-safe and ``worker_env`` skips ``SIGALRM`` off the main thread);
subprocess workers are reserved for the SIGKILL/crash chaos tests that
need a real process to kill.
"""

import contextlib
import json
import os
import signal
import socket as socketlib
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import registry
from repro.exp import (BACKENDS, CellCache, DryRunBackend, ExecutionBackend,
                       LocalPoolBackend, ResultCache, SocketWorkerBackend,
                       TaskOutcome, create_backend, run_experiments,
                       write_jsonl)
from repro.exp.leases import LeaseTable
from repro.exp.planner import (RunContext, build_tasks, plan_shards,
                               run_task, shard_of, task_key)
from repro.exp.protocol import (COMPRESS_MAGIC, FAIL_CLOSED_FIXTURES,
                                MAX_FRAME, MESSAGE_TYPES, PROTOCOL_VERSION,
                                ProtocolError, decode_body, encode_frame,
                                package_version, recv_frame, send_frame)
from repro.exp.worker import serve

SUBSET = ["table1", "fig04a", "fig13b"]     # 5 tasks: 2 whole + 3 cells
CTX = RunContext(quick=True)


@pytest.fixture(scope="module")
def serial_bytes():
    return {r.exp_id: r.to_json()
            for r in run_experiments(SUBSET, quick=True, jobs=1)}


def _assert_identical(results, serial_bytes, ids=SUBSET):
    assert [r.exp_id for r in results] == list(ids)
    for result in results:
        assert result.to_json() == serial_bytes[result.exp_id]


@contextlib.contextmanager
def thread_workers(address, n, cache_dir=None, stagger_s=0.0):
    """Run ``n`` worker loops as daemon threads against ``address``."""
    host, port = address
    threads = []

    def _one(i):
        if stagger_s:
            time.sleep(stagger_s * i)
        serve(f"{host}:{port}", worker_id=f"thread-{i}",
              cache_dir=cache_dir, timeout_s=30.0)

    for i in range(n):
        t = threading.Thread(target=_one, args=(i,), daemon=True)
        t.start()
        threads.append(t)
    try:
        yield threads
    finally:
        for t in threads:
            t.join(timeout=30)


# -- byte-identity across backends and worker counts ------------------------

@pytest.mark.parametrize("workers", [1, 2, 5])
def test_local_pool_byte_identical(workers, serial_bytes):
    with LocalPoolBackend(jobs=workers) as backend:
        got = run_experiments(SUBSET, quick=True, backend=backend)
    _assert_identical(got, serial_bytes)


def test_local_pool_decodes_context_once_per_process(serial_bytes):
    """The warm-worker fast path: RunContext is decoded in the pool
    initializer, exactly once per worker process, never per task."""
    backend = LocalPoolBackend(jobs=3)
    got = run_experiments(SUBSET, quick=True, backend=backend)
    _assert_identical(got, serial_bytes)
    assert backend.ctx_decodes, "no chunk reported its decode count"
    assert all(count == 1 for count in backend.ctx_decodes.values()), \
        backend.ctx_decodes


@pytest.mark.parametrize("window", [1, 4, 16])
def test_pipelined_windows_byte_identical(window, serial_bytes):
    """The credit window is a wire-efficiency knob, not a semantics
    knob: every window produces the serial store, byte for byte."""
    backend = SocketWorkerBackend(workers=2, spawn=False,
                                  lease_timeout_s=10.0, pipeline=window)
    try:
        with thread_workers(backend.address, 2):
            got = run_experiments(SUBSET, quick=True, backend=backend)
    finally:
        backend.close()
    _assert_identical(got, serial_bytes)
    assert backend.stats["results"] == 5
    if window > 1:
        # with more credit than workers, some grant must have landed on
        # a worker that already had a lease in flight
        assert backend.stats.get("leases_pipelined", 0) >= 1
    plan = backend.plan(build_tasks(SUBSET, quick=True), CTX)
    assert plan["pipeline"] == window


@pytest.mark.parametrize("workers", [1, 2, 5])
def test_socket_byte_identical(workers, serial_bytes):
    backend = SocketWorkerBackend(workers=workers, spawn=False,
                                  lease_timeout_s=10.0)
    try:
        with thread_workers(backend.address, workers):
            got = run_experiments(SUBSET, quick=True, backend=backend)
    finally:
        backend.close()
    _assert_identical(got, serial_bytes)
    assert backend.stats["results"] == 5
    assert backend.stats["workers_joined"] == workers


def test_socket_shuffled_worker_arrival(serial_bytes):
    """Workers joining late and in arbitrary order change nothing."""
    backend = SocketWorkerBackend(workers=3, spawn=False,
                                  lease_timeout_s=10.0)
    try:
        with thread_workers(backend.address, 3, stagger_s=0.15):
            got = run_experiments(SUBSET, quick=True, backend=backend)
    finally:
        backend.close()
    _assert_identical(got, serial_bytes)


def test_dryrun_cold_executes_nothing(monkeypatch):
    def boom(*args, **kwargs):
        raise AssertionError("dry run executed an experiment")

    monkeypatch.setattr(registry, "run_experiment", boom)
    monkeypatch.setattr(registry, "run_cell", boom)
    backend = DryRunBackend(workers=2)
    got = run_experiments(SUBSET, quick=True, backend=backend)
    assert got == []
    plan = backend.last_plan
    assert plan["n_tasks"] == 5
    assert plan["tasks"] == ["table1", "fig04a#0", "fig04a#1",
                             "fig04a#2", "fig13b"]
    assert plan["tasks_per_experiment"] == {"table1": 1, "fig04a": 3,
                                            "fig13b": 1}
    planned_keys = [k for shard in plan["shards"] for k in shard["tasks"]]
    assert sorted(planned_keys) == sorted(plan["tasks"])


def test_dryrun_warm_cache_is_byte_identical(tmp_path, monkeypatch,
                                             serial_bytes):
    """Cache prefetch precedes the backend, so a warm dry run returns
    the full byte-identical store while executing zero tasks."""
    cache = ResultCache(tmp_path / "cache")
    run_experiments(SUBSET, quick=True, jobs=1, cache=cache)

    def boom(*args, **kwargs):
        raise AssertionError("dry run executed despite warm cache")

    monkeypatch.setattr(registry, "run_experiment", boom)
    monkeypatch.setattr(registry, "run_cell", boom)
    got = run_experiments(SUBSET, quick=True, cache=cache,
                          backend=DryRunBackend(workers=2))
    _assert_identical(got, serial_bytes)


def test_backend_registry_and_factory():
    assert set(BACKENDS) == {"local", "socket", "dryrun"}
    with pytest.raises(ValueError, match="unknown backend"):
        create_backend("carrier-pigeon")
    backend = create_backend("dryrun", jobs=3)
    assert isinstance(backend, DryRunBackend) and backend.workers == 3
    backend = create_backend("local", jobs=2)
    assert isinstance(backend, LocalPoolBackend) and backend.jobs == 2


# -- deterministic sharding --------------------------------------------------

def test_shard_of_is_stable_golden():
    """Placement is a pure function of (task key, shard count) — these
    values must never drift (they are SHA-256, not ``hash()``)."""
    import hashlib
    for task in [("table1", None), ("fig04a", 0), ("fig04a", 2),
                 ("fig13b", None)]:
        for n in (1, 2, 5, 7):
            digest = hashlib.sha256(task_key(task).encode()).digest()
            assert shard_of(task, n) == int.from_bytes(digest[:8],
                                                       "big") % n
    assert shard_of(("table1", None), 1) == 0
    with pytest.raises(ValueError):
        shard_of(("table1", None), 0)


def test_plan_shards_pure_and_order_preserving():
    tasks = build_tasks(SUBSET, quick=True)
    first = plan_shards(tasks, 3)
    assert plan_shards(tasks, 3) == first             # pure
    assert sorted(sum(first, [])) == sorted(tasks)    # a partition
    for shard in first:                               # request order kept
        assert shard == [t for t in tasks if t in shard]


def test_build_tasks_request_order():
    assert build_tasks(["fig04a", "table1"], quick=True) == [
        ("fig04a", 0), ("fig04a", 1), ("fig04a", 2), ("table1", None)]
    assert task_key(("fig04a", 2)) == "fig04a#2"
    assert task_key(("table1", None)) == "table1"


# -- the lease state machine (hand-cranked clock, no I/O) --------------------

TASKS = [("a", None), ("b", 0), ("b", 1)]


def test_lease_issue_heartbeat_complete():
    table = LeaseTable(TASKS, lease_timeout_s=10.0)
    lease = table.issue("w1", now=0.0)
    assert lease.task == ("a", None) and lease.attempt == 1
    assert table.heartbeat(lease.lease_id, now=5.0)       # renews
    assert not table.expire(now=14.0)                     # renewed past 10
    assert table.complete(lease.lease_id, lease.task) == "ok"
    assert table.is_done(("a", None))
    assert not table.settled()                            # b's cells remain


def test_lease_expiry_requeues_in_request_order():
    table = LeaseTable(TASKS, lease_timeout_s=1.0)
    l1 = table.issue("w1", now=0.0)
    l2 = table.issue("w2", now=0.0)
    assert [le.task for le in (l1, l2)] == TASKS[:2]
    expired = table.expire(now=2.0)
    assert {le.lease_id for le in expired} == {l1.lease_id, l2.lease_id}
    # requeued ahead of the never-issued third task: request order
    assert table.pending_tasks() == TASKS
    again = table.issue("w3", now=2.0)
    assert again.task == ("a", None) and again.attempt == 2


def test_lease_death_reassignment_is_free():
    """Worker death must NOT consume the failure budget — the SIGKILL
    acceptance criterion depends on completing with retries=0."""
    table = LeaseTable(TASKS, lease_timeout_s=10.0, max_failures=0)
    lease = table.issue("doomed", now=0.0)
    released = table.release_worker("doomed")
    assert [le.lease_id for le in released] == [lease.lease_id]
    retry = table.issue("healthy", now=1.0)
    assert retry.task == lease.task
    assert table.complete(retry.lease_id, retry.task) == "ok"
    assert table.exhausted_tasks() == []


def test_lease_reported_failures_consume_budget():
    table = LeaseTable(TASKS, lease_timeout_s=10.0, max_failures=1)
    l1 = table.issue("w", now=0.0)
    assert table.fail(l1.lease_id, l1.task)          # 1st failure: requeued
    l2 = table.issue("w", now=1.0)
    assert l2.task == l1.task
    assert not table.fail(l2.lease_id, l2.task)      # budget spent
    assert table.exhausted_tasks() == [l1.task]
    assert l1.task not in table.pending_tasks()


def test_lease_duplicate_and_late_results():
    table = LeaseTable(TASKS, lease_timeout_s=1.0)
    lease = table.issue("slow", now=0.0)
    table.expire(now=2.0)                            # reassigned away
    retry = table.issue("fast", now=2.0)
    assert retry.task == lease.task
    # the expired holder's result arrives first: accepted as "late"
    assert table.complete(lease.lease_id, lease.task) == "late"
    # the live holder's copy is a duplicate, changing nothing
    assert table.complete(retry.lease_id, retry.task) == "duplicate"
    assert table.stats["completed"] == 1
    assert table.stats["duplicates"] == 1


def test_lease_stale_heartbeat_after_reassignment():
    table = LeaseTable(TASKS, lease_timeout_s=1.0)
    lease = table.issue("silent", now=0.0)
    table.expire(now=2.0)
    assert not table.heartbeat(lease.lease_id, now=2.5)   # stale
    assert table.stats["stale_heartbeats"] == 1


def test_lease_shard_preference_and_work_stealing():
    table = LeaseTable(TASKS, lease_timeout_s=10.0)
    mine = [("b", 1)]
    lease = table.issue("w", now=0.0, prefer_shard=mine)
    assert lease.task == ("b", 1)                    # own shard first
    steal = table.issue("w", now=0.0, prefer_shard=mine)
    assert steal.task == ("a", None)                 # shard drained: steal


def test_lease_settled_and_validation():
    with pytest.raises(ValueError):
        LeaseTable(TASKS, lease_timeout_s=0.0)
    with pytest.raises(ValueError):
        LeaseTable(TASKS, lease_timeout_s=1.0, max_failures=-1)
    table = LeaseTable([("a", None)], lease_timeout_s=1.0)
    assert not table.settled()
    lease = table.issue("w", now=0.0)
    table.complete(lease.lease_id, lease.task)
    assert table.settled()
    assert table.issue("w", now=0.0) is None


def test_renew_worker_renews_exactly_the_holding_list():
    """Piggybacked liveness: a worker's ``holding`` list renews those
    leases and no others — a peer's lease must still expire."""
    table = LeaseTable(TASKS, lease_timeout_s=1.0)
    l1 = table.issue("w1", now=0.0)
    l2 = table.issue("w1", now=0.0)
    l3 = table.issue("w2", now=0.0)
    assert table.renew_worker("w1", now=0.9,
                              holding=[l1.lease_id, l2.lease_id]) == 2
    expired = table.expire(now=1.5)
    assert {le.lease_id for le in expired} == {l3.lease_id}


def test_renew_worker_never_renews_unheld_leases():
    """A lease id in ``holding`` that belongs to another worker (or a
    LEASE frame dropped on the wire) is NOT renewed — blanket renewal
    would keep a held-by-nobody task alive forever."""
    table = LeaseTable(TASKS, lease_timeout_s=1.0)
    l1 = table.issue("w1", now=0.0)
    l2 = table.issue("w2", now=0.0)
    # w1 claims w2's lease id too: only its own is renewed
    assert table.renew_worker("w1", now=0.9,
                              holding=[l1.lease_id, l2.lease_id]) == 1
    expired = table.expire(now=1.8)
    assert {le.lease_id for le in expired} == {l2.lease_id}
    # omitting holding renews the worker's whole pipeline
    assert table.renew_worker("w1", now=2.0) == 1
    assert not table.expire(now=2.9)


# -- the wire protocol: fail closed, never hang ------------------------------

def _pair():
    a, b = socketlib.socketpair()
    a.settimeout(10.0)
    b.settimeout(10.0)
    return a, b


def test_protocol_roundtrip_and_clean_eof():
    a, b = _pair()
    send_frame(a, {"type": "HELLO", "proto": PROTOCOL_VERSION,
                   "version": package_version(), "worker": "w"})
    assert recv_frame(b) == {"proto": PROTOCOL_VERSION, "type": "HELLO",
                             "version": package_version(), "worker": "w"}
    a.close()
    assert recv_frame(b) is None                     # EOF at a boundary
    b.close()


@pytest.mark.parametrize("raw,why", [
    (b"\x00\x00\x00\x00", "zero length"),
    (b"\xff\xff\xff\xff", "length over MAX_FRAME"),
    (b"\x00\x00\x00\x05ab", "truncated body"),
    (b"\x00\x00\x00\x03abc", "not JSON"),
    (b"\x00\x00\x00\x02[]", "not an object"),
    (b"\x00\x00\x00\x0f" + json.dumps({"type": "EVAL"}).encode(),
     "unknown type"),
    (b"\x00\x00", "truncated header"),
])
def test_protocol_malformed_frames_fail_closed(raw, why):
    a, b = _pair()
    a.sendall(raw)
    a.close()
    with pytest.raises(ProtocolError):
        recv_frame(b)
    b.close()


def test_protocol_oversized_outgoing_rejected():
    # MAX_FRAME bounds the decoded body, so even this perfectly
    # compressible payload must be rejected before the zlib fast path.
    a, b = _pair()
    with pytest.raises(ProtocolError):
        send_frame(a, {"type": "RESULT", "payload": "x" * (MAX_FRAME + 1)})
    a.close()
    b.close()


# -- the decode-fixture wall (PAR307's runtime half) -------------------------

def test_every_frame_type_has_a_fail_closed_fixture():
    """The static contract PAR307 lints, re-proved at runtime: the
    fixture dict and the message vocabulary are the same set."""
    assert set(FAIL_CLOSED_FIXTURES) == set(MESSAGE_TYPES)


@pytest.mark.parametrize("mtype", sorted(FAIL_CLOSED_FIXTURES))
def test_malformed_body_fixture_fails_closed(mtype):
    with pytest.raises(ProtocolError):
        decode_body(FAIL_CLOSED_FIXTURES[mtype])


# -- compressed frames --------------------------------------------------------

def test_protocol_big_body_compresses_and_roundtrips():
    big = {"type": "RESULT", "lease": 1,
           "payload": [{"row": i, "lat_us": 12.5} for i in range(2000)]}
    frame, compressed = encode_frame(big)
    assert compressed
    assert frame[4:5] == COMPRESS_MAGIC
    a, b = _pair()
    a.sendall(frame)
    a.close()
    assert recv_frame(b) == big
    b.close()


def test_protocol_small_bodies_stay_raw_json():
    frame, compressed = encode_frame({"type": "HEARTBEAT", "lease": 7})
    assert not compressed
    assert frame[4:5] == b"{"


def test_protocol_compressed_garbage_fails_closed():
    import zlib
    good = zlib.compress(json.dumps({"type": "BYE"}).encode())
    for bad in (COMPRESS_MAGIC + b"not a zlib stream",
                COMPRESS_MAGIC + good[:-2],          # truncated stream
                COMPRESS_MAGIC + good + b"trailing"):
        with pytest.raises(ProtocolError):
            decode_body(bad)


def test_protocol_decompression_bomb_fails_closed():
    """A tiny body must not inflate past MAX_FRAME."""
    import zlib
    bomb = COMPRESS_MAGIC + zlib.compress(b"0" * (MAX_FRAME + 4096))
    assert len(bomb) < 64 * 1024
    with pytest.raises(ProtocolError, match="MAX_FRAME"):
        decode_body(bomb)


@settings(max_examples=40, deadline=None)
@given(st.binary(min_size=0, max_size=64))
def test_protocol_fuzz_never_hangs(blob):
    """Arbitrary bytes then EOF: a valid frame, clean EOF, or a
    ProtocolError — never a hang, never a partial parse."""
    a, b = _pair()
    try:
        a.sendall(blob)
        a.close()
        try:
            message = recv_frame(b)
        except ProtocolError:
            pass
        else:
            assert message is None or (isinstance(message, dict)
                                       and "type" in message)
    finally:
        b.close()


def test_garbage_frames_to_live_coordinator(serial_bytes):
    """A client spraying garbage is dropped; the sweep still finishes
    byte-identically on the healthy workers."""
    backend = SocketWorkerBackend(workers=1, spawn=False,
                                  lease_timeout_s=10.0)
    stop = threading.Event()

    def vandal():
        host, port = backend.address
        while not stop.is_set():
            try:
                with socketlib.create_connection((host, port),
                                                 timeout=5.0) as sock:
                    sock.sendall(b"\xde\xad\xbe\xefgarbage")
                    sock.recv(1)        # wait for the coordinator's drop
            except OSError:
                time.sleep(0.05)

    thread = threading.Thread(target=vandal, daemon=True)
    thread.start()
    try:
        with thread_workers(backend.address, 1):
            got = run_experiments(SUBSET, quick=True, backend=backend)
    finally:
        stop.set()
        backend.close()
        thread.join(timeout=10)
    _assert_identical(got, serial_bytes)
    assert backend.stats.get("protocol_errors", 0) >= 1


# -- chaos: death, silence, duplication --------------------------------------

def test_sigkilled_worker_mid_lease_reassigns(tmp_path, monkeypatch,
                                              serial_bytes):
    """Acceptance criterion: SIGKILL a socket worker while it holds a
    lease; the sweep completes byte-identically with retries=0."""
    monkeypatch.setenv("REPRO_EXP_TASK_SLEEP_S", "1.0")
    backend = SocketWorkerBackend(workers=2, spawn=True,
                                  lease_timeout_s=15.0)
    killed = []

    def assassin():
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            # wait until both workers actually hold a lease, so the
            # kill is guaranteed to land mid-lease
            if backend.stats.get("leases_issued", 0) >= 2:
                pids = backend.worker_pids
                if pids:
                    time.sleep(0.2)      # into the 1.0s task sleep
                    os.kill(pids[0], signal.SIGKILL)
                    killed.append(pids[0])
                return
            time.sleep(0.05)

    thread = threading.Thread(target=assassin, daemon=True)
    thread.start()
    try:
        got = run_experiments(SUBSET, quick=True, backend=backend,
                              retries=0)
    finally:
        backend.close()
        thread.join(timeout=10)
    assert killed, "assassin never found a worker pid"
    _assert_identical(got, serial_bytes)
    reassigned = (backend.stats.get("reassignments_death", 0)
                  + backend.stats.get("reassignments_expiry", 0))
    assert reassigned >= 1


def test_pipelined_queue_outlives_lease_timeout(monkeypatch, serial_bytes):
    """Regression (heartbeat coalescing): one worker holds a window of
    4 leases whose queue takes 2s to drain against a 1s lease timeout.
    Piggybacked ``holding`` renewal must keep the *queued* leases alive
    — under the old per-current-lease heartbeat they expire while
    waiting and the run thrashes through reassignments."""
    monkeypatch.setenv("REPRO_EXP_TASK_SLEEP_S", "0.4")
    backend = SocketWorkerBackend(workers=1, spawn=False,
                                  lease_timeout_s=1.0, pipeline=4)
    try:
        with thread_workers(backend.address, 1):
            got = run_experiments(SUBSET, quick=True, backend=backend)
    finally:
        backend.close()
    _assert_identical(got, serial_bytes)
    assert backend.stats.get("reassignments_expiry", 0) == 0, backend.stats
    assert backend.stats.get("leases_pipelined", 0) >= 3


def test_sigkill_with_full_pipeline_window_frees_every_lease(monkeypatch,
                                                             serial_bytes):
    """A worker dies holding its entire credit window: every lease it
    held is reassigned for free (retries=0) and a late-joining worker
    completes the sweep byte-identically."""
    monkeypatch.setenv("REPRO_EXP_TASK_SLEEP_S", "0.5")
    backend = SocketWorkerBackend(workers=1, spawn=True,
                                  lease_timeout_s=15.0, pipeline=8)
    killed = []

    def assassin_then_rescuer():
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if (backend.stats.get("leases_issued", 0) >= 5
                    and backend.worker_pids):
                time.sleep(0.1)          # into the first task's sleep
                os.kill(backend.worker_pids[0], signal.SIGKILL)
                killed.append(backend.worker_pids[0])
                host, port = backend.address
                serve(f"{host}:{port}", worker_id="rescuer",
                      timeout_s=30.0)
                return
            time.sleep(0.02)

    thread = threading.Thread(target=assassin_then_rescuer, daemon=True)
    thread.start()
    try:
        got = run_experiments(SUBSET, quick=True, backend=backend,
                              retries=0)
    finally:
        backend.close()
        thread.join(timeout=10)
    assert killed, "assassin never saw a full window"
    _assert_identical(got, serial_bytes)
    freed = (backend.stats.get("reassignments_death", 0)
             + backend.stats.get("reassignments_expiry", 0))
    assert freed >= 4, backend.stats


def test_silent_lease_expires_and_reassigns(serial_bytes):
    """A worker that takes a lease and never heartbeats loses it; a
    healthy worker completes the sweep."""
    backend = SocketWorkerBackend(workers=2, spawn=False,
                                  lease_timeout_s=0.75)
    host, port = backend.address
    holder = {}

    def silent_client():
        with socketlib.create_connection((host, port), timeout=20.0) as s:
            send_frame(s, {"type": "HELLO", "proto": PROTOCOL_VERSION,
                           "version": package_version(),
                           "worker": "silent"})
            while True:
                msg = recv_frame(s)
                if msg is None or msg["type"] == "BYE":
                    return
                if msg["type"] == "LEASE":
                    holder.update(msg)   # sit on it: no heartbeat, ever
                    # stay connected so only *expiry* can free the task

    thread = threading.Thread(target=silent_client, daemon=True)
    thread.start()
    time.sleep(0.2)                      # let the silent client join first
    try:
        with thread_workers(backend.address, 1):
            got = run_experiments(SUBSET, quick=True, backend=backend)
    finally:
        backend.close()
        thread.join(timeout=10)
    assert holder, "silent client never got a lease"
    _assert_identical(got, serial_bytes)
    assert backend.stats.get("reassignments_expiry", 0) >= 1


def test_duplicate_result_and_stale_heartbeat_converge(monkeypatch,
                                                       serial_bytes):
    """A worker completing an already-reassigned lease — then sending
    the same RESULT again, then heartbeating the dead lease — changes
    nothing: one store, byte-identical."""
    # slow the healthy worker down so the sweep is still running when
    # the laggard's late/duplicate frames arrive
    monkeypatch.setenv("REPRO_EXP_TASK_SLEEP_S", "0.5")
    backend = SocketWorkerBackend(workers=2, spawn=False,
                                  lease_timeout_s=0.75)
    host, port = backend.address
    chaos_done = threading.Event()

    def laggard():
        with socketlib.create_connection((host, port), timeout=20.0) as s:
            send_frame(s, {"type": "HELLO", "proto": PROTOCOL_VERSION,
                           "version": package_version(),
                           "worker": "laggard"})
            lease = None
            while lease is None:
                msg = recv_frame(s)
                if msg is None or msg["type"] == "BYE":
                    return
                if msg["type"] == "LEASE":
                    lease = msg
            time.sleep(1.0)              # lease expires and is reassigned
            task = (lease["exp_id"], lease["index"])
            payload, snapshot = run_task(task, CTX)
            result = {"type": "RESULT", "lease": lease["lease"],
                      "payload": payload, "snapshot": snapshot,
                      "cached": None, "error": None}
            send_frame(s, result)        # late (or duplicate) completion
            send_frame(s, result)        # and a literal duplicate
            send_frame(s, {"type": "HEARTBEAT",
                           "lease": lease["lease"]})  # stale by now
            chaos_done.set()
            while True:                  # drain until BYE
                msg = recv_frame(s)
                if msg is None or msg["type"] == "BYE":
                    return

    thread = threading.Thread(target=laggard, daemon=True)
    thread.start()
    time.sleep(0.2)
    try:
        with thread_workers(backend.address, 1):
            got = run_experiments(SUBSET, quick=True, backend=backend)
    finally:
        backend.close()
        thread.join(timeout=10)
    assert chaos_done.wait(timeout=1), "laggard never ran its chaos"
    _assert_identical(got, serial_bytes)
    assert (backend.stats.get("duplicate_results", 0)
            + backend.stats.get("late_results", 0)) >= 1
    assert backend.stats.get("stale_heartbeats", 0) >= 1


def test_worker_killed_between_cache_put_and_result(tmp_path, monkeypatch,
                                                    serial_bytes):
    """The crash window between publishing to the shared cache and
    reporting the RESULT: the reassigned worker finds the payload in
    the remote cache and the sweep converges to one identical store."""
    marker = tmp_path / "die-once"
    monkeypatch.setenv("REPRO_EXP_DIE_AFTER_PUT", str(marker))
    backend = SocketWorkerBackend(workers=2, spawn=True,
                                  lease_timeout_s=15.0,
                                  cache_dir=str(tmp_path / "cells"))
    try:
        got = run_experiments(SUBSET, quick=True, backend=backend,
                              retries=0)
    finally:
        backend.close()
    assert marker.exists(), "no worker hit the crash window"
    _assert_identical(got, serial_bytes)
    assert (backend.stats.get("reassignments_death", 0)
            + backend.stats.get("reassignments_expiry", 0)) >= 1
    assert backend.stats.get("cache_hits_remote", 0) >= 1


# -- the remote cell cache ---------------------------------------------------

def test_remote_cache_hits_propagate_and_are_observable(tmp_path,
                                                        serial_bytes):
    """Sweep 2 over the same cell-cache dir is served entirely from
    CACHE_GET, and the hits surface as repro.obs counters."""
    from repro.obs import MetricsRegistry, use_registry
    cells = str(tmp_path / "cells")
    backend = SocketWorkerBackend(workers=2, spawn=True,
                                  lease_timeout_s=15.0, cache_dir=cells)
    try:
        run_experiments(SUBSET, quick=True, backend=backend)
    finally:
        backend.close()
    assert backend.stats.get("cache_publishes", 0) >= 5

    reg = MetricsRegistry()
    backend2 = SocketWorkerBackend(workers=2, spawn=True,
                                   lease_timeout_s=15.0, cache_dir=cells)
    try:
        with use_registry(reg):
            got = run_experiments(SUBSET, quick=True, backend=backend2)
    finally:
        backend2.close()
    _assert_identical(got, serial_bytes)
    assert backend2.stats.get("cache_hits_remote", 0) == 5
    counter = reg.get("exp", "cache_hits", backend="socket", where="remote")
    assert counter is not None, "hits did not surface in the registry"
    assert counter.value == 5
    leases = reg.get("exp", "leases_issued", backend="socket")
    assert leases is not None and leases.value >= 5


# -- scheduler assembly: order, errors, keep_going ---------------------------

class _ReversedBackend(ExecutionBackend):
    """Computes serially but yields outcomes in reverse request order —
    the scheduler must reassemble identically anyway."""

    name = "reversed"

    def run_tasks(self, tasks, ctx):
        outcomes = []
        for task in tasks:
            payload, snapshot = run_task(task, ctx)
            outcomes.append(TaskOutcome(task, payload=payload,
                                        snapshot=snapshot))
        yield from reversed(outcomes)

    def plan(self, tasks, ctx):
        return {"backend": self.name, "n_tasks": len(tasks)}

    def close(self):
        pass


class _FailingBackend(ExecutionBackend):
    """Every task of ``bad_exp`` fails terminally; the rest succeed."""

    name = "failing"

    def __init__(self, bad_exp):
        super().__init__()
        self.bad_exp = bad_exp

    def run_tasks(self, tasks, ctx):
        for task in tasks:
            if task[0] == self.bad_exp:
                yield TaskOutcome(task, error=RuntimeError("boom"),
                                  attempts=ctx.retries + 1)
            else:
                payload, snapshot = run_task(task, ctx)
                yield TaskOutcome(task, payload=payload, snapshot=snapshot)

    def plan(self, tasks, ctx):
        return {"backend": self.name, "n_tasks": len(tasks)}

    def close(self):
        pass


def test_out_of_order_outcomes_render_identical_store(tmp_path,
                                                      serial_bytes):
    """Satellite: completion order cannot leak into the rendered store
    — the JSON-lines files are compared as bytes."""
    serial = run_experiments(SUBSET, quick=True, jobs=1)
    scrambled = run_experiments(SUBSET, quick=True,
                                backend=_ReversedBackend())
    a, b = tmp_path / "serial.jsonl", tmp_path / "scrambled.jsonl"
    write_jsonl(a, serial)
    write_jsonl(b, scrambled)
    assert a.read_bytes() == b.read_bytes()
    _assert_identical(scrambled, serial_bytes)


def test_backend_failure_raises_without_keep_going():
    with pytest.raises(RuntimeError, match="boom"):
        run_experiments(["table1", "fig13b"], quick=True,
                        backend=_FailingBackend("table1"))


def test_backend_failure_collected_with_keep_going(serial_bytes):
    failures = []
    got = run_experiments(["table1", "fig13b"], quick=True,
                          backend=_FailingBackend("table1"),
                          keep_going=True, failures=failures)
    _assert_identical(got, serial_bytes, ids=["fig13b"])
    assert [f.exp_id for f in failures] == ["table1"]
    assert "boom" in failures[0].error


# -- the CLI worker joins an external coordinator ----------------------------

def test_external_worker_via_cli(tmp_path, serial_bytes):
    """`repro worker --connect` (the --listen deployment shape): the
    coordinator spawns nothing; an externally started CLI worker
    drains the sweep."""
    import subprocess
    import sys

    backend = SocketWorkerBackend(workers=1, spawn=False,
                                  lease_timeout_s=15.0)
    host, port = backend.address
    src_root = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src_root] + [p for p in env.get("PYTHONPATH", "").split(
            os.pathsep) if p])
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "worker",
         "--connect", f"{host}:{port}", "--worker-id", "external-1"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    try:
        got = run_experiments(["table1", "fig13b"], quick=True,
                              backend=backend)
    finally:
        backend.close()
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
    _assert_identical(got, serial_bytes, ids=["table1", "fig13b"])
    assert proc.returncode == 0
