"""Error/edge paths of ``repro.cli experiments`` and the new engine flags.

Covers: unknown experiment ids, --jobs validation, --metrics together
with --jobs > 1, --out JSON-lines output, and --cache round trips —
all through the real ``main`` entry point.
"""

import json

import pytest

from repro.cli import main
from repro.exp import read_jsonl
from repro.exp.store import main as store_main


def test_unknown_id_exits_nonzero_with_message(capsys):
    assert main(["experiments", "no_such_figure"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment id 'no_such_figure'" in err
    assert "table1" in err, "message should list the known ids"


def test_unknown_id_among_valid_ones_runs_nothing(capsys):
    assert main(["experiments", "table1", "bogus"]) == 2
    captured = capsys.readouterr()
    assert "== table1" not in captured.out


@pytest.mark.parametrize("jobs", ["0", "-4", "zero"])
def test_bad_jobs_rejected(jobs, capsys):
    with pytest.raises(SystemExit) as exc:
        main(["experiments", "table1", "--jobs", jobs])
    assert exc.value.code == 2
    assert "--jobs" in capsys.readouterr().err


def test_metrics_summary_with_parallel_jobs(capsys):
    assert main(["experiments", "ext_dlm", "abl_credits",
                 "--jobs", "2", "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "== ext_dlm" in out and "== abl_credits" in out
    start = out.index("metric")
    assert "counter" in out[start:], "summary table should follow results"


def test_out_writes_valid_json_lines(tmp_path, capsys):
    out_path = tmp_path / "results.jsonl"
    assert main(["experiments", "table1", "fig03",
                 "--out", str(out_path)]) == 0
    lines = out_path.read_text().splitlines()
    assert len(lines) == 2
    for line in lines:
        json.loads(line)
    results = read_jsonl(out_path)
    assert [r.exp_id for r in results] == ["table1", "fig03"]
    assert results[0].rows[0] == ("1 km", "5 us")


def test_cache_flag_round_trip(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    args = ["experiments", "table1", "--cache", "--cache-dir", cache_dir]
    assert main(args) == 0
    first = capsys.readouterr()
    assert "1 miss(es)" in first.err
    assert main(args) == 0
    second = capsys.readouterr()
    assert "1 hit(s), 0 miss(es)" in second.err
    assert first.out == second.out, "cached output must be identical"


def test_no_cache_is_the_default(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["experiments", "table1"]) == 0
    capsys.readouterr()
    assert not (tmp_path / ".repro-cache").exists()


def test_store_renderer_cli(tmp_path, capsys):
    out_path = tmp_path / "results.jsonl"
    assert main(["experiments", "table1", "--out", str(out_path)]) == 0
    capsys.readouterr()
    assert store_main([str(out_path)]) == 0
    text = capsys.readouterr().out
    assert "== table1" in text and "2000 km" in text
    assert store_main([str(out_path), "--markdown"]) == 0
    md = capsys.readouterr().out
    assert "| distance | one-way delay |" in md


def test_module_cli_jobs_flag(capsys):
    from repro.core.experiments import main as exp_main
    exp_main(["table1", "ext_dlm", "--jobs", "2"])
    out = capsys.readouterr().out
    assert "== table1" in out and "== ext_dlm" in out
