"""Invariant tests: the paper's §4 findings, asserted through metrics.

Rather than re-measuring bandwidth curves, these tests read the
quantities the paper *reasons* from directly out of the metrics layer:

* UD is unacknowledged, so nothing about a UD transfer (counters,
  completions, even per-link byte counts) depends on the WAN delay —
  the Fig. 4 flat line, by construction;
* RC in-flight data is capped by the ACK window; under a 10000 us WAN
  delay the sender fills the window, stalls, and in-flight never exceeds
  it — the Fig. 5 collapse mechanism;
* the MPI engine flips from eager to rendezvous exactly at the
  configured threshold — the knob the Fig. 9 tuning experiment turns.
"""

import pytest

from repro.calibration import DEFAULT_PROFILE
from repro.core import wan_pair
from repro.core.scenario import PAPER_DELAYS_US
from repro.mpi import MPIJob
from repro.obs import MetricsRegistry, to_json_lines, use_registry
from repro.verbs import perftest

UD_SIZE = 2048
RC_SIZE = 65536
ITERS = 32


def _component_lines(registry, component):
    # queue_delay_us is excluded: its values are ~1e-13 float residue of
    # subtracting large (delay-dependent) timestamps, not real queueing.
    return "\n".join(line for line in to_json_lines(registry).splitlines()
                     if f'"component":"{component}"' in line
                     and "queue_delay_us" not in line)


# ---------------------------------------------------------------------------
# UD: delay-independence (paper Fig. 4)
# ---------------------------------------------------------------------------

def test_ud_metrics_identical_across_all_delays():
    snapshots = {}
    bws = {}
    for delay in PAPER_DELAYS_US:
        reg = MetricsRegistry()
        with use_registry(reg):
            s = wan_pair(delay)
            bws[delay] = perftest.run_send_bw(s.sim, s.a, s.b, UD_SIZE,
                                              iters=ITERS, transport="ud")
            s.sim.run()  # drain trailing deliveries before snapshotting
        assert reg.get("ud", "messages").value == ITERS
        assert reg.get("ud", "recv_dropped").value == 0
        snapshots[delay] = (_component_lines(reg, "ud"),
                            _component_lines(reg, "link"))
    base = snapshots[0.0]
    for delay in PAPER_DELAYS_US[1:]:
        # Neither the UD transport counters nor the per-link byte/frame
        # accounting change with delay: only event *times* shift.
        assert snapshots[delay] == base, f"UD activity changed at {delay}us"
        assert bws[delay] == pytest.approx(bws[0.0], rel=1e-9)


# ---------------------------------------------------------------------------
# RC: the ACK window caps in-flight data (paper Fig. 5 / §4.1)
# ---------------------------------------------------------------------------

def test_rc_inflight_capped_at_ack_window_under_wan_delay():
    window = DEFAULT_PROFILE.rc_send_window
    reg = MetricsRegistry()
    with use_registry(reg):
        s = wan_pair(10000.0)
        perftest.run_send_bw(s.sim, s.a, s.b, RC_SIZE, iters=3 * window,
                             transport="rc")
    msgs = reg.get("rc", "inflight_msgs")
    nbytes = reg.get("rc", "inflight_bytes")
    # Capped: in-flight never exceeds the window ...
    assert msgs.max <= window
    assert nbytes.max <= window * RC_SIZE
    # ... and under a 10 ms pipe the sender actually hits the cap and
    # stalls waiting for ACKs (the bandwidth-collapse mechanism).
    assert msgs.max == window
    assert reg.get("rc", "window_stall_events").value > 0
    assert reg.get("rc", "window_stall_us").value > 0


def test_rc_never_stalls_without_wan_delay_at_this_depth():
    reg = MetricsRegistry()
    with use_registry(reg):
        s = wan_pair(0.0)
        perftest.run_send_bw(s.sim, s.a, s.b, RC_SIZE, iters=8,
                             transport="rc")
    # 8 messages < 16-deep window: the window never closes on a short
    # pipe, so no stall metric is recorded.
    assert reg.get("rc", "window_stall_events").value == 0
    assert reg.get("rc", "inflight_msgs").max < DEFAULT_PROFILE.rc_send_window


# ---------------------------------------------------------------------------
# MPI: eager -> rendezvous flip at the configured threshold (Fig. 9)
# ---------------------------------------------------------------------------

def _run_pingpong(size):
    reg = MetricsRegistry()
    with use_registry(reg):
        s = wan_pair(10.0)
        job = MPIJob(s.fabric)

        def program(proc):
            if proc.rank == 0:
                yield from proc.send(1, size)
            else:
                yield from proc.recv(src=0)

        job.run(program)
    return reg


def test_eager_rendezvous_flip_at_threshold():
    threshold = MPIJob(wan_pair(10.0).fabric).tuning.eager_threshold
    below = _run_pingpong(threshold - 1)
    at = _run_pingpong(threshold)

    assert below.get("mpi", "eager_msgs").value == 1
    assert below.get("mpi", "rndv_msgs").value == 0

    assert at.get("mpi", "rndv_msgs").value == 1
    assert at.get("mpi", "eager_msgs").value == 0

    assert below.get("mpi", "bytes_sent").value == threshold - 1
    assert at.get("mpi", "bytes_sent").value == threshold


# ---------------------------------------------------------------------------
# merge_snapshot (how --jobs > 1 folds worker registries back together)
# ---------------------------------------------------------------------------

def _snapshot_of(fill):
    reg = MetricsRegistry()
    fill(reg)
    return reg.to_dict()


def test_merge_snapshot_counters_add():
    parent = MetricsRegistry()
    parent.counter("x", "total").inc(3)
    parent.merge_snapshot(_snapshot_of(
        lambda r: r.counter("x", "total").inc(4)))
    assert parent.get("x", "total").value == 7


def test_merge_snapshot_gauges_fold_watermarks():
    parent = MetricsRegistry()
    g = parent.gauge("x", "depth")
    g.set(5)

    def fill(r):
        h = r.gauge("x", "depth")
        h.set(1)
        h.set(9)

    parent.merge_snapshot(_snapshot_of(fill))
    merged = parent.get("x", "depth")
    assert merged.value == 9 and merged.samples == 3
    assert merged.min == 1 and merged.max == 9


def test_merge_snapshot_histograms_fold_buckets():
    parent = MetricsRegistry()
    parent.histogram("x", "lat").observe(3)

    def fill(r):
        r.histogram("x", "lat").observe(3)
        r.histogram("x", "lat").observe(100)

    parent.merge_snapshot(_snapshot_of(fill))
    merged = parent.get("x", "lat")
    assert merged.n == 3 and merged.sum == 106
    assert merged.min == 3 and merged.max == 100
    # two observations of 3 share bucket index int(3).bit_length() == 2
    assert merged.counts[2] == 2


def test_merge_snapshot_labels_and_new_keys():
    parent = MetricsRegistry()
    parent.merge_snapshot(_snapshot_of(
        lambda r: r.counter("link", "bytes", link="ab").inc(10)))
    assert parent.get("link", "bytes", link="ab").value == 10
    assert parent.get("link", "bytes", link="ba") is None


def test_merge_of_split_runs_equals_shared_counters():
    """Counters of two runs merged == the same two runs sharing one
    registry (exactly how the parallel engine uses snapshots)."""
    shared = MetricsRegistry()
    with use_registry(shared):
        s = wan_pair(10.0)
        perftest.run_send_bw(s.sim, s.a, s.b, 4096, iters=8)
        s = wan_pair(10.0)
        perftest.run_send_bw(s.sim, s.a, s.b, 4096, iters=8)

    merged = MetricsRegistry()
    for _ in range(2):
        part = MetricsRegistry()
        with use_registry(part):
            s = wan_pair(10.0)
            perftest.run_send_bw(s.sim, s.a, s.b, 4096, iters=8)
        merged.merge_snapshot(part.to_dict())

    assert (merged.get("rc", "wqe_completions").value
            == shared.get("rc", "wqe_completions").value)
    assert (merged.get("sim", "events_processed").value
            == shared.get("sim", "events_processed").value)
