"""Tests for the extension subsystems: SRQ, parallel FS, NFS readahead,
extra collectives and the CLI."""

import pytest

from repro.calibration import KB, MB
from repro.fabric import build_back_to_back, build_cluster_of_clusters
from repro.sim import Simulator
from repro.verbs import RecvWR, VerbsContext, connect_rc_pair


# ---------------------------------------------------------------------------
# SRQ
# ---------------------------------------------------------------------------

def _srq_setup():
    sim = Simulator()
    fabric = build_back_to_back(sim)
    a, b = fabric.nodes
    ctx_a, ctx_b = VerbsContext(a), VerbsContext(b)
    srq = ctx_b.create_srq()
    scq_b, rcq_b = ctx_b.create_cq(), ctx_b.create_cq()
    # two QPs at b sharing one SRQ, one QP at a for each
    qps_a, qps_b = [], []
    for _ in range(2):
        qa = ctx_a.create_rc_qp(ctx_a.create_cq(), ctx_a.create_cq())
        qb = ctx_b.create_rc_qp(scq_b, rcq_b, srq=srq)
        connect_rc_pair(qa, qb)
        qps_a.append(qa)
        qps_b.append(qb)
    return sim, srq, qps_a, qps_b, rcq_b


def test_srq_serves_multiple_qps():
    sim, srq, qps_a, qps_b, rcq = _srq_setup()
    for _ in range(4):
        srq.post_recv(RecvWR(1 << 20))
    qps_a[0].send(100, payload="via-qp0")
    qps_a[1].send(100, payload="via-qp1")

    def receiver():
        got = set()
        for _ in range(2):
            wc = yield rcq.wait()
            got.add(wc.payload)
        return got

    assert sim.run(until=sim.process(receiver())) == {"via-qp0", "via-qp1"}
    assert len(srq) == 2  # two descriptors consumed


def test_srq_qp_rejects_direct_post_recv():
    sim, srq, qps_a, qps_b, rcq = _srq_setup()
    with pytest.raises(RuntimeError, match="SRQ"):
        qps_b[0].post_recv(RecvWR(100))


def test_srq_empty_pool_buffers_until_replenished():
    sim, srq, qps_a, qps_b, rcq = _srq_setup()
    qps_a[0].send(100, payload="early")

    def late():
        yield sim.timeout(100.0)
        srq.post_recv(RecvWR(1 << 20))
        wc = yield rcq.wait()
        return (wc.payload, sim.now >= 100.0)

    assert sim.run(until=sim.process(late())) == ("early", True)


def test_srq_accounting():
    sim, srq, *_ = _srq_setup()
    for _ in range(7):
        srq.post_recv(RecvWR(64))
    assert srq.posted_total == 7
    assert len(srq) == 7


# ---------------------------------------------------------------------------
# parallel filesystem
# ---------------------------------------------------------------------------

def test_stripe_layout_mapping():
    from repro.pfs import StripeLayout
    layout = StripeLayout("/f", size=8 * MB, stripe_size=1 * MB,
                          oss_indices=(0, 1))
    assert layout.locate(0) == (0, 0)
    assert layout.locate(1 * MB) == (1, 0)
    assert layout.locate(2 * MB) == (0, 1 * MB)
    assert layout.locate(3 * MB + 5) == (1, 1 * MB + 5)
    with pytest.raises(ValueError):
        layout.locate(8 * MB)


def test_mds_open_unknown_file():
    from repro.pfs import MetadataServer
    mds = MetadataServer(Simulator(), n_oss=2)
    with pytest.raises(FileNotFoundError):
        mds.open("/nope")


def test_mds_stripe_count_validation():
    from repro.pfs import MetadataServer
    mds = MetadataServer(Simulator(), n_oss=2)
    with pytest.raises(ValueError):
        mds.create("/f", 1 * MB, stripe_count=3)
    with pytest.raises(ValueError):
        MetadataServer(Simulator(), n_oss=0)


def test_pfs_read_full_file():
    from repro.pfs import build_pfs
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, 2, 1, wan_delay_us=0.0)
    mds, client = build_pfs(fabric, fabric.cluster_a, fabric.cluster_b[0])
    mds.create_file("/f", 4 * MB, stripe_size=1 * MB)
    out = {}

    def main():
        out["got"] = yield from client.read("/f", 0, 4 * MB)

    sim.run(until=sim.process(main()))
    assert out["got"] == 4 * MB


def test_pfs_striping_recovers_wan_bandwidth():
    from repro.pfs import run_pfs_read
    bws = []
    for n_oss in (1, 4):
        sim = Simulator()
        fabric = build_cluster_of_clusters(sim, n_oss, 1,
                                           wan_delay_us=1000.0)
        bws.append(run_pfs_read(sim, fabric, fabric.cluster_a,
                                fabric.cluster_b[0], file_bytes=8 * MB))
    assert bws[1] > 3 * bws[0]


# ---------------------------------------------------------------------------
# NFS readahead
# ---------------------------------------------------------------------------

def _nfs_client(delay, transport="rdma"):
    from repro.nfs import mount
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=delay)
    server, factory = mount(fabric, fabric.cluster_a[0],
                            fabric.cluster_b[0], transport)
    server.export("/f", 64 * MB)
    return sim, factory


def test_readahead_validation():
    sim, factory = _nfs_client(0.0)

    def main():
        client = yield from factory()
        with pytest.raises(ValueError):
            client.read_file("/f", 1 * MB, 256 * KB, readahead=0).send(None)
        yield sim.timeout(1.0)

    sim.run(until=sim.process(main()))


def test_readahead_reads_everything():
    sim, factory = _nfs_client(0.0)
    out = {}

    def main():
        client = yield from factory()
        out["got"] = yield from client.read_file("/f", 4 * MB, 256 * KB,
                                                 readahead=4)

    sim.run(until=sim.process(main()))
    assert out["got"] == 4 * MB


def test_readahead_hides_wan_latency():
    # use the TCP transport: its per-record cost is RTT-dominated, which
    # is exactly what readahead pipelines away (the RDMA transport is
    # chunk-window-bound at this delay, so readahead gains little there)
    times = {}
    for ra in (1, 8):
        sim, factory = _nfs_client(1000.0, transport="ipoib-rc")
        span = {}

        def main(ra=ra):
            client = yield from factory()
            t0 = sim.now
            yield from client.read_file("/f", 8 * MB, 256 * KB,
                                        readahead=ra)
            span["t"] = sim.now - t0

        sim.run(until=sim.process(main()))
        times[ra] = span["t"]
    assert times[8] < 0.5 * times[1]


# ---------------------------------------------------------------------------
# extra collectives
# ---------------------------------------------------------------------------

def _job(nodes=(2, 2)):
    from repro.mpi import MPIJob
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, *nodes, wan_delay_us=0.0)
    return sim, MPIJob(fabric, ppn=1)


def test_gather_accumulates_at_root():
    from repro.mpi.collectives import gather
    sim, job = _job()

    def prog(proc):
        return (yield from gather(proc, 1 * KB, root=0))

    results = job.run(prog)
    assert results[0] == ("gather", 4 * KB)
    assert results[1] is None


def test_scatter_reaches_everyone():
    from repro.mpi.collectives import scatter
    sim, job = _job()

    def prog(proc):
        return (yield from scatter(proc, 2 * KB, root=0))

    assert job.run(prog) == [("scatter", 2 * KB)] * 4


def test_reduce_scatter_pof2_and_non_pof2():
    from repro.mpi.collectives import reduce_scatter
    for nodes in ((2, 2), (2, 1)):
        sim, job = _job(nodes)

        def prog(proc):
            return (yield from reduce_scatter(proc, 1 * KB))

        results = job.run(prog)
        assert all(r == ("reduce_scatter", 1 * KB) for r in results)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_perftest(capsys):
    from repro.cli import main
    assert main(["perftest", "bw", "--size", "4096", "--iters", "16"]) == 0
    assert "MB/s" in capsys.readouterr().out


def test_cli_netperf_sdp(capsys):
    from repro.cli import main
    assert main(["netperf", "--mode", "sdp", "--bytes",
                 str(2 * MB)]) == 0
    assert "SDP" in capsys.readouterr().out


def test_cli_iozone(capsys):
    from repro.cli import main
    assert main(["iozone", "--transport", "ipoib-ud", "--bytes",
                 str(2 * MB), "--threads", "2"]) == 0
    assert "NFS" in capsys.readouterr().out


def test_cli_experiments(capsys):
    from repro.cli import main
    assert main(["experiments", "table1"]) == 0
    assert "2000 km" in capsys.readouterr().out


def test_cli_rejects_unknown_command():
    from repro.cli import main
    with pytest.raises(SystemExit):
        main(["frobnicate"])
