"""Golden-trace regression tests for the metrics layer.

Each case runs a fixed `wan_pair` workload at one of the paper's
Table-1 delays with a metrics registry attached, serializes the full
registry snapshot to canonical JSON, and asserts **byte-exact** equality
against ``tests/golden/<case>.json``.  Any change to protocol behaviour
— an extra event, a shifted ACK, a different number of in-flight
messages — shows up as a snapshot diff, so a perf PR cannot silently
alter semantics.

Regenerate the golden files after an *intentional* behaviour change::

    PYTHONPATH=src python tests/test_golden_trace.py --regen
"""

import sys
from pathlib import Path

import pytest

from repro.calibration import MB
from repro.core import wan_pair
from repro.core.scenario import PAPER_DELAYS_US
from repro.obs import MetricsRegistry, to_json, use_registry

GOLDEN_DIR = Path(__file__).parent / "golden"

RC_BW_SIZE = 65536
UD_BW_SIZE = 2048  # one IB MTU: the largest legal UD datagram
ITERS = 32


def _run_rc_bw(delay_us: float) -> MetricsRegistry:
    from repro.verbs import perftest
    registry = MetricsRegistry()
    with use_registry(registry):
        s = wan_pair(delay_us)
        perftest.run_send_bw(s.sim, s.a, s.b, RC_BW_SIZE, iters=ITERS,
                             transport="rc")
    return registry


def _run_ud_bw(delay_us: float) -> MetricsRegistry:
    from repro.verbs import perftest
    registry = MetricsRegistry()
    with use_registry(registry):
        s = wan_pair(delay_us)
        perftest.run_send_bw(s.sim, s.a, s.b, UD_BW_SIZE, iters=ITERS,
                             transport="ud")
    return registry


def _run_ipoib_rc(delay_us: float) -> MetricsRegistry:
    from repro.ipoib import netperf
    registry = MetricsRegistry()
    with use_registry(registry):
        s = wan_pair(delay_us)
        netperf.run_stream_bw(s.sim, s.fabric, s.a, s.b, 1 * MB, mode="rc")
    return registry


WORKLOADS = {
    "rc_bw": _run_rc_bw,
    "ud_bw": _run_ud_bw,
    "ipoib_rc": _run_ipoib_rc,
}

CASES = [(work, delay) for work in sorted(WORKLOADS)
         for delay in PAPER_DELAYS_US]


def _case_name(work: str, delay_us: float) -> str:
    return f"{work}_d{int(delay_us)}"


def _snapshot(work: str, delay_us: float) -> str:
    return to_json(WORKLOADS[work](delay_us)) + "\n"


@pytest.mark.parametrize(
    "work,delay_us", CASES,
    ids=[_case_name(w, d) for w, d in CASES])
def test_golden_snapshot(work, delay_us):
    path = GOLDEN_DIR / f"{_case_name(work, delay_us)}.json"
    assert path.exists(), (
        f"missing golden file {path.name}; regenerate with "
        f"`PYTHONPATH=src python tests/test_golden_trace.py --regen`")
    assert _snapshot(work, delay_us) == path.read_text(), (
        f"metrics snapshot for {_case_name(work, delay_us)} diverged from "
        f"{path.name}: protocol behaviour changed (regenerate the golden "
        f"files only if the change is intentional)")


def test_snapshots_are_deterministic():
    """The same workload snapshotted twice is byte-identical."""
    assert _snapshot("rc_bw", 1000.0) == _snapshot("rc_bw", 1000.0)


def _regen() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for work, delay in CASES:
        path = GOLDEN_DIR / f"{_case_name(work, delay)}.json"
        path.write_text(_snapshot(work, delay))
        print(f"wrote {path}")


if __name__ == "__main__":
    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
