"""Unit tests for MPI collectives: correctness and WAN-awareness."""

import pytest

from repro.calibration import KB
from repro.fabric import build_cluster_of_clusters
from repro.mpi import MPIJob
from repro.mpi.collectives import (allgather, allreduce, alltoall, alltoallv,
                                   barrier, bcast, reduce)
from repro.sim import Simulator


def _job(nodes=(2, 2), ppn=1, delay=0.0, placement="block"):
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, nodes[0], nodes[1],
                                       wan_delay_us=delay)
    return sim, MPIJob(fabric, ppn=ppn, placement=placement)


# ---------------------------------------------------------------------------
# broadcast
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("algorithm", ["binomial", "scatter_allgather",
                                       "scatter_rd_allgather",
                                       "hierarchical"])
def test_bcast_delivers_to_all(algorithm):
    sim, job = _job(nodes=(4, 4))

    def prog(proc):
        data = yield from bcast(proc, 4 * KB, root=0, payload="the-data",
                                algorithm=algorithm)
        return data

    results = job.run(prog)
    if algorithm in ("binomial", "hierarchical"):
        assert all(r == "the-data" for r in results)
    else:  # chunked algorithms return a size marker on non-roots
        assert results[0] == "the-data"
        assert all(r is not None for r in results)


def test_bcast_nonzero_root():
    sim, job = _job(nodes=(2, 2))

    def prog(proc):
        data = yield from bcast(proc, 1 * KB, root=3, payload="from3",
                                algorithm="binomial")
        return data

    assert job.run(prog) == ["from3"] * 4


def test_bcast_subgroup_only():
    sim, job = _job(nodes=(2, 2))

    def prog(proc):
        if proc.rank in (0, 2, 3):
            data = yield from bcast(proc, 1 * KB, root=0, payload="grp",
                                    ranks=[0, 2, 3], algorithm="binomial")
            return data
        yield proc.sim.timeout(1.0)
        return "not-in-group"

    assert job.run(prog) == ["grp", "not-in-group", "grp", "grp"]


def test_bcast_unknown_algorithm():
    sim, job = _job()

    def prog(proc):
        yield from bcast(proc, 1 * KB, algorithm="magic")

    with pytest.raises(ValueError):
        job.run(prog)


def test_hierarchical_bcast_crosses_wan_once():
    sim, job = _job(nodes=(4, 4), delay=0.0)
    wan = job.fabric.wan

    def prog(proc):
        yield from bcast(proc, 64 * KB, root=0, algorithm="hierarchical")

    job.run(prog)
    data_frames = [1 for _ in range(1)]
    # exactly one 64K payload crossed (plus control/ACK frames)
    payload_bytes = wan.bytes_carried
    assert 64 * KB <= payload_bytes < 2 * 64 * KB


def test_flat_large_bcast_crosses_wan_more_than_hierarchical():
    sizes = {}
    for algo in ("scatter_allgather", "hierarchical"):
        sim, job = _job(nodes=(4, 4))

        def prog(proc, algo=algo):
            yield from bcast(proc, 64 * KB, root=0, algorithm=algo)

        job.run(prog)
        sizes[algo] = job.fabric.wan.bytes_carried
    assert sizes["scatter_allgather"] > 2 * sizes["hierarchical"]


def test_hierarchical_bcast_faster_at_high_delay():
    from repro.mpi.benchmarks import run_osu_bcast
    res = {}
    for algo in ("auto", "hierarchical"):
        sim = Simulator()
        f = build_cluster_of_clusters(sim, 4, 4, wan_delay_us=1000.0)
        res[algo] = run_osu_bcast(sim, f, 64 * KB, ppn=1, iters=2,
                                  algorithm=algo)
    assert res["hierarchical"] < res["auto"]


# ---------------------------------------------------------------------------
# barrier / reductions
# ---------------------------------------------------------------------------

def test_barrier_synchronizes():
    sim, job = _job(nodes=(2, 2))
    after = {}

    def prog(proc):
        yield from proc.compute(100.0 * (proc.rank + 1))
        yield from barrier(proc)
        after[proc.rank] = sim.now

    job.run(prog)
    # nobody exits the barrier before the slowest rank entered (400us)
    assert min(after.values()) >= 400.0


def test_allreduce_completes_all_ranks():
    sim, job = _job(nodes=(2, 2))

    def prog(proc):
        result = yield from allreduce(proc, 8)
        return result

    assert all(r == ("allreduce", 8) for r in job.run(prog))


def test_allreduce_non_power_of_two():
    sim, job = _job(nodes=(2, 1))  # 3 ranks

    def prog(proc):
        result = yield from allreduce(proc, 64)
        return result

    assert all(r == ("allreduce", 64) for r in job.run(prog))


def test_reduce_root_gets_result():
    sim, job = _job(nodes=(2, 2))

    def prog(proc):
        return (yield from reduce(proc, 1 * KB, root=2))

    results = job.run(prog)
    assert results[2] == ("reduce", 1 * KB)
    assert results[0] is None


# ---------------------------------------------------------------------------
# alltoall / allgather
# ---------------------------------------------------------------------------

def test_alltoall_all_pairs_exchange():
    sim, job = _job(nodes=(2, 2))
    counts = {}

    def prog(proc):
        before = proc.messages_sent
        yield from alltoall(proc, 4 * KB)
        counts[proc.rank] = proc.messages_sent - before

    job.run(prog)
    # each rank sent one data message to each of the 3 peers (eager 4K)
    assert all(c == 3 for c in counts.values())


def test_alltoallv_sizes_by_function():
    sim, job = _job(nodes=(2, 2))

    def size_fn(src, dst):
        return 1024 * (src + 1) if src != dst else 0

    def prog(proc):
        yield from alltoallv(proc, size_fn)
        return True

    assert all(job.run(prog))


def test_alltoall_concurrent_is_delay_tolerant():
    """Posting everything up front makes alltoall bandwidth-bound."""
    times = []
    for delay in (0.0, 1000.0):
        sim, job = _job(nodes=(2, 2), delay=delay)

        def prog(proc):
            t0 = sim.now
            yield from alltoall(proc, 512 * KB)
            return sim.now - t0

        times.append(max(job.run(prog)))
    # one RTT of startup cost, not one RTT per peer
    assert times[1] < times[0] + 3 * 2 * 1000.0


def test_allgather_completes():
    sim, job = _job(nodes=(2, 2))

    def prog(proc):
        yield from allgather(proc, 8 * KB)
        return True

    assert all(job.run(prog))


def test_collective_on_rank_outside_group_raises():
    sim, job = _job(nodes=(2, 2))

    def prog(proc):
        if proc.rank == 0:
            yield from bcast(proc, 1024, root=1, ranks=[1, 2],
                             algorithm="binomial")
        else:
            yield proc.sim.timeout(1.0)

    with pytest.raises(ValueError):
        job.run(prog)


def test_consecutive_collectives_do_not_crosstalk():
    sim, job = _job(nodes=(2, 2))

    def prog(proc):
        a = yield from bcast(proc, 1 * KB, root=0, payload="first",
                             algorithm="binomial")
        yield from barrier(proc)
        b = yield from bcast(proc, 1 * KB, root=1, payload="second",
                             algorithm="binomial")
        return (a, b)

    assert job.run(prog) == [("first", "second")] * 4
