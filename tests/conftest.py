"""Shared pytest configuration: a per-test wall-clock timeout.

The fault-injection suite exercises recovery paths that, when broken,
manifest as *hangs* (a retransmission pump that never fires, an RPC
retry loop that never times out).  CI must turn those into failures,
and ``pytest-timeout`` is not part of the pinned toolchain — so a
minimal ``SIGALRM`` alarm wraps every test instead.

The default budget is generous (no tier-1 test takes more than a few
seconds); override with the ``REPRO_TEST_TIMEOUT_S`` environment
variable, ``0`` disabling the alarm entirely.  On platforms without
``SIGALRM`` (or off the main thread) tests simply run unbounded, as
before.

The distributed-backend suite (``tests/test_exp_backends.py``) adds a
second failure mode the alarm alone cannot always convert: a blocking
socket operation on a thread *other than* the main one (worker threads,
heartbeats) never feels ``SIGALRM``.  So the same budget is also
installed as the process-wide default socket timeout — any socket a
test (or code under test) creates without an explicit timeout gives up
with ``socket.timeout`` before the alarm would have fired, instead of
wedging a non-main thread forever.
"""

import os
import signal
import socket
import threading

import pytest

DEFAULT_TIMEOUT_S = 120.0


def _timeout_s() -> float:
    try:
        return float(os.environ.get("REPRO_TEST_TIMEOUT_S", ""))
    except ValueError:
        return DEFAULT_TIMEOUT_S


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    budget = _timeout_s()
    # Bound blocking socket ops too (threads never see SIGALRM): any
    # socket created without an explicit timeout inherits the budget.
    old_socket_default = socket.getdefaulttimeout()
    if budget > 0:
        socket.setdefaulttimeout(budget)
    usable = (budget > 0 and hasattr(signal, "SIGALRM")
              and hasattr(signal, "setitimer")
              and threading.current_thread() is threading.main_thread())
    if not usable:
        try:
            yield
        finally:
            socket.setdefaulttimeout(old_socket_default)
        return

    def _expired(signum, frame):
        pytest.fail(f"test exceeded the {budget:g}s wall-clock budget "
                    f"(REPRO_TEST_TIMEOUT_S to adjust)", pytrace=False)

    old_handler = signal.signal(signal.SIGALRM, _expired)
    old_timer = signal.setitimer(signal.ITIMER_REAL, budget)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, *old_timer)
        signal.signal(signal.SIGALRM, old_handler)
        socket.setdefaulttimeout(old_socket_default)
