"""Shared pytest configuration: a per-test wall-clock timeout.

The fault-injection suite exercises recovery paths that, when broken,
manifest as *hangs* (a retransmission pump that never fires, an RPC
retry loop that never times out).  CI must turn those into failures,
and ``pytest-timeout`` is not part of the pinned toolchain — so a
minimal ``SIGALRM`` alarm wraps every test instead.

The default budget is generous (no tier-1 test takes more than a few
seconds); override with the ``REPRO_TEST_TIMEOUT_S`` environment
variable, ``0`` disabling the alarm entirely.  On platforms without
``SIGALRM`` (or off the main thread) tests simply run unbounded, as
before.
"""

import os
import signal
import threading

import pytest

DEFAULT_TIMEOUT_S = 120.0


def _timeout_s() -> float:
    try:
        return float(os.environ.get("REPRO_TEST_TIMEOUT_S", ""))
    except ValueError:
        return DEFAULT_TIMEOUT_S


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    budget = _timeout_s()
    usable = (budget > 0 and hasattr(signal, "SIGALRM")
              and hasattr(signal, "setitimer")
              and threading.current_thread() is threading.main_thread())
    if not usable:
        yield
        return

    def _expired(signum, frame):
        pytest.fail(f"test exceeded the {budget:g}s wall-clock budget "
                    f"(REPRO_TEST_TIMEOUT_S to adjust)", pytrace=False)

    old_handler = signal.signal(signal.SIGALRM, _expired)
    old_timer = signal.setitimer(signal.ITIMER_REAL, budget)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, *old_timer)
        signal.signal(signal.SIGALRM, old_handler)
