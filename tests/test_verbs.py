"""Unit tests for the verbs layer: QPs, CQs, RC reliability, UD semantics."""

import pytest

from repro.calibration import DEFAULT_PROFILE
from repro.fabric import build_back_to_back, build_cluster_of_clusters
from repro.sim import Simulator
from repro.verbs import (MemoryRegion, Opcode, ProtectionDomain, QPState,
                         RecvWR, SendWR, VerbsContext, WCStatus,
                         create_connected_rc_pair, create_ud_pair, perftest)


@pytest.fixture()
def b2b():
    sim = Simulator()
    fabric = build_back_to_back(sim)
    return sim, fabric.nodes[0], fabric.nodes[1]


# ---------------------------------------------------------------------------
# basic RC send/recv
# ---------------------------------------------------------------------------

def test_rc_send_delivers_payload(b2b):
    sim, a, b = b2b
    qp_a, qp_b = create_connected_rc_pair(a, b)
    qp_b.post_recv(RecvWR(4096))
    qp_a.send(1000, payload={"hello": "world"})

    def receiver():
        wc = yield qp_b.recv_cq.wait()
        return wc

    wc = sim.run(until=sim.process(receiver()))
    assert wc.ok and wc.byte_len == 1000
    assert wc.payload == {"hello": "world"}
    assert wc.opcode is Opcode.RECV


def test_rc_sender_gets_completion_after_ack(b2b):
    sim, a, b = b2b
    qp_a, qp_b = create_connected_rc_pair(a, b)
    qp_b.post_recv(RecvWR(4096))
    wr = qp_a.send(100)

    def waiter():
        wc = yield qp_a.send_cq.wait()
        return wc

    wc = sim.run(until=sim.process(waiter()))
    assert wc.ok and wc.wr_id == wr.wr_id and wc.opcode is Opcode.SEND


def test_rc_messages_delivered_in_order(b2b):
    sim, a, b = b2b
    qp_a, qp_b = create_connected_rc_pair(a, b)
    for _ in range(20):
        qp_b.post_recv(RecvWR(4096))
    for i in range(20):
        qp_a.send(64, payload=i)

    def receiver():
        got = []
        for _ in range(20):
            wc = yield qp_b.recv_cq.wait()
            got.append(wc.payload)
        return got

    assert sim.run(until=sim.process(receiver())) == list(range(20))


def test_rc_send_before_connect_raises(b2b):
    sim, a, _ = b2b
    ctx = VerbsContext(a)
    qp = ctx.create_rc_qp(ctx.create_cq(), ctx.create_cq())
    with pytest.raises(RuntimeError):
        qp.send(10)


def test_rc_double_connect_raises(b2b):
    sim, a, b = b2b
    qp_a, qp_b = create_connected_rc_pair(a, b)
    with pytest.raises(RuntimeError):
        qp_a.connect(qp_b.hca.lid, qp_b.qpn)


def test_rc_recv_buffer_too_small_is_an_error(b2b):
    sim, a, b = b2b
    qp_a, qp_b = create_connected_rc_pair(a, b)
    qp_b.post_recv(RecvWR(10))
    qp_a.send(100)
    with pytest.raises(RuntimeError, match="length error"):
        sim.run()


def test_rc_data_waits_for_posted_recv(b2b):
    """Arrival before a receive is posted is buffered, not lost."""
    sim, a, b = b2b
    qp_a, qp_b = create_connected_rc_pair(a, b)
    qp_a.send(100, payload="early")

    def late_poster():
        yield sim.timeout(50.0)
        qp_b.post_recv(RecvWR(4096))
        wc = yield qp_b.recv_cq.wait()
        return (wc.payload, sim.now >= 50.0)

    assert sim.run(until=sim.process(late_poster())) == ("early", True)


def test_rc_window_limits_inflight(b2b):
    sim, a, b = b2b
    qp_a, qp_b = create_connected_rc_pair(a, b, send_window=4)
    # no receives posted at b: data buffers at the receiver QP, but ACKs
    # only flow once messages are *delivered*, so the sender stalls at 4.
    for i in range(10):
        qp_a.send(1024)
    sim.run(until=1000.0)  # well before the retransmission timeout
    assert qp_a.inflight == 4
    assert qp_a.messages_sent == 4


def test_rc_window_opens_on_ack(b2b):
    sim, a, b = b2b
    qp_a, qp_b = create_connected_rc_pair(a, b, send_window=2)
    for _ in range(6):
        qp_b.post_recv(RecvWR(4096))
    for _ in range(6):
        qp_a.send(512)

    def drain():
        for _ in range(6):
            yield qp_b.recv_cq.wait()

    sim.run(until=sim.process(drain()))
    sim.run()
    assert qp_a.inflight == 0
    assert qp_a.messages_sent == 6


# ---------------------------------------------------------------------------
# RDMA
# ---------------------------------------------------------------------------

def test_rdma_write_is_silent_at_responder(b2b):
    sim, a, b = b2b
    qp_a, qp_b = create_connected_rc_pair(a, b)
    qp_a.rdma_write(4096)

    def waiter():
        wc = yield qp_a.send_cq.wait()
        return wc

    wc = sim.run(until=sim.process(waiter()))
    assert wc.ok and wc.opcode is Opcode.RDMA_WRITE
    assert len(qp_b.recv_cq) == 0  # no responder-side completion


def test_rdma_write_with_imm_raises_recv_completion(b2b):
    sim, a, b = b2b
    qp_a, qp_b = create_connected_rc_pair(a, b)
    qp_b.post_recv(RecvWR(8192))
    qp_a.rdma_write(8192, payload="bulk", imm=0xCAFE)

    def receiver():
        wc = yield qp_b.recv_cq.wait()
        return wc

    wc = sim.run(until=sim.process(receiver()))
    assert wc.ok and wc.imm == 0xCAFE and wc.payload == "bulk"


def test_rdma_read_completes_with_data_rtt(b2b):
    sim, a, b = b2b
    qp_a, qp_b = create_connected_rc_pair(a, b)
    qp_a.rdma_read(65536)

    def waiter():
        wc = yield qp_a.send_cq.wait()
        return (wc, sim.now)

    wc, t = sim.run(until=sim.process(waiter()))
    assert wc.ok and wc.opcode is Opcode.RDMA_READ
    assert t > 65536 / DEFAULT_PROFILE.ddr_rate  # response carried the data


def test_rdma_read_then_send_complete_in_order(b2b):
    sim, a, b = b2b
    qp_a, qp_b = create_connected_rc_pair(a, b)
    qp_b.post_recv(RecvWR(64))
    qp_a.rdma_read(1024 * 1024)
    qp_a.send(64)

    def waiter():
        first = yield qp_a.send_cq.wait()
        second = yield qp_a.send_cq.wait()
        return (first.opcode, second.opcode)

    ops = sim.run(until=sim.process(waiter()))
    assert ops == (Opcode.RDMA_READ, Opcode.SEND)


# ---------------------------------------------------------------------------
# UD semantics
# ---------------------------------------------------------------------------

def test_ud_send_completes_locally_and_delivers(b2b):
    sim, a, b = b2b
    qp_a, qp_b = create_ud_pair(a, b)
    qp_b.post_recv(RecvWR(2048))
    qp_a.send((b.hca.lid, qp_b.qpn), 2048, payload="dgram")

    def receiver():
        wc = yield qp_b.recv_cq.wait()
        return wc

    wc = sim.run(until=sim.process(receiver()))
    assert wc.payload == "dgram"
    assert len(qp_a.send_cq) == 1  # local completion


def test_ud_rejects_messages_above_mtu(b2b):
    sim, a, b = b2b
    qp_a, qp_b = create_ud_pair(a, b)
    with pytest.raises(ValueError, match="MTU"):
        qp_a.send((b.hca.lid, qp_b.qpn), DEFAULT_PROFILE.ib_mtu + 1)


def test_ud_requires_address_handle(b2b):
    sim, a, b = b2b
    qp_a, _ = create_ud_pair(a, b)
    with pytest.raises(ValueError, match="remote"):
        qp_a.post_send(SendWR(100))


def test_ud_drops_without_posted_recv(b2b):
    sim, a, b = b2b
    qp_a, qp_b = create_ud_pair(a, b)
    qp_a.send((b.hca.lid, qp_b.qpn), 100)
    sim.run()
    assert qp_b.recv_dropped == 1
    assert len(qp_b.recv_cq) == 0


# ---------------------------------------------------------------------------
# reliability: retransmission and QP error state
# ---------------------------------------------------------------------------

def _lossy_once(link):
    """Make the a->b direction of a link drop its next data frame."""
    half = link._ab
    orig_put = half.put
    state = {"dropped": False}

    def put(frame):
        if not state["dropped"] and frame.kind == "rc_data":
            state["dropped"] = True
            return  # swallow the frame
        return orig_put(frame)

    half.put = put


def test_rc_retransmits_after_loss():
    profile = DEFAULT_PROFILE.with_overrides(rc_retransmit_timeout_us=100.0)
    sim = Simulator()
    fabric = build_back_to_back(sim, profile=profile)
    a, b = fabric.nodes
    qp_a, qp_b = create_connected_rc_pair(a, b)
    _lossy_once(fabric.links[0])
    qp_b.post_recv(RecvWR(4096))
    qp_a.send(256, payload="retry me")

    def receiver():
        wc = yield qp_b.recv_cq.wait()
        return (wc.payload, sim.now)

    payload, t = sim.run(until=sim.process(receiver()))
    assert payload == "retry me"
    assert t > 100.0  # needed at least one timeout period
    assert qp_a.retransmissions >= 1


def test_rc_duplicate_delivery_suppressed():
    """A spurious retransmission must not deliver the message twice."""
    profile = DEFAULT_PROFILE.with_overrides(rc_retransmit_timeout_us=20.0)
    sim = Simulator()
    fabric = build_back_to_back(sim, profile=profile)
    a, b = fabric.nodes
    qp_a, qp_b = create_connected_rc_pair(a, b)
    for _ in range(4):
        qp_b.post_recv(RecvWR(65536))
    for i in range(4):
        qp_a.send(65536, payload=i)  # 32us+ serialization >> 2us timeout

    def receiver():
        got = []
        for _ in range(4):
            wc = yield qp_b.recv_cq.wait()
            got.append(wc.payload)
        return got

    got = sim.run(until=sim.process(receiver()))
    sim.run(until=sim.now + 1000.0)
    assert got == [0, 1, 2, 3]
    assert len(qp_b.recv_cq) == 0  # nothing delivered twice
    assert qp_a.retransmissions >= 1


def test_rc_enters_error_after_retry_budget():
    profile = DEFAULT_PROFILE.with_overrides(rc_retransmit_timeout_us=10.0,
                                             rc_retry_count=2)
    sim = Simulator()
    fabric = build_back_to_back(sim, profile=profile)
    a, b = fabric.nodes
    qp_a, qp_b = create_connected_rc_pair(a, b)
    qp_b.close()  # peer vanishes: frames to it are dropped by the HCA
    qp_a.send(128)

    def waiter():
        wc = yield qp_a.send_cq.wait()
        return wc

    wc = sim.run(until=sim.process(waiter()))
    assert wc.status is WCStatus.RETRY_EXC_ERR
    assert qp_a.state is QPState.ERROR


def test_rc_flushes_backlog_in_error_state():
    profile = DEFAULT_PROFILE.with_overrides(rc_retransmit_timeout_us=10.0,
                                             rc_retry_count=1)
    sim = Simulator()
    fabric = build_back_to_back(sim, profile=profile)
    a, b = fabric.nodes
    qp_a, qp_b = create_connected_rc_pair(a, b, send_window=1)
    qp_b.close()
    for _ in range(3):
        qp_a.send(128)

    def waiter():
        statuses = []
        for _ in range(3):
            wc = yield qp_a.send_cq.wait()
            statuses.append(wc.status)
        return statuses

    statuses = sim.run(until=sim.process(waiter()))
    assert statuses[0] is WCStatus.RETRY_EXC_ERR
    assert all(s in (WCStatus.RETRY_EXC_ERR, WCStatus.WR_FLUSH_ERR)
               for s in statuses)


# ---------------------------------------------------------------------------
# CQ / MR bookkeeping
# ---------------------------------------------------------------------------

def test_cq_poll_nonblocking(b2b):
    sim, a, b = b2b
    qp_a, qp_b = create_connected_rc_pair(a, b)
    assert qp_a.send_cq.poll() == []
    qp_b.post_recv(RecvWR(256))
    qp_a.send(256)
    sim.run()
    wcs = qp_b.recv_cq.poll()
    assert len(wcs) == 1 and wcs[0].byte_len == 256


def test_mr_bounds_checking():
    pd = ProtectionDomain()
    mr = MemoryRegion(pd, 4096)
    mr.check(0, 4096)
    with pytest.raises(ValueError):
        mr.check(1, 4096)
    with pytest.raises(ValueError):
        MemoryRegion(pd, 0)


def test_mr_keys_unique():
    pd = ProtectionDomain()
    keys = {MemoryRegion(pd, 16).lkey for _ in range(10)}
    assert len(keys) == 10


# ---------------------------------------------------------------------------
# perftest sanity
# ---------------------------------------------------------------------------

def test_perftest_latency_scales_with_size(b2b):
    sim, a, b = b2b
    small = perftest.run_send_lat(sim, a, b, 2, iters=10)
    large = perftest.run_send_lat(sim, a, b, 65536, iters=10)
    assert large > small + 10.0  # serialization dominates


def test_perftest_bw_requires_two_iters(b2b):
    sim, a, b = b2b
    with pytest.raises(ValueError):
        perftest.run_send_bw(sim, a, b, 1024, iters=1)


def test_perftest_unknown_transport(b2b):
    sim, a, b = b2b
    with pytest.raises(ValueError):
        perftest.run_send_bw(sim, a, b, 1024, transport="xrc")


def test_bidir_roughly_double_unidir():
    sim = Simulator()
    f = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=0.0)
    a, b = f.cluster_a[0], f.cluster_b[0]
    uni = perftest.run_send_bw(sim, a, b, 1024 * 1024, iters=24)
    bidir = perftest.run_bidir_bw(sim, a, b, 1024 * 1024, iters=24)
    assert bidir == pytest.approx(2 * uni, rel=0.1)


def test_write_bw_reaches_wire_speed():
    sim = Simulator()
    f = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=0.0)
    bw = perftest.run_write_bw(sim, f.cluster_a[0], f.cluster_b[0],
                               size=1024 * 1024, iters=24)
    assert bw > 0.9 * DEFAULT_PROFILE.sdr_rate
