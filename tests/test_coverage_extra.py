"""Additional behavioural coverage: CQ semantics, TCP recovery hooks,
subgroup collectives, SDP thresholds, experiment flags."""

import pytest

from repro.calibration import DEFAULT_PROFILE, KB, MB
from repro.core import wan_clusters, wan_pair
from repro.fabric import build_back_to_back, build_cluster_of_clusters
from repro.mpi import MPIJob
from repro.sim import Simulator
from repro.verbs import RecvWR, create_connected_rc_pair


# ---------------------------------------------------------------------------
# CQ semantics
# ---------------------------------------------------------------------------

def test_cq_poll_respects_max_entries():
    sim = Simulator()
    fabric = build_back_to_back(sim)
    qa, qb = create_connected_rc_pair(*fabric.nodes)
    for _ in range(6):
        qb.post_recv(RecvWR(1 << 20))
    for _ in range(6):
        qa.send(64)
    sim.run(until=1000.0)
    first = qb.recv_cq.poll(max_entries=2)
    rest = qb.recv_cq.poll(max_entries=16)
    assert len(first) == 2 and len(rest) == 4


def test_cq_counts_completions():
    sim = Simulator()
    fabric = build_back_to_back(sim)
    qa, qb = create_connected_rc_pair(*fabric.nodes)
    for _ in range(3):
        qb.post_recv(RecvWR(1 << 20))
    for _ in range(3):
        qa.send(64)
    sim.run(until=1000.0)
    assert qb.recv_cq.completions_seen == 3
    assert qa.send_cq.completions_seen == 3


def test_multiple_blocking_waiters_each_get_one():
    sim = Simulator()
    fabric = build_back_to_back(sim)
    qa, qb = create_connected_rc_pair(*fabric.nodes)
    for _ in range(2):
        qb.post_recv(RecvWR(1 << 20))
    got = []

    def waiter(name):
        wc = yield qb.recv_cq.wait()
        got.append((name, wc.payload))

    sim.process(waiter("w1"))
    sim.process(waiter("w2"))
    qa.send(64, payload="a")
    qa.send(64, payload="b")
    sim.run(until=1000.0)
    assert sorted(p for _, p in got) == ["a", "b"]


# ---------------------------------------------------------------------------
# TCP loss-recovery hook (cc.on_loss is exercised even though the
# default fabric is lossless)
# ---------------------------------------------------------------------------

def test_cc_loss_then_regrowth():
    from repro.tcp import CongestionControl
    cc = CongestionControl(mss=1000, init_segments=64)
    cc.on_loss()
    assert not cc.in_slow_start  # ssthresh now equals cwnd
    before = cc.cwnd
    cc.on_ack(int(cc.cwnd))
    assert before < cc.cwnd < before + 1001  # linear growth after loss


def test_tcp_connect_returns_distinct_ports():
    from repro.ipoib.interface import IPoIBNetwork
    from repro.tcp import TcpStack
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, 1, 1)
    net = IPoIBNetwork(fabric, mode="ud")
    sa = TcpStack(net.add_interface(fabric.cluster_a[0]))
    sb = TcpStack(net.add_interface(fabric.cluster_b[0]))
    sb.listen(80)
    out = []

    def client():
        s1 = yield sa.connect(sb.lid, 80)
        s2 = yield sa.connect(sb.lid, 80)
        out.extend([s1.local_port, s2.local_port])

    sim.run(until=sim.process(client()))
    assert len(set(out)) == 2


# ---------------------------------------------------------------------------
# collectives on subgroups / hierarchical pieces
# ---------------------------------------------------------------------------

def test_hierarchical_allreduce_on_subgroup():
    from repro.core.hierarchical import hierarchical_allreduce
    s = wan_clusters(2, 2, 10.0)
    job = MPIJob(s.fabric, ppn=1, placement="block")
    group = [0, 2, 3]

    def prog(proc):
        if proc.rank in group:
            return (yield from hierarchical_allreduce(proc, 4 * KB,
                                                      ranks=group))
        yield proc.sim.timeout(1.0)
        return None

    results = job.run(prog)
    assert [results[r] for r in group] == [("allreduce", 4 * KB)] * 3


def test_reduce_on_subgroup_nonmember_untouched():
    from repro.mpi.collectives import reduce
    s = wan_clusters(2, 2, 0.0)
    job = MPIJob(s.fabric, ppn=1)

    def prog(proc):
        if proc.rank in (1, 2):
            return (yield from reduce(proc, 128, root=2, ranks=[1, 2]))
        yield proc.sim.timeout(1.0)
        return "outside"

    results = job.run(prog)
    assert results[2] == ("reduce", 128)
    assert results[0] == "outside"


def test_bcast_single_rank_group_is_noop():
    from repro.mpi.collectives import bcast
    s = wan_clusters(1, 1, 0.0)
    job = MPIJob(s.fabric, ppn=1)

    def prog(proc):
        if proc.rank == 0:
            data = yield from bcast(proc, 1 * KB, root=0, payload="solo",
                                    ranks=[0], algorithm="binomial")
            return data
        yield proc.sim.timeout(1.0)

    assert job.run(prog)[0] == "solo"


# ---------------------------------------------------------------------------
# SDP path selection
# ---------------------------------------------------------------------------

def test_sdp_bcopy_vs_zcopy_threshold_behaviour():
    """Sends below the zcopy threshold pay per-byte copy time; above it
    only a fixed pin cost — visible as a latency discontinuity."""
    from repro.sdp import SdpStack
    profile = DEFAULT_PROFILE
    below = profile.sdp_zcopy_threshold - 1024
    above = profile.sdp_zcopy_threshold

    def one_transfer(nbytes):
        sim = Simulator()
        fabric = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=0.0)
        sa = SdpStack(fabric.cluster_a[0], fabric)
        sb = SdpStack(fabric.cluster_b[0], fabric)
        listener = sb.listen(80)
        span = {}

        def server():
            sock = yield listener.accept()
            t0 = sim.now
            yield sock.recv_bytes(nbytes)
            span["t"] = sim.now - t0

        def client():
            sock = yield sa.connect(sb.node.lid, 80)
            sock.send(nbytes)

        d = sim.process(server())
        sim.process(client())
        sim.run(until=d)
        return span["t"]

    t_below, t_above = one_transfer(below), one_transfer(above)
    # the larger zcopy message must not be slower than the smaller
    # bcopy one: copy costs dominate below the threshold
    assert t_above <= t_below * 1.05


# ---------------------------------------------------------------------------
# experiments: quick vs full flags
# ---------------------------------------------------------------------------

def test_full_sweep_is_superset_for_fig04a():
    from repro.core import run_experiment
    quick = run_experiment("fig04a", quick=True)
    full = run_experiment("fig04a", quick=False)
    assert len(full.rows) > len(quick.rows)
    assert quick.columns == full.columns


def test_experiments_cli_filter(capsys):
    from repro.core.experiments import main
    main(["table1", "fig03"])
    out = capsys.readouterr().out
    assert "table1" in out and "fig03" in out and "fig05a" not in out


# ---------------------------------------------------------------------------
# NFS getattr over both transports
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("transport", ["rdma", "ipoib-ud"])
def test_nfs_getattr(transport):
    from repro.nfs import mount
    s = wan_pair(10.0)
    server, factory = mount(s.fabric, s.a, s.b, transport)
    server.export("/f", 12345)
    out = {}

    def main():
        client = yield from factory()
        out["size"] = yield from client.getattr("/f")

    s.sim.run(until=s.sim.process(main()))
    assert out["size"] == 12345


# ---------------------------------------------------------------------------
# pfs layout round-robin over many stripes
# ---------------------------------------------------------------------------

def test_pfs_round_robin_distribution_is_balanced():
    from repro.pfs import StripeLayout
    layout = StripeLayout("/f", size=64 * MB, stripe_size=1 * MB,
                          oss_indices=(0, 1, 2, 3))
    counts = {}
    for stripe in range(64):
        oss, _ = layout.locate(stripe * 1 * MB)
        counts[oss] = counts.get(oss, 0) + 1
    assert set(counts.values()) == {16}  # perfectly balanced
