"""GOOD: iterates a copy, or collects then applies."""


def drain(waiters):
    for req in list(waiters):
        if req.done:
            waiters.remove(req)


def expire(self):
    stale = [k for k, v in self.pending.items() if v.stale]
    for key in stale:
        del self.pending[key]
