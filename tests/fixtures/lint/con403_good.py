"""CON403 good fixture: acquire immediately followed by try/finally
release (and the preferred ``with`` form alongside)."""

import threading

_registry_lock = threading.Lock()
_registry = {}


def register(name, value):
    _registry_lock.acquire()
    try:
        _registry[name] = value
    finally:
        _registry_lock.release()


def lookup(name):
    with _registry_lock:
        return _registry.get(name)
