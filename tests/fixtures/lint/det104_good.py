"""GOOD: orders by a stable sequence number; identity *equality* is
fine (it is not an ordering)."""


def stable_order(events):
    return sorted(events, key=lambda e: e.seq)


def same_object(a, b):
    return id(a) == id(b)
