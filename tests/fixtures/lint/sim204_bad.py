"""BAD: resizes containers while iterating them."""


def drain(waiters):
    for req in waiters:
        if req.done:
            waiters.remove(req)


def expire(self):
    for key in self.pending:
        if self.pending[key].stale:
            del self.pending[key]
