"""GOOD: processes yield event expressions; the guarded unreachable
yield that keeps a non-waiting body a generator is tolerated."""


def driver(sim, qp):
    def client():
        yield sim.timeout(3.0)
        qp.send(1)
        yield qp.recv_cq.wait()

    def sender():
        qp.send(2)
        if False:  # pragma: no cover - keeps this a generator
            yield

    sim.process(sender(), name="sender")
    return sim.process(client(), name="client")
