"""Fixture kernel for the missing-twin tree."""


class Simulator:
    def run(self, until=None):
        return until
