"""Fixture legacy shims that forgot about the fabric pump module."""

from contextlib import contextmanager

from .core import Simulator


def _legacy_run(self, until=None):
    return until


@contextmanager
def legacy_dispatch():
    saved = Simulator.run
    Simulator.run = _legacy_run
    try:
        yield
    finally:
        Simulator.run = saved
