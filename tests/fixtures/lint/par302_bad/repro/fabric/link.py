"""Fixture pump module, rotten two ways: it declares a fast-pump
switch that legacy_dispatch never flips, and its generator-mode twin
was deleted when the callback pump landed."""

_FAST_PUMP = True


class HalfLink:
    def _next_frame(self):
        pass
