"""WIRE good fixture protocol: vocabulary, fixtures, version gates."""

PROTOCOL_VERSION = 2

MESSAGE_TYPES = frozenset({"HELLO", "WELCOME", "RESULT", "BYE"})

FAIL_CLOSED_FIXTURES = {
    "HELLO": b'{"type":"HELLO","proto":',
    "WELCOME": b'{"type":"WELCOME","proto":',
    "RESULT": b'{"type":"RESULT","payload":',
    "BYE": b'{"type":"BYE","error":"',
}

VERSION_GATED_FIELDS = {"resume": 2}


class ProtocolError(Exception):
    pass


def send_frame(sock, message):
    raise NotImplementedError


def recv_frame(sock):
    raise NotImplementedError


def decode_body(raw):
    raise NotImplementedError


def check_versions(welcome):
    if welcome.get("proto") != PROTOCOL_VERSION:
        raise ProtocolError("protocol version mismatch")
    return welcome


def valid_key(value):
    text = str(value)
    if not text.isalnum():
        raise ProtocolError(f"bad key {text!r}")
    return text
