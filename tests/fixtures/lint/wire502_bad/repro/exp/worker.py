"""WIRE502 bad fixture worker: the frame dispatch falls through
without a raise — unknown frames are silently dropped."""

from .protocol import (PROTOCOL_VERSION, ProtocolError, check_versions,
                       recv_frame, send_frame)


def run(sock, payload):
    send_frame(sock, {"type": "HELLO", "proto": PROTOCOL_VERSION})
    welcome = check_versions(recv_frame(sock))
    resume = welcome.get("resume")
    send_frame(sock, {"type": "RESULT", "payload": payload,
                      "resume": resume})
    while True:
        message = recv_frame(sock)
        mtype = message.get("type")
        if mtype == "WELCOME":
            continue
        if mtype == "BYE":
            return message.get("error")
        continue
