"""CON401 bad fixture: a relay thread and the main thread both write
``self._frames`` with no common lock guard."""

import threading


class Relay:
    def __init__(self):
        self._lock = threading.Lock()
        self._frames = []
        self._thread = threading.Thread(target=self._pump, daemon=True)

    def start(self):
        self._thread.start()

    def _pump(self):
        while True:
            self._frames.append(b"frame")

    def drain(self):
        out = list(self._frames)
        self._frames = []
        return out
