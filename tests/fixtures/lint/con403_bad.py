"""CON403 bad fixture: a bare ``acquire()`` with the release left to
luck — any raise in between wedges every other thread forever."""

import threading

_registry_lock = threading.Lock()
_registry = {}


def register(name, value):
    _registry_lock.acquire()
    _registry[name] = value
    _registry_lock.release()
