"""BAD: hands a generator function to call_soon/call_at — the callback
creates a suspended generator and its body never executes."""


class Pump:
    def __init__(self, sim):
        self.sim = sim
        sim.call_soon(self._pump)

    def _pump(self):
        while True:
            entry = yield self.queue.get()
            self.deliver(entry)


def arm_timer(sim, pump):
    sim.call_at(5.0, pump._pump)
