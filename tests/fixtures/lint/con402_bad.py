"""CON402 bad fixture: a blocking socket send inside the critical
section — every contender now waits on the network."""

import threading
import time


class Sender:
    def __init__(self, sock):
        self._lock = threading.Lock()
        self._sock = sock
        self._seq = 0

    def send(self, frame):
        with self._lock:
            self._sock.sendall(frame)
            self._seq += 1

    def backoff(self):
        with self._lock:
            time.sleep(0.5)
