"""BAD: hot-path record subclasses without __slots__ regrow a
per-instance __dict__."""


class Event:
    __slots__ = ("sim", "callbacks")


class CompletionEvent(Event):
    def __init__(self, sim, wr_id):
        self.wr_id = wr_id
