"""BAD: reads the wall clock inside simulation code."""

import time
from datetime import datetime


def stamp_event(record):
    record.host_time = time.time()
    record.created = datetime.now()
    return record
