"""CON404 good fixture: the daemon watchdog only reads process state
and exits — no module global is mutated from thread context."""

import os
import threading
from concurrent.futures import ProcessPoolExecutor

_PARENT = {"pid": 0}


def start(workers):
    _PARENT["pid"] = os.getpid()
    pool = ProcessPoolExecutor(max_workers=workers)

    def watch():
        while os.getppid() == _PARENT["pid"]:
            pass
        os._exit(2)

    threading.Thread(target=watch, daemon=True).start()
    return pool
