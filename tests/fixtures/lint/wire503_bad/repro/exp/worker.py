"""WIRE good fixture worker: sends HELLO/RESULT, dispatches
WELCOME/BYE fail-closed, reads gated fields behind check_versions."""

from .protocol import (PROTOCOL_VERSION, ProtocolError, check_versions,
                       recv_frame, send_frame)


def run(sock, payload):
    send_frame(sock, {"type": "HELLO", "proto": PROTOCOL_VERSION})
    welcome = check_versions(recv_frame(sock))
    resume = welcome.get("resume")
    send_frame(sock, {"type": "RESULT", "payload": payload,
                      "resume": resume})
    while True:
        message = recv_frame(sock)
        mtype = message.get("type")
        if mtype == "WELCOME":
            continue
        if mtype == "BYE":
            return message.get("error")
        raise ProtocolError(f"unexpected frame {mtype!r}")
