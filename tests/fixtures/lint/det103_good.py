"""GOOD: every draw goes through a named registry stream object."""


def jitter(registry, base):
    rng = registry.stream("link.jitter")
    return base + rng.uniform(0.0, 1.0)
