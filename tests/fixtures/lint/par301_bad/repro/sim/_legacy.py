"""Fixture legacy shims, intentionally rotten two ways:

* ``Simulator.call_later`` is patched but the kernel defines no such
  method (the fast path was renamed and the shim was not);
* ``_legacy_arm`` dropped the ``value`` parameter the real ``arm``
  still has.
"""

from contextlib import contextmanager

from .core import NORMAL, ReusableTimeout, Simulator


def _legacy_call_at(self, delay, fn, arg=None, priority=NORMAL,
                    cancellable=True):
    return fn


def _legacy_arm(self, delay):
    return self


def _legacy_run(self, until=None):
    return until


@contextmanager
def legacy_dispatch():
    from ..fabric import link as _link

    saved = (ReusableTimeout.arm, Simulator.run, _link._FAST_PUMP)
    Simulator.call_later = _legacy_call_at
    ReusableTimeout.arm = _legacy_arm
    Simulator.run = _legacy_run
    _link._FAST_PUMP = False
    try:
        yield
    finally:
        (ReusableTimeout.arm, Simulator.run, _link._FAST_PUMP) = saved
