"""Fixture pump module (clean; the breakage is in _legacy.py)."""

_FAST_PUMP = True


class HalfLink:
    def _pump(self):
        while True:
            entry = yield self.queue.get()
            self.deliver(entry)
