"""BAD: module-level random calls and a hand-rolled Random instance."""

import random
from random import Random


def jitter(base):
    return base + random.uniform(0.0, 1.0)


def make_rng():
    return Random(42)
