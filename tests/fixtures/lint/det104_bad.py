"""BAD: orders objects by their CPython addresses."""


def stable_order(events):
    return sorted(events, key=id)


def first_wins(a, b):
    return a if id(a) < id(b) else b
