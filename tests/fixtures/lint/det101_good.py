"""GOOD: timestamps come from the simulator clock; time.sleep is a
host-side backoff, not a clock read."""

import time


def stamp_event(sim, record):
    record.sim_time = sim.now
    return record


def backoff(seconds):
    time.sleep(seconds)
