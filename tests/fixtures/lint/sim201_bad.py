"""BAD: a registered process yields a bare value and a literal."""


def driver(sim, qp):
    def client():
        yield
        qp.send(1)
        yield 3.0

    done = sim.process(client(), name="client")
    return done
