"""Fixture package root — its presence arms twin resolution checks."""
