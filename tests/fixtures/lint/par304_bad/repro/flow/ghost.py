"""Fixture flow module whose twin pointer names a retired module."""

PACKET_TWIN = "repro.gone.runner"


def collapse(nbytes):
    return nbytes
