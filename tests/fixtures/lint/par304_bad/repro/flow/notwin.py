"""Fixture flow module shadowing a packet protocol with no twin pointer."""

from ..tcp.socket import StreamSocket


def collapse(sock: StreamSocket, nbytes):
    return sock.queue_send(nbytes)
