"""Fixture packet module the flow twins shadow."""


class StreamSocket:
    def queue_send(self, nbytes):
        return nbytes
