"""Fixture: two rotted backends PAR305 must flag."""

from .base import ExecutionBackend


class HalfBackend(ExecutionBackend):
    """Missing close() AND the registry name attribute."""

    def run_tasks(self, tasks, ctx):
        return iter(())

    def plan(self, tasks, ctx):
        return {}


class DriftedBackend(ExecutionBackend):
    """run_tasks lost its ctx parameter: signature drift."""

    name = "drifted"

    def run_tasks(self, tasks):
        return iter(())

    def plan(self, tasks, ctx):
        return {}

    def close(self):
        pass
