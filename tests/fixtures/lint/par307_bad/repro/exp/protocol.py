"""PAR307 bad fixture: a frame type with no fail-closed decode fixture.

``PING`` is in MESSAGE_TYPES but FAIL_CLOSED_FIXTURES has no entry for
it — the decode-fixture wall would never prove decode_body fails
closed on a malformed PING body.
"""

MESSAGE_TYPES = frozenset({"HELLO", "RESULT", "PING"})

FAIL_CLOSED_FIXTURES = {
    "HELLO": b'{"type":"HELLO","proto":',
    "RESULT": b'{"type":"RESULT","lease":1,"payload":',
}
