"""BAD: identifiers drawn from the OS entropy pool."""

import os
import uuid


def fresh_request_id():
    return uuid.uuid4()


def fresh_cookie():
    return os.urandom(8)
