"""WIRE501 bad fixture worker: sends a PING frame the coordinator
has no dispatch arm for."""

from .protocol import (PROTOCOL_VERSION, ProtocolError, check_versions,
                       recv_frame, send_frame)


def run(sock, payload):
    send_frame(sock, {"type": "HELLO", "proto": PROTOCOL_VERSION})
    send_frame(sock, {"type": "PING", "nonce": 1})
    welcome = check_versions(recv_frame(sock))
    resume = welcome.get("resume")
    send_frame(sock, {"type": "RESULT", "payload": payload,
                      "resume": resume})
    while True:
        message = recv_frame(sock)
        mtype = message.get("type")
        if mtype == "WELCOME":
            continue
        if mtype == "BYE":
            return message.get("error")
        raise ProtocolError(f"unexpected frame {mtype!r}")
