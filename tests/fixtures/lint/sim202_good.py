"""GOOD: callbacks are plain callables; the generator pump is
registered as a process."""


class Pump:
    def __init__(self, sim):
        self.sim = sim
        sim.process(self._pump(), name="pump")
        sim.call_soon(self._kick)

    def _kick(self):
        self.deliver(None)

    def _pump(self):
        while True:
            entry = yield self.queue.get()
            self.deliver(entry)


def arm_timer(sim, pump):
    sim.call_at(5.0, pump._kick)
