"""GOOD: every record subclass stays slotted (empty tuple when it adds
no fields)."""


class Event:
    __slots__ = ("sim", "callbacks")


class CompletionEvent(Event):
    __slots__ = ("wr_id",)

    def __init__(self, sim, wr_id):
        self.wr_id = wr_id


class BarrierEvent(Event):
    __slots__ = ()


class PlainHelper:
    """Not a hot-path record; a __dict__ is fine here."""

    def __init__(self):
        self.notes = []
