"""WIRE good fixture coordinator: dispatches HELLO/RESULT fail-closed,
sends WELCOME/BYE, validates wire paths before touching disk."""

from ..protocol import (PROTOCOL_VERSION, ProtocolError, decode_body,
                        send_frame, valid_key)


def handle(sock, raw, results_dir):
    message = decode_body(raw)
    mtype = message.get("type")
    if mtype == "HELLO":
        if message.get("proto") != PROTOCOL_VERSION:
            send_frame(sock, {"type": "BYE", "error": "version"})
            return
        send_frame(sock, {"type": "WELCOME",
                          "proto": PROTOCOL_VERSION})
        return
    if mtype == "RESULT":
        key = valid_key(message.get("payload"))
        with open(results_dir + "/" + key, "w",
                  encoding="utf-8") as fh:
            fh.write("ok")
        send_frame(sock, {"type": "BYE", "error": ""})
        return
    raise ProtocolError(f"unexpected frame {mtype!r}")
