"""WIRE504 bad fixture worker: reads the version-gated "resume"
field without ever checking the protocol version."""

from .protocol import (ProtocolError, recv_frame, send_frame)


def run(sock, payload):
    send_frame(sock, {"type": "HELLO", "proto": 2})
    welcome = recv_frame(sock)
    resume = welcome.get("resume")
    send_frame(sock, {"type": "RESULT", "payload": payload,
                      "resume": resume})
    while True:
        message = recv_frame(sock)
        mtype = message.get("type")
        if mtype == "WELCOME":
            continue
        if mtype == "BYE":
            return message.get("error")
        raise ProtocolError(f"unexpected frame {mtype!r}")
