"""GOOD: identifiers derive from counters and the master seed."""

import itertools

_ids = itertools.count()


def fresh_request_id():
    return next(_ids)


def fresh_cookie(rng):
    return rng.getrandbits(64)
