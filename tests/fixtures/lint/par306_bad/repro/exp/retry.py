"""PAR306 bad fixture: wall-clock deadline math in the harness.

Every non-monotonic read below carries a DET101 suppression so this
tree trips *exactly* PAR306 — the point under test is the harness-level
clock-discipline rule, not the simulation-side wall-clock ban.
"""

import datetime
import time


def lease_deadline(lease_timeout_s):
    # Jumps backwards on NTP step: the lease can expire instantly.
    start = time.time()  # repro-lint: disable=DET101 -- fixture: PAR306 is the rule under test
    return start + lease_timeout_s


def elapsed_ns(t0_ns):
    now = time.time_ns()  # repro-lint: disable=DET101 -- fixture: PAR306 is the rule under test
    return now - t0_ns


def backoff_started():
    # perf_counter is per-process: a deadline handed to a worker is junk.
    return time.perf_counter()  # repro-lint: disable=DET101 -- fixture: PAR306 is the rule under test


def heartbeat_stamp():
    return datetime.datetime.now()  # repro-lint: disable=DET101 -- fixture: PAR306 is the rule under test
