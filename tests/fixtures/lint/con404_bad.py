"""CON404 bad fixture: a daemon watchdog mutating module state next to
a fork-based pool — children fork whatever half-written snapshot the
daemon left behind."""

import threading
from concurrent.futures import ProcessPoolExecutor

_POOL_STATE = {"generation": 0}


def _watch():
    while True:
        _POOL_STATE["generation"] = _POOL_STATE["generation"] + 1


def start(workers):
    pool = ProcessPoolExecutor(max_workers=workers)
    threading.Thread(target=_watch, daemon=True).start()
    return pool
