"""BAD: set iteration order leaks into scheduling."""


def kick_all(sim, procs):
    for proc in set(procs):
        sim.call_soon(proc.resume)


def snapshot(frames):
    return list({f.frame_id for f in frames})
