"""Fixture flow model reading a field calibration no longer defines."""


def service_time(profile, nbytes):
    # ``wire_rate`` was renamed to ``link_rate_mbps``; the packet layer
    # was updated but this analytic twin was not.
    per_byte = 8.0 / profile.wire_rate
    return nbytes * per_byte + profile.mtu_bytes * 0.0
