"""Fixture calibration: the schema the flow model must agree with."""


class HardwareProfile:
    link_rate_mbps: float = 1000.0
    mtu_bytes: int = 2048

    def link_rate(self, port):
        return self.link_rate_mbps
