"""CON402 good fixture: state is updated under the lock, the blocking
socket call happens after release."""

import threading
import time


class Sender:
    def __init__(self, sock):
        self._lock = threading.Lock()
        self._sock = sock
        self._seq = 0

    def send(self, frame):
        with self._lock:
            self._seq += 1
            seq = self._seq
        self._sock.sendall(frame + str(seq).encode())

    def backoff(self):
        time.sleep(0.5)
