"""Fixture kernel: the fast entry points legacy_dispatch swaps."""

NORMAL = 1


class Simulator:
    def call_at(self, delay, fn, arg=None, priority=NORMAL,
                cancellable=True):
        return fn

    def run(self, until=None):
        return until


class ReusableTimeout:
    def arm(self, delay, value=None):
        return self
