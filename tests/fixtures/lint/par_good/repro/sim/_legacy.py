"""Fixture legacy shims: every patch target exists, signatures match,
and the fast-pump module is flipped."""

from contextlib import contextmanager

from .core import NORMAL, ReusableTimeout, Simulator


def _legacy_call_at(self, delay, fn, arg=None, priority=NORMAL,
                    cancellable=True):
    return fn


def _legacy_arm(self, delay, value=None):
    return self


def _legacy_run(self, until=None):
    return until


@contextmanager
def legacy_dispatch():
    from ..fabric import link as _link

    saved = (Simulator.call_at, ReusableTimeout.arm, Simulator.run,
             _link._FAST_PUMP)
    Simulator.call_at = _legacy_call_at
    ReusableTimeout.arm = _legacy_arm
    Simulator.run = _legacy_run
    _link._FAST_PUMP = False
    try:
        yield
    finally:
        (Simulator.call_at, ReusableTimeout.arm, Simulator.run,
         _link._FAST_PUMP) = saved
