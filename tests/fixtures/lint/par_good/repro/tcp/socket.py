"""Fixture packet module; the flow twin points back at it."""


class StreamSocket:
    def queue_send(self, nbytes):
        return nbytes
