"""Fixture: the execution-backend base (complete, conforming tree)."""

from abc import ABC, abstractmethod


class ExecutionBackend(ABC):
    name = ""

    @abstractmethod
    def run_tasks(self, tasks, ctx):
        """Yield one outcome per task."""

    @abstractmethod
    def plan(self, tasks, ctx):
        """Placement as plain data."""

    @abstractmethod
    def close(self):
        """Release external resources."""
