"""Fixture: a backend implementing the full protocol surface."""

from .base import ExecutionBackend


class LocalPoolBackend(ExecutionBackend):
    name = "local"

    def run_tasks(self, tasks, ctx):
        return iter(())

    def plan(self, tasks, ctx):
        return {"backend": self.name}

    def close(self):
        pass
