"""PAR306 good fixture: monotonic duration math, justified stamps.

Duration/deadline arithmetic reads ``time.monotonic`` (still a DET101
suppression — the simulation-side wall-clock ban covers every host
clock), and the one wall-clock read is operational metadata with a
justified double suppression.
"""

import time


def lease_deadline(lease_timeout_s):
    start = time.monotonic()  # repro-lint: disable=DET101 -- host-side lease clock only
    return start + lease_timeout_s


def journal_stamp():
    # Wall time is fine here: the stamp labels a journal record for
    # humans and never feeds a timeout, lease or result.
    return time.time_ns()  # repro-lint: disable=DET101,PAR306 -- operational journal metadata, not a duration
