"""PAR307 good fixture: every frame type has a fail-closed fixture."""

MESSAGE_TYPES = frozenset({"HELLO", "RESULT", "BYE"})

FAIL_CLOSED_FIXTURES = {
    "HELLO": b'{"type":"HELLO","proto":',
    "RESULT": b'{"type":"RESULT","lease":1,"payload":',
    "BYE": b'{"type":"BYE","error":"',
}
