"""Fixture pump module: fast switch plus its generator-mode twin."""

_FAST_PUMP = True


class HalfLink:
    def _next_frame(self):
        pass

    def _pump(self):
        while True:
            entry = yield self.queue.get()
            self.deliver(entry)
