"""Fixture package root."""
