"""Fixture flow twin: declared pointer, schema-valid profile reads."""

from ..tcp.socket import StreamSocket

PACKET_TWIN = "repro.tcp.socket"


def service_time(profile, nbytes):
    per_byte = 8.0 / profile.link_rate_mbps
    return nbytes * per_byte + (nbytes // profile.mtu_bytes)


def collapse(sock: StreamSocket, profile, nbytes):
    return sock.queue_send(nbytes) * service_time(profile, nbytes)
