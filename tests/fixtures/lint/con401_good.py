"""CON401 good fixture: every write to the shared list happens under
the same ``with self._lock:`` guard."""

import threading


class Relay:
    def __init__(self):
        self._lock = threading.Lock()
        self._frames = []
        self._thread = threading.Thread(target=self._pump, daemon=True)

    def start(self):
        self._thread.start()

    def _pump(self):
        while True:
            with self._lock:
                self._frames.append(b"frame")

    def drain(self):
        with self._lock:
            out = list(self._frames)
            self._frames = []
        return out
