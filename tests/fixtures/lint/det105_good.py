"""GOOD: sets are sorted before their order can matter."""


def kick_all(sim, procs):
    for proc in sorted(set(procs), key=lambda p: p.name):
        sim.call_soon(proc.resume)


def snapshot(frames):
    return sorted({f.frame_id for f in frames})
