"""Property-based tests (hypothesis) on kernel and protocol invariants."""

from hypothesis import given, settings, strategies as st

from repro.fabric import build_back_to_back, wire_size
from repro.sim import PriorityStore, Simulator, StatAccumulator, Store
from repro.tcp import CongestionControl
from repro.verbs import RecvWR, create_connected_rc_pair
from repro.wan import delay_for_distance_km, distance_km_for_delay

_FAST = settings(max_examples=40, deadline=None)


# ---------------------------------------------------------------------------
# kernel
# ---------------------------------------------------------------------------

@_FAST
@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                max_size=40))
def test_events_process_in_nondecreasing_time_order(delays):
    sim = Simulator()
    seen = []
    for d in delays:
        t = sim.timeout(d)
        t.callbacks.append(lambda e: seen.append(sim.now))
    sim.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delays)


@_FAST
@given(st.lists(st.integers(), max_size=50))
def test_store_is_fifo_for_any_sequence(items):
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for item in items:
            yield store.put(item)

    def consumer():
        for _ in items:
            got.append((yield store.get()))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == items


@_FAST
@given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1,
                max_size=50))
def test_priority_store_yields_sorted(items):
    sim = Simulator()
    store = PriorityStore(sim)
    for item in items:
        store.put(item)
    got = []

    def consumer():
        for _ in items:
            got.append((yield store.get()))

    sim.process(consumer())
    sim.run()
    assert got == sorted(items)


@_FAST
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=2, max_size=100))
def test_stat_accumulator_matches_numpy(xs):
    import numpy as np
    acc = StatAccumulator()
    for x in xs:
        acc.add(x)
    assert acc.n == len(xs)
    assert acc.mean == __import__("pytest").approx(np.mean(xs), abs=1e-6)
    assert acc.min == min(xs) and acc.max == max(xs)
    assert acc.variance == __import__("pytest").approx(
        np.var(xs, ddof=1), rel=1e-6, abs=1e-6)


# ---------------------------------------------------------------------------
# fabric / wire accounting
# ---------------------------------------------------------------------------

@_FAST
@given(st.integers(min_value=0, max_value=1 << 24),
       st.integers(min_value=256, max_value=65536),
       st.integers(min_value=0, max_value=128))
def test_wire_size_bounds(payload, mtu, hdr):
    w = wire_size(payload, mtu, hdr)
    assert w >= payload + hdr  # at least one header
    assert w <= payload + hdr * (payload // mtu + 1)


@_FAST
@given(st.floats(min_value=0.0, max_value=1e5))
def test_delaymap_roundtrip(km):
    assert distance_km_for_delay(delay_for_distance_km(km)) == \
        __import__("pytest").approx(km)


# ---------------------------------------------------------------------------
# RC transport invariants
# ---------------------------------------------------------------------------

@_FAST
@given(st.lists(st.integers(min_value=1, max_value=256 * 1024), min_size=1,
                max_size=20),
       st.integers(min_value=1, max_value=32))
def test_rc_delivers_every_message_exactly_once_in_order(sizes, window):
    sim = Simulator()
    fabric = build_back_to_back(sim)
    qp_a, qp_b = create_connected_rc_pair(*fabric.nodes, send_window=window)
    for _ in sizes:
        qp_b.post_recv(RecvWR(1 << 30))
    for i, size in enumerate(sizes):
        qp_a.send(size, payload=(i, size))

    def receiver():
        got = []
        for _ in sizes:
            wc = yield qp_b.recv_cq.wait()
            got.append(wc.payload)
        return got

    got = sim.run(until=sim.process(receiver()))
    assert got == [(i, s) for i, s in enumerate(sizes)]
    sim.run()
    assert qp_a.inflight == 0  # every send eventually ACKed


@_FAST
@given(st.integers(min_value=1, max_value=64),
       st.integers(min_value=1, max_value=100))
def test_rc_window_never_exceeded(window, count):
    sim = Simulator()
    fabric = build_back_to_back(sim)
    qp_a, qp_b = create_connected_rc_pair(*fabric.nodes, send_window=window)
    max_seen = [0]
    for _ in range(count):
        qp_b.post_recv(RecvWR(1 << 30))
    for _ in range(count):
        qp_a.send(4096)

    def monitor():
        while qp_a.messages_sent < min(count, 10 ** 9):
            max_seen[0] = max(max_seen[0], qp_a.inflight)
            yield sim.timeout(1.0)

    sim.process(monitor())
    sim.run(until=100000.0)
    assert max_seen[0] <= window


# ---------------------------------------------------------------------------
# TCP congestion control
# ---------------------------------------------------------------------------

@_FAST
@given(st.lists(st.integers(min_value=1, max_value=1 << 20), max_size=60))
def test_cwnd_monotone_without_loss(acks):
    cc = CongestionControl(mss=1448)
    prev = cc.cwnd
    for a in acks:
        cc.on_ack(a)
        assert cc.cwnd >= prev
        prev = cc.cwnd


@_FAST
@given(st.integers(min_value=1, max_value=256))
def test_loss_never_drops_below_two_mss(segments):
    cc = CongestionControl(mss=1000, init_segments=segments)
    for _ in range(20):
        cc.on_loss()
    assert cc.cwnd >= 2000
