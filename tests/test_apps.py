"""Unit tests for the NAS benchmark skeletons and profiles."""

import pytest

from repro.apps import (NAS_BENCHMARKS, message_size_distribution,
                        nas_profile, run_nas)
from repro.fabric import build_cluster_of_clusters
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# profiles
# ---------------------------------------------------------------------------

def test_all_benchmarks_have_profiles():
    for name in NAS_BENCHMARKS:
        p = nas_profile(name, 16)
        assert p.iterations >= 1
        assert p.compute_us_per_iter > 0


def test_unknown_benchmark_rejected():
    with pytest.raises(ValueError):
        nas_profile("SP", 16)


def test_profiles_need_two_ranks():
    with pytest.raises(ValueError):
        nas_profile("IS", 1)


def test_scale_trims_iterations_not_sizes():
    full = nas_profile("CG", 16, scale=1.0)
    scaled = nas_profile("CG", 16, scale=0.1)
    assert scaled.iterations < full.iterations
    assert scaled.neighbor_bytes == full.neighbor_bytes


def test_is_profile_all_large_messages():
    p = nas_profile("IS", 64)
    dist = message_size_distribution(p, 64)
    assert dist["large"] > 0.95  # paper: IS ~100% large


def test_ft_profile_large_dominated():
    p = nas_profile("FT", 64)
    dist = message_size_distribution(p, 64)
    assert dist["large"] > 0.8  # paper: FT ~83% large


def test_cg_profile_no_large_messages():
    p = nas_profile("CG", 64)
    dist = message_size_distribution(p, 64)
    assert dist["large"] == 0.0  # paper: all CG messages < 1 MB
    assert dist["medium"] > 0.5


def test_compute_scales_inverse_with_ranks():
    p16 = nas_profile("FT", 16)
    p64 = nas_profile("FT", 64)
    assert p16.compute_us_per_iter == pytest.approx(
        4 * p64.compute_us_per_iter)


# ---------------------------------------------------------------------------
# skeleton runs
# ---------------------------------------------------------------------------

def _run(bench, delay, nodes=2, scale=0.05):
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, nodes, nodes,
                                       wan_delay_us=delay)
    return run_nas(sim, fabric, bench, ppn=1, scale=scale)


def test_nas_result_fields():
    r = _run("IS", 0.0)
    assert r.benchmark == "IS"
    assert r.ranks == 4
    assert r.runtime_us > 0
    assert 0.0 <= r.comm_fraction < 1.0


def test_cg_needs_square_rank_count():
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, 1, 2, wan_delay_us=0)
    with pytest.raises(ValueError):
        run_nas(sim, fabric, "CG", ppn=1, scale=0.05)


def test_ep_insensitive_to_delay():
    base = _run("EP", 0.0, scale=0.2).runtime_us
    far = _run("EP", 10000.0, scale=0.2).runtime_us
    assert far < 1.05 * base


def test_is_tolerates_moderate_delay():
    """Paper Fig. 12: IS flat out to long separations."""
    base = _run("IS", 0.0, nodes=4, scale=0.1).runtime_us
    far = _run("IS", 1000.0, nodes=4, scale=0.1).runtime_us
    assert far < 1.10 * base


def test_cg_degrades_markedly_at_high_delay():
    """Paper Fig. 12: CG's small/medium messages eat WAN round trips."""
    base = _run("CG", 0.0, nodes=8, scale=0.015).runtime_us
    far = _run("CG", 10000.0, nodes=8, scale=0.015).runtime_us
    assert far > 1.8 * base


def test_cg_degrades_more_than_is():
    is_ratio = (_run("IS", 10000.0, nodes=4, scale=0.1).runtime_us
                / _run("IS", 0.0, nodes=4, scale=0.1).runtime_us)
    cg_ratio = (_run("CG", 10000.0, nodes=8, scale=0.015).runtime_us
                / _run("CG", 0.0, nodes=8, scale=0.015).runtime_us)
    assert cg_ratio > 1.5 * is_ratio


def test_runtime_scales_with_iterations():
    short = _run("MG", 0.0, scale=0.05).runtime_us
    longer = _run("MG", 0.0, scale=0.15).runtime_us
    assert longer > 2 * short
