"""Unit tests for the IB fabric: frames, links, switches, routing."""

import pytest

from repro.calibration import DEFAULT_PROFILE
from repro.fabric import (Frame, Link, Node, SubnetManager, Switch,
                          build_back_to_back, build_cluster,
                          build_cluster_of_clusters, wire_size)
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# wire_size
# ---------------------------------------------------------------------------

def test_wire_size_single_segment():
    assert wire_size(100, 2048, 30) == 130


def test_wire_size_exact_mtu():
    assert wire_size(2048, 2048, 30) == 2048 + 30


def test_wire_size_multiple_segments():
    assert wire_size(2049, 2048, 30) == 2049 + 2 * 30


def test_wire_size_zero_payload_costs_one_header():
    assert wire_size(0, 2048, 30) == 30


def test_wire_size_rejects_negative():
    with pytest.raises(ValueError):
        wire_size(-1, 2048, 30)
    with pytest.raises(ValueError):
        wire_size(10, 0, 30)


def test_frame_rejects_inconsistent_sizes():
    with pytest.raises(ValueError):
        Frame(1, 2, size=100, wire_bytes=50)


# ---------------------------------------------------------------------------
# links
# ---------------------------------------------------------------------------

class _Sink:
    def __init__(self):
        self.got = []

    def receive_frame(self, frame, link):
        self.got.append(frame)


def _frame(dst_lid=2, size=1000, wire=1000):
    return Frame(src_lid=1, dst_lid=dst_lid, size=size, wire_bytes=wire)


def test_link_serialization_plus_propagation():
    sim = Simulator()
    a, b = _Sink(), _Sink()
    link = Link(sim, rate=100.0, delay_us=7.0).attach(a, b)
    link.send(a, _frame(size=1000, wire=1000))
    sim.run()
    # 1000B at 100 B/us = 10us serialization + 7us propagation
    assert sim.now == pytest.approx(17.0)
    assert len(b.got) == 1 and not a.got


def test_link_pipelines_back_to_back_frames():
    sim = Simulator()
    a, b = _Sink(), _Sink()
    link = Link(sim, rate=100.0, delay_us=50.0).attach(a, b)
    for _ in range(3):
        link.send(a, _frame(size=1000, wire=1000))
    sim.run()
    # serialization is sequential (10us each), propagation overlaps:
    # last frame arrives at 30 + 50 = 80, NOT 3*(10+50).
    assert sim.now == pytest.approx(80.0)
    assert len(b.got) == 3


def test_link_full_duplex_directions_independent():
    sim = Simulator()
    a, b = _Sink(), _Sink()
    link = Link(sim, rate=100.0, delay_us=0.0).attach(a, b)
    link.send(a, _frame())
    link.send(b, _frame())
    sim.run()
    assert sim.now == pytest.approx(10.0)  # both complete concurrently
    assert len(a.got) == 1 and len(b.got) == 1


def test_link_send_from_stranger_raises():
    sim = Simulator()
    a, b, c = _Sink(), _Sink(), _Sink()
    link = Link(sim, rate=100.0).attach(a, b)
    with pytest.raises(ValueError):
        link.send(c, _frame())


def test_link_double_attach_raises():
    sim = Simulator()
    link = Link(sim, rate=1.0).attach(_Sink(), _Sink())
    with pytest.raises(RuntimeError):
        link.attach(_Sink(), _Sink())


def test_link_set_delay_applies_to_new_frames():
    sim = Simulator()
    a, b = _Sink(), _Sink()
    link = Link(sim, rate=1000.0, delay_us=0.0).attach(a, b)
    link.set_delay(100.0)
    link.send(a, _frame(size=0, wire=10))
    sim.run()
    assert sim.now == pytest.approx(100.01)


def test_link_counts_bytes_and_frames():
    sim = Simulator()
    a, b = _Sink(), _Sink()
    link = Link(sim, rate=100.0).attach(a, b)
    link.send(a, _frame(wire=1000, size=1000))
    link.send(b, _frame(wire=500, size=500))
    sim.run()
    assert link.bytes_carried == 1500
    assert link.frames_carried == 2


def test_link_rejects_bad_parameters():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, rate=0.0)
    with pytest.raises(ValueError):
        Link(sim, rate=1.0, delay_us=-1.0)


# ---------------------------------------------------------------------------
# switch routing
# ---------------------------------------------------------------------------

def test_switch_forwards_by_lid():
    sim = Simulator()
    sw = Switch(sim, latency_us=0.5)
    h1, h2 = _Sink(), _Sink()
    l1 = Link(sim, rate=100.0).attach(h1, sw)
    l2 = Link(sim, rate=100.0).attach(sw, h2)
    sw.add_link(l1)
    sw.add_link(l2)
    sw.set_route(7, l2)
    l1.send(h1, _frame(dst_lid=7, size=100, wire=100))
    sim.run()
    assert len(h2.got) == 1
    # 1us ser + 0.5us switch + 1us ser
    assert sim.now == pytest.approx(2.5)


def test_switch_unknown_lid_raises():
    sim = Simulator()
    sw = Switch(sim, latency_us=0.5)
    h1 = _Sink()
    l1 = Link(sim, rate=100.0).attach(h1, sw)
    sw.add_link(l1)
    l1.send(h1, _frame(dst_lid=99, size=10, wire=10))
    with pytest.raises(RuntimeError, match="no route"):
        sim.run()


def test_switch_route_via_unattached_link_rejected():
    sim = Simulator()
    sw = Switch(sim, latency_us=0.1)
    stray = Link(sim, rate=1.0).attach(_Sink(), _Sink())
    with pytest.raises(ValueError):
        sw.set_route(1, stray)


# ---------------------------------------------------------------------------
# topologies + subnet manager
# ---------------------------------------------------------------------------

def test_back_to_back_assigns_distinct_lids():
    sim = Simulator()
    f = build_back_to_back(sim)
    lids = [n.lid for n in f.nodes]
    assert len(set(lids)) == 2 and all(l > 0 for l in lids)


def test_cluster_all_pairs_routable():
    sim = Simulator()
    f = build_cluster(sim, 4)
    sw = f.switches[0]
    for node in f.nodes:
        assert node.lid in sw.forwarding


def test_cluster_of_clusters_structure():
    sim = Simulator()
    f = build_cluster_of_clusters(sim, 3, 2, wan_delay_us=10.0)
    assert len(f.cluster_a) == 3 and len(f.cluster_b) == 2
    assert f.wan is not None
    assert f.wan.delay_us == 10.0
    assert f.cluster_of(f.cluster_a[0]) == "A"
    assert f.cluster_of(f.cluster_b[1]) == "B"


def test_cluster_of_clusters_cross_routes_programmed():
    sim = Simulator()
    f = build_cluster_of_clusters(sim, 2, 2)
    sw_a, sw_b = f.switches
    for node in f.cluster_b:
        assert node.lid in sw_a.forwarding  # via the longbow link
    for node in f.cluster_a:
        assert node.lid in sw_b.forwarding


def test_set_wan_delay_roundtrip():
    sim = Simulator()
    f = build_cluster_of_clusters(sim, 1, 1)
    f.set_wan_delay(123.0)
    assert f.wan.delay_us == 123.0


def test_set_wan_delay_on_lan_fabric_raises():
    sim = Simulator()
    f = build_back_to_back(sim)
    with pytest.raises(RuntimeError):
        f.set_wan_delay(5.0)


def test_subnet_manager_rejects_duplicate_device():
    sim = Simulator()
    sm = SubnetManager()
    node = Node(sim, DEFAULT_PROFILE)
    sm.add_device(node.hca)
    with pytest.raises(ValueError):
        sm.add_device(node.hca)


def test_subnet_manager_rejects_unattached_link():
    sm = SubnetManager()
    with pytest.raises(ValueError):
        sm.add_link(Link(Simulator(), rate=1.0))


def test_hca_drops_frames_for_unknown_qpn():
    sim = Simulator()
    f = build_back_to_back(sim)
    n0, n1 = f.nodes
    frame = Frame(src_lid=n0.lid, dst_lid=n1.lid, size=10, wire_bytes=10,
                  dst_qpn=999)
    n0.hca.transmit(frame)
    sim.run()
    assert getattr(n1.hca, "frames_dropped", 0) == 1
