"""Differential equivalence wall: flow acceleration vs packet truth.

Every quick-grid cell of the bulk-transfer figures (fig05 verbs RC/UD,
fig06 IPoIB-UD windows/streams, fig07 IPoIB-RC MTUs) is computed twice
— once in packet mode, once under ``--flow auto`` — and the two tables
must agree cell-by-cell within the 1% bandwidth budget.  On top of the
per-cell bound, the *ordering* of the figure's curves at every delay
point must be identical: flow mode may shift a bandwidth by a fraction
of a percent, but it must never reorder which window/MTU/stream-count
wins at a given wire length, because curve crossovers are the paper's
actual findings.

A direct netperf probe additionally sweeps every Table-1 delay
(including 10 µs, which the quick grids skip) so the wall covers the
full delay axis the paper measures.
"""

import pytest

from repro.core.registry import run_experiment
from repro.core.scenario import wan_pair
from repro.flow.context import activated
from repro.ipoib import netperf

KB, MB = 1024, 1024 * 1024

#: Bulk-transfer figures the flow path accelerates.
SWEEPS = ["fig05a", "fig05b", "fig06a", "fig06b", "fig07a", "fig07b"]

#: Max |flow - packet| / packet per cell.
BW_TOLERANCE = 0.01

#: Packet-mode differences below this are ties: ordering may not be
#: asserted inside the equivalence budget's own noise floor.
ORDERING_MARGIN = 2 * BW_TOLERANCE

#: Table 1 delay axis (one-way, µs).
TABLE1_DELAYS = (0.0, 10.0, 100.0, 1000.0, 10000.0)


@pytest.fixture(scope="module", params=SWEEPS)
def sweep_pair(request):
    """(experiment id, packet rows, flow rows) for one quick sweep."""
    exp_id = request.param
    packet = run_experiment(exp_id, quick=True)
    with activated("auto"):
        flow = run_experiment(exp_id, quick=True)
    assert flow.columns == packet.columns
    assert len(flow.rows) == len(packet.rows)
    return exp_id, packet.rows, flow.rows


def _numeric_cells(row):
    return [v for v in row if isinstance(v, (int, float))
            and not isinstance(v, bool)]


def test_every_cell_within_one_percent(sweep_pair):
    exp_id, packet_rows, flow_rows = sweep_pair
    for prow, frow in zip(packet_rows, flow_rows):
        assert prow[0] == frow[0]
        pvals, fvals = _numeric_cells(prow[1:]), _numeric_cells(frow[1:])
        assert len(pvals) == len(fvals) > 0
        for col, (p, f) in enumerate(zip(pvals, fvals)):
            err = abs(f - p) / p
            assert err <= BW_TOLERANCE, (
                f"{exp_id} row {prow[0]!r} col {col}: packet {p:.2f} "
                f"flow {f:.2f} ({err:.2%} > {BW_TOLERANCE:.0%})")


def test_curve_crossover_ordering_is_identical(sweep_pair):
    """At every delay point, curves must rank the same in both modes
    (whenever packet mode separates them beyond the tie margin)."""
    exp_id, packet_rows, flow_rows = sweep_pair
    n_cols = len(_numeric_cells(packet_rows[0][1:]))
    for col in range(n_cols):
        pcol = [_numeric_cells(r[1:])[col] for r in packet_rows]
        fcol = [_numeric_cells(r[1:])[col] for r in flow_rows]
        for i in range(len(pcol)):
            for j in range(i + 1, len(pcol)):
                gap = abs(pcol[i] - pcol[j]) / max(pcol[i], pcol[j])
                if gap <= ORDERING_MARGIN:
                    continue  # a tie in packet mode — no ordering claim
                assert ((pcol[i] > pcol[j]) == (fcol[i] > fcol[j])), (
                    f"{exp_id} col {col}: packet orders "
                    f"{packet_rows[i][0]!r} vs {packet_rows[j][0]!r} as "
                    f"{pcol[i]:.2f} vs {pcol[j]:.2f} but flow gives "
                    f"{fcol[i]:.2f} vs {fcol[j]:.2f}")


@pytest.mark.parametrize("delay_us", TABLE1_DELAYS)
@pytest.mark.parametrize("mode,mtu", [("ud", None), ("rc", 2044),
                                      ("rc", 65520)])
def test_netperf_cell_matches_across_table1_delays(mode, mtu, delay_us):
    """Direct probe over the full Table-1 delay axis, covering the
    10 µs point the quick grids omit."""
    total = 4 * MB
    s = wan_pair(delay_us)
    bw_packet = netperf.run_stream_bw(
        s.sim, s.fabric, s.a, s.b, total_bytes=total, mode=mode, mtu=mtu)
    with activated("auto"):
        s = wan_pair(delay_us)
        bw_flow = netperf.run_stream_bw(
            s.sim, s.fabric, s.a, s.b, total_bytes=total, mode=mode,
            mtu=mtu)
    err = abs(bw_flow - bw_packet) / bw_packet
    assert err <= BW_TOLERANCE, (
        f"{mode}/mtu={mtu} d={delay_us}: packet {bw_packet:.2f} "
        f"flow {bw_flow:.2f} ({err:.2%})")
