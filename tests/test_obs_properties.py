"""Property-based tests for the `repro.obs` metrics primitives.

Randomized inputs come from seeded :class:`repro.sim.rng.RngRegistry`
streams (no hypothesis dependency), so every run exercises the same
cases.  Pinned properties:

* histogram bucket counts conserve the number of observations, the
  cumulative distribution is monotone, and every observation lands in
  the bucket whose bounds cover it;
* counters never decrease (negative increments are rejected);
* gauges track min/max watermarks correctly;
* registry keys are independent of label keyword order;
* serialization is deterministic for identical operation sequences.
"""

import json

import pytest

from repro.obs import Histogram, MetricsRegistry, to_json, to_json_lines
from repro.obs.metrics import key_str
from repro.sim.rng import RngRegistry

RNG = RngRegistry(master_seed=0x0B5)

N_TRIALS = 20
N_SAMPLES = 200


def _values(rng, n=N_SAMPLES):
    kind = rng.random()
    if kind < 0.4:
        return [rng.uniform(0.0, 1e6) for _ in range(n)]
    if kind < 0.8:
        return [float(rng.randrange(0, 1 << 30)) for _ in range(n)]
    return [rng.expovariate(1e-3) for _ in range(n)]


# ---------------------------------------------------------------------------
# histogram
# ---------------------------------------------------------------------------

def test_histogram_count_conservation():
    rng = RNG.stream("hist.conserve")
    for _ in range(N_TRIALS):
        h = MetricsRegistry().histogram("t", "h")
        values = _values(rng)
        for v in values:
            h.observe(v)
        assert sum(h.counts.values()) == h.n == len(values)
        assert h.sum == pytest.approx(sum(values))
        assert h.min == min(values)
        assert h.max == max(values)


def test_histogram_cumulative_monotone():
    rng = RNG.stream("hist.monotone")
    for _ in range(N_TRIALS):
        h = MetricsRegistry().histogram("t", "h")
        for v in _values(rng):
            h.observe(v)
        rows = h.cumulative()
        bounds = [b for b, _ in rows]
        counts = [c for _, c in rows]
        assert bounds == sorted(bounds)
        assert counts == sorted(counts)  # cumulative never decreases
        assert counts[-1] == h.n


def test_histogram_buckets_cover_observations():
    rng = RNG.stream("hist.cover")
    for v in _values(rng, 500):
        idx = Histogram.bucket_index(v)
        upper = Histogram.bucket_upper_bound(idx)
        lower = 0.0 if idx == 0 else Histogram.bucket_upper_bound(idx - 1)
        # log2 buckets over int(v): [2**(idx-1), 2**idx).
        assert lower <= int(v) < upper


def test_histogram_rejects_negative():
    h = MetricsRegistry().histogram("t", "h")
    with pytest.raises(ValueError):
        h.observe(-1.0)


def test_histogram_empty_snapshot():
    h = MetricsRegistry().histogram("t", "h")
    assert h.to_dict() == {"n": 0, "sum": 0.0, "min": None, "max": None,
                           "buckets": {}}
    assert h.mean == 0.0


# ---------------------------------------------------------------------------
# counter
# ---------------------------------------------------------------------------

def test_counter_never_decreases():
    rng = RNG.stream("counter.monotone")
    c = MetricsRegistry().counter("t", "c")
    last = c.value
    for _ in range(N_SAMPLES):
        c.inc(rng.uniform(0.0, 100.0))
        assert c.value >= last
        last = c.value


def test_counter_rejects_negative_increment():
    c = MetricsRegistry().counter("t", "c")
    c.inc(5)
    with pytest.raises(ValueError):
        c.inc(-1)
    assert c.value == 5


# ---------------------------------------------------------------------------
# gauge
# ---------------------------------------------------------------------------

def test_gauge_watermarks():
    rng = RNG.stream("gauge.watermarks")
    for _ in range(N_TRIALS):
        g = MetricsRegistry().gauge("t", "g")
        values = [rng.uniform(-1e6, 1e6) for _ in range(N_SAMPLES)]
        for v in values:
            g.set(v)
        assert g.value == values[-1]
        assert g.min == min(values)
        assert g.max == max(values)
        assert g.samples == len(values)


def test_gauge_inc_dec():
    g = MetricsRegistry().gauge("t", "g")
    g.inc(10)
    g.dec(4)
    assert g.value == 6
    assert g.max == 10
    assert g.samples == 2


# ---------------------------------------------------------------------------
# registry keying
# ---------------------------------------------------------------------------

def test_label_keyword_order_is_irrelevant():
    reg = MetricsRegistry()
    a = reg.counter("rc", "bytes", qp="3", node="a0")
    b = reg.counter("rc", "bytes", node="a0", qp="3")
    assert a is b
    assert len(reg) == 1


def test_same_key_same_object_different_labels_different():
    reg = MetricsRegistry()
    assert reg.counter("x", "n") is reg.counter("x", "n")
    assert reg.counter("x", "n") is not reg.counter("x", "n", k="1")
    assert len(reg) == 2


def test_type_collision_rejected():
    reg = MetricsRegistry()
    reg.counter("x", "n")
    with pytest.raises(TypeError):
        reg.gauge("x", "n")


def test_key_str_formats_labels_sorted():
    reg = MetricsRegistry()
    m = reg.counter("link", "bytes", b="2", a="1")
    assert key_str(m.key) == "link.bytes{a=1,b=2}"
    assert key_str(reg.counter("sim", "events").key) == "sim.events"


def test_registry_get_and_find():
    reg = MetricsRegistry()
    c = reg.counter("rc", "bytes")
    reg.gauge("rc", "inflight")
    reg.counter("ud", "bytes")
    assert reg.get("rc", "bytes") is c
    assert reg.get("rc", "missing") is None
    assert len(reg.find(component="rc")) == 2
    assert len(reg.find(name="bytes")) == 2


# ---------------------------------------------------------------------------
# serialization determinism
# ---------------------------------------------------------------------------

def _populate(reg, rng):
    for i in range(50):
        reg.counter("c", f"n{i % 5}", k=str(i % 3)).inc(rng.uniform(0, 10))
        reg.gauge("g", "v").set(rng.uniform(-5, 5))
        reg.histogram("h", "d").observe(rng.uniform(0, 1e4))


def test_identical_op_sequences_serialize_identically():
    rng_a = RngRegistry(7).stream("ops")
    rng_b = RngRegistry(7).stream("ops")
    reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
    _populate(reg_a, rng_a)
    _populate(reg_b, rng_b)
    assert to_json(reg_a) == to_json(reg_b)
    assert to_json_lines(reg_a) == to_json_lines(reg_b)


def test_json_lines_round_trip():
    reg = MetricsRegistry()
    _populate(reg, RNG.stream("jsonl"))
    lines = to_json_lines(reg).splitlines()
    assert len(lines) == len(reg)
    parsed = [json.loads(line) for line in lines]
    assert parsed == reg.to_dict()["metrics"]
