"""Tests for measurement helpers, OSU collectives, LU profile,
calibration and experiment plumbing."""


import pytest

from repro.calibration import DEFAULT_PROFILE, KB
from repro.core import wan_clusters
from repro.sim import Simulator, ThroughputMeter, TimeSeries, mbps_from_bytes


# ---------------------------------------------------------------------------
# monitor helpers
# ---------------------------------------------------------------------------

def test_mbps_conversion():
    # 1 MillionBytes/sec == 1 byte/us
    assert mbps_from_bytes(1000, 10.0) == 100.0
    with pytest.raises(ValueError):
        mbps_from_bytes(1, 0.0)


def test_throughput_meter():
    sim = Simulator()
    meter = ThroughputMeter(sim)
    meter.start()

    def feed():
        for _ in range(4):
            yield sim.timeout(10.0)
            meter.account(1000)

    sim.run(until=sim.process(feed()))
    meter.stop()
    assert meter.bytes == 4000
    assert meter.messages == 4
    assert meter.elapsed_us == 40.0
    assert meter.mbps == 100.0
    assert meter.msg_rate == pytest.approx(4 / 40e-6)


def test_throughput_meter_requires_start():
    meter = ThroughputMeter(Simulator())
    with pytest.raises(RuntimeError):
        _ = meter.elapsed_us


def test_time_series_records_timestamps():
    sim = Simulator()
    ts = TimeSeries(sim)

    def feed():
        for v in (1.0, 2.0):
            yield sim.timeout(5.0)
            ts.record(v)

    sim.run(until=sim.process(feed()))
    assert ts.samples == [(5.0, 1.0), (10.0, 2.0)]
    assert ts.values() == [1.0, 2.0]
    assert len(ts) == 2


# ---------------------------------------------------------------------------
# calibration profile
# ---------------------------------------------------------------------------

def test_profile_is_immutable():
    with pytest.raises(Exception):
        DEFAULT_PROFILE.sdr_rate = 1.0  # frozen dataclass


def test_with_overrides_creates_variant():
    p = DEFAULT_PROFILE.with_overrides(rc_send_window=99)
    assert p.rc_send_window == 99
    assert DEFAULT_PROFILE.rc_send_window != 99


def test_link_rate_selector():
    assert DEFAULT_PROFILE.link_rate(wan=True) == DEFAULT_PROFILE.wan_rate
    assert DEFAULT_PROFILE.link_rate(wan=False) == DEFAULT_PROFILE.ddr_rate


def test_calibrated_rates_are_sane():
    p = DEFAULT_PROFILE
    assert p.ddr_rate == 2 * p.sdr_rate  # DDR doubles SDR
    assert p.ipoib_ud_mtu < p.ib_mtu
    assert p.ipoib_rc_mtu > 16 * p.ipoib_ud_mtu


# ---------------------------------------------------------------------------
# OSU collective benchmarks
# ---------------------------------------------------------------------------

def test_osu_allreduce_scales_with_delay():
    near = wan_clusters(2, 2, 10.0)
    t_near = __import__("repro.mpi.benchmarks", fromlist=["x"]) \
        .run_osu_allreduce(near.sim, near.fabric, 8 * KB, iters=3)
    far = wan_clusters(2, 2, 1000.0)
    t_far = __import__("repro.mpi.benchmarks", fromlist=["x"]) \
        .run_osu_allreduce(far.sim, far.fabric, 8 * KB, iters=3)
    assert t_far > t_near + 1500.0  # at least one WAN round trip more


def test_osu_barrier_crosses_wan_once_hierarchically():
    from repro.mpi.benchmarks import run_osu_barrier
    s = wan_clusters(4, 4, 1000.0)
    flat = run_osu_barrier(s.sim, s.fabric, iters=3)
    s = wan_clusters(4, 4, 1000.0)
    hier = run_osu_barrier(s.sim, s.fabric, iters=3, hierarchical=True)
    assert hier < flat  # dissemination crosses the WAN log(P) times


def test_osu_alltoall_bandwidth_bound():
    from repro.mpi.benchmarks import run_osu_alltoall
    s = wan_clusters(2, 2, 0.0)
    t0 = run_osu_alltoall(s.sim, s.fabric, 256 * KB, iters=2)
    s = wan_clusters(2, 2, 1000.0)
    t1 = run_osu_alltoall(s.sim, s.fabric, 256 * KB, iters=2)
    # concurrent posting: one extra RTT-ish, not one per peer
    assert t1 < t0 + 3 * 2000.0


# ---------------------------------------------------------------------------
# LU profile
# ---------------------------------------------------------------------------

def test_lu_profile_exists_and_is_latency_bound():
    from repro.apps import message_size_distribution, nas_profile
    p = nas_profile("LU", 16)
    dist = message_size_distribution(p, 16)
    assert dist["large"] == 0.0
    assert p.neighbor_count >= 20


def test_lu_degrades_with_delay():
    from repro.apps import run_nas
    from repro.fabric import build_cluster_of_clusters
    runtimes = []
    for delay in (0.0, 10000.0):
        sim = Simulator()
        f = build_cluster_of_clusters(sim, 8, 8, wan_delay_us=delay)
        runtimes.append(run_nas(sim, f, "LU", scale=0.02).runtime_us)
    assert runtimes[1] > 1.5 * runtimes[0]


# ---------------------------------------------------------------------------
# experiment plumbing
# ---------------------------------------------------------------------------

def test_experiment_registry_ids_unique_and_callable():
    from repro.core import EXPERIMENTS
    assert len(EXPERIMENTS) >= 25
    for exp_id, fn in EXPERIMENTS.items():
        assert fn.exp_id == exp_id
        assert fn.title


def test_experiment_column_accessor_unknown():
    from repro.core import run_experiment
    res = run_experiment("table1")
    with pytest.raises(ValueError):
        res.column("nope")


def test_cli_main_module_entry():
    import repro.cli
    parser = repro.cli.build_parser()
    args = parser.parse_args(["perftest", "lat"])
    assert args.test == "lat"
