"""Durability wall for :mod:`repro.exp.journal` and ``--resume``.

Three layers:

* journal primitives — checksummed append-only records, torn-tail
  truncation, corruption fail-closed, run-id hygiene, plan digests;
* in-process resume — ``run_experiments(resume=...)`` adopts the
  journaled plan, skips journaled tasks, re-executes the rest, and
  produces results byte-identical to an uninterrupted run (counted via
  ``repro.obs``);
* the crash wall — a coordinator SIGKILLed *at named journaled points*
  (via ``REPRO_EXP_CRASH_POINT``) is resumed through the CLI and must
  reproduce the uninterrupted store byte for byte, on both the local
  and the socket backend.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.exp import run_experiments, write_jsonl
from repro.exp.journal import (JournalError, ResumeError, RunJournal,
                               new_run_id, plan_digest)
from repro.obs import MetricsRegistry, use_registry

IDS = ["table1", "fig04a"]          # 1 single-shot + 3 cells = 4 tasks
N_TASKS = 4
REPO_ROOT = Path(__file__).resolve().parent.parent


# ---------------------------------------------------------------------------
# journal primitives
# ---------------------------------------------------------------------------

def test_append_resume_roundtrip(tmp_path):
    journal = RunJournal.create(tmp_path, "run-a")
    journal.append({"type": "plan", "ids": ["x"]})
    journal.append({"type": "result", "task": "x", "key": "k" * 64})
    journal.close()
    replayed = RunJournal.resume(tmp_path, "run-a")
    assert [r["type"] for r in replayed.records()] == ["plan", "result"]
    assert replayed.truncated is False
    assert replayed.completed() == {"x": "k" * 64}
    replayed.close()


def test_create_refuses_existing_run(tmp_path):
    RunJournal.create(tmp_path, "dup").close()
    with pytest.raises(JournalError, match="already exists"):
        RunJournal.create(tmp_path, "dup")


@pytest.mark.parametrize("bad", ["", "../escape", "a/b", "x" * 65, "-x"])
def test_malformed_run_ids_rejected(tmp_path, bad):
    # The constructor is the choke point: create() and resume() both
    # pass through it (an empty id just means "generate one").
    with pytest.raises(JournalError, match="malformed run id"):
        RunJournal(tmp_path, bad)


def test_new_run_ids_are_wellformed_and_distinct():
    ids = {new_run_id() for _ in range(3)}
    for run_id in ids:
        RunJournal(os.devnull + "-unused", run_id)  # validates the id


def test_torn_tail_is_truncated_and_appends_continue(tmp_path):
    journal = RunJournal.create(tmp_path, "torn")
    journal.append({"type": "plan", "ids": []})
    journal.append({"type": "result", "task": "x", "key": "k" * 64})
    journal.close()
    # A crash mid-write leaves half a line; fsync ordering means only
    # the tail can be torn.
    with open(journal.path, "ab") as fh:
        fh.write(b'{"seq":2,"sha":"dead')
    replayed = RunJournal.resume(tmp_path, "torn")
    assert replayed.truncated is True
    assert len(replayed.records()) == 2
    replayed.append({"type": "end", "failures": 0})
    replayed.close()
    clean = RunJournal.resume(tmp_path, "torn")
    assert clean.truncated is False
    assert [r["type"] for r in clean.records()] == ["plan", "result",
                                                    "end"]
    clean.close()


def test_corrupted_record_drops_every_later_line(tmp_path):
    journal = RunJournal.create(tmp_path, "bitrot")
    for i in range(3):
        journal.append({"type": "result", "task": f"t{i}",
                        "key": str(i) * 64})
    journal.close()
    lines = journal.path.read_bytes().splitlines(keepends=True)
    # Flip one byte inside the middle record's payload.
    lines[1] = lines[1].replace(b'"task":"t1"', b'"task":"tX"')
    journal.path.write_bytes(b"".join(lines))
    replayed = RunJournal.resume(tmp_path, "bitrot")
    # The checksum catches the flip; line 2 is dropped too, because
    # everything after a bad record is suspect.
    assert replayed.truncated is True
    assert [r["task"] for r in replayed.records()] == ["t0"]
    replayed.close()
    clean = RunJournal.resume(tmp_path, "bitrot")
    assert clean.truncated is False   # the bad tail is physically gone
    clean.close()


def test_resume_unknown_run_lists_known_ids(tmp_path):
    RunJournal.create(tmp_path, "known-run").close()
    with pytest.raises(ResumeError, match="known-run"):
        RunJournal.resume(tmp_path, "ghost")


def test_plan_digest_tracks_every_plan_ingredient():
    base = plan_digest(IDS, True, None, None)
    assert base == plan_digest(IDS, True, None, None)
    assert base != plan_digest(IDS[:1], True, None, None)
    assert base != plan_digest(IDS, False, None, None)
    assert base != plan_digest(IDS, True, "loss=0.01,seed=1", None)
    assert base != plan_digest(IDS, True, None, "on")


# ---------------------------------------------------------------------------
# in-process resume through run_experiments
# ---------------------------------------------------------------------------

def _result_bytes(results, tmp_path, name):
    path = tmp_path / name
    write_jsonl(path, results)
    return path.read_bytes()


def test_journaled_run_records_plan_leases_results_end(tmp_path):
    run_experiments(IDS, quick=True, jobs=2,
                    journal_dir=str(tmp_path), journal_id="full")
    journal = RunJournal.resume(tmp_path, "full")
    kinds = [r["type"] for r in journal.records()]
    assert kinds[0] == "plan"
    assert kinds[-1] == "end"
    assert kinds.count("result") == N_TASKS
    assert kinds.count("lease") >= N_TASKS
    plan = journal.plan_record()
    assert plan["ids"] == IDS and plan["quick"] is True
    assert plan["tasks"] == ["table1", "fig04a#0", "fig04a#1", "fig04a#2"]
    assert plan["digest"] == plan_digest(IDS, True, None, None)
    journal.close()


def test_resume_of_complete_run_skips_everything(tmp_path):
    baseline = run_experiments(IDS, quick=True, jobs=2,
                               journal_dir=str(tmp_path),
                               journal_id="done")
    reg = MetricsRegistry()
    with use_registry(reg):
        resumed = run_experiments(resume="done",
                                  journal_dir=str(tmp_path))
    assert (_result_bytes(resumed, tmp_path, "resumed.jsonl")
            == _result_bytes(baseline, tmp_path, "baseline.jsonl"))
    assert reg.get("exp", "resume_tasks", kind="skipped").value == N_TASKS
    assert reg.get("exp", "resume_tasks",
                   kind="reexecuted").value == 0


def test_partial_journal_reexecutes_only_missing_tasks(tmp_path):
    baseline = run_experiments(IDS, quick=True, jobs=2,
                               journal_dir=str(tmp_path),
                               journal_id="full2")
    full = RunJournal.resume(tmp_path, "full2")
    records = full.records()
    full.close()
    # Rebuild a journal that died after its first result: plan record
    # plus exactly one journaled payload.
    partial = RunJournal.create(tmp_path, "partial")
    partial.append(next(r for r in records if r["type"] == "plan"))
    first = next(r for r in records if r["type"] == "result")
    payload = RunJournal(tmp_path, "full2").cells.load(first["key"])
    assert payload is not None
    partial.cells.save(first["key"], payload)
    partial.append(first)
    partial.close()

    reg = MetricsRegistry()
    with use_registry(reg):
        resumed = run_experiments(resume="partial",
                                  journal_dir=str(tmp_path))
    assert (_result_bytes(resumed, tmp_path, "r.jsonl")
            == _result_bytes(baseline, tmp_path, "b.jsonl"))
    assert reg.get("exp", "resume_tasks", kind="skipped").value == 1
    assert reg.get("exp", "resume_tasks",
                   kind="reexecuted").value == N_TASKS - 1
    # The resumed journal now holds every result: a second resume is
    # idempotent and runs nothing.
    reg2 = MetricsRegistry()
    with use_registry(reg2):
        again = run_experiments(resume="partial",
                                journal_dir=str(tmp_path))
    assert (_result_bytes(again, tmp_path, "a.jsonl")
            == _result_bytes(baseline, tmp_path, "b.jsonl"))
    assert reg2.get("exp", "resume_tasks",
                    kind="skipped").value == N_TASKS


def test_resume_cannot_change_the_experiment_set(tmp_path):
    run_experiments(IDS, quick=True, jobs=2, journal_dir=str(tmp_path),
                    journal_id="pinned")
    with pytest.raises(ResumeError, match="cannot change"):
        run_experiments(["fig03"], resume="pinned",
                        journal_dir=str(tmp_path))


def test_resume_fails_closed_on_plan_digest_mismatch(tmp_path):
    stale = RunJournal.create(tmp_path, "stale")
    stale.append({"type": "plan", "ids": IDS, "quick": True,
                  "faults": None, "flow": None, "digest": "0" * 64,
                  "backend": "local", "tasks": ["table1"]})
    stale.close()
    with pytest.raises(ResumeError, match="digest mismatch"):
        run_experiments(resume="stale", journal_dir=str(tmp_path))


def test_resume_without_plan_record_fails_closed(tmp_path):
    RunJournal.create(tmp_path, "empty").close()
    with pytest.raises(ResumeError, match="no plan record"):
        run_experiments(resume="empty", journal_dir=str(tmp_path))


def test_socket_backend_journals_the_same_store(tmp_path):
    local = run_experiments(IDS, quick=True, jobs=2)
    socket_run = run_experiments(IDS, quick=True, jobs=2,
                                 backend="socket", workers=2,
                                 journal_dir=str(tmp_path),
                                 journal_id="sock")
    assert (_result_bytes(socket_run, tmp_path, "s.jsonl")
            == _result_bytes(local, tmp_path, "l.jsonl"))
    journal = RunJournal.resume(tmp_path, "sock")
    kinds = [r["type"] for r in journal.records()]
    assert kinds.count("result") == N_TASKS
    # Socket lease records carry real worker ids, not the pool stub.
    workers = {r["worker"] for r in journal.records()
               if r["type"] == "lease"}
    assert workers and "pool" not in workers
    journal.close()


# ---------------------------------------------------------------------------
# the crash wall: SIGKILL at named points, resume via the CLI
# ---------------------------------------------------------------------------

def _cli(args, env_extra=None, timeout=110):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.update(env_extra or {})
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=env, cwd=REPO_ROOT, capture_output=True, text=True,
        timeout=timeout)


@pytest.fixture(scope="module")
def baseline_bytes(tmp_path_factory):
    out = tmp_path_factory.mktemp("baseline") / "out.jsonl"
    assert main(["experiments", *IDS, "--out", str(out)]) == 0
    return out.read_bytes()


@pytest.mark.parametrize("backend,crash_point", [
    ("local", "journal.plan"),
    ("local", "journal.result:2"),
    ("local", "scheduler.finalize"),
    ("socket", "backend.lease:2"),
    ("socket", "journal.result"),
])
def test_sigkilled_coordinator_resumes_byte_identical(
        tmp_path, baseline_bytes, backend, crash_point):
    run_id = f"crash-{backend}-{crash_point.replace('.', '-').replace(':', '-')}"
    out = tmp_path / "out.jsonl"
    args = ["experiments", *IDS, "--jobs", "2",
            "--journal-dir", str(tmp_path), "--journal-id", run_id,
            "--out", str(out)]
    if backend == "socket":
        args += ["--backend", "socket", "--workers", "2"]
    crashed = _cli(args, {"REPRO_EXP_CRASH_POINT": crash_point})
    assert crashed.returncode == -signal.SIGKILL, crashed.stderr
    assert not out.exists(), "the store must not exist half-written"

    resumed = _cli(["experiments", "--resume", run_id,
                    "--journal-dir", str(tmp_path), "--out", str(out)])
    assert resumed.returncode == 0, resumed.stderr
    assert out.read_bytes() == baseline_bytes

    journal = RunJournal.resume(tmp_path, run_id)
    records = journal.records()
    resumes = [r for r in records if r["type"] == "resume"]
    assert len(resumes) == 1
    assert resumes[0]["skipped"] + resumes[0]["reexecuted"] == N_TASKS
    # Only unjournaled tasks re-executed: result records are unique.
    result_tasks = [r["task"] for r in records if r["type"] == "result"]
    assert sorted(result_tasks) == sorted(set(result_tasks))
    assert len(result_tasks) == N_TASKS
    assert records[-1]["type"] == "end"
    journal.close()


def test_sigkilled_pipelined_run_resumes_byte_identical(tmp_path,
                                                        baseline_bytes):
    """The crash wall over the credit-pipelined wire: a coordinator
    killed with a full lease window in flight resumes to the same
    bytes — journaled results are skipped, in-flight ones re-executed."""
    run_id = "crash-socket-pipelined"
    out = tmp_path / "out.jsonl"
    crashed = _cli(
        ["experiments", *IDS, "--jobs", "2", "--backend", "socket",
         "--workers", "2", "--pipeline", "4",
         "--journal-dir", str(tmp_path), "--journal-id", run_id,
         "--out", str(out)],
        {"REPRO_EXP_CRASH_POINT": "journal.result:2",
         # orphaned workers must give up quickly, not hold the port
         "REPRO_EXP_CONNECT_BUDGET_S": "5"})
    assert crashed.returncode == -signal.SIGKILL, crashed.stderr
    assert not out.exists()

    resumed = _cli(["experiments", "--resume", run_id,
                    "--journal-dir", str(tmp_path), "--out", str(out)])
    assert resumed.returncode == 0, resumed.stderr
    assert out.read_bytes() == baseline_bytes
    journal = RunJournal.resume(tmp_path, run_id)
    records = journal.records()
    result_tasks = [r["task"] for r in records if r["type"] == "result"]
    assert sorted(result_tasks) == sorted(set(result_tasks))
    assert len(result_tasks) == N_TASKS
    assert records[-1]["type"] == "end"
    journal.close()


def test_cli_resume_of_unknown_run_exits_2(tmp_path):
    rc = main(["experiments", "--resume", "ghost",
               "--journal-dir", str(tmp_path)])
    assert rc == 2
