"""Test wall for :mod:`repro.lint`.

Four layers, mirroring the engine's own structure:

* fixture pairs — every rule catches its bad fixture and stays silent
  on the good one, and each bad fixture triggers *exactly* its rule;
* suppression parsing — line/file scope, standalone-comment targeting,
  mandatory-justification rejection, unknown-rule reporting;
* engine plumbing — JSON report schema, selection expansion, exit
  codes, incremental cache reuse and invalidation;
* the PAR family against intentionally broken ``_legacy`` fixture
  trees, so the parity rules are proved to *fail* when parity rots.
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (RULES, LintCache, LintEngine, Violation,
                        discover_files, load_builtin_rules,
                        parse_suppressions)
from repro.lint.registry import SelectionError, expand_selection

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
REPO_ROOT = Path(__file__).resolve().parent.parent

load_builtin_rules()

#: rule id -> fixture stem; PAR/WIRE rules use whole fixture trees
#: instead.
FILE_RULES = ["DET101", "DET102", "DET103", "DET104", "DET105",
              "SIM201", "SIM202", "SIM203", "SIM204",
              "CON401", "CON402", "CON403", "CON404"]
PAR_RULES = ["PAR301", "PAR302", "PAR303", "PAR304", "PAR305", "PAR306",
             "PAR307"]
WIRE_RULES = ["WIRE501", "WIRE502", "WIRE503", "WIRE504"]


def lint_paths(*paths, select=None, ignore=(), cache=None, root=None):
    engine = LintEngine(select=select, ignore=ignore, cache=cache)
    return engine.run(discover_files([Path(p) for p in paths]),
                      root=root or Path.cwd())


# ---------------------------------------------------------------------------
# fixture pairs
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("rule", FILE_RULES)
def test_bad_fixture_triggers_exactly_its_rule(rule):
    report = lint_paths(FIXTURES / f"{rule.lower()}_bad.py")
    assert report.violations, f"{rule} bad fixture produced no violations"
    assert {v.rule for v in report.violations} == {rule}


@pytest.mark.parametrize("rule", FILE_RULES)
def test_good_fixture_is_clean(rule):
    report = lint_paths(FIXTURES / f"{rule.lower()}_good.py")
    assert report.violations == [], (
        f"{rule} good fixture flagged: {report.violations}")


@pytest.mark.parametrize("tree,rule", [("par301_bad", "PAR301"),
                                       ("par302_bad", "PAR302"),
                                       ("par303_bad", "PAR303"),
                                       ("par304_bad", "PAR304"),
                                       ("par305_bad", "PAR305"),
                                       ("par306_bad", "PAR306"),
                                       ("par307_bad", "PAR307")])
def test_par_bad_tree_triggers_exactly_its_rule(tree, rule):
    report = lint_paths(FIXTURES / tree, root=FIXTURES / tree)
    assert report.violations
    assert {v.rule for v in report.violations} == {rule}


def test_par_good_tree_is_clean():
    report = lint_paths(FIXTURES / "par_good", root=FIXTURES / "par_good")
    assert report.violations == []


def test_par301_catches_both_rot_modes():
    report = lint_paths(FIXTURES / "par301_bad",
                        root=FIXTURES / "par301_bad", select=["PAR301"])
    messages = "\n".join(v.message for v in report.violations)
    assert "call_later" in messages          # patch of a missing method
    assert "signature" in messages           # shim/fast signature drift
    assert len(report.violations) == 2


def test_par302_catches_unflipped_and_twinless_pump():
    report = lint_paths(FIXTURES / "par302_bad",
                        root=FIXTURES / "par302_bad", select=["PAR302"])
    messages = "\n".join(v.message for v in report.violations)
    assert "never" in messages and "flips" in messages
    assert "generator-mode pump" in messages
    assert len(report.violations) == 2


def test_par303_names_the_missing_field():
    report = lint_paths(FIXTURES / "par303_bad",
                        root=FIXTURES / "par303_bad", select=["PAR303"])
    assert len(report.violations) == 1
    assert "wire_rate" in report.violations[0].message
    assert "HardwareProfile" in report.violations[0].message


def test_par303_silent_without_calibration_in_lint_set():
    # Linting only the flow module (calibration outside the file set)
    # must not guess at the schema.
    report = lint_paths(
        FIXTURES / "par303_bad" / "repro" / "flow" / "analytic.py",
        root=FIXTURES / "par303_bad", select=["PAR303"])
    assert report.violations == []


def test_par304_catches_missing_and_rotted_twin_pointer():
    report = lint_paths(FIXTURES / "par304_bad",
                        root=FIXTURES / "par304_bad", select=["PAR304"])
    messages = "\n".join(v.message for v in report.violations)
    assert "no PACKET_TWIN" in messages          # shadowing, undeclared
    assert "repro.gone.runner" in messages       # declared, unresolvable
    assert len(report.violations) == 2


def test_par304_skips_resolution_without_package_root(tmp_path):
    # A single-file lint of the ghost module cannot distinguish a
    # rotted pointer from an unlinted twin, so resolution is skipped.
    report = lint_paths(
        FIXTURES / "par304_bad" / "repro" / "flow" / "ghost.py",
        root=FIXTURES / "par304_bad", select=["PAR304"])
    assert report.violations == []


def test_par305_catches_missing_method_drift_and_nameless():
    report = lint_paths(FIXTURES / "par305_bad",
                        root=FIXTURES / "par305_bad", select=["PAR305"])
    messages = "\n".join(v.message for v in report.violations)
    assert "implements no 'close'" in messages     # incomplete surface
    assert "signature" in messages                 # run_tasks drift
    assert "`name` class" in messages              # registry attr missing
    assert len(report.violations) == 3


def test_par305_silent_without_base_in_lint_set():
    # Linting only the backend module (base outside the file set) must
    # not guess at the abstract surface.
    report = lint_paths(
        FIXTURES / "par305_bad" / "repro" / "exp" / "backends" / "stub.py",
        root=FIXTURES / "par305_bad", select=["PAR305"])
    assert report.violations == []


def test_par306_names_every_banned_clock():
    report = lint_paths(FIXTURES / "par306_bad",
                        root=FIXTURES / "par306_bad", select=["PAR306"])
    messages = "\n".join(v.message for v in report.violations)
    assert "`time.time()`" in messages
    assert "`time.time_ns()`" in messages
    assert "`time.perf_counter()`" in messages
    assert "`datetime.datetime.now()`" in messages
    assert len(report.violations) == 4


def test_par306_only_polices_the_exp_package(tmp_path):
    # The same wall-clock read outside repro/exp/ is DET101's business,
    # not PAR306's.
    mod = tmp_path / "repro" / "sim" / "bench.py"
    mod.parent.mkdir(parents=True)
    mod.write_text("import time\n\ndef stamp():\n    return time.time()\n")
    report = lint_paths(mod, root=tmp_path, select=["PAR306"])
    assert report.violations == []


def test_par307_names_the_uncovered_frame_type():
    report = lint_paths(FIXTURES / "par307_bad",
                        root=FIXTURES / "par307_bad", select=["PAR307"])
    assert len(report.violations) == 1
    assert "'PING'" in report.violations[0].message
    assert "FAIL_CLOSED_FIXTURES" in report.violations[0].message


def test_par307_silent_without_protocol_in_lint_set(tmp_path):
    # A tree with no repro/exp/protocol.py has no vocabulary to check.
    mod = tmp_path / "repro" / "exp" / "other.py"
    mod.parent.mkdir(parents=True)
    mod.write_text("X = 1\n")
    report = lint_paths(mod, root=tmp_path, select=["PAR307"])
    assert report.violations == []


def test_at_least_eight_rules_have_fixture_coverage():
    # The acceptance bar: >= 8 distinct rules demonstrably catch their
    # bad fixture.  13 file rules + 11 project rules are covered above.
    assert len(FILE_RULES) + len(PAR_RULES) + len(WIRE_RULES) >= 8


# ---------------------------------------------------------------------------
# CON rule semantics
# ---------------------------------------------------------------------------

def test_con401_names_attr_and_contexts():
    report = lint_paths(FIXTURES / "con401_bad.py", select=["CON401"])
    assert len(report.violations) == 1
    msg = report.violations[0].message
    assert "`Relay._frames`" in msg
    assert "spawned thread" in msg and "main-thread" in msg


def test_con401_silent_without_thread_entries(tmp_path):
    # The same unguarded writes with no Thread(target=...) in the
    # module are single-threaded code, not a race.
    mod = _write(tmp_path, "mod.py", (
        "class Box:\n"
        "    def __init__(self):\n"
        "        self._items = []\n"
        "    def put(self, x):\n"
        "        self._items.append(x)\n"
        "    def drain(self):\n"
        "        out = list(self._items)\n"
        "        self._items = []\n"
        "        return out\n"))
    assert lint_paths(mod, select=["CON401"]).violations == []


def test_con401_different_locks_are_not_a_common_guard(tmp_path):
    mod = _write(tmp_path, "mod.py", (
        "import threading\n"
        "class Pair:\n"
        "    def __init__(self):\n"
        "        self._a_lock = threading.Lock()\n"
        "        self._b_lock = threading.Lock()\n"
        "        self._items = []\n"
        "        self._t = threading.Thread(target=self._pump)\n"
        "    def _pump(self):\n"
        "        with self._a_lock:\n"
        "            self._items.append(1)\n"
        "    def drain(self):\n"
        "        with self._b_lock:\n"
        "            self._items = []\n"))
    report = lint_paths(mod, select=["CON401"])
    assert len(report.violations) == 1
    assert "no single lock covers" in report.violations[0].message


def test_con402_flags_sleep_and_socket_send_under_lock():
    report = lint_paths(FIXTURES / "con402_bad.py", select=["CON402"])
    messages = "\n".join(v.message for v in report.violations)
    assert "`time.sleep()`" in messages
    assert "sendall" in messages
    assert len(report.violations) == 2


def test_con403_names_the_lock():
    report = lint_paths(FIXTURES / "con403_bad.py", select=["CON403"])
    assert len(report.violations) == 1
    assert "_registry_lock.acquire()" in report.violations[0].message


def test_con404_silent_without_a_pool(tmp_path):
    # A daemon thread mutating module state is only CON404's business
    # when the module also forks a pool.
    mod = _write(tmp_path, "mod.py", (
        "import threading\n"
        "_STATE = {}\n"
        "def _watch():\n"
        "    _STATE['x'] = 1\n"
        "def start():\n"
        "    threading.Thread(target=_watch, daemon=True).start()\n"))
    assert lint_paths(mod, select=["CON404"]).violations == []


# ---------------------------------------------------------------------------
# WIRE trees
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("tree,rule", [("wire501_bad", "WIRE501"),
                                       ("wire502_bad", "WIRE502"),
                                       ("wire503_bad", "WIRE503"),
                                       ("wire504_bad", "WIRE504")])
def test_wire_bad_tree_triggers_exactly_its_rule(tree, rule):
    report = lint_paths(FIXTURES / tree, root=FIXTURES / tree)
    assert report.violations
    assert {v.rule for v in report.violations} == {rule}


def test_wire_good_tree_is_clean():
    report = lint_paths(FIXTURES / "wire_good",
                        root=FIXTURES / "wire_good")
    assert report.violations == []


def test_wire501_names_the_orphan_frame_type():
    report = lint_paths(FIXTURES / "wire501_bad",
                        root=FIXTURES / "wire501_bad", select=["WIRE501"])
    messages = "\n".join(v.message for v in report.violations)
    assert "'PING'" in messages
    assert "never dispatches" in messages        # sent but unhandled
    assert "no dispatch arm in either" in messages  # vocab orphan
    assert len(report.violations) == 2


def test_wire502_names_the_function_and_types():
    report = lint_paths(FIXTURES / "wire502_bad",
                        root=FIXTURES / "wire502_bad", select=["WIRE502"])
    assert len(report.violations) == 1
    msg = report.violations[0].message
    assert "`run`" in msg and "BYE" in msg and "WELCOME" in msg


def test_wire503_catches_unvalidated_path_and_validator_clears_it():
    report = lint_paths(FIXTURES / "wire503_bad",
                        root=FIXTURES / "wire503_bad", select=["WIRE503"])
    assert len(report.violations) == 1
    assert "filesystem" in report.violations[0].message
    # The good tree differs only by routing through valid_key().
    clean = lint_paths(FIXTURES / "wire_good",
                       root=FIXTURES / "wire_good", select=["WIRE503"])
    assert clean.violations == []


def test_wire504_names_field_and_version():
    report = lint_paths(FIXTURES / "wire504_bad",
                        root=FIXTURES / "wire504_bad", select=["WIRE504"])
    assert len(report.violations) == 1
    msg = report.violations[0].message
    assert "'resume'" in msg and "protocol v2" in msg


def test_wire_rules_silent_without_both_endpoints(tmp_path):
    # WIRE501 needs protocol + worker + coordinator in the lint set;
    # a protocol-only run must not produce phantom duality findings.
    report = lint_paths(
        FIXTURES / "wire501_bad" / "repro" / "exp" / "protocol.py",
        root=FIXTURES / "wire501_bad", select=["WIRE"])
    assert report.violations == []


def test_deleting_a_coordinator_handler_breaks_the_gate(tmp_path):
    """Acceptance criterion: removing any `_handle` dispatch branch in
    backends/socket.py makes `python -m repro.lint` exit nonzero."""
    exp = tmp_path / "repro" / "exp"
    (exp / "backends").mkdir(parents=True)
    real = REPO_ROOT / "src" / "repro" / "exp"
    (exp / "protocol.py").write_text(
        (real / "protocol.py").read_text())
    (exp / "worker.py").write_text((real / "worker.py").read_text())
    # Renaming the comparison constant is equivalent to deleting the
    # HEARTBEAT dispatch branch: the arm no longer matches the frame.
    coord = (real / "backends" / "socket.py").read_text()
    assert '== "HEARTBEAT"' in coord
    (exp / "backends" / "socket.py").write_text(
        coord.replace('== "HEARTBEAT"', '== "HEARTBEAT_X"'))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(tmp_path)],
        capture_output=True, text=True, cwd=tmp_path,
        env=_pythonpath_env())
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "WIRE501" in proc.stdout


def test_deleting_a_worker_handler_breaks_the_gate(tmp_path):
    """Acceptance criterion, worker side: removing the CACHE handler
    from worker.py trips WIRE501 on the coordinator's sends."""
    exp = tmp_path / "repro" / "exp"
    (exp / "backends").mkdir(parents=True)
    real = REPO_ROOT / "src" / "repro" / "exp"
    (exp / "protocol.py").write_text(
        (real / "protocol.py").read_text())
    (exp / "backends" / "socket.py").write_text(
        (real / "backends" / "socket.py").read_text())
    worker = (real / "worker.py").read_text()
    assert '== "CACHE"' in worker
    (exp / "worker.py").write_text(
        worker.replace('== "CACHE"', '== "CACHE_X"'))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(tmp_path)],
        capture_output=True, text=True, cwd=tmp_path,
        env=_pythonpath_env())
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "WIRE501" in proc.stdout


def _pythonpath_env():
    import os
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    return env


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------

def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(source)
    return path


def test_trailing_suppression_silences_its_line(tmp_path):
    path = _write(tmp_path, "mod.py", (
        "import time\n"
        "t0 = time.time()  # repro-lint: disable=DET101 -- bench timing\n"
        "t1 = time.time()\n"))
    report = lint_paths(path)
    assert [v.line for v in report.violations] == [3]


def test_standalone_suppression_applies_to_next_code_line(tmp_path):
    path = _write(tmp_path, "mod.py", (
        "import time\n"
        "# repro-lint: disable=DET101 -- startup stamp, logged only\n"
        "t0 = time.time()\n"
        "t1 = time.time()\n"))
    report = lint_paths(path)
    assert [v.line for v in report.violations] == [4]


def test_file_scope_suppression(tmp_path):
    path = _write(tmp_path, "mod.py", (
        "# repro-lint: disable-file=DET101 -- host-side tool, wall clock ok\n"
        "import time\n"
        "t0 = time.time()\n"
        "t1 = time.time()\n"))
    assert lint_paths(path).violations == []


def test_suppression_without_justification_is_inert_and_reported(tmp_path):
    path = _write(tmp_path, "mod.py", (
        "import time\n"
        "t0 = time.time()  # repro-lint: disable=DET101\n"))
    report = lint_paths(path)
    assert {v.rule for v in report.violations} == {"DET101", "LNT001"}


def test_suppression_of_unknown_rule_reports_lnt002(tmp_path):
    path = _write(tmp_path, "mod.py", (
        "import time\n"
        "t0 = time.time()  # repro-lint: disable=DET999,DET101 -- legacy\n"))
    report = lint_paths(path)
    # DET101 is known and justified, so it is suppressed; DET999 is not.
    assert {v.rule for v in report.violations} == {"LNT002"}


def test_suppression_comment_inside_string_is_ignored():
    supp, meta = parse_suppressions("m.py", (
        's = "# repro-lint: disable=DET101 -- not a comment"\n'))
    assert not supp.file_rules and not supp.line_rules and not meta


def test_multi_rule_suppression(tmp_path):
    path = _write(tmp_path, "mod.py", (
        "import time, uuid\n"
        "x = (time.time(), uuid.uuid4())"
        "  # repro-lint: disable=DET101,DET102 -- fixture exercising both\n"))
    assert lint_paths(path).violations == []


def test_file_and_line_pragmas_coexist(tmp_path):
    # A file-wide disable and a same-line disable for a *different*
    # rule must compose: neither widens or cancels the other.
    path = _write(tmp_path, "mod.py", (
        "# repro-lint: disable-file=DET101 -- bench module, wall clock ok\n"
        "import time, uuid\n"
        "t = time.time()\n"
        "u = uuid.uuid4()  # repro-lint: disable=DET102 -- probe id\n"
        "v = uuid.uuid4()\n"))
    report = lint_paths(path)
    assert [(v.rule, v.line) for v in report.violations] == [("DET102", 5)]


def test_unknown_rule_in_file_pragma_reports_lnt002(tmp_path):
    path = _write(tmp_path, "mod.py", (
        "# repro-lint: disable-file=NOPE999 -- typo'd family\n"
        "import time\n"
        "t = time.time()\n"))
    report = lint_paths(path)
    assert {v.rule for v in report.violations} == {"LNT002", "DET101"}


def test_project_rule_suppressed_from_its_anchor_file(tmp_path):
    # Project-scope findings honour suppressions in the file the
    # violation anchors to, same as file-scope rules.
    tree = tmp_path / "wire502"
    shutil.copytree(FIXTURES / "wire502_bad", tree)
    worker = tree / "repro" / "exp" / "worker.py"
    text = worker.read_text()
    assert "def run(" in text
    worker.write_text(text.replace(
        "def run(",
        "# repro-lint: disable=WIRE502 -- fall-through is this "
        "fixture's point\ndef run(", 1))
    report = lint_paths(tree, root=tree, select=["WIRE502"])
    assert report.violations == []


def test_syntax_error_reported_as_lnt003(tmp_path):
    path = _write(tmp_path, "mod.py", "def broken(:\n")
    report = lint_paths(path)
    assert [v.rule for v in report.violations] == ["LNT003"]
    assert report.exit_code == 1


# ---------------------------------------------------------------------------
# selection, report schema, CLI
# ---------------------------------------------------------------------------

def test_selection_expands_families_and_rejects_unknown():
    det = expand_selection(["DET"])
    assert det == [r for r in RULES if r.startswith("DET")]
    assert expand_selection(["SIM203"]) == ["SIM203"]
    with pytest.raises(SelectionError):
        expand_selection(["NOPE"])


def test_select_and_ignore_narrow_the_run(tmp_path):
    path = _write(tmp_path, "mod.py", (
        "import time, uuid\n"
        "x = time.time()\n"
        "y = uuid.uuid4()\n"))
    assert {v.rule for v in lint_paths(path, select=["DET101"]).violations} \
        == {"DET101"}
    assert {v.rule for v in lint_paths(path, ignore=["DET101"]).violations} \
        == {"DET102"}


def test_json_report_schema(tmp_path):
    bad = FIXTURES / "det101_bad.py"
    out = tmp_path / "report.json"
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(bad), "--format", "json",
         "--out", str(out)],
        capture_output=True, text=True, cwd=REPO_ROOT)
    assert proc.returncode == 1
    doc = json.loads(out.read_text())
    assert json.loads(proc.stdout) == doc
    assert doc["tool"] == "repro.lint"
    assert set(doc) == {"tool", "version", "files_checked", "violations",
                        "counts", "cache"}
    assert doc["files_checked"] == 1
    assert doc["counts"] == {"DET101": 2}
    for v in doc["violations"]:
        assert set(v) == {"rule", "name", "path", "line", "col", "message"}
        assert v["rule"] == "DET101"
    assert set(doc["cache"]) == {"incremental", "hits", "misses"}


def test_cli_exit_codes(tmp_path):
    clean = _write(tmp_path, "clean.py", "x = 1\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(clean)],
        capture_output=True, text=True, cwd=REPO_ROOT)
    assert proc.returncode == 0, proc.stderr
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(clean),
         "--select", "BOGUS"],
        capture_output=True, text=True, cwd=REPO_ROOT)
    assert proc.returncode == 2
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(tmp_path / "missing")],
        capture_output=True, text=True, cwd=REPO_ROOT)
    assert proc.returncode == 2


def test_cli_list_rules(tmp_path):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "--list-rules"],
        capture_output=True, text=True, cwd=REPO_ROOT)
    assert proc.returncode == 0
    for rid in (FILE_RULES + PAR_RULES + WIRE_RULES
                + ["LNT001", "LNT002", "LNT003"]):
        assert rid in proc.stdout


# ---------------------------------------------------------------------------
# incremental cache
# ---------------------------------------------------------------------------

def test_incremental_cache_hits_and_invalidation(tmp_path):
    src = _write(tmp_path, "mod.py", "import time\nx = time.time()\n")
    cache_dir = tmp_path / "cache"

    first = lint_paths(src, cache=LintCache(cache_dir))
    assert (first.cache_hits, first.cache_misses) == (0, 1)
    second = lint_paths(src, cache=LintCache(cache_dir))
    assert (second.cache_hits, second.cache_misses) == (1, 0)
    assert second.violations == first.violations

    # Editing the file invalidates its entry.
    src.write_text("import time\ny = 1\nx = time.time()\n")
    third = lint_paths(src, cache=LintCache(cache_dir))
    assert (third.cache_hits, third.cache_misses) == (0, 1)
    assert [v.line for v in third.violations] == [3]

    # Changing the enabled rule set changes the key too.
    fourth = lint_paths(src, cache=LintCache(cache_dir),
                        select=["DET101"])
    assert fourth.cache_misses == 1


def test_corrupted_cache_entry_is_a_miss(tmp_path):
    src = _write(tmp_path, "mod.py", "import time\nx = time.time()\n")
    cache_dir = tmp_path / "cache"
    lint_paths(src, cache=LintCache(cache_dir))
    entries = list((cache_dir / "lint").glob("*.json"))
    assert len(entries) == 1
    entries[0].write_text("{ truncated")
    report = lint_paths(src, cache=LintCache(cache_dir))
    assert (report.cache_hits, report.cache_misses) == (0, 1)
    assert [v.rule for v in report.violations] == ["DET101"]


def test_violation_round_trip():
    v = Violation("DET101", "wall-clock", "a/b.py", 3, 7, "msg")
    assert Violation.from_dict(v.to_dict()) == v


# ---------------------------------------------------------------------------
# the gate itself
# ---------------------------------------------------------------------------

# ---------------------------------------------------------------------------
# SARIF output
# ---------------------------------------------------------------------------

#: Structural subset of the SARIF 2.1.0 schema covering everything the
#: renderer emits.  The full schema is ~200 KB; this pins the invariants
#: code-scanning upload actually relies on.
SARIF_SCHEMA = {
    "type": "object",
    "required": ["$schema", "version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "columnKind": {"enum": ["utf16CodeUnits",
                                            "unicodeCodePoints"]},
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {"driver": {
                            "type": "object",
                            "required": ["name", "rules"],
                            "properties": {"rules": {
                                "type": "array",
                                "items": {
                                    "type": "object",
                                    "required": ["id", "name",
                                                 "shortDescription"],
                                    "properties": {"shortDescription": {
                                        "type": "object",
                                        "required": ["text"],
                                    }},
                                },
                            }},
                        }},
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "level", "message",
                                         "locations"],
                            "properties": {
                                "level": {"enum": ["none", "note",
                                                   "warning", "error"]},
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "required": ["physicalLocation"],
                                        "properties": {"physicalLocation": {
                                            "type": "object",
                                            "required": ["artifactLocation",
                                                         "region"],
                                            "properties": {"region": {
                                                "type": "object",
                                                "required": ["startLine"],
                                                "properties": {
                                                    "startLine": {
                                                        "type": "integer",
                                                        "minimum": 1},
                                                    "startColumn": {
                                                        "type": "integer",
                                                        "minimum": 1},
                                                },
                                            }},
                                        }},
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def _lint_cli(*argv, cwd=REPO_ROOT):
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *argv],
        capture_output=True, text=True, cwd=cwd)


def test_sarif_output_validates_against_schema(tmp_path):
    import jsonschema
    proc = _lint_cli(str(FIXTURES / "det101_bad.py"), "--format", "sarif")
    assert proc.returncode == 1
    doc = json.loads(proc.stdout)
    jsonschema.validate(doc, SARIF_SCHEMA)
    run = doc["runs"][0]
    # ruleIndex must point at the matching driver rule for every result.
    rules = run["tool"]["driver"]["rules"]
    assert [r["id"] for r in rules] == list(RULES)
    for result in run["results"]:
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]
    # Columns are 1-based in SARIF; the engine reports 0-based cols.
    json_proc = _lint_cli(str(FIXTURES / "det101_bad.py"),
                          "--format", "json")
    cols = [v["col"] for v in json.loads(json_proc.stdout)["violations"]]
    sarif_cols = [r["locations"][0]["physicalLocation"]["region"]
                  ["startColumn"] for r in run["results"]]
    assert sarif_cols == [c + 1 for c in cols]


def test_sarif_clean_run_still_lists_all_rules(tmp_path):
    clean = _write(tmp_path, "clean.py", "x = 1\n")
    proc = _lint_cli(str(clean), "--format", "sarif")
    assert proc.returncode == 0
    doc = json.loads(proc.stdout)
    run = doc["runs"][0]
    assert run["results"] == []
    assert len(run["tool"]["driver"]["rules"]) == len(RULES)


# ---------------------------------------------------------------------------
# --jobs parallelism
# ---------------------------------------------------------------------------

def test_jobs_output_is_byte_identical_to_serial():
    """Acceptance criterion: ``--jobs N`` may not reorder or alter the
    report relative to the serial run."""
    argv = (str(FIXTURES / "con401_bad.py"),
            str(FIXTURES / "con402_bad.py"),
            str(FIXTURES / "det101_bad.py"),
            str(FIXTURES / "wire502_bad"),
            "--format", "json")
    serial = _lint_cli(*argv, "--jobs", "1")
    pooled = _lint_cli(*argv, "--jobs", "2")
    assert serial.returncode == 1, serial.stderr
    assert pooled.returncode == 1, pooled.stderr
    assert serial.stdout == pooled.stdout


def test_jobs_rejects_nonpositive():
    proc = _lint_cli(str(FIXTURES / "det101_bad.py"), "--jobs", "0")
    assert proc.returncode == 2


def test_repo_tree_lints_clean():
    """The merged tree must satisfy its own gate (acceptance criterion)."""
    report = lint_paths(REPO_ROOT / "src", REPO_ROOT / "tools",
                        REPO_ROOT / "benchmarks", root=REPO_ROOT)
    assert report.violations == [], "\n".join(
        f"{v.path}:{v.line}: {v.rule} {v.message}"
        for v in report.violations)
    assert report.files_checked > 100
