"""Unit tests for the TCP stack and congestion control."""

import pytest

from repro.calibration import KB, MB
from repro.fabric import build_cluster_of_clusters
from repro.ipoib.interface import IPoIBNetwork
from repro.sim import Simulator
from repro.tcp import CongestionControl, TcpStack


def _stacks(delay_us=0.0, mode="ud", mtu=None, nodes=(1, 1)):
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, nodes[0], nodes[1],
                                       wan_delay_us=delay_us)
    net = IPoIBNetwork(fabric, mode=mode, mtu=mtu)
    sa = TcpStack(net.add_interface(fabric.cluster_a[0]))
    sb = TcpStack(net.add_interface(fabric.cluster_b[0]))
    return sim, sa, sb


# ---------------------------------------------------------------------------
# congestion control
# ---------------------------------------------------------------------------

def test_cc_starts_in_slow_start():
    cc = CongestionControl(mss=1000, init_segments=10)
    assert cc.cwnd == 10000
    assert cc.in_slow_start


def test_cc_slow_start_doubles_per_window():
    cc = CongestionControl(mss=1000, init_segments=10)
    cc.on_ack(10000)  # a full window of ACKs
    assert cc.cwnd == 20000


def test_cc_congestion_avoidance_linear():
    cc = CongestionControl(mss=1000, init_segments=10, ssthresh=5000)
    assert not cc.in_slow_start
    before = cc.cwnd
    cc.on_ack(int(cc.cwnd))  # one full window
    assert cc.cwnd == pytest.approx(before + 1000, rel=0.01)


def test_cc_loss_halves_window():
    cc = CongestionControl(mss=1000, init_segments=64)
    cc.on_loss()
    assert cc.cwnd == 32000
    assert cc.ssthresh == 32000


def test_cc_rejects_bad_mss():
    with pytest.raises(ValueError):
        CongestionControl(mss=0)


# ---------------------------------------------------------------------------
# connection management
# ---------------------------------------------------------------------------

def test_connect_establishes_both_ends():
    sim, sa, sb = _stacks()
    listener = sb.listen(80)
    out = {}

    def server():
        sock = yield listener.accept()
        out["server"] = sock

    def client():
        sock = yield sa.connect(sb.lid, 80)
        out["client"] = sock

    sim.process(server())
    p = sim.process(client())
    sim.run(until=p)
    sim.run(until=sim.now + 100)
    assert out["client"].peer_port == 80
    assert out["server"].peer_lid == sa.lid


def test_listen_twice_on_port_raises():
    _, _, sb = _stacks()
    sb.listen(80)
    with pytest.raises(ValueError):
        sb.listen(80)


def test_connect_to_closed_port_hangs_not_crashes():
    sim, sa, sb = _stacks()
    p = sa.connect(sb.lid, 9999)
    sim.run(until=10000.0)
    assert not p.processed  # no listener: SYN dropped, connect pending


def test_window_negotiated_via_handshake():
    sim, sa, sb = _stacks()
    listener = sb.listen(80, window=256 * KB)
    out = {}

    def client():
        sock = yield sa.connect(sb.lid, 80, window=128 * KB)
        out["sock"] = sock

    sim.process(client())
    sim.run()
    assert out["sock"].peer_rwnd == 256 * KB


# ---------------------------------------------------------------------------
# data transfer
# ---------------------------------------------------------------------------

def _transfer(sim, sa, sb, nbytes, window=None):
    listener = sb.listen(80, window=window)
    out = {}

    def server():
        sock = yield listener.accept()
        yield sock.recv_bytes(nbytes)
        out["t"] = sim.now

    def client():
        sock = yield sa.connect(sb.lid, 80, window=window)
        sock.send(nbytes)

    done = sim.process(server())
    sim.process(client())
    sim.run(until=done)
    return out["t"]


def test_bytes_arrive_completely():
    sim, sa, sb = _stacks()
    t = _transfer(sim, sa, sb, 1 * MB)
    assert t > 0


def test_segmentation_respects_mss():
    sim, sa, sb = _stacks()
    listener = sb.listen(80)
    done = {}

    def server():
        sock = yield listener.accept()
        yield sock.recv_bytes(100 * KB)
        done["rcv"] = sock.rcv_next

    def client():
        sock = yield sa.connect(sb.lid, 80)
        sock.send(100 * KB)
        done["sock"] = sock

    d = sim.process(server())
    sim.process(client())
    sim.run(until=d)
    sock = done["sock"]
    assert done["rcv"] == 100 * KB
    # MSS for IPoIB-UD: 2044 - 40 = 2004 bytes
    assert sock.segments_sent >= (100 * KB) // 2004


def test_larger_window_faster_over_delay():
    t_small = _transfer(*_stacks(delay_us=1000.0), 2 * MB, window=64 * KB)
    t_big = _transfer(*_stacks(delay_us=1000.0), 2 * MB, window=1 * MB)
    assert t_big < t_small / 3


def test_window_limits_inflight():
    sim, sa, sb = _stacks(delay_us=5000.0)
    listener = sb.listen(80, window=64 * KB)
    out = {}

    def server():
        sock = yield listener.accept()

    def client():
        sock = yield sa.connect(sb.lid, 80, window=64 * KB)
        sock.cc.cwnd = 10 * MB  # not cc-limited
        sock.send(4 * MB)
        out["sock"] = sock

    sim.process(server())
    sim.process(client())
    sim.run(until=30000.0)  # mid-flight (handshake 10ms, transfer ~600ms)
    assert 0 < out["sock"].inflight <= 64 * KB


def test_records_preserve_boundaries_and_order():
    sim, sa, sb = _stacks()
    listener = sb.listen(80)
    got = []

    def server():
        sock = yield listener.accept()
        for _ in range(3):
            off, obj = yield sock.recv_record()
            got.append((off, obj))

    def client():
        sock = yield sa.connect(sb.lid, 80)
        sock.send(10 * KB, record="first")
        sock.send(5 * KB, record="second")
        sock.send(1, record="third")

    d = sim.process(server())
    sim.process(client())
    sim.run(until=d)
    assert [g[1] for g in got] == ["first", "second", "third"]
    assert got[0][0] == 10 * KB
    assert got[1][0] == 15 * KB
    assert got[2][0] == 15 * KB + 1


def test_bidirectional_traffic_on_one_socket():
    sim, sa, sb = _stacks()
    listener = sb.listen(80)
    out = {}

    def server():
        sock = yield listener.accept()
        yield sock.recv_bytes(64 * KB)
        sock.send(32 * KB)

    def client():
        sock = yield sa.connect(sb.lid, 80)
        sock.send(64 * KB)
        yield sock.recv_bytes(32 * KB)
        out["done"] = sim.now

    sim.process(server())
    p = sim.process(client())
    sim.run(until=p)
    assert out["done"] > 0


def test_close_propagates_fin():
    sim, sa, sb = _stacks()
    listener = sb.listen(80)
    out = {}

    def server():
        sock = yield listener.accept()
        out["server_sock"] = sock

    def client():
        sock = yield sa.connect(sb.lid, 80)
        sock.close()
        out["client_sock"] = sock

    sim.process(server())
    sim.process(client())
    sim.run(until=sim.now + 10000)
    assert out["client_sock"]._closed
    assert out["server_sock"]._closed


def test_send_on_closed_socket_raises():
    sim, sa, sb = _stacks()
    listener = sb.listen(80)
    out = {}

    def client():
        sock = yield sa.connect(sb.lid, 80)
        sock.close()
        out["sock"] = sock

    sim.process(client())
    sim.run(until=sim.now + 10000)
    with pytest.raises(RuntimeError):
        out["sock"].send(10)


def test_send_rejects_nonpositive():
    sim, sa, sb = _stacks()
    listener = sb.listen(80)
    out = {}

    def client():
        out["sock"] = yield sa.connect(sb.lid, 80)

    sim.process(client())
    sim.run(until=sim.now + 10000)
    with pytest.raises(ValueError):
        out["sock"].send(0)


def test_slow_start_limits_early_throughput():
    """Without warm start, a short transfer over a long pipe is slower."""
    from repro.ipoib import netperf
    sim = Simulator()
    f = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=1000.0)
    cold = netperf.run_stream_bw(sim, f, f.cluster_a[0], f.cluster_b[0],
                                 total_bytes=2 * MB, mode="ud",
                                 warm_start=False)
    sim2 = Simulator()
    f2 = build_cluster_of_clusters(sim2, 1, 1, wan_delay_us=1000.0)
    warm = netperf.run_stream_bw(sim2, f2, f2.cluster_a[0],
                                 f2.cluster_b[0], total_bytes=2 * MB,
                                 mode="ud", warm_start=True)
    assert cold < warm
