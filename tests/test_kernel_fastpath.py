"""Tests for the event-kernel fast path.

Covers the ``call_at`` scheduling contract (ordering, cancellation,
freelist recycling), :class:`ReusableTimeout`, the hardened
``Event.trigger``, ``run(until=<number>)`` boundary semantics,
condition edge cases, the interrupt-vs-termination race, in-flight
``Link.set_delay`` behaviour — and the central equivalence claim: a
busy WAN workload produces identical clocks, event counts and
bandwidths with the fast path enabled and with the legacy
allocation-per-event dispatch patched back in.
"""

import pytest

from repro.fabric import build_cluster_of_clusters
from repro.fabric.link import Link
from repro.fabric.packet import Frame
from repro.sim import (URGENT, AllOf, AnyOf, ReusableTimeout,
                       SimulationError, Simulator)
from repro.sim._legacy import legacy_dispatch
from repro.verbs import perftest


# ---------------------------------------------------------------------------
# call_at ordering and cancellation
# ---------------------------------------------------------------------------

def test_call_at_shares_heap_order_with_events():
    """Callbacks fire exactly where an Event scheduled at the same
    instant would: (time, priority, seq) order, FIFO among equals."""
    sim = Simulator()
    log = []

    def waiter():
        yield sim.timeout(5.0)
        log.append("timeout")

    sim.call_at(5.0, lambda: log.append("cb-before"))
    sim.process(waiter())
    sim.call_at(5.0, lambda: log.append("cb-after"))
    sim.call_at(5.0, lambda: log.append("cb-urgent"), priority=URGENT)
    sim.run()
    # URGENT overtakes every NORMAL entry at t=5; the rest keep seq
    # order.  The process's Timeout is scheduled when the generator
    # first runs (its t=0 kick-off pop), which is after both call_at
    # lines above executed — so it fires last.
    assert log == ["cb-urgent", "cb-before", "cb-after", "timeout"]


def test_call_at_with_arg_and_call_soon():
    sim = Simulator()
    got = []
    sim.call_at(1.0, got.append, "x")
    sim.call_soon(got.append, "soon")
    sim.run()
    assert got == ["soon", "x"]
    assert sim.now == 1.0


def test_call_at_cancel_makes_dispatch_a_noop():
    sim = Simulator()
    fired = []
    handle = sim.call_at(3.0, fired.append, "nope")
    keep = sim.call_at(3.0, fired.append, "yes")
    handle.cancel()
    sim.run()
    assert fired == ["yes"]
    # The cancelled record still occupied its heap slot (one pop).
    assert sim.event_count == 2


def test_fire_and_forget_records_recycle_through_the_pool():
    sim = Simulator()
    assert sim.call_at(1.0, lambda: None, cancellable=False) is None
    sim.run()
    assert len(sim._cb_pool) == 1
    recycled = sim._cb_pool[0]
    # The next fire-and-forget schedule reuses the pooled record.
    sim.call_at(1.0, lambda: None, cancellable=False)
    assert not sim._cb_pool
    sim.run()
    assert sim._cb_pool[0] is recycled
    # Cancellable records are never pooled: a caller may hold the
    # handle and cancel after this dispatch cycle.
    sim.call_at(1.0, lambda: None)
    sim.run()
    assert len(sim._cb_pool) == 1


# ---------------------------------------------------------------------------
# ReusableTimeout
# ---------------------------------------------------------------------------

def test_reusable_timeout_rearms_across_sleeps():
    sim = Simulator()
    wait = ReusableTimeout(sim)
    clocks = []

    def sleeper():
        for delay in (2.0, 3.0, 1.5):
            yield wait.arm(delay)
            clocks.append(sim.now)

    sim.process(sleeper())
    sim.run()
    assert clocks == [2.0, 5.0, 6.5]


def test_reusable_timeout_rejects_negative_delay_and_double_arm():
    sim = Simulator()
    wait = ReusableTimeout(sim)
    with pytest.raises(ValueError):
        wait.arm(-1.0)
    wait.arm(5.0)
    with pytest.raises(SimulationError):
        wait.arm(1.0)  # still pending
    sim.run()


# ---------------------------------------------------------------------------
# Event.trigger hardening (satellite)
# ---------------------------------------------------------------------------

def test_trigger_from_untriggered_event_raises():
    sim = Simulator()
    src = sim.event()
    dst = sim.event()
    with pytest.raises(SimulationError, match="has not been triggered"):
        dst.trigger(src)


def test_trigger_copies_success_and_failure():
    sim = Simulator()
    src = sim.event()
    src.succeed(42)
    dst = sim.event()
    dst.trigger(src)
    assert dst.triggered and dst.value == 42


# ---------------------------------------------------------------------------
# run(until=<number>) boundary (satellite)
# ---------------------------------------------------------------------------

def test_run_until_boundary_is_strict():
    """Events scheduled for exactly ``until`` do not run; the clock
    still lands on ``until``."""
    sim = Simulator()
    fired = []
    sim.call_at(5.0, fired.append, "at-5")
    sim.call_at(4.999, fired.append, "before")
    sim.run(until=5.0)
    assert fired == ["before"]
    assert sim.now == 5.0
    sim.run(until=6.0)  # the boundary event runs in the next window
    assert fired == ["before", "at-5"]


# ---------------------------------------------------------------------------
# Condition edge cases (satellite)
# ---------------------------------------------------------------------------

def _failed_processed_event(sim):
    """A failed event whose callbacks have run (caught by a process)."""
    evt = sim.event()

    def catcher():
        try:
            yield evt
        except ValueError:
            pass

    sim.process(catcher())
    evt.fail(ValueError("boom"))
    sim.run()
    assert evt.processed and not evt.ok
    return evt


@pytest.mark.parametrize("cond_cls", [AnyOf, AllOf])
def test_condition_with_already_failed_event_fails(cond_cls):
    sim = Simulator()
    failed = _failed_processed_event(sim)
    pending = sim.event()
    caught = []

    def waiter():
        try:
            yield cond_cls(sim, [failed, pending])
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(waiter())
    sim.run()
    assert caught == ["boom"]


def test_interrupt_racing_same_instant_termination_is_defused():
    """An interrupt issued at the same instant the target terminates
    normally must neither raise into the dead generator nor crash the
    dispatcher with an unhandled failure."""
    sim = Simulator()
    gate = sim.event()
    done = []

    def target():
        yield gate
        done.append(sim.now)

    proc = sim.process(target())

    def driver():
        yield sim.timeout(5.0)
        # URGENT: the gate pop (resuming and terminating the target)
        # lands before the interrupt event's pop.
        gate.succeed(priority=URGENT)
        proc.interrupt("too late")

    sim.process(driver())
    sim.run()
    assert done == [5.0]
    assert proc.processed and proc.ok


# ---------------------------------------------------------------------------
# Link.set_delay in-flight behaviour (satellite)
# ---------------------------------------------------------------------------

class _Probe:
    """Link endpoint recording frame arrival times."""

    cut_through = False

    def __init__(self, sim):
        self.sim = sim
        self.arrivals = []

    def receive_frame(self, frame, link):
        self.arrivals.append((frame.frame_id, self.sim.now))


def test_set_delay_spares_frames_already_past_serialization():
    sim = Simulator()
    a, b = _Probe(sim), _Probe(sim)
    link = Link(sim, rate=1000.0, delay_us=100.0, name="dl").attach(a, b)

    def frame():
        return Frame(src_lid=1, dst_lid=2, size=1000, wire_bytes=1000)

    f1, f2, f3 = frame(), frame(), frame()
    link.send(a, f1)  # serialized by t=1, delivery scheduled for t=101
    sim.call_at(50.0, lambda: link.set_delay(0.0))
    sim.call_at(60.0, lambda: link.send(a, f2))
    sim.call_at(110.0, lambda: link.send(a, f3))
    sim.run()
    arrivals = dict(b.arrivals)
    # f1's delivery was scheduled when its last byte hit the wire (t=1,
    # delay still 100) — the change at t=50 cannot recall it.
    assert arrivals[f1.frame_id] == pytest.approx(101.0)
    # f2 serialized after the change (would arrive at t=61), but wires
    # are FIFO: delivery is clamped to never overtake f1.
    assert arrivals[f2.frame_id] == pytest.approx(101.0)
    # f3 serialized after f1 arrived: the new delay applies cleanly.
    assert arrivals[f3.frame_id] == pytest.approx(111.0)


# ---------------------------------------------------------------------------
# Fast path vs legacy dispatch: whole-simulation equivalence
# ---------------------------------------------------------------------------

def _busy_wan_workload():
    """RC bandwidth then UD latency across a delayed Longbow WAN —
    exercises links, switches, Longbow credit flow, RC windows/ACKs and
    the UD pump in one simulation."""
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, 2, 2, wan_delay_us=250.0)
    bw = perftest.run_send_bw(sim, fabric.cluster_a[0],
                              fabric.cluster_b[0], 65536, iters=48)
    lat = perftest.run_send_lat(sim, fabric.cluster_a[1],
                                fabric.cluster_b[1], 256, iters=24,
                                transport="ud")
    sim.run()  # drain trailing ACKs so event counts cover everything
    return {"events": sim.event_count, "clock": sim.now,
            "bw": bw, "lat": lat}


def test_fast_and_legacy_dispatch_are_equivalent():
    fast = _busy_wan_workload()
    with legacy_dispatch():
        legacy = _busy_wan_workload()
    assert fast == legacy
    assert fast["events"] > 3_000  # meaningfully busy, not a toy run
