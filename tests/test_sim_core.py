"""Unit tests for the discrete-event kernel (repro.sim.core)."""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator


# ---------------------------------------------------------------------------
# clock & scheduling
# ---------------------------------------------------------------------------

def test_time_starts_at_zero():
    assert Simulator().now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    assert sim.now == 5.0


def test_run_until_number_stops_clock_exactly():
    sim = Simulator()
    sim.timeout(100.0)
    sim.run(until=30.0)
    assert sim.now == 30.0


def test_run_until_number_does_not_process_events_at_boundary():
    sim = Simulator()
    fired = []
    t = sim.timeout(10.0)
    t.callbacks.append(lambda e: fired.append(sim.now))
    sim.run(until=10.0)
    assert fired == []  # boundary events remain pending
    sim.run()
    assert fired == [10.0]


def test_run_until_past_raises():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    for delay in (7.0, 3.0, 5.0):
        t = sim.timeout(delay)
        t.callbacks.append(lambda e, d=delay: order.append(d))
    sim.run()
    assert order == [3.0, 5.0, 7.0]


def test_same_time_events_fire_fifo():
    sim = Simulator()
    order = []
    for i in range(10):
        t = sim.timeout(1.0)
        t.callbacks.append(lambda e, i=i: order.append(i))
    sim.run()
    assert order == list(range(10))


def test_step_on_empty_queue_raises():
    with pytest.raises(SimulationError):
        Simulator().step()


def test_peek_reports_next_event_time():
    sim = Simulator()
    sim.timeout(42.0)
    assert sim.peek() == 42.0
    sim.run()
    assert sim.peek() == float("inf")


def test_event_count_increments():
    sim = Simulator()
    for _ in range(5):
        sim.timeout(1.0)
    sim.run()
    assert sim.event_count == 5


# ---------------------------------------------------------------------------
# events
# ---------------------------------------------------------------------------

def test_event_lifecycle():
    sim = Simulator()
    e = sim.event()
    assert not e.triggered and not e.processed
    e.succeed("v")
    assert e.triggered and not e.processed
    sim.run()
    assert e.processed and e.value == "v"


def test_event_value_before_trigger_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        _ = sim.event().value


def test_double_trigger_raises():
    sim = Simulator()
    e = sim.event()
    e.succeed()
    with pytest.raises(SimulationError):
        e.succeed()


def test_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_unhandled_failure_surfaces_from_run():
    sim = Simulator()
    sim.event().fail(RuntimeError("boom"))
    with pytest.raises(RuntimeError, match="boom"):
        sim.run()


# ---------------------------------------------------------------------------
# processes
# ---------------------------------------------------------------------------

def test_process_runs_and_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(3.0)
        return 99

    p = sim.process(proc())
    assert sim.run(until=p) == 99
    assert sim.now == 3.0


def test_process_sequential_timeouts_accumulate():
    sim = Simulator()
    times = []

    def proc():
        for d in (1.0, 2.0, 3.0):
            yield sim.timeout(d)
            times.append(sim.now)

    sim.process(proc())
    sim.run()
    assert times == [1.0, 3.0, 6.0]


def test_timeout_carries_value_to_process():
    sim = Simulator()
    got = []

    def proc():
        got.append((yield sim.timeout(1.0, value="hello")))

    sim.process(proc())
    sim.run()
    assert got == ["hello"]


def test_process_join():
    sim = Simulator()

    def child():
        yield sim.timeout(4.0)
        return "done"

    def parent():
        result = yield sim.process(child())
        return (sim.now, result)

    p = sim.process(parent())
    assert sim.run(until=p) == (4.0, "done")


def test_joining_already_finished_process():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        return 7

    c = sim.process(child())

    def parent():
        yield sim.timeout(10.0)
        v = yield c  # c finished long ago
        return v

    p = sim.process(parent())
    assert sim.run(until=p) == 7
    assert sim.now == 10.0


def test_process_exception_propagates_to_joiner():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise ValueError("child failed")

    def parent():
        try:
            yield sim.process(child())
        except ValueError as e:
            return f"caught {e}"

    p = sim.process(parent())
    assert sim.run(until=p) == "caught child failed"


def test_unjoined_process_failure_raises_at_run():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        raise KeyError("oops")

    sim.process(proc())
    with pytest.raises(KeyError):
        sim.run()


def test_yielding_non_event_fails_the_process():
    sim = Simulator()

    def proc():
        yield 42

    p = sim.process(proc())
    with pytest.raises(TypeError):
        sim.run(until=p)


def test_yielding_foreign_event_fails_the_process():
    sim1, sim2 = Simulator(), Simulator()

    def proc():
        yield sim2.timeout(1.0)

    p = sim1.process(proc())
    with pytest.raises(SimulationError):
        sim1.run(until=p)


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)


def test_run_until_event_returns_value():
    sim = Simulator()
    e = sim.event()

    def proc():
        yield sim.timeout(2.0)
        e.succeed(123)

    sim.process(proc())
    assert sim.run(until=e) == 123


def test_run_until_never_triggered_event_raises():
    sim = Simulator()
    e = sim.event()
    sim.timeout(1.0)
    with pytest.raises(SimulationError):
        sim.run(until=e)


# ---------------------------------------------------------------------------
# interrupts
# ---------------------------------------------------------------------------

def test_interrupt_wakes_sleeping_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
            log.append("slept")
        except Interrupt as i:
            log.append(("interrupted", i.cause, sim.now))

    def interrupter(target):
        yield sim.timeout(5.0)
        target.interrupt("wake up")

    t = sim.process(sleeper())
    sim.process(interrupter(t))
    sim.run()
    assert log == [("interrupted", "wake up", 5.0)]


def test_interrupt_detaches_from_waited_event():
    sim = Simulator()
    e = sim.event()
    resumed = []

    def waiter():
        try:
            yield e
        except Interrupt:
            pass
        yield sim.timeout(1.0)
        resumed.append(sim.now)

    def interrupter(target):
        yield sim.timeout(2.0)
        target.interrupt()
        e.succeed()  # must NOT resume the waiter twice

    w = sim.process(waiter())
    sim.process(interrupter(w))
    sim.run()
    assert resumed == [3.0]


def test_interrupting_dead_process_raises():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_process_cannot_interrupt_itself():
    sim = Simulator()

    def proc():
        with pytest.raises(SimulationError):
            sim.active_process.interrupt()
        yield sim.timeout(1.0)

    p = sim.process(proc())
    sim.run(until=p)


def test_is_alive():
    sim = Simulator()

    def proc():
        yield sim.timeout(5.0)

    p = sim.process(proc())
    assert p.is_alive
    sim.run()
    assert not p.is_alive


# ---------------------------------------------------------------------------
# conditions
# ---------------------------------------------------------------------------

def test_any_of_returns_on_first():
    sim = Simulator()

    def proc():
        t1, t2 = sim.timeout(5.0, "a"), sim.timeout(9.0, "b")
        result = yield sim.any_of([t1, t2])
        return (sim.now, list(result.values()))

    p = sim.process(proc())
    assert sim.run(until=p) == (5.0, ["a"])


def test_all_of_waits_for_all():
    sim = Simulator()

    def proc():
        ts = [sim.timeout(d, d) for d in (2.0, 8.0, 4.0)]
        result = yield sim.all_of(ts)
        return (sim.now, sorted(result.values()))

    p = sim.process(proc())
    assert sim.run(until=p) == (8.0, [2.0, 4.0, 8.0])


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()

    def proc():
        yield sim.all_of([])
        return sim.now

    p = sim.process(proc())
    assert sim.run(until=p) == 0.0


def test_all_of_with_already_processed_events():
    sim = Simulator()

    def proc():
        t = sim.timeout(1.0, "x")
        yield t
        result = yield sim.all_of([t, sim.timeout(2.0, "y")])
        return sorted(result.values())

    p = sim.process(proc())
    assert sim.run(until=p) == ["x", "y"]


def test_condition_failure_propagates():
    sim = Simulator()
    bad = sim.event()

    def proc():
        try:
            yield sim.all_of([sim.timeout(10.0), bad])
        except RuntimeError as e:
            return str(e)

    def failer():
        yield sim.timeout(1.0)
        bad.fail(RuntimeError("inner"))

    sim.process(failer())
    p = sim.process(proc())
    assert sim.run(until=p) == "inner"
