"""CLI tests for the ``--metrics`` flag on all four subcommands.

Each test drives ``repro.cli.main`` with a small workload plus
``--metrics``, captures stdout, and checks that (a) the normal result
line still prints and (b) a parseable metrics summary table follows.
"""

import re

import pytest

from repro.cli import build_parser, main

SUBCOMMANDS = ["perftest", "netperf", "iozone", "experiments"]


def _summary_rows(out):
    """Parse `metric  type  value` rows out of the summary table."""
    lines = out.splitlines()
    starts = [i for i, l in enumerate(lines) if l.startswith("metric ")]
    assert starts, f"no metrics summary header in output:\n{out}"
    rows = {}
    for line in lines[starts[-1] + 2:]:
        m = re.match(r"(\S+)\s+(counter|gauge|histogram)\s+(.+)", line)
        if not m:
            break
        rows[m.group(1)] = (m.group(2), m.group(3))
    return rows


def test_perftest_bw_metrics(capsys):
    assert main(["perftest", "bw", "--size", "65536", "--iters", "16",
                 "--delay-us", "1000", "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "RC send bandwidth" in out
    rows = _summary_rows(out)
    assert rows, "summary table has no rows"
    kind, value = rows["sim.events_processed"]
    assert kind == "counter" and float(value) > 0
    assert rows["rc.wqe_completions"][0] == "counter"
    assert any(name.startswith("link.bytes") for name in rows)


def test_perftest_ud_metrics(capsys):
    assert main(["perftest", "bw", "--size", "2048", "--iters", "8",
                 "--transport", "ud", "--metrics"]) == 0
    rows = _summary_rows(capsys.readouterr().out)
    assert rows["ud.messages"] == ("counter", "8")


def test_netperf_metrics(capsys):
    assert main(["netperf", "--mode", "rc", "--bytes", str(1 << 20),
                 "--delay-us", "100", "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "IPoIB-RC throughput" in out
    rows = _summary_rows(out)
    assert rows["tcp.segments_sent"][0] == "counter"
    assert rows["tcp.cwnd_bytes"][0] == "histogram"
    assert "tcp.window_limited_us" in rows


def test_iozone_metrics(capsys):
    assert main(["iozone", "--transport", "rdma", "--threads", "2",
                 "--bytes", str(1 << 20), "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "NFS/rdma read" in out
    rows = _summary_rows(out)
    assert float(rows["nfs.read_bytes"][1]) >= (1 << 20)
    assert rows["nfs.rpc_inflight"][0] == "gauge"


def test_experiments_metrics(capsys):
    assert main(["experiments", "table1", "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out
    # table1 computes the delay map without running a simulation, so the
    # summary is the (still well-formed) empty-registry message.
    assert "metrics: none recorded" in out or _summary_rows(out)


def test_experiments_fig03_collects_metrics(capsys):
    assert main(["experiments", "fig03", "--metrics"]) == 0
    rows = _summary_rows(capsys.readouterr().out)
    assert float(rows["sim.events_processed"][1]) > 0


def test_metrics_off_by_default(capsys):
    assert main(["perftest", "bw", "--size", "4096", "--iters", "4"]) == 0
    out = capsys.readouterr().out
    assert "bandwidth" in out
    assert "metric" not in out


@pytest.mark.parametrize("sub", SUBCOMMANDS)
def test_help_advertises_metrics_flag(sub):
    """Every subcommand's argparse help must document --metrics."""
    parser = build_parser()
    sub_action = next(a for a in parser._actions
                      if hasattr(a, "choices") and sub in (a.choices or {}))
    help_text = sub_action.choices[sub].format_help()
    assert "--metrics" in help_text
    assert "summary table" in help_text
