"""Unit tests for Store / PriorityStore / Resource."""

import pytest

from repro.sim import PriorityStore, Resource, Simulator, Store


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------

def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for i in range(5):
            yield store.put(i)

    def consumer():
        for _ in range(5):
            got.append((yield store.get()))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        got.append(((yield store.get()), sim.now))

    def producer():
        yield sim.timeout(7.0)
        yield store.put("item")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [("item", 7.0)]


def test_store_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=2)
    done_times = []

    def producer():
        for i in range(3):
            yield store.put(i)
            done_times.append(sim.now)

    def consumer():
        yield sim.timeout(10.0)
        yield store.get()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert done_times == [0.0, 0.0, 10.0]


def test_store_len_tracks_items():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    sim.run()
    assert len(store) == 2


def test_store_try_put_full():
    sim = Simulator()
    store = Store(sim, capacity=1)
    assert store.try_put("a")
    sim.run()
    assert not store.try_put("b")


def test_store_invalid_capacity():
    with pytest.raises(ValueError):
        Store(Simulator(), capacity=0)


def test_store_multiple_consumers_fifo_service():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(name):
        item = yield store.get()
        got.append((name, item))

    sim.process(consumer("c1"))
    sim.process(consumer("c2"))

    def producer():
        yield sim.timeout(1.0)
        yield store.put("x")
        yield store.put("y")

    sim.process(producer())
    sim.run()
    assert got == [("c1", "x"), ("c2", "y")]


# ---------------------------------------------------------------------------
# PriorityStore
# ---------------------------------------------------------------------------

def test_priority_store_orders_items():
    sim = Simulator()
    store = PriorityStore(sim)
    got = []

    def producer():
        for i in (5, 1, 3):
            yield store.put(i)

    def consumer():
        yield sim.timeout(1.0)
        for _ in range(3):
            got.append((yield store.get()))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == [1, 3, 5]


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------

def test_resource_mutual_exclusion():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    timeline = []

    def worker(name):
        with res.request() as req:
            yield req
            timeline.append((name, "in", sim.now))
            yield sim.timeout(5.0)
            timeline.append((name, "out", sim.now))

    sim.process(worker("w1"))
    sim.process(worker("w2"))
    sim.run()
    assert timeline == [("w1", "in", 0.0), ("w1", "out", 5.0),
                        ("w2", "in", 5.0), ("w2", "out", 10.0)]


def test_resource_capacity_two_overlaps():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    finish = []

    def worker():
        with res.request() as req:
            yield req
            yield sim.timeout(5.0)
            finish.append(sim.now)

    for _ in range(4):
        sim.process(worker())
    sim.run()
    assert finish == [5.0, 5.0, 10.0, 10.0]


def test_resource_release_is_idempotent():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def worker():
        req = res.request()
        yield req
        res.release(req)
        res.release(req)  # no-op

    sim.process(worker())
    sim.run()
    assert res.count == 0


def test_resource_cancel_queued_request():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    holder = res.request()
    sim.run()
    queued = res.request()
    res.release(queued)  # cancel while still waiting
    res.release(holder)
    sim.run()
    assert res.count == 0 and res.queue_length == 0


def test_resource_queue_length():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    res.request()
    res.request()
    res.request()
    sim.run()
    assert res.count == 1
    assert res.queue_length == 2


def test_resource_invalid_capacity():
    with pytest.raises(ValueError):
        Resource(Simulator(), capacity=0)
