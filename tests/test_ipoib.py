"""Unit tests for IPoIB interfaces (UD and connected mode)."""

import pytest

from repro.calibration import DEFAULT_PROFILE, MB
from repro.fabric import build_cluster_of_clusters
from repro.ipoib import IPoIBNetwork, netperf
from repro.sim import Simulator


def _net(mode="ud", mtu=None, delay=0.0):
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=delay)
    net = IPoIBNetwork(fabric, mode=mode, mtu=mtu)
    ia = net.add_interface(fabric.cluster_a[0])
    ib = net.add_interface(fabric.cluster_b[0])
    return sim, fabric, net, ia, ib


def test_default_mtus():
    *_, ia, _ = _net("ud")
    assert ia.mtu == DEFAULT_PROFILE.ipoib_ud_mtu
    *_, ia, _ = _net("rc")
    assert ia.mtu == DEFAULT_PROFILE.ipoib_rc_mtu


def test_rejects_unknown_mode():
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, 1, 1)
    with pytest.raises(ValueError):
        IPoIBNetwork(fabric, mode="xrc")


def test_ud_mtu_cannot_exceed_ib_datagram():
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, 1, 1)
    with pytest.raises(ValueError):
        IPoIBNetwork(fabric, mode="ud", mtu=4096)


def test_packet_delivery_carries_payload_and_source():
    sim, fabric, net, ia, ib = _net("ud")
    got = []
    ib.receiver = lambda src, n, payload: got.append((src, n, payload))
    ia.send(ib.node.lid, 1000, payload="hello")
    sim.run()
    assert got == [(ia.node.lid, 1000, "hello")]


def test_send_above_mtu_rejected():
    sim, fabric, net, ia, ib = _net("ud")
    with pytest.raises(ValueError):
        ia.send(ib.node.lid, 5000)


def test_rc_mode_creates_connection_lazily():
    sim, fabric, net, ia, ib = _net("rc")
    assert not ia._rc_qps
    ia.send(ib.node.lid, 30000, payload="big")
    assert ib.node.lid in ia._rc_qps
    assert ia.node.lid in ib._rc_qps
    got = []
    ib.receiver = lambda src, n, p: got.append((src, n, p))
    sim.run()
    assert got == [(ia.node.lid, 30000, "big")]


def test_rc_mode_reuses_connection():
    sim, fabric, net, ia, ib = _net("rc")
    ia.send(ib.node.lid, 100)
    qp1 = ia._rc_qps[ib.node.lid]
    ia.send(ib.node.lid, 100)
    assert ia._rc_qps[ib.node.lid] is qp1


def test_lookup_unknown_lid_raises():
    sim, fabric, net, ia, ib = _net("ud")
    with pytest.raises(KeyError):
        net.lookup(9999)


def test_add_interface_idempotent():
    sim, fabric, net, ia, _ = _net("ud")
    assert net.add_interface(fabric.cluster_a[0]) is ia


def test_packets_counted():
    sim, fabric, net, ia, ib = _net("ud")
    ib.receiver = lambda *a: None
    for _ in range(5):
        ia.send(ib.node.lid, 500)
    sim.run()
    assert ia.packets_sent == 5
    assert ib.packets_received == 5


# ---------------------------------------------------------------------------
# netperf-level behaviour (paper Fig. 6/7 shapes)
# ---------------------------------------------------------------------------

def test_ud_peak_far_below_verbs_rates():
    sim = Simulator()
    f = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=0.0)
    bw = netperf.run_stream_bw(sim, f, f.cluster_a[0], f.cluster_b[0],
                               total_bytes=4 * MB, mode="ud")
    assert 300 < bw < 600  # TCP stack cost dominates at 2K MTU


def test_rc_large_mtu_beats_ud():
    sim = Simulator()
    f = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=0.0)
    rc = netperf.run_stream_bw(sim, f, f.cluster_a[0], f.cluster_b[0],
                               total_bytes=4 * MB, mode="rc")
    sim2 = Simulator()
    f2 = build_cluster_of_clusters(sim2, 1, 1, wan_delay_us=0.0)
    ud = netperf.run_stream_bw(sim2, f2, f2.cluster_a[0], f2.cluster_b[0],
                               total_bytes=4 * MB, mode="ud")
    assert rc > 1.5 * ud


def test_rc_mtu_ordering():
    """Fig. 7a: larger IP MTU -> higher throughput."""
    results = []
    for mtu in (2044, 16384, 65520):
        sim = Simulator()
        f = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=0.0)
        results.append(netperf.run_stream_bw(
            sim, f, f.cluster_a[0], f.cluster_b[0], total_bytes=4 * MB,
            mode="rc", mtu=mtu))
    assert results[0] < results[1] < results[2]


def test_parallel_streams_help_at_high_delay():
    """Fig. 6b: streams recover throughput over long pipes."""
    sim = Simulator()
    f = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=10000.0)
    one = netperf.run_parallel_stream_bw(sim, f, f.cluster_a[0],
                                         f.cluster_b[0], 8 * MB, streams=1,
                                         mode="ud")
    sim2 = Simulator()
    f2 = build_cluster_of_clusters(sim2, 1, 1, wan_delay_us=10000.0)
    eight = netperf.run_parallel_stream_bw(sim2, f2, f2.cluster_a[0],
                                           f2.cluster_b[0], 8 * MB,
                                           streams=8, mode="ud")
    assert eight > 2 * one


def test_parallel_streams_no_gain_at_lan():
    """At zero delay the stack CPU is the bottleneck, not the window."""
    sim = Simulator()
    f = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=0.0)
    one = netperf.run_parallel_stream_bw(sim, f, f.cluster_a[0],
                                         f.cluster_b[0], 8 * MB, streams=1,
                                         mode="ud")
    sim2 = Simulator()
    f2 = build_cluster_of_clusters(sim2, 1, 1, wan_delay_us=0.0)
    eight = netperf.run_parallel_stream_bw(sim2, f2, f2.cluster_a[0],
                                           f2.cluster_b[0], 8 * MB,
                                           streams=8, mode="ud")
    assert eight < 1.25 * one


def test_streams_validation():
    sim = Simulator()
    f = build_cluster_of_clusters(sim, 1, 1)
    with pytest.raises(ValueError):
        netperf.run_parallel_stream_bw(sim, f, f.cluster_a[0],
                                       f.cluster_b[0], 1 * MB, streams=0)
