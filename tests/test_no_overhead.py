"""Guard: attaching a metrics registry must not perturb the simulation.

The observability contract is "observe, never steer": a run with a
registry attached must produce *identical* simulated results — same
bandwidth, same event count, same virtual clock — as the same run
without one.  This is what lets golden metric snapshots stand in for
protocol behaviour: if metrics could shift timing, the snapshots would
pin the instrumentation instead of the protocols.
"""

import pytest

from repro.core import wan_pair
from repro.obs import MetricsRegistry, use_registry
from repro.verbs import perftest

DELAY_US = 1000.0
SIZE = 65536
ITERS = 32


def _run(attach_metrics):
    if attach_metrics:
        registry = MetricsRegistry()
        with use_registry(registry):
            s = wan_pair(DELAY_US)
            bw = perftest.run_send_bw(s.sim, s.a, s.b, SIZE, iters=ITERS,
                                      transport="rc")
    else:
        s = wan_pair(DELAY_US)
        bw = perftest.run_send_bw(s.sim, s.a, s.b, SIZE, iters=ITERS,
                                  transport="rc")
        assert s.sim.metrics is None
    s.sim.run()  # drain so the comparison covers the whole run
    return bw, s.sim.event_count, s.sim.now


def test_registry_attachment_does_not_change_results():
    plain = _run(attach_metrics=False)
    observed = _run(attach_metrics=True)
    assert observed[0] == plain[0], "bandwidth changed under observation"
    assert observed[1] == plain[1], "event count changed under observation"
    assert observed[2] == plain[2], "virtual clock changed under observation"


def test_detached_components_hold_no_metric_handles():
    s = wan_pair(0.0)
    bw = perftest.run_send_bw(s.sim, s.a, s.b, 4096, iters=4)
    assert bw > 0
    assert s.sim.metrics is None
    assert s.sim._m_events is None


def test_default_registry_restored_even_on_exception():
    from repro.obs import get_default_registry
    assert get_default_registry() is None
    with pytest.raises(RuntimeError):
        with use_registry(MetricsRegistry()) as reg:
            assert get_default_registry() is reg
            raise RuntimeError("escape")
    assert get_default_registry() is None
