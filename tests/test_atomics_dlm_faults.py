"""Tests for remote atomics, the distributed lock manager, fault
injection (loss/jitter) and the deterministic RNG registry."""

import pytest

from repro.calibration import DEFAULT_PROFILE
from repro.core import LockClient, LockServer, wan_pair
from repro.fabric import build_back_to_back, build_cluster_of_clusters
from repro.sim import RngRegistry, Simulator
from repro.verbs import Opcode, RecvWR, create_connected_rc_pair


# ---------------------------------------------------------------------------
# atomics
# ---------------------------------------------------------------------------

def _atomic_pair():
    sim = Simulator()
    fabric = build_back_to_back(sim)
    qa, qb = create_connected_rc_pair(*fabric.nodes)
    return sim, fabric, qa, qb


def test_fetch_add_returns_old_value_and_adds():
    sim, fabric, qa, qb = _atomic_pair()
    fabric.nodes[1].hca.atomic_mem[0x10] = 5
    qa.atomic_fetch_add(0x10, 3)

    def waiter():
        wc = yield qa.send_cq.wait()
        return wc

    wc = sim.run(until=sim.process(waiter()))
    assert wc.opcode is Opcode.ATOMIC_FETCH_ADD
    assert wc.payload == 5
    assert fabric.nodes[1].hca.atomic_mem[0x10] == 8


def test_cmp_swap_success_and_failure():
    sim, fabric, qa, qb = _atomic_pair()
    mem = fabric.nodes[1].hca.atomic_mem
    mem[0x20] = 7
    qa.atomic_cmp_swap(0x20, 7, 100)   # matches: swaps
    qa.atomic_cmp_swap(0x20, 7, 200)   # stale compare: no swap

    def waiter():
        a = yield qa.send_cq.wait()
        b = yield qa.send_cq.wait()
        return (a.payload, b.payload)

    old1, old2 = sim.run(until=sim.process(waiter()))
    assert (old1, old2) == (7, 100)
    assert mem[0x20] == 100


def test_atomic_on_unset_word_defaults_to_zero():
    sim, fabric, qa, qb = _atomic_pair()
    qa.atomic_fetch_add(0x99, 1)

    def waiter():
        wc = yield qa.send_cq.wait()
        return wc.payload

    assert sim.run(until=sim.process(waiter())) == 0


def test_atomics_serialize_concurrent_increments():
    """Two clients incrementing concurrently never lose an update."""
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, 2, 1, wan_delay_us=10.0)
    server_node = fabric.cluster_b[0]
    pairs = [create_connected_rc_pair(n, server_node)
             for n in fabric.cluster_a]

    def incrementer(qp, n):
        for _ in range(n):
            qp.atomic_fetch_add(0x40, 1)
            yield qp.send_cq.wait()

    procs = [sim.process(incrementer(qa, 20)) for qa, _ in pairs]
    sim.run(until=sim.all_of(procs))
    assert server_node.hca.atomic_mem[0x40] == 40


def test_atomic_wr_validation():
    from repro.verbs import AtomicWR
    with pytest.raises(ValueError):
        AtomicWR(Opcode.SEND, 0x0)


# ---------------------------------------------------------------------------
# distributed lock manager
# ---------------------------------------------------------------------------

def test_lock_acquire_release_roundtrip():
    s = wan_pair(10.0)
    server = LockServer(s.a)
    client = LockClient(s.b, server, client_id=1)
    addr = server.create_lock()
    out = {}

    def main():
        yield from client.acquire(addr)
        out["held_by"] = server.holder(addr)
        yield from client.release(addr)
        out["after"] = server.holder(addr)

    s.sim.run(until=s.sim.process(main()))
    assert out == {"held_by": 1, "after": 0}


def test_lock_mutual_exclusion_under_contention():
    s = wan_pair(50.0)
    server = LockServer(s.a)
    addr = server.create_lock()
    clients = [LockClient(s.b, server, client_id=i + 1)
               for i in range(3)]
    critical = []

    def worker(client):
        for _ in range(3):
            yield from client.acquire(addr)
            critical.append(("enter", client.client_id, s.sim.now))
            yield s.sim.timeout(25.0)
            critical.append(("exit", client.client_id, s.sim.now))
            yield from client.release(addr)

    procs = [s.sim.process(worker(c)) for c in clients]
    s.sim.run(until=s.sim.all_of(procs))
    # critical sections never overlap
    depth = 0
    for kind, _cid, _t in critical:
        depth += 1 if kind == "enter" else -1
        assert depth in (0, 1)
    assert sum(1 for k, *_ in critical if k == "enter") == 9


def test_lock_handoff_cost_scales_with_wan_delay():
    times = []
    for delay in (10.0, 1000.0):
        s = wan_pair(delay)
        server = LockServer(s.a)
        client = LockClient(s.b, server, client_id=1)
        addr = server.create_lock()
        span = {}

        def main():
            t0 = s.sim.now
            for _ in range(5):
                yield from client.acquire(addr)
                yield from client.release(addr)
            span["t"] = (s.sim.now - t0) / 5

        s.sim.run(until=s.sim.process(main()))
        times.append(span["t"])
    # each acquire+release costs ~2 RTTs; 1000us delay -> ~4000us each
    assert times[1] > times[0] + 3000.0


def test_lock_release_foreign_lock_raises():
    s = wan_pair(0.0)
    server = LockServer(s.a)
    c1 = LockClient(s.b, server, client_id=1)
    addr = server.create_lock()
    server.node.hca.atomic_mem[addr] = 2  # someone else holds it

    def main():
        yield from c1.release(addr)

    with pytest.raises(RuntimeError, match="held by"):
        s.sim.run(until=s.sim.process(main()))


def test_lock_client_id_validation():
    s = wan_pair(0.0)
    server = LockServer(s.a)
    with pytest.raises(ValueError):
        LockClient(s.b, server, client_id=0)


def test_lock_acquire_timeout():
    s = wan_pair(0.0)
    server = LockServer(s.a)
    client = LockClient(s.b, server, client_id=1)
    addr = server.create_lock()
    server.node.hca.atomic_mem[addr] = 9  # permanently held

    def main():
        yield from client.acquire(addr, max_retries=2)

    with pytest.raises(TimeoutError):
        s.sim.run(until=s.sim.process(main()))


# ---------------------------------------------------------------------------
# fault injection + RNG
# ---------------------------------------------------------------------------

def test_rng_registry_deterministic_and_independent():
    r1, r2 = RngRegistry(42), RngRegistry(42)
    assert r1.stream("a").random() == r2.stream("a").random()
    ra = RngRegistry(42)
    rb = RngRegistry(42)
    _ = rb.stream("other").random()  # extra stream must not perturb "a"
    assert ra.stream("a").random() == rb.stream("a").random()
    assert RngRegistry(1).stream("a").random() != \
        RngRegistry(2).stream("a").random()


def test_rng_reseed_clears_streams():
    reg = RngRegistry(1)
    v1 = reg.stream("x").random()
    reg.reseed(1)
    assert reg.stream("x").random() == v1


def test_fault_injection_validation():
    sim = Simulator()
    fabric = build_back_to_back(sim)
    rng = RngRegistry(7).stream("link")
    with pytest.raises(ValueError):
        fabric.links[0].inject_faults(rng, loss_rate=1.5)
    with pytest.raises(ValueError):
        fabric.links[0].inject_faults(rng, jitter_us=-1.0)


def test_rc_survives_lossy_link():
    """Every message still arrives exactly once over a 5%-loss link."""
    profile = DEFAULT_PROFILE.with_overrides(rc_retransmit_timeout_us=50.0)
    sim = Simulator()
    fabric = build_back_to_back(sim, profile=profile)
    fabric.links[0].inject_faults(RngRegistry(3).stream("loss"),
                                  loss_rate=0.05)
    qa, qb = create_connected_rc_pair(*fabric.nodes)
    N = 60
    for _ in range(N):
        qb.post_recv(RecvWR(1 << 20))
    for i in range(N):
        qa.send(2048, payload=i)

    def receiver():
        got = []
        for _ in range(N):
            wc = yield qb.recv_cq.wait()
            got.append(wc.payload)
        return got

    got = sim.run(until=sim.process(receiver()))
    assert got == list(range(N))
    assert fabric.links[0].frames_dropped > 0  # losses actually happened


def test_jitter_does_not_reorder_rc():
    sim = Simulator()
    fabric = build_back_to_back(sim)
    fabric.links[0].inject_faults(RngRegistry(5).stream("jit"),
                                  jitter_us=50.0)
    qa, qb = create_connected_rc_pair(*fabric.nodes)
    N = 40
    for _ in range(N):
        qb.post_recv(RecvWR(1 << 20))
    for i in range(N):
        qa.send(64, payload=i)

    def receiver():
        got = []
        for _ in range(N):
            wc = yield qb.recv_cq.wait()
            got.append(wc.payload)
        return got

    assert sim.run(until=sim.process(receiver())) == list(range(N))
