"""Unit tests for the Obsidian Longbow model and the delay map."""

import pytest

from repro.calibration import DEFAULT_PROFILE, MB
from repro.fabric import build_cluster_of_clusters
from repro.sim import Simulator
from repro.verbs import perftest
from repro.wan import (TABLE1_ROWS, delay_for_distance_km,
                       distance_km_for_delay, table1)


# ---------------------------------------------------------------------------
# delay map (paper Table 1)
# ---------------------------------------------------------------------------

def test_delay_per_km_is_five_microseconds():
    assert delay_for_distance_km(1) == 5.0


def test_delay_distance_roundtrip():
    for km in (0.5, 1, 20, 200, 2000):
        assert distance_km_for_delay(delay_for_distance_km(km)) == pytest.approx(km)


def test_table1_matches_paper_rows():
    assert table1() == TABLE1_ROWS
    assert (2000.0, 10000.0) in table1()


def test_negative_inputs_rejected():
    with pytest.raises(ValueError):
        delay_for_distance_km(-1)
    with pytest.raises(ValueError):
        distance_km_for_delay(-1)


# ---------------------------------------------------------------------------
# Longbow behaviour
# ---------------------------------------------------------------------------

def _lat(sim, fabric, size=2, iters=10):
    return perftest.run_send_lat(sim, fabric.cluster_a[0],
                                 fabric.cluster_b[0], size, iters=iters)


def test_longbow_pair_adds_roughly_five_microseconds():
    from repro.fabric import build_back_to_back
    sim = Simulator()
    b2b = _direct_lat = perftest.run_send_lat(
        sim, *build_back_to_back(sim).nodes, size=2, iters=10)
    sim2 = Simulator()
    f = build_cluster_of_clusters(sim2, 1, 1, wan_delay_us=0.0)
    through = _lat(sim2, f)
    added = through - b2b
    assert 4.0 < added < 8.0  # "about 5 us" in the paper


def test_wan_delay_adds_to_latency_one_way():
    sim = Simulator()
    f = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=0.0)
    base = _lat(sim, f)
    sim2 = Simulator()
    f2 = build_cluster_of_clusters(sim2, 1, 1, wan_delay_us=1000.0)
    assert _lat(sim2, f2) == pytest.approx(base + 1000.0, rel=0.01)


def test_wan_delay_knob_is_dynamic():
    sim = Simulator()
    f = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=0.0)
    l0 = _lat(sim, f)
    f.set_wan_delay(500.0)
    l1 = _lat(sim, f)
    assert l1 == pytest.approx(l0 + 500.0, rel=0.01)


def test_wan_rate_caps_throughput_at_sdr():
    sim = Simulator()
    f = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=0.0)
    bw = perftest.run_send_bw(sim, f.cluster_a[0], f.cluster_b[0],
                              size=1 * MB, iters=24)
    assert bw < DEFAULT_PROFILE.sdr_rate  # never beats SDR wire speed
    assert bw > 0.9 * DEFAULT_PROFILE.sdr_rate


def test_longbow_credits_throttle_when_tiny():
    """With a starved credit pool the WAN cannot pipeline large windows."""
    profile = DEFAULT_PROFILE.with_overrides(longbow_buffer_bytes=64 * 1024)
    sim = Simulator()
    f = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=1000.0,
                                  profile=profile)
    starved = perftest.run_send_bw(sim, f.cluster_a[0], f.cluster_b[0],
                                   size=256 * 1024, iters=24)
    sim2 = Simulator()
    f2 = build_cluster_of_clusters(sim2, 1, 1, wan_delay_us=1000.0)
    deep = perftest.run_send_bw(sim2, f2.cluster_a[0], f2.cluster_b[0],
                                size=256 * 1024, iters=24)
    assert starved < 0.35 * deep


def test_longbow_credits_conserved():
    sim = Simulator()
    f = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=50.0)
    perftest.run_send_bw(sim, f.cluster_a[0], f.cluster_b[0],
                         size=64 * 1024, iters=32)
    sim.run()
    pool = DEFAULT_PROFILE.longbow_buffer_bytes
    assert f.wan.a.credits == pool
    assert f.wan.b.credits == pool


def test_longbow_forwards_both_directions():
    sim = Simulator()
    f = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=10.0)
    perftest.run_send_lat(sim, f.cluster_a[0], f.cluster_b[0], 2, iters=5)
    assert f.wan.a.frames_forwarded > 0
    assert f.wan.b.frames_forwarded > 0


def test_wan_carries_bytes_counter():
    sim = Simulator()
    f = build_cluster_of_clusters(sim, 1, 1)
    perftest.run_send_bw(sim, f.cluster_a[0], f.cluster_b[0],
                         size=4096, iters=16)
    assert f.wan.bytes_carried >= 16 * 4096
