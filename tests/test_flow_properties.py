"""Seeded randomized property wall for flow-mode invariants.

The equivalence wall (test_flow_equivalence) pins flow mode to the
packet truth on the paper's own grids; this wall checks the invariants
that must hold on *any* grid, sampled from a seeded generator so runs
are reproducible:

* completion time is monotone in transfer size — an analytic tail may
  shift a completion by a fraction of a percent, but it must never
  make a bigger transfer finish earlier than a smaller one;
* wire bytes are conserved on the WAN link — a collapse skips
  simulating frames, yet the link accounting must still carry every
  skipped payload byte plus its header overhead;
* flow never arms under a fault plan, an active fault spec, a metrics
  registry, or when the mode is off/unset — those runs must stay
  packet-pure (``sim.flow_events == 0``);
* the period detector confirms genuinely periodic trains (with
  bounded jitter) and refuses aperiodic ones.
"""

import random

import pytest

from repro.core.scenario import wan_pair
from repro.faults.context import activated as faults_activated
from repro.faults.plan import FaultPlan
from repro.flow.context import activated as flow_activated
from repro.flow.crossover import PeriodDetector
from repro.ipoib import netperf
from repro.obs.metrics import MetricsRegistry, use_registry

KB, MB = 1024, 1024 * 1024

SEED = 20080905  # fixed: every CI run samples the same grid

#: (mode, mtu) cells the generator draws from.
CELLS = [("ud", None), ("rc", 2044), ("rc", 16384), ("rc", 65520)]
DELAYS = (0.0, 10.0, 100.0, 1000.0, 10000.0)


def _run(total, mode, mtu, delay_us):
    s = wan_pair(delay_us)
    bw = netperf.run_stream_bw(s.sim, s.fabric, s.a, s.b,
                               total_bytes=total, mode=mode, mtu=mtu)
    return s, bw


def _duration_us(total, bw_mb_s):
    return total / MB / bw_mb_s * 1e6


def test_completion_time_monotone_in_total_bytes():
    rng = random.Random(SEED)
    for _ in range(4):
        mode, mtu = rng.choice(CELLS)
        delay = rng.choice(DELAYS)
        durations = []
        with flow_activated("auto"):
            for total in (2 * MB, 4 * MB, 8 * MB):
                _, bw = _run(total, mode, mtu, delay)
                durations.append(_duration_us(total, bw))
        assert durations == sorted(durations), (
            f"{mode}/mtu={mtu} d={delay}: completion times not "
            f"monotone in size: {durations}")


def test_wan_wire_bytes_conserved_under_collapse():
    rng = random.Random(SEED + 1)
    total = 8 * MB
    for _ in range(3):
        mode, mtu = rng.choice(CELLS)
        delay = rng.choice(DELAYS[:3])  # keep the packet run cheap
        s_pkt, _ = _run(total, mode, mtu, delay)
        with flow_activated("auto"):
            s_flow, _ = _run(total, mode, mtu, delay)
        carried_pkt = s_pkt.fabric.wan.wan_link.bytes_carried
        carried_flow = s_flow.fabric.wan.wan_link.bytes_carried
        assert carried_flow >= total, (
            f"{mode}/mtu={mtu} d={delay}: WAN link carried fewer bytes "
            f"than the payload ({carried_flow} < {total})")
        assert abs(carried_flow - carried_pkt) / carried_pkt <= 0.01, (
            f"{mode}/mtu={mtu} d={delay}: WAN wire-byte accounting "
            f"diverged: packet {carried_pkt} flow {carried_flow}")


@pytest.mark.parametrize("flow_mode", ["auto", "on"])
def test_active_fault_spec_forces_packet_mode(flow_mode):
    with flow_activated(flow_mode), faults_activated("loss=0.001,seed=3"):
        s, bw = _run(4 * MB, "ud", None, 100.0)
    assert bw > 0
    assert s.sim.flow_events == 0


@pytest.mark.parametrize("flow_mode", ["auto", "on"])
def test_armed_fault_plan_forces_packet_mode(flow_mode):
    with flow_activated(flow_mode):
        s = wan_pair(100.0)
        FaultPlan.parse("loss=0.001,seed=3").apply(s.fabric)
        bw = netperf.run_stream_bw(s.sim, s.fabric, s.a, s.b,
                                   total_bytes=4 * MB, mode="ud")
    assert bw > 0
    assert s.sim.flow_events == 0


def test_metrics_registry_forces_packet_mode():
    with flow_activated("on"), use_registry(MetricsRegistry()):
        s, bw = _run(4 * MB, "ud", None, 0.0)
    assert bw > 0
    assert s.sim.flow_events == 0


@pytest.mark.parametrize("flow_mode", [None, "off"])
def test_off_and_unset_stay_packet_pure(flow_mode):
    with flow_activated(flow_mode):
        s, bw = _run(4 * MB, "rc", 2044, 0.0)
    assert bw > 0
    assert s.sim.flow_events == 0


def test_flow_on_actually_collapses_a_bulk_transfer():
    """The gate's positive side: a clean single-stream bulk run under
    ``on`` must take the analytic path (guards the wall against
    silently passing because flow never engages)."""
    with flow_activated("on"):
        s, bw = _run(8 * MB, "rc", 2044, 100.0)
    assert bw > 0
    assert s.sim.flow_events > 0


# ---------------------------------------------------------------------------
# PeriodDetector properties
# ---------------------------------------------------------------------------

def _feed_periodic(det, rng, gap_us, n, jitter_us=0.0, start=1000.0):
    t = start
    for _ in range(n):
        t += gap_us + (rng.uniform(-jitter_us, jitter_us)
                       if jitter_us else 0.0)
        det.add(t, ("steady",))
    return t


def test_detector_confirms_periodic_train_and_predicts():
    rng = random.Random(SEED + 2)
    for _ in range(5):
        gap = rng.uniform(50.0, 5000.0)
        det = PeriodDetector(window_quanta=1, atol_us=1e-3,
                             jitter_unit_us=0.0, min_samples=8)
        last = _feed_periodic(det, rng, gap, 24)
        assert det.stable
        horizon = rng.randrange(10, 400)
        predicted = det.predict(horizon)
        assert predicted == pytest.approx(last + horizon * gap,
                                          rel=1e-6)


def test_detector_tolerates_bounded_jitter():
    rng = random.Random(SEED + 3)
    gap, jitter = 1000.0, 0.5
    det = PeriodDetector(window_quanta=1, atol_us=1e-3,
                         jitter_unit_us=jitter, jitter_cap_us=4 * jitter,
                         min_samples=8)
    last = _feed_periodic(det, rng, gap, 32, jitter_us=jitter)
    assert det.stable
    # Prediction error stays bounded by the jitter scale, not the
    # horizon: the mean-gap estimate averages the noise away.
    assert det.predict(100) == pytest.approx(last + 100 * gap,
                                             abs=100 * jitter)


def test_detector_rejects_aperiodic_train():
    rng = random.Random(SEED + 4)
    det = PeriodDetector(window_quanta=1, atol_us=1e-3, min_samples=8,
                         max_samples=64)
    t = 0.0
    for _ in range(64):
        t += rng.uniform(50.0, 150.0)
        det.add(t, ("steady",))
        assert not det.stable


def test_detector_fingerprint_change_breaks_confirmation():
    rng = random.Random(SEED + 5)
    det = PeriodDetector(window_quanta=1, atol_us=1e-3, min_samples=8)
    _feed_periodic(det, rng, 100.0, 24)
    assert det.stable
    det.add(det.times[-1] + 100.0, ("cwnd-changed",))
    assert not det.stable
