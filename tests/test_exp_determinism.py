"""Determinism wall for the parallel experiment engine.

The engine's contract (ISSUE 2): serial and parallel runs produce
byte-identical ``ExperimentResult`` JSON, repeated runs are identical,
and a cache hit returns the same bytes as the cold run it replays.
The representative subset covers a plain experiment (table1, fig13b),
cell-decomposed verbs sweeps (fig04a, fig05a) and — implicitly through
them — every delay in Table 1.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import registry
from repro.core.experiments import run_all
from repro.core.registry import ExperimentResult
from repro.exp import ResultCache, run_experiments

SUBSET = ["table1", "fig04a", "fig05a", "fig13b"]


@pytest.fixture(scope="module")
def serial_results():
    return {r.exp_id: r for r in run_all(quick=True, ids=SUBSET)}


def _bytes(results):
    return {r.exp_id: r.to_json() for r in results}


def test_parallel_matches_serial_byte_for_byte(serial_results):
    parallel = run_experiments(SUBSET, quick=True, jobs=4)
    assert [r.exp_id for r in parallel] == SUBSET
    for result in parallel:
        assert result.to_json() == serial_results[result.exp_id].to_json()


def test_repeated_runs_are_identical(serial_results):
    again = run_all(quick=True, ids=["table1", "fig04a", "fig05a"])
    for result in again:
        assert result.to_json() == serial_results[result.exp_id].to_json()


def test_cache_hit_returns_cold_run_bytes(tmp_path, serial_results):
    cache = ResultCache(tmp_path / "cache")
    cold = run_experiments(["fig04a"], quick=True, jobs=1, cache=cache)
    assert (cache.hits, cache.misses) == (0, 1)
    warm = run_experiments(["fig04a"], quick=True, jobs=1, cache=cache)
    assert (cache.hits, cache.misses) == (1, 1)
    assert warm[0].to_json() == cold[0].to_json()
    assert cold[0].to_json() == serial_results["fig04a"].to_json()


def test_warm_cache_runs_zero_experiments(tmp_path, monkeypatch,
                                          serial_results):
    cache = ResultCache(tmp_path / "cache")
    run_experiments(["table1", "fig04a"], quick=True, jobs=1, cache=cache)

    def boom(*args, **kwargs):
        raise AssertionError("experiment re-executed despite warm cache")

    monkeypatch.setattr(registry, "run_experiment", boom)
    monkeypatch.setattr(registry, "run_cell", boom)
    warm = run_experiments(["table1", "fig04a"], quick=True, jobs=1,
                           cache=cache)
    assert _bytes(warm) == {
        k: serial_results[k].to_json() for k in ("table1", "fig04a")}


def test_parallel_metrics_are_deterministic():
    """Merged --jobs>1 metrics are identical across repeated runs."""
    from repro.obs import MetricsRegistry, to_json, use_registry
    snapshots = []
    for _ in range(2):
        reg = MetricsRegistry()
        with use_registry(reg):
            run_experiments(["fig04b", "ext_dlm"], quick=True, jobs=3)
        snapshots.append(to_json(reg))
    assert snapshots[0] == snapshots[1]
    assert "busy_us" in snapshots[0]


def test_cells_match_registry_rows(serial_results):
    """Cell-by-cell recomputation reproduces the registered rows."""
    for exp_id in ("fig04a", "fig05a"):
        n = registry.n_cells(exp_id, quick=True)
        assert n == len(serial_results[exp_id].rows)
        rows = [registry.run_cell(exp_id, True, i) for i in range(n)]
        rebuilt = registry.finalize_cells(exp_id, True, rows)
        assert rebuilt.to_json() == serial_results[exp_id].to_json()


# -- serialization round-trip properties ------------------------------------

_cell = st.one_of(
    st.integers(min_value=-2**40, max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=20))


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(_cell, _cell, _cell), min_size=1, max_size=8),
       st.text(max_size=30))
def test_result_json_roundtrip(rows, notes):
    result = ExperimentResult("prop", "property test",
                              ["a", "b", "c"], rows, notes)
    again = ExperimentResult.from_json(result.to_json())
    assert again == result
    assert again.to_json() == result.to_json()
