"""Chaos wall for :mod:`repro.exp.chaos` and the hardened socket stack.

The contract: a chaos run **either completes byte-identical to a serial
run or fails closed with a typed error** — and the same seed makes the
same injection decisions, so a chaos failure is replayable.

Layers:

* the spec grammar (parse / round-trip / typed rejection);
* :class:`FrameInjector` determinism — the decision for frame *k* is a
  pure function of ``(seed, connection, direction, k)``;
* the live proxy: probabilistic faults, hard resets, half-open
  partitions, freezes and heartbeat delays against real socket workers,
  all byte-identical to the serial baseline;
* version negotiation failing closed in both directions;
* graceful degradation: no worker inside the connect budget ⇒ local
  fallback, with the result store unchanged.
"""

import contextlib
import json
import socket as socketlib
import threading
import time

import pytest

from repro.exp import run_experiments
from repro.exp.backends import SocketWorkerBackend
from repro.exp.chaos import (ChaosError, ChaosPlan, FrameInjector,
                             ResetInjected, maybe_crash,
                             reset_crash_counts)
from repro.exp.planner import RunContext
from repro.exp.protocol import (PROTOCOL_VERSION, package_version,
                                recv_frame, send_frame)
from repro.exp.worker import serve
from repro.obs import MetricsRegistry, use_registry

SUBSET = ["table1", "fig04a", "fig13b"]     # 5 tasks: 2 whole + 3 cells
CTX = RunContext(quick=True)


@pytest.fixture(scope="module")
def serial_bytes():
    return {r.exp_id: r.to_json()
            for r in run_experiments(SUBSET, quick=True, jobs=1)}


def _assert_identical(results, serial_bytes, ids=SUBSET):
    assert [r.exp_id for r in results] == list(ids)
    for result in results:
        assert result.to_json() == serial_bytes[result.exp_id]


@contextlib.contextmanager
def thread_workers(address, n, stagger_s=0.0):
    host, port = address
    threads = []

    def _one(i):
        if stagger_s:
            time.sleep(stagger_s * i)
        serve(f"{host}:{port}", worker_id=f"chaos-{i}", timeout_s=30.0,
              connect_budget_s=30.0)

    for i in range(n):
        t = threading.Thread(target=_one, args=(i,), daemon=True)
        t.start()
        threads.append(t)
    try:
        yield threads
    finally:
        for t in threads:
            t.join(timeout=30)


# ---------------------------------------------------------------------------
# spec grammar
# ---------------------------------------------------------------------------

def test_spec_round_trips_through_every_token():
    spec = ("drop=0.1,dup=0.05,reorder=0.2,corrupt=0.01,reset@7,"
            "partition@3:4,freeze@2:0.5,hbdelay=1.5,seed=9")
    plan = ChaosPlan.parse(spec)
    assert plan.drop == 0.1 and plan.dup == 0.05
    assert plan.resets == (7,) and plan.partitions == ((3, 4),)
    assert plan.freezes == ((2, 0.5),) and plan.hb_delay_s == 1.5
    assert plan.seed == 9
    assert ChaosPlan.parse(plan.to_spec()) == plan


def test_empty_spec_is_a_noop_plan():
    assert ChaosPlan.parse("").is_noop
    assert ChaosPlan.parse("seed=5").is_noop
    assert not ChaosPlan.parse("drop=0.1").is_noop


@pytest.mark.parametrize("bad", [
    "drop=1.0", "dup=-0.1", "corrupt=nan", "loss=0.1", "reset@-1",
    "partition@3:0", "freeze@1:-2", "hbdelay=-1", "reset@x", "whatever",
])
def test_bad_specs_raise_typed_errors(bad):
    with pytest.raises(ChaosError):
        ChaosPlan.parse(bad)


# ---------------------------------------------------------------------------
# injector determinism
# ---------------------------------------------------------------------------

def _frame(i):
    body = json.dumps({"type": "RESULT", "i": i}).encode()
    return len(body).to_bytes(4, "big") + body


def _drive(plan, n_frames=40, conn=0, direction="w2c"):
    events = []
    injector = FrameInjector(plan, conn, direction,
                             record=lambda *e: events.append(e))
    forwarded = []
    for i in range(n_frames):
        try:
            _delay, frames = injector.feed(_frame(i), "RESULT")
        except ResetInjected:
            events.append((conn, direction, i, "RESULT", "raised-reset"))
            break
        forwarded.extend(frames)
    forwarded.extend(injector.flush())
    return events, forwarded


def test_identical_seed_identical_event_sequence():
    plan = ChaosPlan.parse("drop=0.2,dup=0.2,reorder=0.2,corrupt=0.1,seed=4")
    assert _drive(plan) == _drive(plan)


def test_different_seeds_make_different_decisions():
    runs = {tuple(_drive(ChaosPlan.parse(f"drop=0.3,dup=0.3,seed={s}"))[0])
            for s in range(5)}
    assert len(runs) == 5


def test_decisions_are_independent_per_connection_and_direction():
    plan = ChaosPlan.parse("drop=0.5,seed=1")
    assert (_drive(plan, conn=0)[0] != _drive(plan, conn=1)[0]
            or _drive(plan, conn=0, direction="c2w")[0]
            != _drive(plan, conn=0)[0])


def test_frame_zero_is_exempt_from_probabilistic_faults():
    # With drop=0.99 essentially everything vanishes — except frame 0.
    plan = ChaosPlan.parse("drop=0.99,seed=0")
    _events, forwarded = _drive(plan, n_frames=30)
    assert forwarded and forwarded[0] == _frame(0)


def test_corruption_is_detectable_never_reparseable():
    corrupted = FrameInjector._corrupt(_frame(3))
    assert corrupted[:4] == _frame(3)[:4]       # length prefix intact
    with pytest.raises(UnicodeDecodeError):
        corrupted[4:].decode()


def test_reset_fires_at_the_named_frame():
    plan = ChaosPlan.parse("reset@5")
    events, forwarded = _drive(plan, n_frames=10)
    assert events[-1][4] == "raised-reset"
    assert len(forwarded) == 5                  # frames 0..4 got through


def test_partition_blackholes_w2c_only():
    plan = ChaosPlan.parse("partition@2:3")
    _events, w2c = _drive(plan, n_frames=8)
    assert len(w2c) == 5                        # frames 2,3,4 blackholed
    _events, c2w = _drive(plan, n_frames=8, direction="c2w")
    assert len(c2w) == 8                        # coordinator side flows


def test_reorder_holds_one_slot_and_flushes_at_eof():
    plan = ChaosPlan.parse("reorder=0.99,seed=2")
    _events, forwarded = _drive(plan, n_frames=3)
    assert sorted(forwarded, key=lambda f: f[4:]) == sorted(
        [_frame(i) for i in range(3)], key=lambda f: f[4:])


# ---------------------------------------------------------------------------
# crash-point plumbing (the non-lethal halves)
# ---------------------------------------------------------------------------

def test_maybe_crash_ignores_other_points_and_counts_hits(monkeypatch):
    reset_crash_counts()
    monkeypatch.setenv("REPRO_EXP_CRASH_POINT", "journal.plan:3")
    maybe_crash("journal.result")       # different point: untouched
    maybe_crash("journal.plan")         # hit 1 of 3: survives
    maybe_crash("journal.plan")         # hit 2 of 3: survives
    reset_crash_counts()


def test_maybe_crash_is_inert_without_the_env(monkeypatch):
    monkeypatch.delenv("REPRO_EXP_CRASH_POINT", raising=False)
    for point in ("journal.plan", "backend.lease", "journal.result",
                  "scheduler.finalize"):
        maybe_crash(point)


# ---------------------------------------------------------------------------
# the live proxy: byte identity under fire
# ---------------------------------------------------------------------------

def _chaos_run(spec, workers=2, ids=SUBSET, lease_timeout_s=5.0):
    backend = SocketWorkerBackend(workers=workers, spawn=False,
                                  lease_timeout_s=lease_timeout_s,
                                  chaos=spec)
    try:
        assert backend.proxy is not None
        assert backend.public_address == backend.proxy.address
        with thread_workers(backend.public_address, workers):
            results = run_experiments(ids, quick=True, backend=backend)
        events = backend.proxy.events()
    finally:
        backend.close()
    return results, events


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_probabilistic_chaos_is_byte_identical(seed, serial_bytes):
    results, _events = _chaos_run(
        f"drop=0.04,dup=0.04,reorder=0.08,corrupt=0.02,seed={seed}")
    _assert_identical(results, serial_bytes)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_chaos_over_pipelined_batched_cache_frames(seed, tmp_path,
                                                   serial_bytes):
    """The batched protocol under fire: a deep credit window plus
    CACHE_MGET prefetch and CACHE_MPUT publishes, with frames dropped,
    duplicated, reordered and corrupted.  Sweep 1 populates the shared
    cell cache through chaos; sweep 2 is served from it through chaos.
    Both must match the serial store byte for byte — a lost MGET reply
    degrades to recompute, a corrupted MPUT fails the connection
    closed, never the store."""
    spec = f"drop=0.05,dup=0.05,reorder=0.08,corrupt=0.02,seed={seed}"
    cells = str(tmp_path / "cells")
    for _sweep in range(2):
        backend = SocketWorkerBackend(workers=2, spawn=False,
                                      lease_timeout_s=5.0, chaos=spec,
                                      cache_dir=cells, pipeline=4)
        try:
            with thread_workers(backend.public_address, 2):
                results = run_experiments(SUBSET, quick=True,
                                          backend=backend)
        finally:
            backend.close()
        _assert_identical(results, serial_bytes)


# Targeted scenarios need parameters the fault can't livelock: resets
# repeat per connection, so the per-session frame budget (reset frame
# minus HELLO) must fit the largest single lease — fast tasks only,
# one worker, one RESULT per connection.  Partitions/freezes/delays
# just perturb timing, so the full subset (with its ~7 s cell) rides.
@pytest.mark.parametrize("spec,ids,workers,lease_s", [
    # hard RST after every post-HELLO frame: one RESULT per connection,
    # a reconnect storm the run must absorb
    ("reset@2,seed=1", ["table1", "fig04a"], 1, 10.0),
    # half-open partition: w2c frames 2..7 blackholed while c2w flows —
    # leases expire, reassignment churns until the window passes
    ("partition@2:6,seed=1", SUBSET, 2, 2.0),
    # frozen worker: a stall longer than the lease on frame 3
    ("freeze@3:2.5,seed=1", SUBSET, 2, 2.0),
    # every heartbeat arrives late (and delays the frames behind it)
    ("hbdelay=1.0,seed=1", SUBSET, 2, 2.0),
])
def test_targeted_faults_are_byte_identical(spec, ids, workers, lease_s,
                                            serial_bytes):
    results, events = _chaos_run(spec, workers=workers, ids=ids,
                                 lease_timeout_s=lease_s)
    _assert_identical(results, serial_bytes, ids=ids)
    assert events, f"{spec} injected nothing"


def test_chaos_events_are_counted_in_obs(serial_bytes):
    # Spawned *process* workers: thread workers would swap the
    # process-global default registry around each task body and drops
    # injected mid-compute would be counted elsewhere.  Events and the
    # counter are read only after close() joins the pump threads, so
    # every record has landed and all of them landed in scope.
    reg = MetricsRegistry()
    with use_registry(reg):
        backend = SocketWorkerBackend(workers=2, spawn=True,
                                      lease_timeout_s=5.0,
                                      chaos="drop=0.15,seed=7")
        proxy = backend.proxy
        try:
            results = run_experiments(SUBSET, quick=True, backend=backend)
        finally:
            backend.close()
        events = proxy.events()
    _assert_identical(results, serial_bytes)
    dropped = [e for e in events if e[4] == "drop"]
    counter = reg.get("exp", "chaos_events", action="drop")
    assert dropped and counter is not None
    assert counter.value == len(dropped)


def test_chaos_spec_requires_the_socket_backend():
    with pytest.raises(ChaosError, match="socket"):
        run_experiments(SUBSET[:1], quick=True, chaos_spec="drop=0.1")
    with pytest.raises(ChaosError, match="socket"):
        run_experiments(SUBSET[:1], quick=True, backend="local",
                        chaos_spec="drop=0.1")


def test_bad_chaos_spec_fails_before_any_backend_spawns():
    with pytest.raises(ChaosError):
        run_experiments(SUBSET[:1], quick=True, backend="socket",
                        chaos_spec="drop=2.0")


# ---------------------------------------------------------------------------
# version negotiation fails closed, both directions
# ---------------------------------------------------------------------------

def test_coordinator_rejects_mismatched_worker_version(serial_bytes):
    backend = SocketWorkerBackend(workers=1, spawn=False,
                                  lease_timeout_s=5.0)

    def impostor():
        with socketlib.create_connection(backend.address,
                                         timeout=10) as sock:
            send_frame(sock, {"type": "HELLO", "proto": PROTOCOL_VERSION,
                              "version": "0.0.0-impostor",
                              "worker": "impostor"})
            reply = recv_frame(sock)
            replies.append(reply)

    replies = []
    thread = threading.Thread(target=impostor, daemon=True)
    try:
        thread.start()
        with thread_workers(backend.address, 1):
            results = run_experiments(SUBSET, quick=True, backend=backend)
        thread.join(timeout=10)
    finally:
        backend.close()
    _assert_identical(results, serial_bytes)
    assert replies and replies[0]["type"] == "BYE"
    assert "version" in replies[0]["error"]
    assert backend.stats.get("version_mismatches", 0) == 1


def test_worker_rejects_mismatched_coordinator_version():
    listener = socketlib.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    host, port = listener.getsockname()[:2]
    rc = []

    def fake_coordinator():
        conn, _addr = listener.accept()
        with conn:
            hello = recv_frame(conn)
            assert hello["type"] == "HELLO"
            assert hello["version"] == package_version()
            send_frame(conn, {"type": "WELCOME",
                              "proto": PROTOCOL_VERSION,
                              "version": "0.0.0-impostor", "workers": 1,
                              "heartbeat_s": 1.0, "cache": False,
                              "ctx": CTX.to_wire()})
            time.sleep(0.5)

    thread = threading.Thread(target=fake_coordinator, daemon=True)
    thread.start()
    try:
        rc.append(serve(f"{host}:{port}", worker_id="victim",
                        timeout_s=5.0, connect_budget_s=5.0))
    finally:
        thread.join(timeout=10)
        listener.close()
    # Exit code 2: a fatal rejection, not a retryable transport error.
    assert rc == [2]


# ---------------------------------------------------------------------------
# reconnect + graceful degradation
# ---------------------------------------------------------------------------

def test_worker_retries_until_the_coordinator_exists(serial_bytes):
    # Reserve a port, start the worker first, bind the coordinator late:
    # seeded backoff must carry the worker across the listen gap.
    placeholder = socketlib.socket()
    placeholder.setsockopt(socketlib.SOL_SOCKET,
                           socketlib.SO_REUSEADDR, 1)
    placeholder.bind(("127.0.0.1", 0))
    host, port = placeholder.getsockname()[:2]
    placeholder.close()

    worker = threading.Thread(
        target=serve, args=(f"{host}:{port}",),
        kwargs={"worker_id": "early-bird", "timeout_s": 30.0,
                "connect_budget_s": 30.0},
        daemon=True)
    worker.start()
    time.sleep(0.3)         # let it fail at least one connect attempt
    backend = SocketWorkerBackend(workers=1, spawn=False,
                                  listen=f"{host}:{port}",
                                  lease_timeout_s=10.0)
    try:
        results = run_experiments(SUBSET, quick=True, backend=backend)
    finally:
        backend.close()
    worker.join(timeout=30)
    _assert_identical(results, serial_bytes)


def test_no_workers_falls_back_to_local(serial_bytes, capsys):
    reg = MetricsRegistry()
    with use_registry(reg):
        results = run_experiments(SUBSET, quick=True, backend="socket",
                                  listen="127.0.0.1:0",
                                  connect_budget_s=1.0)
    _assert_identical(results, serial_bytes)
    err = capsys.readouterr().err
    assert "falling back to the local backend" in err
    fallback = reg.get("exp", "backend_fallbacks", wanted="socket")
    assert fallback is not None and fallback.value == 1
