"""Unit tests for NFS: RPC transports, server semantics, IOzone harness."""

import pytest

from repro.calibration import DEFAULT_PROFILE, KB, MB
from repro.fabric import build_cluster, build_cluster_of_clusters
from repro.nfs import mount, run_iozone_read
from repro.sim import Simulator


def _wan(delay=0.0):
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=delay)
    return sim, fabric, fabric.cluster_a[0], fabric.cluster_b[0]


@pytest.mark.parametrize("transport", ["rdma", "ipoib-rc", "ipoib-ud"])
def test_read_roundtrip(transport):
    sim, fabric, srv, cli = _wan()
    server, factory = mount(fabric, srv, cli, transport)
    server.export("/f", 1 * MB)
    out = {}

    def main():
        client = yield from factory()
        got = yield from client.read("/f", 0, 256 * KB)
        out["got"] = got

    sim.run(until=sim.process(main()))
    assert out["got"] == 256 * KB
    assert server.ops == 1


def test_read_clamps_at_eof():
    sim, fabric, srv, cli = _wan()
    server, factory = mount(fabric, srv, cli, "rdma")
    server.export("/f", 100 * KB)
    out = {}

    def main():
        client = yield from factory()
        out["tail"] = yield from client.read("/f", 90 * KB, 256 * KB)
        out["past"] = yield from client.read("/f", 200 * KB, 4 * KB)

    sim.run(until=sim.process(main()))
    assert out["tail"] == 10 * KB
    assert out["past"] == 0


def test_read_unknown_file_raises():
    sim, fabric, srv, cli = _wan()
    server, factory = mount(fabric, srv, cli, "rdma")
    server.export("/f", 1 * KB)

    def main():
        client = yield from factory()
        yield from client.read("/missing", 0, 1 * KB)

    with pytest.raises(KeyError):
        sim.run(until=sim.process(main()))


def test_write_extends_file():
    sim, fabric, srv, cli = _wan()
    server, factory = mount(fabric, srv, cli, "ipoib-rc")
    fh = server.export("/f", 0)
    out = {}

    def main():
        client = yield from factory()
        out["wrote"] = yield from client.write("/f", 0, 64 * KB)
        out["size"] = yield from client.getattr("/f")

    sim.run(until=sim.process(main()))
    assert out["wrote"] == 64 * KB
    assert out["size"] == 64 * KB
    assert fh.size == 64 * KB


def test_invalid_counts_rejected():
    sim, fabric, srv, cli = _wan()
    server, factory = mount(fabric, srv, cli, "rdma")
    server.export("/f", 1 * KB)

    def main():
        client = yield from factory()
        with pytest.raises(ValueError):
            client.read("/f", 0, 0).send(None)
        yield sim.timeout(1.0)

    sim.run(until=sim.process(main()))


def test_unknown_transport_rejected():
    sim, fabric, srv, cli = _wan()
    with pytest.raises(ValueError):
        mount(fabric, srv, cli, "smb")


def test_rdma_read_moves_data_in_4k_chunks():
    sim, fabric, srv, cli = _wan()
    server, factory = mount(fabric, srv, cli, "rdma")
    server.export("/f", 1 * MB)

    def main():
        client = yield from factory()
        yield from client.read("/f", 0, 256 * KB)
        return client

    client = sim.run(until=sim.process(main()))
    qp = client.rpc.qp  # client side QP partner received the writes
    server_qp = fabric.cluster_a[0].hca.qp(qp.remote_qpn)
    chunks = 256 * KB // DEFAULT_PROFILE.nfs_rdma_chunk
    # request + 64 RDMA-write chunks + reply at the server side
    assert server_qp.messages_sent == chunks + 1


def test_disk_latency_injection():
    sim, fabric, srv, cli = _wan()
    server, factory = mount(fabric, srv, cli, "rdma")
    server.export("/cold", 1 * MB, disk_latency_us=8000.0)
    server.export("/warm", 1 * MB)
    out = {}

    def main():
        client = yield from factory()
        t0 = sim.now
        yield from client.read("/warm", 0, 64 * KB)
        out["warm"] = sim.now - t0
        t0 = sim.now
        yield from client.read("/cold", 0, 64 * KB)
        out["cold"] = sim.now - t0

    sim.run(until=sim.process(main()))
    assert out["cold"] > out["warm"] + 7900.0


def test_server_thread_pool_limits_concurrency():
    profile = DEFAULT_PROFILE.with_overrides(nfs_server_threads=1,
                                             nfs_rpc_server_us=1000.0)
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, 1, 1, profile=profile)
    server, factory = mount(fabric, fabric.cluster_a[0],
                            fabric.cluster_b[0], "rdma")
    server.export("/f", 1 * MB)
    out = {}

    def main():
        client = yield from factory()
        t0 = sim.now

        def one():
            yield from client.read("/f", 0, 4 * KB)

        workers = [sim.process(one()) for _ in range(4)]
        yield sim.all_of(workers)
        out["t"] = sim.now - t0

    sim.run(until=sim.process(main()))
    # 4 RPCs x 1ms service, single thread => >= 4ms wall
    assert out["t"] >= 4000.0


# ---------------------------------------------------------------------------
# IOzone harness / paper shapes
# ---------------------------------------------------------------------------

def test_iozone_validates_streams():
    sim, fabric, srv, cli = _wan()
    with pytest.raises(ValueError):
        run_iozone_read(sim, fabric, srv, cli, "rdma", n_streams=0)


def test_iozone_lan_rdma_near_calibrated_peak():
    sim = Simulator()
    fabric = build_cluster(sim, 2)
    bw = run_iozone_read(sim, fabric, fabric.nodes[0], fabric.nodes[1],
                         "rdma", n_streams=4, read_bytes=16 * MB)
    assert 900 < bw < 1300  # paper LAN ~1.1 GB/s


def test_rdma_beats_ipoib_at_low_delay():
    res = {}
    for tr in ("rdma", "ipoib-rc", "ipoib-ud"):
        sim, fabric, srv, cli = _wan(delay=10.0)
        res[tr] = run_iozone_read(sim, fabric, srv, cli, tr, n_streams=4,
                                  read_bytes=8 * MB)
    assert res["rdma"] > res["ipoib-rc"] > res["ipoib-ud"]


def test_ipoib_rc_beats_rdma_at_high_delay():
    """Fig. 13c: the 4K-chunk RDMA transport collapses at 1 ms."""
    res = {}
    for tr in ("rdma", "ipoib-rc"):
        sim, fabric, srv, cli = _wan(delay=1000.0)
        res[tr] = run_iozone_read(sim, fabric, srv, cli, tr, n_streams=4,
                                  read_bytes=8 * MB)
    assert res["ipoib-rc"] > 3 * res["rdma"]


def test_rdma_throughput_monotone_down_with_delay():
    bws = []
    for d in (0.0, 100.0, 1000.0):
        sim, fabric, srv, cli = _wan(delay=d)
        bws.append(run_iozone_read(sim, fabric, srv, cli, "rdma",
                                   n_streams=2, read_bytes=8 * MB))
    assert bws[0] > bws[1] > bws[2]
