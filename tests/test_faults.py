"""The fault-injection test wall: plans, recovery at every layer, and
the hardened scheduler.

Covers the ``repro.faults`` subsystem end to end:

* spec grammar round-trips and validation;
* the zero-overhead contract (an armed-but-empty plan changes nothing);
* fixed-seed determinism, including ``--jobs 1`` vs ``--jobs N``;
* recovery per layer — RC retry-budget exhaustion + reconnect, TCP
  RTO/fast-retransmit, NFS RPC retransmission + duplicate-request
  cache, MPI typed errors instead of deadlock, Longbow buffer overruns;
* scheduler hardening — per-task timeouts, retry after a worker is
  SIGKILLed, ``keep_going`` failure reports, incremental cache saves.
"""

import os
import signal
import time

import pytest

from repro.calibration import KB, MB
from repro.core import registry as reg
from repro.exp import ResultCache, run_experiments
from repro.fabric import build_cluster, build_cluster_of_clusters
from repro.faults import DelaySpike, FaultPlan, GilbertElliott, LinkFlap
from repro.faults.workloads import (fault_profile, run_nfs_goodput,
                                    run_rc_goodput, run_tcp_goodput,
                                    run_ud_goodput)
from repro.mpi import MPICommError, MPIJob
from repro.nfs import RPCTimeoutError
from repro.nfs.iozone import mount
from repro.nfs.rpc import RdmaRpcClient, RdmaRpcServer
from repro.sim import Simulator
from repro.verbs import reconnect_rc_pair
from repro.verbs.device import create_connected_rc_pair
from repro.verbs.ops import RecvWR
from repro.verbs.qp import QPState

_HUGE = 1 << 40


# ---------------------------------------------------------------------------
# FaultPlan: spec grammar, validation, round trips
# ---------------------------------------------------------------------------

FULL_SPEC = ("burst=0.4/0.05/0.3,jitter=12,flap@20000:5000,"
             "spike@1000:500:250,overrun=8192,seed=7")


def test_parse_full_spec():
    plan = FaultPlan.parse(FULL_SPEC)
    assert plan.loss == GilbertElliott(0.0, 0.4, 0.05, 0.3)
    assert plan.loss.is_bursty
    assert plan.jitter_us == 12.0
    assert plan.flaps == (LinkFlap(20000.0, 5000.0),)
    assert plan.spikes == (DelaySpike(1000.0, 500.0, 250.0),)
    assert plan.overrun_bytes == 8192
    assert plan.seed == 7


def test_spec_round_trip_is_identity():
    plan = FaultPlan.parse(FULL_SPEC)
    assert FaultPlan.parse(plan.to_spec()) == plan


def test_uniform_loss_token():
    plan = FaultPlan.parse("loss=0.25")
    assert plan.loss == GilbertElliott(0.25, 0.25)
    assert not plan.loss.is_bursty
    assert "loss=0.25" in plan.to_spec()


def test_empty_spec_is_the_default_plan():
    assert FaultPlan.parse("") == FaultPlan()
    assert FaultPlan.parse(" , ,") == FaultPlan()


def test_flaps_and_spikes_are_sorted():
    plan = FaultPlan(flaps=(LinkFlap(200.0, 10.0), LinkFlap(50.0, 10.0)),
                     spikes=(DelaySpike(90.0, 5.0, 1.0),
                             DelaySpike(10.0, 5.0, 1.0)))
    assert plan.flaps[0].at_us == 50.0
    assert plan.spikes[0].at_us == 10.0


@pytest.mark.parametrize("spec", [
    "loss=1.5",            # probability out of range
    "loss=1.0",            # loss state probabilities live in [0, 1)
    "burst=0.4/1.5/0.3",   # transition probability > 1
    "jitter=-2",           # negative jitter
    "flap@100",            # missing duration
    "flap@-5:100",         # negative start
    "flap@100:0",          # zero duration
    "spike@1:2:-3",        # negative extra delay
    "overrun=0",           # non-positive cap
    "wat=3",               # unknown token
])
def test_bad_specs_raise_value_error(spec):
    with pytest.raises(ValueError):
        FaultPlan.parse(spec)


def test_apply_requires_a_wan_fabric():
    sim = Simulator()
    fabric = build_cluster(sim, 2)
    with pytest.raises(ValueError, match="no Longbow pair"):
        FaultPlan.parse("loss=0.1").apply(fabric)


def test_apply_sets_faults_active_and_flags_injector():
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=10.0)
    assert not getattr(fabric, "faults_active", False)
    injector = FaultPlan.parse("flap@100:50,seed=1").apply(fabric)
    assert fabric.faults_active
    assert fabric.fault_injector is injector


def test_flap_windows_and_spikes_are_pure_time_functions():
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=10.0)
    plan = FaultPlan.parse("flap@100:50,spike@300:100:40,seed=1")
    injector = fabric.wan.wan_link.apply_faults(plan)
    assert not injector.is_down(99.0)
    assert injector.is_down(100.0) and injector.is_down(149.9)
    assert not injector.is_down(150.0)
    assert injector.extra_delay(299.0) == 0.0
    assert injector.extra_delay(350.0) == 40.0
    assert injector.extra_delay(400.0) == 0.0


# ---------------------------------------------------------------------------
# Zero overhead and determinism
# ---------------------------------------------------------------------------

def test_armed_empty_plan_changes_nothing():
    """A plan with no faults (seed only) must be behaviourally inert:
    identical goodput, identical frame counts."""
    clean = run_ud_goodput(10.0, None, duration_us=8000.0)
    armed = run_ud_goodput(10.0, FaultPlan.parse("seed=9"),
                           duration_us=8000.0)
    assert armed == clean


def test_fixed_seed_is_reproducible():
    spec = "burst=0.4/0.1/0.3,jitter=15,spike@3000:2000:500,seed=17"
    a = run_rc_goodput(100.0, FaultPlan.parse(spec), duration_us=15000.0)
    b = run_rc_goodput(100.0, FaultPlan.parse(spec), duration_us=15000.0)
    assert a == b
    assert a["wan_frames_dropped"] > 0


def test_different_seeds_differ():
    spec = "burst=0.5/0.1/0.3,seed={}"
    a = run_ud_goodput(10.0, FaultPlan.parse(spec.format(1)),
                       duration_us=10000.0)
    b = run_ud_goodput(10.0, FaultPlan.parse(spec.format(2)),
                       duration_us=10000.0)
    assert a["wan_frames_dropped"] != b["wan_frames_dropped"]


def test_faulted_experiment_bytes_identical_serial_vs_parallel():
    """The acceptance bar: a faulted sweep is byte-identical under
    ``--jobs 1`` and ``--jobs N``."""
    spec = "burst=0.3/0.1/0.3,seed=11"
    serial = run_experiments(["flt01b"], quick=True, jobs=1,
                             faults_spec=spec)
    parallel = run_experiments(["flt01b"], quick=True, jobs=2,
                               faults_spec=spec)
    assert [r.to_json() for r in serial] == [r.to_json() for r in parallel]


# ---------------------------------------------------------------------------
# Per-layer recovery
# ---------------------------------------------------------------------------

def test_rc_retry_budget_exhaustion_then_reconnect():
    """A flap outlasting the RC retry budget drives the QP to ERROR;
    after the flap, reconnect_rc_pair restores a working connection."""
    sim = Simulator()
    profile = fault_profile(100.0)
    fabric = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=100.0,
                                       profile=profile)
    FaultPlan.parse("flap@0:20000,seed=1").apply(fabric)
    qa, qb = create_connected_rc_pair(fabric.cluster_a[0],
                                      fabric.cluster_b[0])
    for _ in range(8):
        qb.post_recv(RecvWR(_HUGE))

    qa.send(64 * KB)
    sim.run(until=qa.error_event)
    assert qa.state is QPState.ERROR
    assert qa.retransmissions >= 1
    assert sim.now < 20000.0  # budget exhausted while the link was down

    sim.run(until=21000.0)  # flap is over
    reconnect_rc_pair(qa, qb)
    assert qa.state is QPState.RTS and qb.state is QPState.RTS

    got = {}

    def rx():
        got["wc"] = yield qb.recv_cq.wait()

    sim.process(rx(), name="t.rx")
    qa.send(4096)
    sim.run(until=30000.0)
    assert got["wc"].ok and got["wc"].byte_len == 4096


def test_rc_goodput_supervisor_reconnects_after_flap():
    plan = FaultPlan.parse("flap@5000:15000,seed=7")
    stats = run_rc_goodput(100.0, plan, duration_us=60000.0)
    assert stats["qp_errors"] >= 1
    assert stats["reconnects"] >= 1
    assert stats["rc_retransmissions"] >= 1
    assert stats["goodput_mb_s"] > 0  # traffic resumed after the flap


def test_rc_loss_hurts_relatively_more_at_high_delay():
    """The paper's WAN story, extended: the same loss rate costs RC a
    larger goodput fraction over a long pipe (each retransmission burns
    a full RTT)."""
    spec = "burst=0.08/0.1/0.3,seed=23"
    near_clean = run_rc_goodput(10.0, None, duration_us=20000.0)
    near_lossy = run_rc_goodput(10.0, FaultPlan.parse(spec),
                                duration_us=20000.0)
    far_clean = run_rc_goodput(1000.0, None, duration_us=20000.0)
    far_lossy = run_rc_goodput(1000.0, FaultPlan.parse(spec),
                               duration_us=20000.0)
    rel_near = near_lossy["goodput_mb_s"] / near_clean["goodput_mb_s"]
    rel_far = far_lossy["goodput_mb_s"] / far_clean["goodput_mb_s"]
    assert rel_far < rel_near < 1.0


def test_ud_loss_is_delay_independent():
    """UD has no recovery: goodput drops by the delivered fraction and
    is insensitive to the WAN delay (paced open loop)."""
    spec = "loss=0.2,seed=5"
    clean = run_ud_goodput(10.0, None, duration_us=20000.0)
    near = run_ud_goodput(10.0, FaultPlan.parse(spec), duration_us=20000.0)
    far = run_ud_goodput(1000.0, FaultPlan.parse(spec),
                         duration_us=20000.0)
    assert near["goodput_mb_s"] < 0.92 * clean["goodput_mb_s"]
    assert near["wan_frames_dropped"] > 0
    # delay independence, modulo the ramp while the pipe fills
    assert abs(near["goodput_mb_s"] - far["goodput_mb_s"]) \
        < 0.15 * near["goodput_mb_s"]


def test_tcp_transfer_completes_under_burst_loss():
    clean = run_tcp_goodput(100.0, None, total_bytes=MB)
    lossy = run_tcp_goodput(100.0,
                            FaultPlan.parse("burst=0.3/0.05/0.3,seed=9"),
                            total_bytes=MB)
    assert lossy["wan_frames_dropped"] > 0
    assert 0 < lossy["goodput_mb_s"] < clean["goodput_mb_s"]


def test_tcp_connect_survives_syn_loss():
    """SYN/SYN-ACK retransmission: loss=0.1,seed=5 drops the handshake,
    which hung connect() forever before SYN retries existed."""
    stats = run_tcp_goodput(100.0, FaultPlan.parse("loss=0.1,seed=5"),
                            total_bytes=MB)
    assert stats["goodput_mb_s"] > 0


def test_tcp_connect_times_out_on_permanent_outage():
    with pytest.raises(ConnectionError, match="timed out"):
        run_tcp_goodput(100.0, FaultPlan.parse("flap@0:1000000000,seed=1"),
                        total_bytes=MB)


def test_nfs_rdma_recovers_from_flap():
    plan = FaultPlan.parse("flap@2000:8000,seed=4")
    stats = run_nfs_goodput(100.0, plan, read_bytes=MB)
    assert stats["wan_frames_dropped"] > 0
    assert stats["goodput_mb_s"] > 0


def test_rdma_rpc_retransmits_and_server_dedups():
    """A delay spike pushes the first reply past the RPC timeout: the
    client retransmits under the same xid, the server's duplicate-
    request cache replays instead of re-executing, and the call still
    returns the right answer exactly once."""
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=100.0)
    FaultPlan.parse("spike@0:30000:8000,seed=2").apply(fabric)
    calls = {"n": 0}

    def handler(proc, args):
        calls["n"] += 1
        yield sim.timeout(10.0)
        return 4096, ("ok", args)

    server = RdmaRpcServer(fabric.cluster_b[0], handler)
    client = RdmaRpcClient(fabric.cluster_a[0], server,
                           call_timeout_us=2000.0, max_retries=8,
                           backoff=2.0)
    out = {}

    def main():
        out["result"] = yield from client.call("read", ("x",), req_bytes=64)

    done = sim.process(main(), name="t.drc")
    sim.run(until=done)
    assert out["result"] == ("ok", ("x",))
    assert client.rpc_retries >= 1
    assert calls["n"] == 1, "duplicate xid re-executed the handler"


def test_tcp_rpc_mount_retries_through_delay_spike():
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=100.0)
    FaultPlan.parse("spike@0:40000:9000,seed=3").apply(fabric)
    server, factory = mount(fabric, fabric.cluster_b[0],
                            fabric.cluster_a[0], "ipoib-ud",
                            rpc_timeout_us=3000.0, rpc_max_retries=8)
    server.export("/data", MB)
    out = {}

    def main():
        client = yield from factory()
        out["got"] = yield from client.read("/data", 0, 64 * KB)
        out["retries"] = client.rpc.rpc_retries

    done = sim.process(main(), name="t.tcp.rpc")
    sim.run(until=done)
    assert out["got"] == 64 * KB
    assert out["retries"] >= 1


def test_nfs_rpc_times_out_on_permanent_outage():
    sim = Simulator()
    profile = fault_profile(100.0)
    fabric = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=100.0,
                                       profile=profile)
    FaultPlan.parse("flap@0:1000000000,seed=6").apply(fabric)
    server, factory = mount(fabric, fabric.cluster_b[0],
                            fabric.cluster_a[0], "rdma",
                            rpc_timeout_us=2000.0, rpc_max_retries=3)
    server.export("/data", MB)
    out = {}

    def main():
        client = yield from factory()
        try:
            yield from client.read("/data", 0, 4096)
        except RPCTimeoutError as exc:
            out["exc"] = exc

    done = sim.process(main(), name="t.nfs.timeout")
    sim.run(until=done)
    assert isinstance(out.get("exc"), RPCTimeoutError)
    assert "4 attempts" in str(out["exc"])


def test_mpi_send_fails_typed_instead_of_deadlocking():
    sim = Simulator()
    profile = fault_profile(100.0)
    fabric = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=100.0,
                                       profile=profile)
    FaultPlan.parse("flap@0:1000000000,seed=3").apply(fabric)
    job = MPIJob(fabric, nprocs=2, placement="cyclic")

    def prog(proc):
        if proc.rank == 0:
            try:
                yield from proc.send(1, 1024, tag=1)
            except MPICommError:
                return "failed"
            return "sent"
        return None

    results = job.run(prog)
    assert results[0] == "failed"


def test_longbow_overrun_drops_frames():
    sim = Simulator()
    profile = fault_profile(10.0)
    fabric = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=10.0,
                                       profile=profile)
    FaultPlan.parse("overrun=4000,seed=1").apply(fabric)
    assert fabric.wan.a.ingress_limit_bytes == 4000
    assert fabric.wan.b.ingress_limit_bytes == 4000
    qa, qb = create_connected_rc_pair(fabric.cluster_a[0],
                                      fabric.cluster_b[0])
    for _ in range(8):
        qb.post_recv(RecvWR(_HUGE))
    qa.send(64 * KB)  # far larger than the shrunken ingress buffer
    sim.run(until=15000.0)
    assert fabric.wan.a.frames_dropped_overrun > 0


def test_ingress_limit_validates():
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=10.0)
    with pytest.raises(ValueError):
        fabric.wan.a.set_ingress_limit(0)


# ---------------------------------------------------------------------------
# Hardened scheduler: timeouts, crashes, keep_going, incremental cache
# ---------------------------------------------------------------------------

_PREFIX = "tstflt-"


def _fixture_rows(quick):
    return ["n"], [(3,)], "scheduler-hardening fixture"


def _flaky(quick):
    sentinel = os.environ.get("REPRO_TEST_FLAKY_SENTINEL", "")
    if sentinel and os.path.exists(sentinel):
        os.unlink(sentinel)
        raise RuntimeError("injected transient failure")
    return _fixture_rows(quick)


def _always_fail(quick):
    raise RuntimeError("injected permanent failure")


def _kill_self_once(quick):
    sentinel = os.environ.get("REPRO_TEST_KILL_SENTINEL", "")
    if sentinel and os.path.exists(sentinel):
        os.unlink(sentinel)
        os.kill(os.getpid(), signal.SIGKILL)
    return _fixture_rows(quick)


def _sleepy(quick):
    time.sleep(5.0)
    return _fixture_rows(quick)


reg.experiment(_PREFIX + "ok", "always succeeds")(_fixture_rows)
reg.experiment(_PREFIX + "flaky", "fails once, then succeeds")(_flaky)
reg.experiment(_PREFIX + "fail", "always fails")(_always_fail)
reg.experiment(_PREFIX + "kill", "SIGKILLs its worker once")(_kill_self_once)
reg.experiment(_PREFIX + "sleep", "overruns any sane budget")(_sleepy)


@pytest.fixture(scope="module", autouse=True)
def _deregister_fixture_experiments():
    yield
    for exp_id in list(reg.EXPERIMENTS):
        if exp_id.startswith(_PREFIX):
            reg.EXPERIMENTS.pop(exp_id, None)
            reg.CELL_PLANS.pop(exp_id, None)


def test_failure_raises_by_default():
    with pytest.raises(RuntimeError, match="injected permanent failure"):
        run_experiments([_PREFIX + "fail"], quick=True, jobs=1)


def test_serial_retry_recovers_transient_failure(tmp_path, monkeypatch):
    sentinel = tmp_path / "flake-once"
    sentinel.touch()
    monkeypatch.setenv("REPRO_TEST_FLAKY_SENTINEL", str(sentinel))
    failures = []
    results = run_experiments([_PREFIX + "flaky"], quick=True, jobs=1,
                              retries=1, backoff_s=0.01, failures=failures)
    assert not failures
    assert results[0].rows == [(3,)]
    assert not sentinel.exists()


def test_pool_survives_sigkilled_worker(tmp_path, monkeypatch):
    """A worker killed outright breaks the pool; a fresh pool retries
    the unfinished tasks and the sweep still completes byte-identically
    to a clean run."""
    sentinel = tmp_path / "kill-once"
    sentinel.touch()
    monkeypatch.setenv("REPRO_TEST_KILL_SENTINEL", str(sentinel))
    failures = []
    results = run_experiments([_PREFIX + "kill", _PREFIX + "ok"],
                              quick=True, jobs=2, retries=1,
                              backoff_s=0.01, failures=failures)
    assert not failures
    assert not sentinel.exists()
    clean = run_experiments([_PREFIX + "kill", _PREFIX + "ok"],
                            quick=True, jobs=1)
    assert [r.to_json() for r in results] == [r.to_json() for r in clean]


def test_keep_going_reports_failure_and_salvages_the_rest(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    failures = []
    results = run_experiments([_PREFIX + "fail", _PREFIX + "ok"],
                              quick=True, jobs=2, retries=1,
                              backoff_s=0.01, keep_going=True,
                              failures=failures, cache=cache)
    assert [r.exp_id for r in results] == [_PREFIX + "ok"]
    assert len(failures) == 1
    assert failures[0].exp_id == _PREFIX + "fail"
    assert failures[0].attempts == 2
    assert "injected permanent failure" in failures[0].error
    # incremental save: the healthy experiment was cached despite the
    # failure next to it
    assert cache.load(_PREFIX + "ok", True) is not None


def test_serial_keep_going_matches_pool_semantics():
    failures = []
    results = run_experiments([_PREFIX + "fail", _PREFIX + "ok"],
                              quick=True, jobs=1, keep_going=True,
                              failures=failures)
    assert [r.exp_id for r in results] == [_PREFIX + "ok"]
    assert failures[0].exp_id == _PREFIX + "fail"
    assert failures[0].attempts == 1


def test_timeout_fails_runaway_task_serial():
    failures = []
    t0 = time.monotonic()
    results = run_experiments([_PREFIX + "sleep"], quick=True, jobs=1,
                              timeout_s=0.3, keep_going=True,
                              failures=failures)
    assert time.monotonic() - t0 < 4.0
    assert results == []
    assert failures and "TimeoutError" in failures[0].error


def test_timeout_fails_runaway_task_in_pool():
    failures = []
    results = run_experiments([_PREFIX + "sleep", _PREFIX + "ok"],
                              quick=True, jobs=2, timeout_s=0.3,
                              keep_going=True, failures=failures)
    assert [r.exp_id for r in results] == [_PREFIX + "ok"]
    assert failures and failures[0].exp_id == _PREFIX + "sleep"


def test_invalid_retries_rejected():
    with pytest.raises(ValueError):
        run_experiments([_PREFIX + "ok"], quick=True, jobs=1, retries=-1)
