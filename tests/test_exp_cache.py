"""Cache-key invalidation and corruption tolerance for ResultCache.

The key is (experiment id, quick/full, package version, source digest);
each test flips exactly one ingredient and asserts the cached entry is
no longer found.  Corruption tests truncate/garble the entry on disk
and expect a silent miss plus recompute, never an exception.
"""

import json

import pytest

import repro
from repro.core.registry import ExperimentResult
from repro.exp import ResultCache, run_experiments, source_digest
from repro.exp import cache as cache_mod
from repro.faults.context import activated
from repro.flow.context import activated as flow_activated


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


@pytest.fixture
def warm(cache):
    """A cache holding a fresh table1 result."""
    result = run_experiments(["table1"], quick=True, jobs=1,
                             cache=cache)[0]
    assert cache.misses == 1 and cache.hits == 0
    return result


def test_hit_after_save(cache, warm):
    assert cache.load("table1", True).to_json() == warm.to_json()
    assert cache.hits == 1


def test_source_edit_invalidates(cache, warm, monkeypatch):
    monkeypatch.setattr(cache_mod, "source_digest",
                        lambda exp_id: "0" * 64)
    assert cache.load("table1", True) is None


def test_version_bump_invalidates(cache, warm, monkeypatch):
    monkeypatch.setattr(repro, "__version__", "999.0.0")
    assert cache.load("table1", True) is None


def test_quick_full_are_separate_keys(cache, warm):
    assert cache.load("table1", False) is None
    assert cache.key("table1", True) != cache.key("table1", False)


def test_corrupted_entry_is_discarded(cache, warm):
    path = cache.path("table1", True)
    path.write_text("{definitely not json")
    assert cache.load("table1", True) is None
    assert not path.exists(), "corrupted entry should be deleted"
    # and the engine just recomputes
    again = run_experiments(["table1"], quick=True, jobs=1, cache=cache)[0]
    assert again.to_json() == warm.to_json()


def test_truncated_entry_is_discarded(cache, warm):
    path = cache.path("table1", True)
    path.write_text(path.read_text()[:20])
    assert cache.load("table1", True) is None


def test_empty_entry_is_discarded(cache, warm):
    path = cache.path("table1", True)
    path.write_text("")
    assert cache.load("table1", True) is None
    assert not path.exists()


def test_wrong_experiment_in_entry_is_discarded(cache, warm):
    path = cache.path("table1", True)
    impostor = ExperimentResult("fig03", "t", ["c"], [(1,)], "")
    path.write_text(impostor.to_json())
    assert cache.load("table1", True) is None


def test_missing_dir_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "never-created")
    assert cache.load("table1", True) is None
    assert cache.misses == 1


def test_clear_removes_entries(cache, warm):
    assert cache.clear() == 1
    assert cache.load("table1", True) is None


def test_digest_covers_cell_plan_functions():
    """Cell-decomposed sweeps digest their plan functions too, so the
    digest of a plain experiment and a sweep differ even though both
    digest *something*."""
    d_plain = source_digest("table1")
    d_sweep = source_digest("fig04a")
    assert d_plain != d_sweep
    assert len(d_plain) == len(d_sweep) == 64
    int(d_sweep, 16)  # hex


def test_key_payload_is_stable(cache):
    """Same ingredients, same key — the key is a pure function."""
    assert cache.key("table1", True) == cache.key("table1", True)
    assert json.loads(ExperimentResult("x", "t", ["c"], [(1,)]).to_json())


def test_active_fault_spec_changes_key(cache):
    """An active --faults spec is part of the key; clearing it restores
    the exact clean key, so historical entries survive fault runs."""
    clean = cache.key("table1", True)
    with activated("loss=0.1,seed=1"):
        faulted = cache.key("table1", True)
        assert faulted != clean
        with activated("loss=0.2,seed=1"):
            assert cache.key("table1", True) != faulted
    assert cache.key("table1", True) == clean


def test_clean_entry_not_served_under_fault_spec(cache, warm):
    with activated("loss=0.1,seed=1"):
        assert cache.load("table1", True) is None
    assert cache.load("table1", True) is not None


def test_flow_mode_changes_key_only_when_accelerating(cache):
    """``--flow auto``/``on`` are part of the key; ``off`` and unset
    share the exact historical packet-mode key, so flow runs never
    collide with (or shadow) packet-mode entries."""
    clean = cache.key("table1", True)
    with flow_activated("auto"):
        auto = cache.key("table1", True)
        assert auto != clean
    with flow_activated("on"):
        on = cache.key("table1", True)
        assert on != clean and on != auto
    with flow_activated("off"):
        assert cache.key("table1", True) == clean
    assert cache.key("table1", True) == clean


def test_packet_entry_not_served_under_flow_mode(cache, warm):
    with flow_activated("auto"):
        assert cache.load("table1", True) is None
    assert cache.load("table1", True) is not None
