"""Cache-key invalidation, corruption and concurrency tolerance for the
on-disk caches (ResultCache and its per-task sibling CellCache).

The key is (experiment id, quick/full, package version, source digest
— plus, for cells, the index); each invalidation test flips exactly one
ingredient and asserts the cached entry is no longer found.  Corruption
tests truncate/garble the entry on disk and expect a silent miss plus
recompute, never an exception.  Concurrency tests hammer one key from
many threads and crash a writer mid-write: atomic rename means readers
only ever see complete entries.
"""

import json
import os
import threading

import pytest

import repro
from repro.core.registry import ExperimentResult
from repro.exp import CellCache, ResultCache, run_experiments, source_digest
from repro.exp import cache as cache_mod
from repro.faults.context import activated
from repro.flow.context import activated as flow_activated


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


@pytest.fixture
def warm(cache):
    """A cache holding a fresh table1 result."""
    result = run_experiments(["table1"], quick=True, jobs=1,
                             cache=cache)[0]
    assert cache.misses == 1 and cache.hits == 0
    return result


def test_hit_after_save(cache, warm):
    assert cache.load("table1", True).to_json() == warm.to_json()
    assert cache.hits == 1


def test_source_edit_invalidates(cache, warm, monkeypatch):
    monkeypatch.setattr(cache_mod, "source_digest",
                        lambda exp_id: "0" * 64)
    assert cache.load("table1", True) is None


def test_version_bump_invalidates(cache, warm, monkeypatch):
    monkeypatch.setattr(repro, "__version__", "999.0.0")
    assert cache.load("table1", True) is None


def test_quick_full_are_separate_keys(cache, warm):
    assert cache.load("table1", False) is None
    assert cache.key("table1", True) != cache.key("table1", False)


def test_corrupted_entry_is_discarded(cache, warm):
    path = cache.path("table1", True)
    path.write_text("{definitely not json")
    assert cache.load("table1", True) is None
    assert not path.exists(), "corrupted entry should be deleted"
    # and the engine just recomputes
    again = run_experiments(["table1"], quick=True, jobs=1, cache=cache)[0]
    assert again.to_json() == warm.to_json()


def test_truncated_entry_is_discarded(cache, warm):
    path = cache.path("table1", True)
    path.write_text(path.read_text()[:20])
    assert cache.load("table1", True) is None


def test_empty_entry_is_discarded(cache, warm):
    path = cache.path("table1", True)
    path.write_text("")
    assert cache.load("table1", True) is None
    assert not path.exists()


def test_wrong_experiment_in_entry_is_discarded(cache, warm):
    path = cache.path("table1", True)
    impostor = ExperimentResult("fig03", "t", ["c"], [(1,)], "")
    path.write_text(impostor.to_json())
    assert cache.load("table1", True) is None


def test_missing_dir_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "never-created")
    assert cache.load("table1", True) is None
    assert cache.misses == 1


def test_clear_removes_entries(cache, warm):
    assert cache.clear() == 1
    assert cache.load("table1", True) is None


def test_digest_covers_cell_plan_functions():
    """Cell-decomposed sweeps digest their plan functions too, so the
    digest of a plain experiment and a sweep differ even though both
    digest *something*."""
    d_plain = source_digest("table1")
    d_sweep = source_digest("fig04a")
    assert d_plain != d_sweep
    assert len(d_plain) == len(d_sweep) == 64
    int(d_sweep, 16)  # hex


def test_key_payload_is_stable(cache):
    """Same ingredients, same key — the key is a pure function."""
    assert cache.key("table1", True) == cache.key("table1", True)
    assert json.loads(ExperimentResult("x", "t", ["c"], [(1,)]).to_json())


def test_active_fault_spec_changes_key(cache):
    """An active --faults spec is part of the key; clearing it restores
    the exact clean key, so historical entries survive fault runs."""
    clean = cache.key("table1", True)
    with activated("loss=0.1,seed=1"):
        faulted = cache.key("table1", True)
        assert faulted != clean
        with activated("loss=0.2,seed=1"):
            assert cache.key("table1", True) != faulted
    assert cache.key("table1", True) == clean


def test_clean_entry_not_served_under_fault_spec(cache, warm):
    with activated("loss=0.1,seed=1"):
        assert cache.load("table1", True) is None
    assert cache.load("table1", True) is not None


def test_flow_mode_changes_key_only_when_accelerating(cache):
    """``--flow auto``/``on`` are part of the key; ``off`` and unset
    share the exact historical packet-mode key, so flow runs never
    collide with (or shadow) packet-mode entries."""
    clean = cache.key("table1", True)
    with flow_activated("auto"):
        auto = cache.key("table1", True)
        assert auto != clean
    with flow_activated("on"):
        on = cache.key("table1", True)
        assert on != clean and on != auto
    with flow_activated("off"):
        assert cache.key("table1", True) == clean
    assert cache.key("table1", True) == clean


def test_packet_entry_not_served_under_flow_mode(cache, warm):
    with flow_activated("auto"):
        assert cache.load("table1", True) is None
    assert cache.load("table1", True) is not None


# -- concurrent writers and torn files (satellite of ISSUE 7) ----------------

def test_concurrent_result_writers_never_tear(cache, warm):
    """Many threads saving the same key concurrently: every load in
    between and after sees either nothing or one *complete* entry."""
    bad = []
    stop = threading.Event()

    def writer():
        while not stop.is_set():
            cache.save("table1", True, warm)

    def reader():
        while not stop.is_set():
            got = cache.load("table1", True)
            if got is not None and got.to_json() != warm.to_json():
                bad.append(got)

    threads = ([threading.Thread(target=writer) for _ in range(4)]
               + [threading.Thread(target=reader) for _ in range(2)])
    for t in threads:
        t.start()
    threading.Event().wait(0.5)
    stop.set()
    for t in threads:
        t.join(timeout=30)
    assert not bad, "a reader observed a torn/partial entry"
    assert cache.load("table1", True).to_json() == warm.to_json()
    # no leaked temp files: every writer renamed or died atomically
    leftovers = [p for p in cache.root.iterdir() if ".tmp." in p.name]
    assert leftovers == []


def test_crash_mid_write_leaves_cache_recoverable(cache, warm,
                                                 monkeypatch):
    """A writer dying between temp-write and rename leaves only a temp
    file: loads still hit the old complete entry, and a later save
    completes normally."""
    original_replace = os.replace
    crashed = {}

    def dying_replace(src, dst):
        if not crashed:
            crashed["tmp"] = str(src)
            raise OSError("simulated crash before rename")
        return original_replace(src, dst)

    monkeypatch.setattr(os, "replace", dying_replace)
    with pytest.raises(OSError, match="simulated crash"):
        cache.save("table1", True, warm)
    # the half-written temp file never shadows the real entry
    assert cache.load("table1", True).to_json() == warm.to_json()
    again = cache.save("table1", True, warm)
    assert cache.load("table1", True).to_json() == warm.to_json()
    assert again.exists()


# -- CellCache: the distributed backends' per-task cache ---------------------

@pytest.fixture
def cells(tmp_path):
    return CellCache(tmp_path / "cache")


def test_cell_roundtrip_and_counters(cells):
    key = cells.key("fig04a", True, 1)
    assert cells.load(key) is None and cells.misses == 1
    cells.save(key, [1, 2.5, "x"])
    assert cells.load(key) == [1, 2.5, "x"]
    assert (cells.hits, cells.misses) == (1, 1)


def test_cell_key_ingredients(cells):
    """id, index, quick and fault/flow context all key the entry."""
    base = cells.key("fig04a", True, 0)
    assert cells.key("fig04a", True, 1) != base
    assert cells.key("fig04a", False, 0) != base
    assert cells.key("fig05a", True, 0) != base
    assert cells.key("fig04a", True, None) != base
    with activated("loss=0.1,seed=1"):
        assert cells.key("fig04a", True, 0) != base
    with flow_activated("auto"):
        assert cells.key("fig04a", True, 0) != base
    assert cells.key("fig04a", True, 0) == base


@pytest.mark.parametrize("evil", [
    "", "short", "x" * 64, "../../../../etc/passwd",
    "a" * 63 + "/", "A" * 64,                   # uppercase: not canonical
    "0" * 64 + "\n",
])
def test_cell_wire_keys_are_validated(cells, evil):
    """Keys arrive over the wire; anything but a bare SHA-256 hex digest
    is rejected (load: silent miss, save: ValueError) — never a path."""
    with pytest.raises(ValueError):
        cells.path_of(evil)
    assert cells.load(evil) is None
    with pytest.raises(ValueError):
        cells.save(evil, [1])


def test_cell_torn_file_recovers(cells):
    key = cells.key("fig04a", True, 2)
    cells.save(key, [3, 4])
    path = cells.path_of(key)
    path.write_text('{"key": "' + key + '", "payl')     # torn mid-write
    assert cells.load(key) is None
    assert not path.exists(), "torn entry should be deleted"
    cells.save(key, [3, 4])
    assert cells.load(key) == [3, 4]


def test_cell_concurrent_writers_never_tear(cells):
    key = cells.key("fig04a", True, 0)
    payload = [1, 2, 3, "row"]
    bad = []
    stop = threading.Event()

    def writer():
        while not stop.is_set():
            cells.save(key, payload)

    def reader():
        while not stop.is_set():
            got = cells.load(key)
            if got is not None and got != payload:
                bad.append(got)

    threads = ([threading.Thread(target=writer) for _ in range(4)]
               + [threading.Thread(target=reader) for _ in range(2)])
    for t in threads:
        t.start()
    threading.Event().wait(0.5)
    stop.set()
    for t in threads:
        t.join(timeout=30)
    assert not bad, "a reader observed a torn/partial cell entry"
    assert cells.load(key) == payload
    leftovers = [p for p in cells.root.iterdir() if ".tmp." in p.name]
    assert leftovers == []


def test_cell_clear(cells):
    for index in range(3):
        cells.save(cells.key("fig04a", True, index), [index])
    assert cells.clear() == 3
    assert cells.load(cells.key("fig04a", True, 0)) is None
