"""Lease-boundary edge wall for :mod:`repro.exp.leases`.

The LeaseTable takes injected ``now`` values, so every boundary the
chaos wall can only *provoke* is pinned here exactly:

* a heartbeat arriving exactly at the deadline, in both orderings
  (renew-then-sweep and sweep-then-renew);
* a reassigned task whose original worker's RESULT arrives late, and
  the second copy after it;
* journal replay of both races — the journal's last-result-wins
  ``completed()`` map must agree with the table's verdicts;
* seeded random schedules: whatever order grants, expiries, failures
  and completions interleave in, the table settles with every task
  done or exhausted exactly once, and the same seed yields the same
  transition log.
"""

import random

from repro.exp.journal import RunJournal
from repro.exp.leases import LeaseTable
from repro.exp.planner import task_key

TASKS = [("table1", None), ("fig04a", 0), ("fig04a", 1), ("fig04a", 2)]


# ---------------------------------------------------------------------------
# heartbeats exactly at the deadline
# ---------------------------------------------------------------------------

def test_heartbeat_at_exact_deadline_renews_when_it_arrives_first():
    table = LeaseTable(TASKS[:1], lease_timeout_s=10.0)
    lease = table.issue("w1", now=0.0)
    assert lease.deadline == 10.0
    # The renew lands at t == deadline, before the expiry sweep runs.
    assert table.heartbeat(lease.lease_id, now=10.0) is True
    assert table.expire(now=10.0) == []
    assert lease.deadline == 20.0
    assert table.stats["heartbeats"] == 1
    assert table.stats["expired"] == 0


def test_expiry_sweep_at_exact_deadline_beats_a_late_heartbeat():
    table = LeaseTable(TASKS[:1], lease_timeout_s=10.0)
    lease = table.issue("w1", now=0.0)
    # Expiry is inclusive (deadline <= now): the sweep at t == deadline
    # takes the lease, and the same-instant heartbeat is stale.
    assert table.expire(now=10.0) == [lease]
    assert table.heartbeat(lease.lease_id, now=10.0) is False
    assert table.pending_tasks() == TASKS[:1]
    assert table.stats["stale_heartbeats"] == 1
    assert table.stats["expired"] == 1


def test_heartbeat_a_hair_before_deadline_survives_the_sweep():
    table = LeaseTable(TASKS[:1], lease_timeout_s=10.0)
    lease = table.issue("w1", now=0.0)
    assert table.heartbeat(lease.lease_id, now=9.999) is True
    assert table.expire(now=10.0) == []
    assert table.active_leases() == [lease]


# ---------------------------------------------------------------------------
# reassignment racing a late RESULT
# ---------------------------------------------------------------------------

def test_late_result_from_reassigned_lease_completes_the_task():
    table = LeaseTable(TASKS[:1], lease_timeout_s=10.0)
    old = table.issue("w1", now=0.0)
    assert table.expire(now=10.0) == [old]
    new = table.issue("w2", now=10.0)
    assert new.lease_id != old.lease_id
    assert new.attempt == 2
    # w1 was only slow, not dead: its RESULT beats w2's.  The rows are
    # byte-identical by the determinism contract, so first copy wins.
    assert table.complete(old.lease_id, old.task) == "late"
    assert table.is_done(old.task)
    # w2's copy is a duplicate and changes nothing.
    assert table.complete(new.lease_id, new.task) == "duplicate"
    assert table.settled()
    assert table.stats["completed"] == 1
    assert table.stats["duplicates"] == 1


def test_expired_task_completing_while_queued_leaves_the_queue():
    table = LeaseTable(TASKS[:2], lease_timeout_s=10.0)
    old = table.issue("w1", now=0.0)
    table.expire(now=10.0)
    assert old.task in table.pending_tasks()
    assert table.complete(old.lease_id, old.task) == "late"
    assert old.task not in table.pending_tasks()


def test_requeue_after_expiry_keeps_request_order():
    table = LeaseTable(TASKS, lease_timeout_s=10.0)
    first = table.issue("w1", now=0.0)      # takes TASKS[0]
    second = table.issue("w2", now=0.0)     # takes TASKS[1]
    assert (first.task, second.task) == (TASKS[0], TASKS[1])
    table.expire(now=10.0)
    # Both come back in request order, ahead of nothing they shouldn't.
    assert table.pending_tasks() == TASKS


# ---------------------------------------------------------------------------
# journal replay of the two races
# ---------------------------------------------------------------------------

def _journaled_run(tmp_path, race: str) -> RunJournal:
    """Drive a LeaseTable through ``race`` while journaling like the
    socket backend does: lease records at grant, result records at
    first completion only (the backend never journals duplicates)."""
    journal = RunJournal.create(tmp_path, f"race-{race}")
    table = LeaseTable(TASKS[:1], lease_timeout_s=10.0)
    task = TASKS[0]
    old = table.issue("w1", now=0.0)
    journal.append({"type": "lease", "task": task_key(task),
                    "worker": old.worker, "lease": old.lease_id,
                    "attempt": old.attempt})
    table.expire(now=10.0)
    new = table.issue("w2", now=10.0)
    journal.append({"type": "lease", "task": task_key(task),
                    "worker": new.worker, "lease": new.lease_id,
                    "attempt": new.attempt})
    if race == "late":
        winner, loser = old, new
    else:
        winner, loser = new, old
    assert table.complete(winner.lease_id, task) in ("ok", "late")
    journal.append({"type": "result", "task": task_key(task),
                    "key": "k" * 64})
    assert table.complete(loser.lease_id, task) == "duplicate"
    journal.close()
    return journal


def test_journal_replay_of_late_result_race(tmp_path):
    journal = _journaled_run(tmp_path, "late")
    replayed = RunJournal.resume(tmp_path, journal.run_id)
    # Two grants, one result: replay sees the task completed once.
    records = replayed.records()
    assert [r["type"] for r in records] == ["lease", "lease", "result"]
    assert [r["attempt"] for r in records[:2]] == [1, 2]
    assert replayed.completed() == {task_key(TASKS[0]): "k" * 64}
    replayed.close()


def test_journal_replay_of_duplicate_result_race(tmp_path):
    journal = _journaled_run(tmp_path, "duplicate")
    replayed = RunJournal.resume(tmp_path, journal.run_id)
    assert replayed.completed() == {task_key(TASKS[0]): "k" * 64}
    assert sum(1 for r in replayed.records()
               if r["type"] == "result") == 1
    replayed.close()


# ---------------------------------------------------------------------------
# property-style: seeded random schedules
# ---------------------------------------------------------------------------

def _random_schedule(seed: int, n_tasks: int = 6,
                     max_failures: int = 1):
    """Run one randomized grant/renew/expire/fail/complete schedule.

    Returns the transition log so determinism can be asserted across
    identical seeds.
    """
    rng = random.Random(seed)
    tasks = [(f"exp{i}", i % 3 if i % 2 else None)
             for i in range(n_tasks)]
    table = LeaseTable(tasks, lease_timeout_s=5.0,
                       max_failures=max_failures)
    log = []
    now = 0.0
    workers = ["w1", "w2", "w3"]
    for _step in range(400):
        if table.settled():
            break
        now += rng.uniform(0.0, 2.0)
        op = rng.choice(["issue", "heartbeat", "expire", "fail",
                         "complete"])
        if op == "issue":
            lease = table.issue(rng.choice(workers), now)
            if lease is not None:
                log.append(("issue", lease.lease_id,
                            task_key(lease.task), lease.attempt))
        elif op == "heartbeat":
            active = table.active_leases()
            if active:
                lease = rng.choice(active)
                log.append(("hb", lease.lease_id,
                            table.heartbeat(lease.lease_id, now)))
        elif op == "expire":
            for lease in table.expire(now):
                log.append(("expire", lease.lease_id,
                            task_key(lease.task)))
        elif op == "fail":
            active = table.active_leases()
            if active:
                lease = rng.choice(active)
                log.append(("fail", lease.lease_id,
                            table.fail(lease.lease_id, lease.task)))
        else:
            active = table.active_leases()
            if active:
                lease = rng.choice(active)
                log.append(("complete", lease.lease_id,
                            table.complete(lease.lease_id, lease.task)))
    # Drain: grant and complete whatever is left so the run settles.
    while not table.settled():
        now += 1.0
        lease = table.issue("w-drain", now)
        if lease is None:
            table.expire(now + 10.0)
            continue
        log.append(("drain", task_key(lease.task),
                    table.complete(lease.lease_id, lease.task)))
    return tasks, table, log


def test_random_schedules_always_settle_each_task_exactly_once():
    for seed in range(12):
        tasks, table, _log = _random_schedule(seed)
        assert table.settled()
        for task in tasks:
            done = table.is_done(task)
            exhausted = task in table.exhausted_tasks()
            assert done != exhausted, (seed, task)
        # Conservation: every grant was eventually completed, expired,
        # released, failed or is impossible now that the table settled.
        assert table.active_leases() == []
        assert table.pending_tasks() == []
        stats = table.stats
        assert stats["completed"] + len(table.exhausted_tasks()) == len(
            tasks)


def test_identical_seed_identical_transition_log():
    for seed in (3, 7, 42):
        _t1, _tab1, log1 = _random_schedule(seed)
        _t2, _tab2, log2 = _random_schedule(seed)
        assert log1 == log2


def test_different_seeds_explore_different_schedules():
    logs = {tuple(_random_schedule(seed)[2]) for seed in range(6)}
    assert len(logs) > 1
