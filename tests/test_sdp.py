"""Unit tests for SDP (Sockets Direct Protocol)."""

import pytest

from repro.calibration import DEFAULT_PROFILE, KB, MB
from repro.fabric import build_cluster_of_clusters
from repro.ipoib import netperf
from repro.sdp import SdpStack, run_sdp_stream_bw
from repro.sim import Simulator


def _pair(delay=0.0):
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=delay)
    sa = SdpStack(fabric.cluster_a[0], fabric)
    sb = SdpStack(fabric.cluster_b[0], fabric)
    return sim, fabric, sa, sb


def test_connect_and_accept():
    sim, fabric, sa, sb = _pair()
    listener = sb.listen(80)
    out = {}

    def server():
        out["server"] = yield listener.accept()

    def client():
        out["client"] = yield sa.connect(sb.node.lid, 80)

    sim.process(server())
    p = sim.process(client())
    sim.run(until=p)
    sim.run(until=sim.now + 100.0)  # let the accept event land
    assert out["client"].peer_lid == sb.node.lid
    assert out["server"].peer_lid == sa.node.lid


def test_connect_refused_without_listener():
    sim, fabric, sa, sb = _pair()
    p = sa.connect(sb.node.lid, 9999)
    with pytest.raises(ConnectionRefusedError):
        sim.run(until=p)


def test_connect_refused_without_stack():
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, 1, 1)
    sa = SdpStack(fabric.cluster_a[0], fabric)
    p = sa.connect(fabric.cluster_b[0].lid, 80)
    with pytest.raises(ConnectionRefusedError):
        sim.run(until=p)


def test_listen_twice_raises():
    sim, fabric, sa, sb = _pair()
    sb.listen(80)
    with pytest.raises(ValueError):
        sb.listen(80)


def test_stream_delivers_bytes_and_records():
    sim, fabric, sa, sb = _pair()
    listener = sb.listen(80)
    got = []

    def server():
        sock = yield listener.accept()
        off, rec = yield sock.recv_record()
        got.append((off, rec))
        off, rec = yield sock.recv_record()
        got.append((off, rec))

    def client():
        sock = yield sa.connect(sb.node.lid, 80)
        sock.send(100 * KB, record="big")   # chunked on the wire
        sock.send(512, record="small")

    d = sim.process(server())
    sim.process(client())
    sim.run(until=d)
    assert got == [(100 * KB, "big"), (100 * KB + 512, "small")]


def test_send_rejects_nonpositive():
    sim, fabric, sa, sb = _pair()
    listener = sb.listen(80)
    out = {}

    def client():
        out["sock"] = yield sa.connect(sb.node.lid, 80)

    sim.run(until=sim.process(client()))
    with pytest.raises(ValueError):
        out["sock"].send(0)


def test_sdp_beats_ipoib_rc_at_lan():
    """SDP skips the TCP stack cost, so it should win at zero delay."""
    sim, fabric, *_ = _pair(0.0)
    sdp = run_sdp_stream_bw(sim, fabric, fabric.cluster_a[0],
                            fabric.cluster_b[0], 8 * MB)
    sim2 = Simulator()
    f2 = build_cluster_of_clusters(sim2, 1, 1, wan_delay_us=0.0)
    rc = netperf.run_stream_bw(sim2, f2, f2.cluster_a[0], f2.cluster_b[0],
                               8 * MB, mode="rc")
    assert sdp > rc


def test_sdp_not_immune_to_wan_delay():
    """SDP rides RC, so its window limits it over long pipes too."""
    sim, fabric, *_ = _pair(0.0)
    near = run_sdp_stream_bw(sim, fabric, fabric.cluster_a[0],
                             fabric.cluster_b[0], 8 * MB)
    sim2 = Simulator()
    f2 = build_cluster_of_clusters(sim2, 1, 1, wan_delay_us=10000.0)
    sa = SdpStack(f2.cluster_a[0], f2)
    far = run_sdp_stream_bw(sim2, f2, f2.cluster_a[0], f2.cluster_b[0],
                            8 * MB)
    assert far < 0.25 * near


def test_sdp_near_wire_speed_at_lan():
    sim, fabric, *_ = _pair(0.0)
    bw = run_sdp_stream_bw(sim, fabric, fabric.cluster_a[0],
                           fabric.cluster_b[0], 8 * MB)
    assert bw > 0.9 * DEFAULT_PROFILE.sdr_rate
