#!/usr/bin/env python3
"""Quickstart: build the paper's testbed and take verbs measurements.

Builds the Fig. 2 cluster-of-clusters (two IB clusters joined by an
Obsidian Longbow pair), dials in WAN separations via the Longbows'
delay-emulation knob, and measures verbs-level latency and bandwidth —
the §3.2 baseline of the paper.

Run:  python examples/quickstart.py
"""

from repro import Simulator, build_back_to_back, build_cluster_of_clusters
from repro.verbs import perftest
from repro.wan import delay_for_distance_km, distance_km_for_delay

KB, MB = 1024, 1024 * 1024


def main():
    # -- latency: what does the Longbow pair cost? -------------------------
    sim = Simulator()
    b2b = build_back_to_back(sim)
    base_lat = perftest.run_send_lat(sim, *b2b.nodes, size=2, iters=50)

    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=0.0)
    a, b = fabric.cluster_a[0], fabric.cluster_b[0]
    lb_lat = perftest.run_send_lat(sim, a, b, size=2, iters=50)

    print(f"RC send/recv latency back-to-back : {base_lat:6.2f} us")
    print(f"RC send/recv latency via Longbows : {lb_lat:6.2f} us")
    print(f"  -> the Longbow pair adds ~{lb_lat - base_lat:.1f} us "
          f"(paper: 'about 5 us')\n")

    # -- bandwidth vs emulated distance -------------------------------------
    print(f"{'distance':>10} {'delay':>8} | {'RC 64KB':>9} {'RC 4MB':>9} "
          f"{'UD 2KB':>9}   (MB/s)")
    for km in (0, 2, 20, 200, 2000):
        delay = delay_for_distance_km(km)
        sim = Simulator()
        fabric = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=delay)
        a, b = fabric.cluster_a[0], fabric.cluster_b[0]
        bw_64k = perftest.run_send_bw(sim, a, b, 64 * KB, iters=48)
        bw_4m = perftest.run_send_bw(sim, a, b, 4 * MB, iters=16)
        bw_ud = perftest.run_send_bw(sim, a, b, 2 * KB, iters=200,
                                     transport="ud")
        print(f"{km:>8} km {delay:>6.0f}us | {bw_64k:9.1f} {bw_4m:9.1f} "
              f"{bw_ud:9.1f}")

    print("\nTakeaways (paper §3.2): UD never degrades (no ACKs); RC keeps")
    print("full bandwidth for large messages at any distance, but medium")
    print("messages collapse once the RC window cannot cover the pipe.")


if __name__ == "__main__":
    main()
