#!/usr/bin/env python3
"""Distributed locking over IB WAN with remote atomics (extension).

The paper's future work points at data-center services over IB WAN;
this example runs an RDMA-atomic distributed lock manager (compare-and-
swap acquire, the design direction of the authors' group) across the
emulated WAN and shows how lock handoff degrades with distance — the
same window-free, latency-bound behaviour that hurts CG in Fig. 12.

Run:  python examples/distributed_locking.py
"""

from repro import Simulator, build_cluster_of_clusters
from repro.core.dlm import LockClient, LockServer


def measure(delay_us: float, clients: int = 3, rounds: int = 4):
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, 1, clients,
                                       wan_delay_us=delay_us)
    server = LockServer(fabric.cluster_a[0])
    addr = server.create_lock()
    lock_clients = [LockClient(node, server, client_id=i + 1,
                               backoff_us=max(10.0, delay_us))
                    for i, node in enumerate(fabric.cluster_b)]
    stats = {"ops": 0, "retries": 0}

    def worker(client):
        for _ in range(rounds):
            yield from client.acquire(addr)
            yield sim.timeout(20.0)  # critical section
            yield from client.release(addr)
            stats["ops"] += 1

    t0 = sim.now
    procs = [sim.process(worker(c)) for c in lock_clients]
    sim.run(until=sim.all_of(procs))
    elapsed = sim.now - t0
    stats["retries"] = sum(c.retries for c in lock_clients)
    return elapsed / stats["ops"], stats["retries"]


def main():
    print("RDMA-atomic lock handoff across the WAN "
          "(3 contending clients, CAS spin with backoff):\n")
    print(f"{'delay':>8} {'distance':>10} | {'us/handoff':>11} {'retries':>8}")
    for delay in (0.0, 10.0, 100.0, 1000.0, 10000.0):
        per_op, retries = measure(delay)
        print(f"{delay:>6.0f}us {delay / 5:>8.0f}km | {per_op:>11.1f} "
              f"{retries:>8}")
    print("\nEach handoff costs at least one WAN round trip per CAS —")
    print("latency-bound services cannot hide distance, matching the")
    print("paper's conclusion for small-message workloads.")


if __name__ == "__main__":
    main()
