#!/usr/bin/env python3
"""NFS over IB WAN: RDMA vs IPoIB transports (paper §3.7, Fig. 13).

Mounts the same export over three transports — NFS/RDMA (server-driven
4 KB-chunk RDMA writes), NFS over IPoIB connected mode, and NFS over
IPoIB datagram mode — and measures IOzone-style multi-threaded read
throughput across WAN separations.

The crossover is the paper's punchline: RDMA's zero-copy design wins on
short pipes, but its 4 KB chunking starves the RC window on long ones,
where plain TCP over IPoIB-RC takes the lead.

Run:  python examples/nfs_over_wan.py
"""

from repro import Simulator, build_cluster, build_cluster_of_clusters
from repro.nfs import run_iozone_read

MB = 1024 * 1024


def main():
    threads = 4
    read_bytes = 8 * MB

    sim = Simulator()
    fabric = build_cluster(sim, 2)  # LAN baseline: same DDR cluster
    lan_bw = run_iozone_read(sim, fabric, fabric.nodes[0], fabric.nodes[1],
                             "rdma", n_streams=threads,
                             read_bytes=read_bytes)
    print(f"LAN (DDR, no Longbows) NFS/RDMA: {lan_bw:7.1f} MB/s")
    print(f"IOzone-style read, 512 MB file, 256 KB records, "
          f"{threads} client threads\n")

    print(f"{'delay':>8} | {'NFS/RDMA':>9} {'IPoIB-RC':>9} {'IPoIB-UD':>9}"
          f"   best")
    for delay in (0.0, 10.0, 100.0, 1000.0):
        row = {}
        for transport in ("rdma", "ipoib-rc", "ipoib-ud"):
            sim = Simulator()
            fabric = build_cluster_of_clusters(sim, 1, 1,
                                               wan_delay_us=delay)
            row[transport] = run_iozone_read(
                sim, fabric, fabric.cluster_a[0], fabric.cluster_b[0],
                transport, n_streams=threads, read_bytes=read_bytes)
        best = max(row, key=row.get)
        print(f"{delay:>6.0f}us | {row['rdma']:9.1f} {row['ipoib-rc']:9.1f} "
              f"{row['ipoib-ud']:9.1f}   {best}")

    print("\nPaper Fig. 13: RDMA wins while the pipe is short; at >=1 ms the")
    print("4 KB RDMA chunks cannot fill the window and IPoIB-RC wins.")


if __name__ == "__main__":
    main()
