#!/usr/bin/env python3
"""WAN-aware MPI tuning: rendezvous threshold and hierarchical bcast.

Reproduces the paper's §3.4 story end to end:

1. medium-sized MPI messages collapse over a long pipe because the
   rendezvous handshake costs an extra WAN round trip per message;
2. raising the eager/rendezvous threshold (MVAPICH2's
   VIADEV_RENDEZVOUS_THRESHOLD) fixes it — and the adaptive tuner picks
   a threshold from a live path probe (RTT x bandwidth);
3. a WAN-aware hierarchical broadcast crosses the WAN once instead of
   O(P) times.

Run:  python examples/mpi_wan_tuning.py
"""

from repro import Simulator, build_cluster_of_clusters
from repro.core.adaptive import probe_path, recommend_tuning
from repro.core.scenario import wan_clusters, wan_pair
from repro.mpi.benchmarks import run_osu_bcast, run_osu_bw

KB = 1024


def main():
    delay = 10000.0  # 10 ms one way = 2000 km of fibre
    print(f"WAN delay: {delay:.0f} us (~{delay / 5:.0f} km)\n")

    # -- probe the path and let the tuner pick a threshold ------------------
    s = wan_pair(delay)
    est = probe_path(s.sim, s.fabric)
    tuned = recommend_tuning(est)
    print(f"path probe: RTT = {est.rtt_us:.0f} us, "
          f"BW = {est.bandwidth_mbps:.0f} MB/s, "
          f"BDP = {est.bdp_bytes / 1024:.0f} KB")
    print(f"tuner chose: eager_threshold = "
          f"{tuned.eager_threshold // 1024} KB, "
          f"bcast = {tuned.bcast_algorithm}\n")

    # -- medium-message bandwidth: default vs tuned --------------------------
    print(f"{'size':>8} | {'default (8K)':>13} {'tuned':>10} {'gain':>8}")
    for size in (8 * KB, 16 * KB, 32 * KB):
        s = wan_pair(delay)
        orig = run_osu_bw(s.sim, s.fabric, size, window=32, iters=4)
        s = wan_pair(delay)
        new = run_osu_bw(s.sim, s.fabric, size, window=32, iters=4,
                         tuning=tuned)
        print(f"{size // 1024:>6}KB | {orig:>11.2f}MB {new:>8.2f}MB "
              f"{100 * (new - orig) / orig:>+7.0f}%")

    # -- hierarchical broadcast ----------------------------------------------
    print("\nBroadcast latency, 32 ranks (8 nodes x 2 per cluster), "
          "1 ms delay:")
    print(f"{'size':>8} | {'default':>12} {'hierarchical':>13} {'gain':>8}")
    for size in (4 * KB, 32 * KB, 128 * KB):
        s = wan_clusters(8, 8, 1000.0)
        flat = run_osu_bcast(s.sim, s.fabric, size, ppn=2, iters=3)
        s = wan_clusters(8, 8, 1000.0)
        hier = run_osu_bcast(s.sim, s.fabric, size, ppn=2, iters=3,
                             algorithm="hierarchical")
        print(f"{size // 1024:>6}KB | {flat:>10.0f}us {hier:>11.0f}us "
              f"{100 * (flat - hier) / flat:>+7.0f}%")


if __name__ == "__main__":
    main()
