#!/usr/bin/env python3
"""Filling a long pipe: parallel streams and message coalescing.

The paper's two bandwidth-recovery tricks for high-delay links:

* **parallel TCP streams** (Fig. 6b/7b) — each stream has its own
  window, so k streams keep k x window bytes in flight;
* **message coalescing** (§1/abstract: "transferring data using large
  messages") — batch small sends into wire-sized messages so the RC
  window carries useful payload instead of per-message overhead.

Run:  python examples/parallel_streams.py
"""

from repro import Simulator, build_cluster_of_clusters
from repro.core.optimizations import coalesced_message_rate
from repro.ipoib import netperf
from repro.mpi import MPIJob

KB, MB = 1024, 1024 * 1024


def main():
    # -- parallel streams over IPoIB-UD -------------------------------------
    print("IPoIB-UD throughput (MB/s) vs parallel streams "
          "(8 MB total, default window):")
    streams = (1, 2, 4, 8)
    print(f"{'delay':>8} | " + "  ".join(f"{n:>2} strm" for n in streams))
    for delay in (0.0, 1000.0, 10000.0):
        cells = []
        for n in streams:
            sim = Simulator()
            fabric = build_cluster_of_clusters(sim, 1, 1,
                                               wan_delay_us=delay)
            bw = netperf.run_parallel_stream_bw(
                sim, fabric, fabric.cluster_a[0], fabric.cluster_b[0],
                total_bytes=8 * MB, streams=n, mode="ud")
            cells.append(f"{bw:7.1f}")
        print(f"{delay:>6.0f}us | " + "  ".join(cells))

    # -- message coalescing over MPI ------------------------------------------
    print("\nSmall-message rate (512 B messages), individual vs coalesced "
          "into 64 KB batches:")
    print(f"{'delay':>8} | {'individual':>12} {'coalesced':>12} {'speedup':>8}")
    for delay in (100.0, 1000.0, 10000.0):
        rates = []
        for threshold in (None, 64 * KB):
            sim = Simulator()
            fabric = build_cluster_of_clusters(sim, 1, 1,
                                               wan_delay_us=delay)
            job = MPIJob(fabric, nprocs=2, ppn=1, placement="cyclic")
            rates.append(coalesced_message_rate(
                sim, job.procs[0], job.procs[1], msg_bytes=512, count=256,
                threshold=threshold))
        print(f"{delay:>6.0f}us | {rates[0]:>10.0f}/s {rates[1]:>10.0f}/s "
              f"{rates[1] / rates[0]:>7.1f}x")


if __name__ == "__main__":
    main()
