#!/usr/bin/env python3
"""NAS parallel benchmarks across a cluster-of-clusters (paper Fig. 12).

Runs the IS / FT / CG / MG / EP class-B communication skeletons on two
8-node clusters joined by the emulated WAN, sweeping the separation.
Message-size mix decides the outcome: IS (100 % large) and FT (83 %
large) overlap their bulk all-to-alls and barely notice the delay; CG's
chain of data-dependent medium exchanges eats a WAN round trip per step.

Run:  python examples/nas_cluster_of_clusters.py
"""

from repro import Simulator, build_cluster_of_clusters
from repro.apps import message_size_distribution, nas_profile, run_nas

DELAYS = (0.0, 100.0, 1000.0, 10000.0)
# iteration scaling keeps this demo snappy; sizes are never scaled
BENCHES = (("IS", 0.2), ("FT", 0.05), ("CG", 0.027), ("MG", 0.1),
           ("EP", 1.0))


def main():
    nodes = 8  # per cluster; 16 ranks total
    print("Per-iteration message mix (class B profiles):")
    for bench, _ in BENCHES:
        dist = message_size_distribution(nas_profile(bench, 2 * nodes),
                                         2 * nodes)
        print(f"  {bench}: large {dist['large']:4.0%}  "
              f"medium {dist['medium']:4.0%}  small {dist['small']:4.0%}")

    print(f"\nRuntime normalized to the 0-delay run ({2 * nodes} ranks):")
    header = "  ".join(f"{int(d):>7}us" for d in DELAYS)
    print(f"{'bench':>6} | {header}")
    for bench, scale in BENCHES:
        base = None
        cells = []
        for delay in DELAYS:
            sim = Simulator()
            fabric = build_cluster_of_clusters(sim, nodes, nodes,
                                               wan_delay_us=delay)
            result = run_nas(sim, fabric, bench, ppn=1, scale=scale)
            if base is None:
                base = result.runtime_us
            cells.append(f"{result.runtime_us / base:8.2f}x")
        print(f"{bench:>6} | " + "  ".join(cells))

    print("\nPaper Fig. 12: IS and FT hold their performance out to")
    print("~2000 km separations; CG (and MG) degrade markedly.")


if __name__ == "__main__":
    main()
