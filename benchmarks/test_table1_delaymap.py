"""Benchmark: Table 1 — WAN delay vs emulated distance.

Regenerates the experiment(s) table1 from the registry and checks the
paper's qualitative shape on the regenerated rows (absolute numbers are
simulator-calibrated; the *shape* is the reproduction target).
"""

import pytest


def test_table1(regen):
    """delay 5 us/km, rows 1..2000 km."""
    res = regen("table1")
    assert res.rows, "experiment produced no rows"
    assert res.rows[0] == ('1 km', '5 us')

