"""Benchmark: Extension — Sockets Direct Protocol vs IPoIB.

Regenerates the experiment(s) ext_sdp from the registry and checks the
expected qualitative shape (these extend the paper per its future-work
section; there are no paper numbers to compare against).
"""

import pytest


def test_ext_sdp(regen):
    """SDP beats both IPoIB modes at LAN and keeps winning over WAN."""
    res = regen("ext_sdp")
    assert res.rows, "experiment produced no rows"
    assert all(r[1] > r[2] for r in res.rows)

