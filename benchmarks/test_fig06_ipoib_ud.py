"""Benchmark: Fig. 6 — IPoIB-UD throughput: window sizes and parallel streams.

Regenerates the experiment(s) fig06a, fig06b from the registry and checks the
paper's qualitative shape on the regenerated rows (absolute numbers are
simulator-calibrated; the *shape* is the reproduction target).
"""

import pytest


def test_fig06a(regen):
    """larger windows win at high delay."""
    res = regen("fig06a")
    assert res.rows, "experiment produced no rows"
    assert res.rows[0][-1] < res.rows[-1][-1]


def test_fig06b(regen):
    """8 streams beat 1 stream at 10ms."""
    res = regen("fig06b")
    assert res.rows, "experiment produced no rows"
    assert res.rows[-1][-1] > 2 * res.rows[0][-1]

