"""Benchmark: Fig. 7 — IPoIB-RC throughput: IP MTU and parallel streams.

Regenerates the experiment(s) fig07a, fig07b from the registry and checks the
paper's qualitative shape on the regenerated rows (absolute numbers are
simulator-calibrated; the *shape* is the reproduction target).
"""

import pytest


def test_fig07a(regen):
    """64K MTU fastest at low delay, collapses at >=1ms."""
    res = regen("fig07a")
    assert res.rows, "experiment produced no rows"
    assert res.rows[2][1] > res.rows[0][1] and res.rows[2][-1] < 0.2 * res.rows[2][1]


def test_fig07b(regen):
    """streams recover throughput at 10ms."""
    res = regen("fig07b")
    assert res.rows, "experiment produced no rows"
    assert res.rows[-1][-1] > res.rows[0][-1]

