"""Benchmark: §3 — message-coalescing optimization.

Regenerates the experiment(s) opt_coalescing from the registry and checks the
paper's qualitative shape on the regenerated rows (absolute numbers are
simulator-calibrated; the *shape* is the reproduction target).
"""

import pytest


def test_opt_coalescing(regen):
    """coalescing speeds up small messages over WAN."""
    res = regen("opt_coalescing")
    assert res.rows, "experiment produced no rows"
    assert all(r[-1] > 1.5 for r in res.rows)

