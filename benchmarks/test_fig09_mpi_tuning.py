"""Benchmark: Fig. 9 — MPI rendezvous-threshold tuning at 10 ms.

Regenerates the experiment(s) fig09a, fig09b from the registry and checks the
paper's qualitative shape on the regenerated rows (absolute numbers are
simulator-calibrated; the *shape* is the reproduction target).
"""

import pytest


def test_fig09a(regen):
    """tuned threshold wins for 8-32K."""
    res = regen("fig09a")
    assert res.rows, "experiment produced no rows"
    assert min(res.column('improvement_%')) > 30.0


def test_fig09b(regen):
    """bidirectional gains as well."""
    res = regen("fig09b")
    assert res.rows, "experiment produced no rows"
    assert max(res.column('improvement_%')) > 30.0

