"""Benchmark: Fig. 11 — broadcast: default vs WAN-aware hierarchical.

Regenerates the experiment(s) fig11 from the registry and checks the
paper's qualitative shape on the regenerated rows (absolute numbers are
simulator-calibrated; the *shape* is the reproduction target).
"""

import pytest


def test_fig11(regen):
    """hierarchical never slower for >=32K sizes."""
    res = regen("fig11")
    assert res.rows, "experiment produced no rows"
    assert all(r[3] <= r[2] * 1.05 for r in res.rows if r[1] >= 32768)

