"""Benchmark: Fig. 12 — NAS class-B benchmarks vs WAN delay.

Regenerates the experiment(s) fig12 from the registry and checks the
paper's qualitative shape on the regenerated rows (absolute numbers are
simulator-calibrated; the *shape* is the reproduction target).
"""

import pytest


def test_fig12(regen):
    """IS tolerant, CG degrades."""
    res = regen("fig12")
    assert res.rows, "experiment produced no rows"
    assert dict((r[0], r) for r in res.rows)['IS'][-1] < 1.3 and dict((r[0], r) for r in res.rows)['CG'][-1] > 1.8

