"""Benchmark: Fig. 3 — verbs small-message latency.

Regenerates the experiment(s) fig03 from the registry and checks the
paper's qualitative shape on the regenerated rows (absolute numbers are
simulator-calibrated; the *shape* is the reproduction target).
"""

import pytest


def test_fig03(regen):
    """Longbow pair adds ~5 us over back-to-back."""
    res = regen("fig03")
    assert res.rows, "experiment produced no rows"
    assert res.rows[1][1] - res.rows[3][1] > 4.0

