"""Benchmark: event-kernel fast path vs. legacy dispatch.

Unlike the figure benchmarks, these measure the *simulator*, not the
paper: raw scheduler throughput on the frame-delivery storm (the
pattern every link/switch/Longbow hop pays per frame) and a real
fig05a regeneration run cold (cache bypassed), both with the fast path
enabled and with :func:`repro.sim._legacy.legacy_dispatch` patching
the pre-fast-path implementations back onto the same tree.

The speedup assertions here are deliberately loose (CI boxes are
noisy); the committed reference numbers live in ``BENCH_kernel.json``,
regenerated with ``tools/bench_kernel.py``.
"""
# repro-lint: disable-file=DET101 -- host-side benchmark: perf_counter times the real machine, not the simulation; determinism rules apply to sim code only

import gc
import time

import pytest

from repro.core.experiments import run_experiment
from repro.sim import Simulator
from repro.sim._legacy import legacy_dispatch

from tools.bench_kernel import _DeliveryChains, _run_storm

FRAMES = 40_000


def _storm_best(rounds: int = 3) -> float:
    return max(_run_storm(_DeliveryChains, FRAMES) for _ in range(rounds))


def test_frame_storm_events_per_sec(benchmark):
    """Fast-path scheduler throughput on the frame-delivery storm."""
    rate = benchmark.pedantic(_storm_best, rounds=1, iterations=1)
    benchmark.extra_info["events_per_sec"] = round(rate)
    assert rate > 100_000  # sanity floor, not a perf target


def test_frame_storm_beats_legacy_dispatch():
    """The fast path must clearly outrun the allocation-per-event
    dispatch on its home turf (committed reference: ~2.1x)."""
    fast = _storm_best()
    with legacy_dispatch():
        legacy = _storm_best()
    assert fast > 1.25 * legacy


def test_fig05a_cold_sweep_beats_legacy_dispatch(benchmark):
    """Real figure regeneration, cache bypassed, both dispatch modes.

    The committed reference speedups (BENCH_kernel.json) are 1.3-1.5x
    on the WAN sweeps; assert only that fast mode is not slower, so a
    noisy CI box cannot produce flaky failures.
    """

    def cold(exp_id="fig05a"):
        gc.collect()
        t0 = time.perf_counter()
        run_experiment(exp_id, quick=True)
        return time.perf_counter() - t0

    fast = benchmark.pedantic(cold, rounds=1, iterations=1)
    with legacy_dispatch():
        legacy = cold()
    benchmark.extra_info["fast_seconds"] = round(fast, 3)
    benchmark.extra_info["legacy_seconds"] = round(legacy, 3)
    assert fast < 1.1 * legacy
