"""Benchmark: Ablation — RC send window vs bandwidth-delay product.

Regenerates the experiment(s) abl_rc_window from the registry and checks the
paper's qualitative shape on the regenerated rows (absolute numbers are
simulator-calibrated; the *shape* is the reproduction target).
"""

import pytest


def test_abl_rc_window(regen):
    """larger windows monotonically help at 10ms."""
    res = regen("abl_rc_window")
    assert res.rows, "experiment produced no rows"
    assert res.rows[0][-1] < res.rows[1][-1] < res.rows[2][-1]

