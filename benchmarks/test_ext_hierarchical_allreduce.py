"""Benchmark: Extension — hierarchical allreduce (paper future work).

Regenerates the experiment(s) ext_hier_allreduce from the registry and checks the
paper's qualitative shape on the regenerated rows (absolute numbers are
simulator-calibrated; the *shape* is the reproduction target).
"""

import pytest


def test_ext_hier_allreduce(regen):
    """hierarchical not slower over WAN."""
    res = regen("ext_hier_allreduce")
    assert res.rows, "experiment produced no rows"
    assert all(r[2] <= r[1] * 1.05 for r in res.rows)

