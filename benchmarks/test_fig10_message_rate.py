"""Benchmark: Fig. 10 — multi-pair aggregate message rate.

Regenerates the experiment(s) fig10 from the registry and checks the
paper's qualitative shape on the regenerated rows (absolute numbers are
simulator-calibrated; the *shape* is the reproduction target).
"""

import pytest


def test_fig10(regen):
    """16 pairs beat 4 pairs at every delay."""
    res = regen("fig10")
    assert res.rows, "experiment produced no rows"
    assert all(r[-1] > r[2] for r in res.rows)

