"""Benchmark: Extension — RDMA-atomic distributed locking over WAN.

Regenerates the ``ext_dlm`` experiment: lock acquire+release cost
versus emulated cluster separation (an extension in the direction of
the paper's data-center future work).
"""

import pytest


def test_ext_dlm(regen):
    """Handoff cost grows ~linearly with one-way WAN delay."""
    res = regen("ext_dlm")
    assert res.rows, "experiment produced no rows"
    costs = [r[1] for r in res.rows]
    assert costs == sorted(costs)
    # at 10 ms delay an acquire+release needs >= 2 round trips = 40 ms
    assert costs[-1] >= 40000.0
