"""Benchmark: Extension — striped parallel filesystem over IB WAN.

Regenerates the experiment(s) ext_pfs from the registry and checks the
expected qualitative shape (these extend the paper per its future-work
section; there are no paper numbers to compare against).
"""

import pytest


def test_ext_pfs(regen):
    """striping recovers WAN bandwidth like parallel streams."""
    res = regen("ext_pfs")
    assert res.rows, "experiment produced no rows"
    assert res.rows[1][3] > 3 * res.rows[1][1]

