"""Benchmark: Fig. 13 — NFS read throughput over RDMA and IPoIB.

Regenerates the experiment(s) fig13a, fig13b, fig13c from the registry and checks the
paper's qualitative shape on the regenerated rows (absolute numbers are
simulator-calibrated; the *shape* is the reproduction target).
"""

import pytest


def test_fig13a(regen):
    """LAN > WAN; collapse at 1ms."""
    res = regen("fig13a")
    assert res.rows, "experiment produced no rows"
    assert res.rows[-1][1] > res.rows[-1][2] and res.rows[-1][-1] < 0.2 * res.rows[-1][2]


def test_fig13b(regen):
    """RDMA best at 10us (8 streams)."""
    res = regen("fig13b")
    assert res.rows, "experiment produced no rows"
    assert res.rows[-1][1] > res.rows[-1][2] > res.rows[-1][3]


def test_fig13c(regen):
    """IPoIB-RC best at 1ms (8 streams)."""
    res = regen("fig13c")
    assert res.rows, "experiment produced no rows"
    assert res.rows[-1][2] > 3 * res.rows[-1][1]

