"""Benchmark: §3.4 — adaptive protocol-threshold tuning.

Regenerates the experiment(s) opt_adaptive from the registry and checks the
paper's qualitative shape on the regenerated rows (absolute numbers are
simulator-calibrated; the *shape* is the reproduction target).
"""

import pytest


def test_opt_adaptive(regen):
    """adaptive beats the static default over WAN."""
    res = regen("opt_adaptive")
    assert res.rows, "experiment produced no rows"
    assert all(r[-1] > 0.0 for r in res.rows)

