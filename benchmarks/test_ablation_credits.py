"""Benchmark: Ablation — Longbow buffer-credit pool.

Regenerates the experiment(s) abl_credits from the registry and checks the
paper's qualitative shape on the regenerated rows (absolute numbers are
simulator-calibrated; the *shape* is the reproduction target).
"""

import pytest


def test_abl_credits(regen):
    """starved credits throttle the WAN."""
    res = regen("abl_credits")
    assert res.rows, "experiment produced no rows"
    assert res.rows[0][1] < res.rows[-1][1]

