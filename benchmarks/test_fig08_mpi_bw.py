"""Benchmark: Fig. 8 — MPI (bidirectional) bandwidth vs delay.

Regenerates the experiment(s) fig08a, fig08b from the registry and checks the
paper's qualitative shape on the regenerated rows (absolute numbers are
simulator-calibrated; the *shape* is the reproduction target).
"""

import pytest


def test_fig08a(regen):
    """peak near SDR; medium sizes dip under delay."""
    res = regen("fig08a")
    assert res.rows, "experiment produced no rows"
    assert res.rows[-1][1] > 850 and res.rows[1][-2] < 0.3 * res.rows[1][1]


def test_fig08b(regen):
    """bidirectional 4M near 2x SDR."""
    res = regen("fig08b")
    assert res.rows, "experiment produced no rows"
    assert res.rows[-1][1] > 1600

