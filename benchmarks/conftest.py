"""Shared helpers for the figure-regeneration benchmark suite.

Each ``benchmarks/test_figXX_*.py`` regenerates one table or figure from
the paper via the experiment registry (``repro.core.experiments``) and
times the regeneration with pytest-benchmark.  The regenerated rows are
printed (run with ``-s`` to see them) and attached to the benchmark's
``extra_info`` so ``--benchmark-json`` captures the data, not just the
timing.

Set ``REPRO_BENCH_FULL=1`` to run the full (paper-sized) sweeps instead
of the quick ones.
"""

import os

import pytest

from repro.core.experiments import run_experiment

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")


@pytest.fixture
def regen(benchmark):
    """Run one registered experiment under pytest-benchmark."""

    def _run(exp_id: str):
        result = benchmark.pedantic(
            lambda: run_experiment(exp_id, quick=not FULL),
            rounds=1, iterations=1)
        print()
        print(result.to_text())
        benchmark.extra_info["exp_id"] = exp_id
        benchmark.extra_info["columns"] = result.columns
        benchmark.extra_info["rows"] = [
            [str(v) for v in row] for row in result.rows]
        return result

    return _run
