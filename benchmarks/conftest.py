"""Shared helpers for the figure-regeneration benchmark suite.

Each ``benchmarks/test_figXX_*.py`` regenerates one table or figure from
the paper via the experiment registry (``repro.core.experiments``) and
times the regeneration with pytest-benchmark.  The regenerated rows are
printed (run with ``-s`` to see them) and attached to the benchmark's
``extra_info`` so ``--benchmark-json`` captures the data, not just the
timing.

Regenerations go through the shared on-disk result cache
(``.repro-cache/`` at the repo root, see :mod:`repro.exp.cache`), so
re-running the suite against unchanged experiment code is nearly
instant and still asserts every table shape.  Set
``REPRO_BENCH_CACHE=0`` to force cold (true-timing) runs, or delete
``.repro-cache/``.

Set ``REPRO_BENCH_FULL=1`` to run the full (paper-sized) sweeps instead
of the quick ones.
"""

import os
from pathlib import Path

import pytest

from repro.core.experiments import run_experiment
from repro.exp import ResultCache

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")
CACHE = (None if os.environ.get("REPRO_BENCH_CACHE", "1") == "0" else
         ResultCache(Path(__file__).resolve().parent.parent /
                     ".repro-cache"))


def _regen_once(exp_id: str):
    if CACHE is None:
        return run_experiment(exp_id, quick=not FULL)
    cached = CACHE.load(exp_id, quick=not FULL)
    if cached is not None:
        return cached
    result = run_experiment(exp_id, quick=not FULL)
    CACHE.save(exp_id, not FULL, result)
    return result


@pytest.fixture
def regen(benchmark):
    """Run one registered experiment under pytest-benchmark."""

    def _run(exp_id: str):
        result = benchmark.pedantic(
            lambda: _regen_once(exp_id), rounds=1, iterations=1)
        print()
        print(result.to_text())
        benchmark.extra_info["exp_id"] = exp_id
        benchmark.extra_info["columns"] = result.columns
        benchmark.extra_info["rows"] = [
            [str(v) for v in row] for row in result.rows]
        if CACHE is not None:
            benchmark.extra_info["cache"] = "hit" if CACHE.hits else "miss"
        return result

    return _run
