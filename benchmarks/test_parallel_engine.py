"""Engine benchmark: cold parallel sweep vs serial, plus warm cache.

Times a cold ``--jobs N`` sweep of the verbs-bandwidth figures against
the same sweep run serially, and a warm-cache replay.  On a
multi-core box the parallel run's wall clock lands well below the
serial one (the cells are embarrassingly parallel); both timings and
the speedup land in ``extra_info`` via ``--benchmark-json``.  The
byte-identity of the two result sets is asserted unconditionally.
"""
# repro-lint: disable-file=DET101 -- host-side benchmark: perf_counter times the real machine, not the simulation; determinism rules apply to sim code only

import os
import time

from repro.core.experiments import run_all
from repro.exp import ResultCache, run_experiments

IDS = ["fig04a", "fig04b", "fig05a", "fig05b"]
JOBS = max(2, os.cpu_count() or 1)


def test_parallel_engine_speedup(benchmark, tmp_path):
    t0 = time.perf_counter()
    serial = run_all(quick=True, ids=IDS)
    serial_s = time.perf_counter() - t0

    cache = ResultCache(tmp_path / "cache")
    parallel = benchmark.pedantic(
        lambda: run_experiments(IDS, quick=True, jobs=JOBS, cache=cache),
        rounds=1, iterations=1)

    for a, b in zip(serial, parallel):
        assert a.to_json() == b.to_json()

    t0 = time.perf_counter()
    warm = run_experiments(IDS, quick=True, jobs=JOBS, cache=cache)
    warm_s = time.perf_counter() - t0
    assert cache.hits == len(IDS), "warm replay must be all cache hits"
    assert [r.to_json() for r in warm] == [r.to_json() for r in serial]

    benchmark.extra_info["jobs"] = JOBS
    benchmark.extra_info["serial_s"] = round(serial_s, 3)
    benchmark.extra_info["warm_cache_s"] = round(warm_s, 4)
    if JOBS > 1 and (os.cpu_count() or 1) > 1:
        benchmark.extra_info["note"] = "parallel wall clock in the timing"
