"""Benchmark: Fig. 4 — verbs UD (bidirectional) bandwidth vs delay.

Regenerates the experiment(s) fig04a, fig04b from the registry and checks the
paper's qualitative shape on the regenerated rows (absolute numbers are
simulator-calibrated; the *shape* is the reproduction target).
"""

import pytest


def test_fig04a(regen):
    """UD is delay-independent at 2K."""
    res = regen("fig04a")
    assert res.rows, "experiment produced no rows"
    assert abs(res.rows[-1][1] - res.rows[-1][-1]) < 0.02 * res.rows[-1][1]


def test_fig04b(regen):
    """bidirectional roughly doubles unidirectional."""
    res = regen("fig04b")
    assert res.rows, "experiment produced no rows"
    assert res.rows[-1][1] > 1800

