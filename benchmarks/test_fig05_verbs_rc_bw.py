"""Benchmark: Fig. 5 — verbs RC (bidirectional) bandwidth vs delay.

Regenerates the experiment(s) fig05a, fig05b from the registry and checks the
paper's qualitative shape on the regenerated rows (absolute numbers are
simulator-calibrated; the *shape* is the reproduction target).
"""

import pytest


def test_fig05a(regen):
    """4M reaches peak at every delay; 64K collapses at 10ms."""
    res = regen("fig05a")
    assert res.rows, "experiment produced no rows"
    assert res.rows[-1][-1] > 900 and res.rows[1][-1] < 100


def test_fig05b(regen):
    """bidirectional peak ~2x SDR."""
    res = regen("fig05b")
    assert res.rows, "experiment produced no rows"
    assert res.rows[-1][1] > 1800

