"""Benchmark: §3.3 — parallel-stream optimization claim.

Regenerates the experiment(s) opt_streams from the registry and checks the
paper's qualitative shape on the regenerated rows (absolute numbers are
simulator-calibrated; the *shape* is the reproduction target).
"""

import pytest


def test_opt_streams(regen):
    """gain exceeds the paper's ~50% at high delay."""
    res = regen("opt_streams")
    assert res.rows, "experiment produced no rows"
    assert max(res.column('gain_%')) > 40.0

