"""Benchmark: Ablation — broadcast algorithm WAN crossings.

Regenerates the experiment(s) abl_bcast from the registry and checks the
paper's qualitative shape on the regenerated rows (absolute numbers are
simulator-calibrated; the *shape* is the reproduction target).
"""

import pytest


def test_abl_bcast(regen):
    """ring allgather collapses at 1ms; hierarchical best-or-tied."""
    res = regen("abl_bcast")
    assert res.rows, "experiment produced no rows"
    assert res.rows[1][2] > 5 * res.rows[1][4] and res.rows[1][4] <= res.rows[1][1]

