"""Benchmark: Extension — NFS client readahead over WAN.

Regenerates the experiment(s) ext_readahead from the registry and checks the
expected qualitative shape (these extend the paper per its future-work
section; there are no paper numbers to compare against).
"""

import pytest


def test_ext_readahead(regen):
    """readahead multiplies single-client WAN throughput."""
    res = regen("ext_readahead")
    assert res.rows, "experiment produced no rows"
    assert res.rows[2][2] > 2 * res.rows[0][2]

