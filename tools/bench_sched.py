#!/usr/bin/env python
"""Scheduler wire-efficiency benchmark: pipelined vs stop-and-wait.

Measures the credit-pipelined + batched-cache socket protocol (PR 9)
against the PR-8 wire pattern — one lease in flight per worker, one
blocking CACHE_GET per cell — emulated on the same source tree with
``SocketWorkerBackend(pipeline=1, prefetch=False)``, so the comparison
is honest before/after, not old-commit/new-commit.

The workload is the adversarial case for a stop-and-wait wire: a
many-tiny-cell quick grid (hundreds of cells whose compute time is
microseconds, so coordinator round trips dominate) plus a handful of
wide cells whose payloads exceed the compression threshold.  The
experiments are registered at runtime and the workers run as in-process
threads (``serve()``), sharing the registry — exactly the harness the
conformance wall uses.  Worker connections are routed through an
emulated WAN hop (``_WanRelay``: fixed one-way propagation delay, 3ms
RTT, chunks overlap in flight) so round trips cost what they cost over
the paper's InfiniBand-WAN setting rather than ~0us loopback.

Three measurements, written to ``BENCH_sched.json`` at the repo root:

* **cold sweep** — pipelined run that populates the shared cell cache
  (informational; it also exercises CACHE_MPUT batching);
* **warm stop-and-wait** — the PR-8 pattern over a warm shared cache:
  every cell pays a grant wait plus a blocking CACHE_GET (~2 round
  trips per task);
* **warm pipelined** — the PR-9 pattern: shard keys prefetched in
  chunked CACHE_MGET at WELCOME, leases streamed under a credit
  window, results streamed back.

Gates (exit 1 on failure):

* pipelined warm throughput >= 3x stop-and-wait (full mode only;
  smoke records the ratio without gating — CI boxes are noisy);
* pipelined coordinator round trips per task < 0.5 (gated in smoke
  too: it is a wire-pattern property, not a timing one);
* byte identity: both socket runs match the serial store exactly;
* the ``repro.obs`` counters ``exp/leases_pipelined``,
  ``exp/cache_prefetch_hits`` and ``exp/frames_compressed`` are all
  nonzero in the pipelined run.

Usage::

    PYTHONPATH=src python tools/bench_sched.py            # full run
    PYTHONPATH=src python tools/bench_sched.py --smoke    # CI-sized
    PYTHONPATH=src python tools/bench_sched.py --out x.json
"""

from __future__ import annotations

import argparse
import contextlib
import json
import queue
import socket as socketlib
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.registry import CellPlan, experiment  # noqa: E402
from repro.exp import SocketWorkerBackend, run_experiments  # noqa: E402
from repro.exp.worker import serve  # noqa: E402
from repro.obs import MetricsRegistry, use_registry  # noqa: E402

TARGET_THROUGHPUT_SPEEDUP = 3.0
TARGET_ROUND_TRIPS_PER_TASK = 0.5

TINY_ID = "bench_sched_tiny"
WIDE_ID = "bench_sched_wide"
WORKERS = 4
WAN_ONE_WAY_S = 0.0015  # emulated one-way propagation delay (3ms RTT)


def _register(n_tiny: int, n_wide: int, wide_chars: int) -> list:
    """Register the synthetic grid; returns the experiment ids."""

    def tiny_params(quick):
        return list(range(n_tiny))

    def tiny_cell(quick, i):
        # Arithmetic only: the cell must cost microseconds so the wire
        # pattern, not the compute, is what the clock sees.
        return (i, (i * 2654435761) % 997, (i * 40503) % 65521)

    @experiment(TINY_ID, "many tiny cells (wire-pattern stress)",
                cells=CellPlan(params_of=tiny_params, run_cell=tiny_cell))
    def bench_tiny(quick, rows):
        return ["i", "a", "b"], rows, ""

    def wide_params(quick):
        return list(range(n_wide))

    def wide_cell(quick, i):
        # A payload past COMPRESS_MIN: RESULT/CACHE frames carrying it
        # must take the compressed-body fast path.
        return (i, "".join(chr(97 + (i + j) % 17) for j in range(23))
                * (wide_chars // 23))

    @experiment(WIDE_ID, "wide cells (compression stress)",
                cells=CellPlan(params_of=wide_params, run_cell=wide_cell))
    def bench_wide(quick, rows):
        return ["i", "blob"], rows, ""

    return [TINY_ID, WIDE_ID]


class _WanRelay:
    """An emulated WAN hop: TCP relay adding fixed one-way propagation
    delay in each direction.

    Chunks overlap in flight (a reader thread timestamps, a writer
    thread forwards once the deadline passes), so the relay models
    *propagation* delay, not serialization — back-to-back pipelined
    frames still stream at full rate, exactly like a long fat link.
    This is the condition the wire pattern is designed for: over a WAN,
    every stop-and-wait exchange costs a full RTT while a credit window
    costs none.
    """

    def __init__(self, target, one_way_s: float):
        self.target = target
        self.one_way_s = one_way_s
        self._stop = threading.Event()
        self._server = socketlib.socket()
        self._server.bind(("127.0.0.1", 0))
        self._server.listen(32)
        self._server.settimeout(0.2)
        self.address = self._server.getsockname()[:2]
        threading.Thread(target=self._accept_loop, daemon=True).start()

    def _accept_loop(self):
        while not self._stop.is_set():
            try:
                client, _addr = self._server.accept()
            except socketlib.timeout:
                continue
            except OSError:
                return
            try:
                upstream = socketlib.create_connection(self.target,
                                                       timeout=30.0)
            except OSError:
                client.close()
                continue
            for sock in (client, upstream):
                sock.settimeout(0.2)
                sock.setsockopt(socketlib.IPPROTO_TCP,
                                socketlib.TCP_NODELAY, 1)
            for src, dst in ((client, upstream), (upstream, client)):
                pipe = queue.Queue()
                threading.Thread(target=self._read, args=(src, pipe),
                                 daemon=True).start()
                threading.Thread(target=self._write, args=(dst, pipe),
                                 daemon=True).start()

    def _read(self, src, pipe):
        while not self._stop.is_set():
            try:
                chunk = src.recv(65536)
            except socketlib.timeout:
                continue
            except OSError:
                break
            # repro-lint: disable=DET101 -- relay propagation clock
            pipe.put((time.monotonic() + self.one_way_s, chunk))
            if not chunk:
                break

    def _write(self, dst, pipe):
        while True:
            try:
                deadline, chunk = pipe.get(timeout=0.2)
            except queue.Empty:
                if self._stop.is_set():
                    break
                continue
            # repro-lint: disable=DET101 -- relay propagation clock
            lag = deadline - time.monotonic()
            if lag > 0:
                time.sleep(lag)
            try:
                if chunk:
                    dst.sendall(chunk)
                else:
                    dst.shutdown(socketlib.SHUT_WR)
                    break
            except OSError:
                break

    def close(self):
        self._stop.set()
        try:
            self._server.close()
        except OSError:
            pass


@contextlib.contextmanager
def _thread_workers(address, n):
    host, port = address
    threads = []
    for i in range(n):
        t = threading.Thread(
            target=serve, args=(f"{host}:{port}",),
            kwargs={"worker_id": f"bench-{i}", "timeout_s": 60.0,
                    "connect_budget_s": 60.0},
            daemon=True)
        t.start()
        threads.append(t)
    try:
        yield
    finally:
        for t in threads:
            t.join(timeout=60)


def _round_trips(stats: dict) -> int:
    return sum(v for k, v in stats.items() if k.startswith("round_trips"))


def _socket_run(ids, cache_dir, *, pipeline, prefetch, registry=None,
                wan_one_way_s=WAN_ONE_WAY_S):
    """One timed socket sweep over the emulated WAN hop.

    Returns (results, seconds, stats).  Every worker connection goes
    through a ``_WanRelay`` so both wire patterns pay the same
    propagation delay per round trip — on loopback the RTT is ~0 and
    the difference between the patterns would be invisible.
    """
    backend = SocketWorkerBackend(workers=WORKERS, spawn=False,
                                  lease_timeout_s=60.0,
                                  cache_dir=cache_dir,
                                  pipeline=pipeline, prefetch=prefetch)
    relay = _WanRelay(backend.address, wan_one_way_s)
    scope = use_registry(registry) if registry is not None \
        else contextlib.nullcontext()
    try:
        with scope:
            with _thread_workers(relay.address, WORKERS):
                # repro-lint: disable=DET101 -- wall-clock bench timing
                t0 = time.perf_counter()
                results = run_experiments(ids, quick=True, backend=backend)
                # repro-lint: disable=DET101 -- wall-clock bench timing
                dt = time.perf_counter() - t0
    finally:
        backend.close()
        relay.close()
    return results, dt, dict(backend.stats)


def _as_bytes(results):
    return {r.exp_id: r.to_json() for r in results}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small grid, throughput gate waived (CI)")
    ap.add_argument("--out", default=str(REPO / "BENCH_sched.json"))
    args = ap.parse_args(argv)

    n_tiny = 96 if args.smoke else 480
    ids = _register(n_tiny, n_wide=4, wide_chars=32 * 1024)
    n_tasks = n_tiny + 4

    print(f"grid: {n_tiny} tiny + 4 wide cells, {WORKERS} workers")
    serial = _as_bytes(run_experiments(ids, quick=True, jobs=1))

    with tempfile.TemporaryDirectory(prefix="bench-sched-") as cells:
        cold_res, cold_s, cold_stats = _socket_run(
            ids, cells, pipeline=None, prefetch=True)
        assert _as_bytes(cold_res) == serial, "cold sweep diverged"
        print(f"cold pipelined populate: {cold_s:.2f}s "
              f"({n_tasks / cold_s:,.0f} tasks/s)")

        base_res, base_s, base_stats = _socket_run(
            ids, cells, pipeline=1, prefetch=False)
        assert _as_bytes(base_res) == serial, "stop-and-wait diverged"
        base_rt = _round_trips(base_stats) / n_tasks
        print(f"warm stop-and-wait: {base_s:.2f}s "
              f"({n_tasks / base_s:,.0f} tasks/s, "
              f"{base_rt:.2f} round trips/task)")

        reg = MetricsRegistry()
        pipe_res, pipe_s, pipe_stats = _socket_run(
            ids, cells, pipeline=None, prefetch=True, registry=reg)
        assert _as_bytes(pipe_res) == serial, "pipelined sweep diverged"
        pipe_rt = _round_trips(pipe_stats) / n_tasks
        print(f"warm pipelined: {pipe_s:.2f}s "
              f"({n_tasks / pipe_s:,.0f} tasks/s, "
              f"{pipe_rt:.2f} round trips/task)")

    speedup = base_s / pipe_s
    counters = {}
    for name in ("leases_pipelined", "cache_prefetch_hits",
                 "frames_compressed"):
        counter = reg.get("exp", name, backend="socket")
        counters[name] = counter.value if counter is not None else 0
    print(f"throughput: {speedup:.2f}x; counters: {counters}")

    doc = {
        "protocol": {
            "workload": f"{n_tiny} tiny + 4 wide quick cells, "
                        f"{WORKERS} in-process thread workers, "
                        "warm shared cell cache, emulated WAN hop "
                        f"({WAN_ONE_WAY_S * 2000:.0f}ms RTT)",
            "baseline": "pipeline=1, prefetch off (the PR-8 "
                        "stop-and-wait wire pattern)",
            "metric": "wall-clock seconds per sweep; coordinator round "
                      "trips = grant waits + CACHE_GET + CACHE_MGET",
            "smoke": args.smoke,
        },
        "targets": {
            "throughput_speedup": TARGET_THROUGHPUT_SPEEDUP,
            "round_trips_per_task": TARGET_ROUND_TRIPS_PER_TASK,
        },
        "n_tasks": n_tasks,
        "cold_populate": {"seconds": round(cold_s, 3),
                          "tasks_per_sec": round(n_tasks / cold_s, 1),
                          "round_trips_per_task": round(
                              _round_trips(cold_stats) / n_tasks, 3)},
        "stop_and_wait": {"seconds": round(base_s, 3),
                          "tasks_per_sec": round(n_tasks / base_s, 1),
                          "round_trips_per_task": round(base_rt, 3)},
        "pipelined": {"seconds": round(pipe_s, 3),
                      "tasks_per_sec": round(n_tasks / pipe_s, 1),
                      "round_trips_per_task": round(pipe_rt, 3),
                      "leases_pipelined":
                          pipe_stats.get("leases_pipelined", 0),
                      "cache_prefetch_hits":
                          pipe_stats.get("cache_prefetch_hits", 0),
                      "frames_compressed":
                          pipe_stats.get("frames_compressed", 0)},
        "throughput_speedup": round(speedup, 2),
        "obs_counters": counters,
    }
    out = Path(args.out)
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out}")

    failures = []
    if pipe_rt >= TARGET_ROUND_TRIPS_PER_TASK:
        failures.append(f"round trips/task {pipe_rt:.2f} >= "
                        f"{TARGET_ROUND_TRIPS_PER_TASK}")
    for name, value in counters.items():
        if value <= 0:
            failures.append(f"obs counter exp/{name} never incremented")
    if not args.smoke and speedup < TARGET_THROUGHPUT_SPEEDUP:
        failures.append(f"throughput speedup {speedup:.2f}x < "
                        f"{TARGET_THROUGHPUT_SPEEDUP}x")
    if failures:
        print("GATES MISSED: " + "; ".join(failures))
        return 1
    print("targets: MET")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
