#!/usr/bin/env python
"""Kernel scheduling benchmark: fast path vs. legacy dispatch.

Measures the event-kernel fast path (``Simulator.call_at`` callback
records with a freelist, reusable timeouts, callback-mode protocol
pumps, the specialised dispatch loops) against the pre-fast-path
dispatch, which :func:`repro.sim._legacy.legacy_dispatch` patches back
in on the same source tree — so the comparison is honest
before/after, not old-commit/new-commit.

Four measurements, written to ``BENCH_kernel.json`` at the repo root:

* **frame_storm** — the frame-delivery pattern every hop pays: 64
  in-flight chains of fire-and-forget scheduled deliveries
  (``call_at(..., cancellable=False)``), the exact shape of
  ``_HalfLink._deliver`` / ``Switch._forward`` /
  ``Longbow._send_on``.  Events/sec both ways; target >= 1.8x.
* **frame_lifecycle** — the same storm with a cancellable retransmit
  timer armed per frame and cancelled on ACK (the RC pattern); a
  secondary, slightly adversarial number since cancellable records
  bypass the freelist.
* **allocations** — scheduling-footprint under ``tracemalloc``: bytes
  and heap blocks held per *pending* scheduled operation, fast
  (slotted ``_Callback``) vs. legacy (``Event`` + callbacks list +
  closure).  This is the "zero-allocation" claim made concrete.
* **figure_sweeps** — real figure regenerations (``run_experiment``,
  quick grid, in-process, no result cache) timed both ways; target
  >= 1.3x wall-clock on the WAN sweeps.

Timing protocol: ``gc`` disabled around each run, CPU time
(``time.process_time``) for the storms, wall clock for the sweeps,
best-of-N per variant (noise only ever slows a run down, so the
minimum is the least-biased estimate — the same reasoning as
``timeit``'s ``min``).  Medians are recorded alongside for honesty on
noisy boxes.

Usage::

    PYTHONPATH=src python tools/bench_kernel.py            # full run
    PYTHONPATH=src python tools/bench_kernel.py --smoke    # CI-sized
    PYTHONPATH=src python tools/bench_kernel.py --out x.json
"""

from __future__ import annotations

import argparse
import gc
import json
import statistics
import sys
import time
import tracemalloc
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.sim import Simulator  # noqa: E402
from repro.sim._legacy import legacy_dispatch  # noqa: E402

TARGET_STORM_SPEEDUP = 1.8
TARGET_SWEEP_SPEEDUP = 1.3
TARGET_FLOW_SWEEP_SPEEDUP = 10.0


# -- workloads -----------------------------------------------------------

class _DeliveryChains:
    """64 in-flight chains of fire-and-forget frame deliveries."""

    def __init__(self, sim: Simulator, frames: int, chains: int = 64):
        self.sim = sim
        self.left = frames
        for _ in range(min(chains, frames)):
            self.left -= 1
            sim.call_at(1.7, self._deliver, None, cancellable=False)

    def _deliver(self, _arg) -> None:
        if self.left > 0:
            self.left -= 1
            self.sim.call_at(1.7, self._deliver, None, cancellable=False)


class _FrameLifecycles:
    """Deliver -> arm cancellable rtx timer -> ACK cancels it."""

    def __init__(self, sim: Simulator, frames: int, inflight: int = 64):
        self.sim = sim
        self.total = frames
        self.timers = {}
        self.next_id = min(inflight, frames)
        for fid in range(self.next_id):
            self._launch(fid)

    def _launch(self, fid: int) -> None:
        self.sim.call_at(1.7, self._deliver, fid, cancellable=False)

    def _deliver(self, fid: int) -> None:
        self.timers[fid] = self.sim.call_at(50.0, self._rtx, fid)
        self.sim.call_at(0.9, self._ack, fid, cancellable=False)

    def _ack(self, fid: int) -> None:
        self.timers.pop(fid).cancel()
        if self.next_id < self.total:
            self._launch(self.next_id)
            self.next_id += 1

    def _rtx(self, fid: int) -> None:  # pragma: no cover - never fires
        raise AssertionError("retransmit timer fired despite cancel")


def _run_storm(workload_cls, frames: int) -> float:
    """One storm run; returns events/sec (CPU time, gc off)."""
    sim = Simulator()
    workload_cls(sim, frames)
    gc.collect()
    gc.disable()
    try:
        # repro-lint: disable=DET101 -- host-side benchmark timing
        t0 = time.process_time()
        sim.run()
        # repro-lint: disable=DET101 -- host-side benchmark timing
        dt = time.process_time() - t0
    finally:
        gc.enable()
    return sim.event_count / dt


def _bench_storm(workload_cls, frames: int, rounds: int) -> dict:
    fast, legacy = [], []
    for _ in range(rounds):  # interleaved so drift hits both sides
        fast.append(_run_storm(workload_cls, frames))
        with legacy_dispatch():
            legacy.append(_run_storm(workload_cls, frames))
    return {
        "frames": frames,
        "rounds": rounds,
        "fast_events_per_sec": max(fast),
        "legacy_events_per_sec": max(legacy),
        "speedup": max(fast) / max(legacy),
        "fast_median": statistics.median(fast),
        "legacy_median": statistics.median(legacy),
    }


# -- allocation footprint ------------------------------------------------

def _pending_footprint(n: int) -> dict:
    """Bytes/blocks held per pending scheduled op (timers armed but not
    yet fired — the steady state of a window of in-flight frames)."""

    def _noop() -> None:  # pragma: no cover - never fires
        pass

    def measure() -> dict:
        sim = Simulator()
        gc.collect()
        tracemalloc.start()
        base_size, _ = tracemalloc.get_traced_memory()
        for i in range(n):
            sim.call_at(1e9 + i, _noop, cancellable=False)
        size, _ = tracemalloc.get_traced_memory()
        snap = tracemalloc.take_snapshot()
        tracemalloc.stop()
        blocks = sum(s.count for s in snap.statistics("filename"))
        del sim
        return {"bytes_per_op": (size - base_size) / n,
                "blocks_total": blocks}

    fast = measure()
    with legacy_dispatch():
        legacy = measure()
    return {
        "pending_ops": n,
        "fast_bytes_per_op": round(fast["bytes_per_op"], 1),
        "legacy_bytes_per_op": round(legacy["bytes_per_op"], 1),
        "bytes_ratio": round(legacy["bytes_per_op"]
                             / fast["bytes_per_op"], 2),
        "fast_blocks": fast["blocks_total"],
        "legacy_blocks": legacy["blocks_total"],
    }


# -- figure sweeps -------------------------------------------------------

def _time_experiment(exp_id: str) -> float:
    from repro.core.registry import run_experiment
    gc.collect()
    # repro-lint: disable=DET101 -- wall-clock sweep timing, not sim state
    t0 = time.perf_counter()
    run_experiment(exp_id, quick=True)
    # repro-lint: disable=DET101 -- wall-clock sweep timing, not sim state
    return time.perf_counter() - t0


def _bench_sweep(exp_id: str, rounds: int) -> dict:
    fast = min(_time_experiment(exp_id) for _ in range(rounds))
    with legacy_dispatch():
        legacy = min(_time_experiment(exp_id) for _ in range(rounds))
    return {
        "experiment": exp_id,
        "rounds": rounds,
        "fast_seconds": round(fast, 3),
        "legacy_seconds": round(legacy, 3),
        "speedup": round(legacy / fast, 2),
    }


# -- flow-level acceleration sweeps --------------------------------------

def _time_experiment_flow(exp_id: str, quick: bool, flow_mode) -> float:
    from repro.core.registry import run_experiment
    from repro.flow.context import activated
    gc.collect()
    # repro-lint: disable=DET101 -- wall-clock sweep timing, not sim state
    t0 = time.perf_counter()
    with activated(flow_mode):
        run_experiment(exp_id, quick=quick)
    # repro-lint: disable=DET101 -- wall-clock sweep timing, not sim state
    return time.perf_counter() - t0


def _bench_flow_sweep(exp_id: str, quick: bool) -> dict:
    """One figure sweep, packet mode vs flow mode, wall clock.

    Unlike the fast-vs-legacy sweeps this is a single round per
    variant: the packet side of a ``--full`` sweep runs for minutes and
    noise only ever slows a run down, so one measurement understates
    the speedup if anything.
    """
    packet = _time_experiment_flow(exp_id, quick, None)
    flow = _time_experiment_flow(exp_id, quick, "on")
    return {
        "experiment": exp_id,
        "grid": "quick" if quick else "full",
        "packet_seconds": round(packet, 3),
        "flow_seconds": round(flow, 3),
        "speedup": round(packet / flow, 2),
    }


# -- main ----------------------------------------------------------------

def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small sizes, storm + fig05a only (CI)")
    ap.add_argument("--out", default=str(REPO / "BENCH_kernel.json"))
    args = ap.parse_args(argv)

    frames = 20_000 if args.smoke else 120_000
    rounds = 3 if args.smoke else 7

    print(f"frame storm: {frames} frames x {rounds} rounds ...")
    storm = _bench_storm(_DeliveryChains, frames, rounds)
    print(f"  fast {storm['fast_events_per_sec']:,.0f} ev/s  "
          f"legacy {storm['legacy_events_per_sec']:,.0f} ev/s  "
          f"speedup {storm['speedup']:.2f}x")

    lifecycle = _bench_storm(_FrameLifecycles,
                             frames // 3 if args.smoke else 40_000, rounds)
    print(f"frame lifecycle: speedup {lifecycle['speedup']:.2f}x")

    alloc = _pending_footprint(10_000 if args.smoke else 50_000)
    print(f"pending-op footprint: fast {alloc['fast_bytes_per_op']} B/op, "
          f"legacy {alloc['legacy_bytes_per_op']} B/op "
          f"({alloc['bytes_ratio']}x)")

    sweeps = []
    sweep_ids = ["fig05a"] if args.smoke else ["fig05a", "fig06a", "fig07a"]
    for exp_id in sweep_ids:
        res = _bench_sweep(exp_id, rounds=1 if args.smoke else 3)
        sweeps.append(res)
        print(f"{exp_id} quick cold: fast {res['fast_seconds']}s  "
              f"legacy {res['legacy_seconds']}s  "
              f"speedup {res['speedup']:.2f}x")

    flow_sweeps = []
    for exp_id in sweep_ids:
        res = _bench_flow_sweep(exp_id, quick=args.smoke)
        flow_sweeps.append(res)
        print(f"{exp_id} {res['grid']} flow: packet {res['packet_seconds']}s"
              f"  flow {res['flow_seconds']}s  "
              f"speedup {res['speedup']:.2f}x")
    flow_aggregate = round(
        sum(s["packet_seconds"] for s in flow_sweeps)
        / sum(s["flow_seconds"] for s in flow_sweeps), 2)
    print(f"flow sweeps aggregate: {flow_aggregate:.2f}x")

    doc = {
        "protocol": {
            "storm_metric": "events/sec, CPU time, gc disabled, "
                            "best-of-N interleaved",
            "sweep_metric": "wall-clock seconds, quick grid, in-process, "
                            "best-of-N",
            "flow_sweep_metric": "wall-clock seconds, packet mode vs "
                                 "--flow on, full grid (quick in smoke), "
                                 "one round",
            "smoke": args.smoke,
        },
        "targets": {
            "frame_storm_speedup": TARGET_STORM_SPEEDUP,
            "figure_sweep_speedup": TARGET_SWEEP_SPEEDUP,
            "flow_sweep_speedup": TARGET_FLOW_SWEEP_SPEEDUP,
        },
        "frame_storm": storm,
        "frame_lifecycle": lifecycle,
        "allocations": alloc,
        "figure_sweeps": sweeps,
        "flow_sweeps": flow_sweeps,
        "flow_sweeps_aggregate_speedup": flow_aggregate,
    }
    out = Path(args.out)
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out}")

    ok_storm = storm["speedup"] >= TARGET_STORM_SPEEDUP
    ok_sweep = any(s["speedup"] >= TARGET_SWEEP_SPEEDUP for s in sweeps)
    ok_flow = flow_aggregate >= TARGET_FLOW_SWEEP_SPEEDUP
    if not args.smoke:
        print(f"targets: storm {'MET' if ok_storm else 'MISSED'}, "
              f"sweep {'MET' if ok_sweep else 'MISSED'}, "
              f"flow {'MET' if ok_flow else 'MISSED'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
