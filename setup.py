"""Thin setup.py shim.

Kept alongside pyproject.toml so that ``pip install -e .`` works in
offline environments whose setuptools lacks the PEP-660 wheel backend
(pip falls back to the legacy ``setup.py develop`` path with
``--no-use-pep517``).
"""

from setuptools import setup

setup()
