"""Sockets Direct Protocol: socket semantics over RC, bypassing TCP/IP."""

from .netperf import run_sdp_stream_bw
from .socket import SdpListener, SdpSocket, SdpStack

__all__ = ["SdpStack", "SdpListener", "SdpSocket", "run_sdp_stream_bw"]
