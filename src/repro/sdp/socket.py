"""Sockets Direct Protocol (SDP) over the simulated RC transport.

SDP gives unmodified socket applications RDMA-class performance by
terminating the stream in the HCA instead of the kernel TCP/IP stack.
The paper's related work ([19]) benchmarks TTCP over SDP/IB across the
Longbows; this module provides the equivalent middleware so the
repository can compare all three socket paths: TCP/IPoIB-UD,
TCP/IPoIB-RC and SDP.

Model, following the OpenFabrics SDP design:

* **bcopy path** for small payloads — data is copied into private
  buffers and sent on the RC QP (per-byte copy cost, cheap setup);
* **zcopy path** for payloads at/above ``sdp_zcopy_threshold`` — the
  buffer is pinned and sent zero-copy (no per-byte CPU cost).

Either way the stream rides a Reliable Connection, so SDP inherits the
RC window dynamics over WAN — it beats IPoIB at LAN distances but is
*not* immune to long pipes.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

from ..calibration import HardwareProfile
from ..fabric.node import Node
from ..fabric.topology import Fabric
from ..sim import ReusableTimeout, Simulator, Store
from ..verbs.device import VerbsContext
from ..verbs.ops import RecvWR
from ..verbs.rc import RCQueuePair, connect_rc_pair

__all__ = ["SdpStack", "SdpListener", "SdpSocket"]

_HUGE = 1 << 40
_CTRL = "sdp_ctrl"


class SdpStack:
    """Per-node SDP endpoint registry (the AF_INET_SDP analogue)."""

    #: registry of stacks by node LID, per fabric
    def __init__(self, node: Node, fabric: Fabric):
        self.node = node
        self.fabric = fabric
        self.sim: Simulator = node.sim
        self.profile: HardwareProfile = node.profile
        self.ctx = VerbsContext(node)
        self._listeners: Dict[int, "SdpListener"] = {}
        self._ports = itertools.count(30000)
        registry = fabric.__dict__.setdefault("_sdp_stacks", {})
        registry[node.lid] = self

    # -- api ------------------------------------------------------------------
    def listen(self, port: int) -> "SdpListener":
        if port in self._listeners:
            raise ValueError(f"SDP port {port} already listening")
        listener = SdpListener(self, port)
        self._listeners[port] = listener
        return listener

    def connect(self, dst_lid: int, dst_port: int):
        """Process yielding a connected :class:`SdpSocket`."""
        return self.sim.process(self._connect(dst_lid, dst_port),
                                name="sdp.connect")

    def _connect(self, dst_lid: int, dst_port: int):
        peer_stack = self.fabric.__dict__.get("_sdp_stacks", {}).get(dst_lid)
        if peer_stack is None:
            raise ConnectionRefusedError(f"no SDP stack at LID {dst_lid}")
        listener = peer_stack._listeners.get(dst_port)
        if listener is None:
            raise ConnectionRefusedError(
                f"SDP port {dst_port} not listening at LID {dst_lid}")
        local_port = next(self._ports)
        # Connection setup: one control round trip over the new QP pair
        # (the CM REQ/REP exchange).
        sock = SdpSocket(self, dst_lid, dst_port, local_port)
        peer_sock = SdpSocket(peer_stack, self.node.lid, local_port,
                              dst_port)
        connect_rc_pair(sock.qp, peer_sock.qp)
        sock._peer = peer_sock
        peer_sock._peer = sock
        sock.qp.send(64, payload=(_CTRL, "req"))
        yield peer_sock._ctrl.get()
        peer_sock.qp.send(64, payload=(_CTRL, "rep"))
        yield sock._ctrl.get()
        listener._backlog.put(peer_sock)
        return sock


class SdpListener:
    """Passive SDP endpoint."""

    def __init__(self, stack: SdpStack, port: int):
        self.stack = stack
        self.port = port
        self._backlog: Store = Store(stack.sim)

    def accept(self):
        return self._backlog.get()


class SdpSocket:
    """One end of an SDP stream."""

    def __init__(self, stack: SdpStack, peer_lid: int, peer_port: int,
                 local_port: int):
        self.stack = stack
        self.sim = stack.sim
        self.profile = stack.profile
        self.peer_lid = peer_lid
        self.peer_port = peer_port
        self.local_port = local_port
        scq = stack.ctx.create_cq(f"sdp{local_port}.scq")
        rcq = stack.ctx.create_cq(f"sdp{local_port}.rcq")
        self.qp: RCQueuePair = stack.ctx.create_rc_qp(scq, rcq)
        for _ in range(512):
            self.qp.post_recv(RecvWR(_HUGE))
        self._peer: Optional["SdpSocket"] = None
        self._rx_bytes = 0
        self._rx_watchers = []
        self._records: Store = Store(self.sim)
        self._ctrl: Store = Store(self.sim)
        self._tx: Store = Store(self.sim)
        self.bytes_sent = 0
        self._tx_wait = ReusableTimeout(self.sim)
        self._rx_wait = ReusableTimeout(self.sim)
        self.sim.process(self._tx_pump(), name=f"sdp{local_port}.tx")
        self.sim.process(self._rx_pump(), name=f"sdp{local_port}.rx")

    # -- application API ------------------------------------------------------
    def send(self, nbytes: int, record: Any = None) -> None:
        """Queue ``nbytes``; ``record`` marks a message boundary."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        self._tx.put((nbytes, record))

    def recv_bytes(self, nbytes: int):
        """Event firing after ``nbytes`` more bytes arrive."""
        target = self._rx_bytes + nbytes
        evt = self.sim.event()
        if self._rx_bytes >= target:
            evt.succeed(self._rx_bytes)
        else:
            self._rx_watchers.append((target, evt))
        return evt

    def recv_record(self):
        """Event yielding the next ``(nbytes, record)``."""
        return self._records.get()

    # -- engine ----------------------------------------------------------
    def _tx_pump(self):
        profile = self.profile
        while True:
            nbytes, record = yield self._tx.get()
            remaining = nbytes
            while remaining > 0:
                chunk = min(remaining, profile.sdp_max_message)
                if chunk < profile.sdp_zcopy_threshold:
                    # bcopy: one buffer copy on the sending CPU
                    yield self._tx_wait.arm(
                        profile.sdp_bcopy_us_per_byte * chunk
                        + profile.sdp_op_overhead_us)
                else:
                    # zcopy: pin + post, no per-byte cost
                    yield self._tx_wait.arm(profile.sdp_zcopy_setup_us)
                is_last = remaining == chunk
                self.qp.send(chunk, payload=("sdp_data", chunk,
                                             record if is_last else None))
                self.bytes_sent += chunk
                remaining -= chunk

    def _rx_pump(self):
        profile = self.profile
        while True:
            wc = yield self.qp.recv_cq.wait()
            self.qp.post_recv(RecvWR(_HUGE))
            payload = wc.payload
            if payload and payload[0] == _CTRL:
                self._ctrl.put(payload)
                continue
            _kind, chunk, record = payload
            if chunk < profile.sdp_zcopy_threshold:
                yield self._rx_wait.arm(
                    profile.sdp_bcopy_us_per_byte * chunk)
            self._rx_bytes += chunk
            if record is not None:
                self._records.put((self._rx_bytes, record))
            if self._rx_watchers:
                still = []
                for target, evt in self._rx_watchers:
                    if self._rx_bytes >= target:
                        evt.succeed(self._rx_bytes)
                    else:
                        still.append((target, evt))
                self._rx_watchers = still
