"""SDP throughput benchmark (the ttcp-over-SDP measurement of [19])."""

from __future__ import annotations

from ..fabric.node import Node
from ..fabric.topology import Fabric
from ..sim import Simulator
from .socket import SdpStack

__all__ = ["run_sdp_stream_bw"]


def run_sdp_stream_bw(sim: Simulator, fabric: Fabric, node_a: Node,
                      node_b: Node, total_bytes: int,
                      msg_bytes: int = 2 * 1024 * 1024) -> float:
    """Single SDP stream A->B; receiver-observed MB/s."""
    stack_a = SdpStack(node_a, fabric)
    stack_b = SdpStack(node_b, fabric)
    listener = stack_b.listen(5002)
    span = {}

    def server():
        sock = yield listener.accept()
        t0 = sim.now
        yield sock.recv_bytes(total_bytes)
        span["t"] = sim.now - t0

    def client():
        sock = yield stack_a.connect(node_b.lid, 5002)
        remaining = total_bytes
        while remaining > 0:
            chunk = min(msg_bytes, remaining)
            sock.send(chunk)
            remaining -= chunk

    done = sim.process(server(), name="sdp.server")
    sim.process(client(), name="sdp.client")
    sim.run(until=done)
    return total_bytes / span["t"]
