"""MPI library model (MVAPICH2-like) over the simulated verbs layer."""

from . import benchmarks, collectives
from .collectives import (allgather, allreduce, alltoall, alltoallv, barrier,
                          bcast, gather, reduce, reduce_scatter, scatter)
from .process import (ANY_SOURCE, ANY_TAG, MPICommError, MPIProcess,
                      MPIRequest)
from .runtime import MPIJob
from .tuning import DEFAULT_TUNING, MPITuning

__all__ = ["MPIJob", "MPIProcess", "MPIRequest", "MPICommError", "MPITuning",
           "DEFAULT_TUNING", "ANY_SOURCE", "ANY_TAG",
           "bcast", "barrier", "allreduce", "reduce", "alltoall",
           "alltoallv", "allgather", "gather", "scatter", "reduce_scatter",
           "benchmarks", "collectives"]
