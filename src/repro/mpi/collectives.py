"""MPI collective operations.

All collectives are generator functions driven with ``yield from`` inside
a rank's program.  Every call site must be reached by all participating
ranks in the same order (the MPI ordering rule); a per-process collective
sequence number isolates consecutive collectives' tags.

Broadcast comes in the three flavours the paper compares:

* ``binomial`` — the classic log-P tree (MVAPICH2's small-message choice);
* ``scatter_allgather`` — van de Geijn scatter + ring allgather
  (MVAPICH2's large-message choice; the ring crosses the WAN link twice
  per step, which is what makes it collapse over long pipes);
* ``hierarchical`` — the paper's WAN-aware variant: the payload crosses
  the WAN **once** to a remote-cluster leader, then each cluster runs a
  local binomial tree (per [13], MPI-StarT-style).
"""

from __future__ import annotations

import functools
from typing import Any, Optional, Sequence

from .process import MPIProcess

__all__ = ["bcast", "barrier", "allreduce", "reduce", "alltoall",
           "alltoallv", "allgather", "gather", "scatter", "reduce_scatter",
           "COLL_TAG_BASE"]

#: Tags at/above this are reserved for collectives.
COLL_TAG_BASE = 1 << 20


def _coll_tag(proc: MPIProcess) -> int:
    return COLL_TAG_BASE + next(proc._coll_seq)


def _pos(ranks: Sequence[int], rank: int) -> int:
    try:
        return ranks.index(rank)
    except ValueError:
        raise ValueError(f"rank {rank} not in group {list(ranks)}") from None


def _timed(fn):
    """Record per-rank phase duration of a collective into the metrics
    histogram ``mpi.collective_us{op=<name>}`` (no-op when the rank's
    simulator has no registry attached)."""
    op = fn.__name__

    @functools.wraps(fn)
    def wrapper(proc: MPIProcess, *args, **kwargs):
        m = getattr(proc.sim, "metrics", None)
        if m is None:
            result = yield from fn(proc, *args, **kwargs)
            return result
        t0 = proc.sim.now
        result = yield from fn(proc, *args, **kwargs)
        m.histogram("mpi", "collective_us", op=op).observe(proc.sim.now - t0)
        return result

    return wrapper


# ---------------------------------------------------------------------------
# broadcast
# ---------------------------------------------------------------------------

@_timed
def bcast(proc: MPIProcess, size: int, root: int = 0,
          payload: Any = None, ranks: Optional[Sequence[int]] = None,
          algorithm: Optional[str] = None):
    """Broadcast ``size`` bytes from ``root`` to every rank in ``ranks``."""
    ranks = list(ranks) if ranks is not None else list(range(proc.job.size))
    algo = algorithm or proc.tuning.bcast_algorithm
    if algo == "auto":
        algo = ("binomial" if size <= proc.tuning.bcast_large_threshold
                or len(ranks) < 4 else "scatter_allgather")
    tag = _coll_tag(proc)
    if algo == "binomial":
        data = yield from _bcast_binomial(proc, ranks, root, size, payload, tag)
    elif algo == "scatter_allgather":
        data = yield from _bcast_scatter_allgather(proc, ranks, root, size,
                                                   payload, tag)
    elif algo == "scatter_rd_allgather":
        data = yield from _bcast_scatter_allgather(proc, ranks, root, size,
                                                   payload, tag,
                                                   allgather="rd")
    elif algo == "hierarchical":
        data = yield from _bcast_hierarchical(proc, ranks, root, size,
                                              payload, tag)
    else:
        raise ValueError(f"unknown bcast algorithm {algo!r}")
    return data


def _bcast_binomial(proc: MPIProcess, ranks: Sequence[int], root: int,
                    size: int, payload: Any, tag: int):
    n = len(ranks)
    me = _pos(ranks, proc.rank)
    rel = (me - _pos(ranks, root)) % n
    data = payload if proc.rank == root else None
    mask = 1
    while mask < n:
        if rel & mask:
            src = ranks[(me - mask) % n]
            req = yield from proc.recv(src=src, tag=tag)
            data = req.data
            break
        mask <<= 1
    mask >>= 1
    sends = []
    while mask > 0:
        if rel + mask < n:
            dst = ranks[(me + mask) % n]
            sends.append(proc.isend(dst, size, tag, payload=data))
        mask >>= 1
    if sends:
        yield from proc.waitall(sends)
    return data


def _bcast_scatter_allgather(proc: MPIProcess, ranks: Sequence[int],
                             root: int, size: int, payload: Any, tag: int,
                             allgather: str = "ring"):
    """van de Geijn: binomial scatter of 1/n chunks, then an allgather
    (``ring`` by default; ``rd`` = recursive doubling, power-of-two
    groups only — the MPICH medium-message choice)."""
    n = len(ranks)
    me = _pos(ranks, proc.rank)
    rel = (me - _pos(ranks, root)) % n
    chunk = max(1, size // n)
    # --- binomial scatter: each holder forwards the upper half of its
    # chunk range down the tree; counts ride the payload ---
    have = n if proc.rank == root else 0  # chunks currently held
    mask = 1
    while mask < n:
        if rel & mask:
            src = ranks[(me - mask) % n]
            req = yield from proc.recv(src=src, tag=tag)
            have = req.data
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if rel + mask < n and have > mask:
            dst = ranks[(me + mask) % n]
            cnt = have - mask
            yield from proc.send(dst, cnt * chunk, tag, payload=cnt)
            have = mask
        mask >>= 1
    if allgather == "rd" and (n & (n - 1)) == 0:
        # recursive doubling: log2(n) steps, doubling the block each time
        cur = 1
        mask = 1
        while mask < n:
            partner = ranks[me ^ mask]
            yield from proc.sendrecv(partner, cur * chunk, src=partner,
                                     tag=tag + 1)
            cur *= 2
            mask <<= 1
    else:
        # ring allgather: n-1 steps of one chunk each
        right = ranks[(me + 1) % n]
        left = ranks[(me - 1) % n]
        for _ in range(n - 1):
            yield from proc.sendrecv(right, chunk, src=left, tag=tag)
    return payload if proc.rank == root else ("bcast", size)


def _bcast_hierarchical(proc: MPIProcess, ranks: Sequence[int], root: int,
                        size: int, payload: Any, tag: int):
    job = proc.job
    by_cluster = {}
    for r in ranks:
        by_cluster.setdefault(job.cluster_of[r], []).append(r)
    root_cluster = job.cluster_of[root]
    data = payload if proc.rank == root else None
    # 1) one WAN crossing per remote cluster, root -> that cluster's leader
    remote = [c for c in by_cluster if c != root_cluster]
    if proc.rank == root:
        sends = [proc.isend(by_cluster[c][0], size, tag, payload=payload)
                 for c in remote]
        if sends:
            yield from proc.waitall(sends)
    else:
        mine = job.cluster_of[proc.rank]
        if mine != root_cluster and proc.rank == by_cluster[mine][0]:
            req = yield from proc.recv(src=root, tag=tag)
            data = req.data
    # 2) local binomial within each cluster
    mine = job.cluster_of[proc.rank]
    local = by_cluster[mine]
    local_root = root if mine == root_cluster else local[0]
    if len(local) > 1:
        data = yield from _bcast_binomial(proc, local, local_root, size,
                                          data, tag + 1)
    return data


# ---------------------------------------------------------------------------
# barrier / reductions
# ---------------------------------------------------------------------------

@_timed
def barrier(proc: MPIProcess, ranks: Optional[Sequence[int]] = None):
    """Dissemination barrier (log-P rounds of empty messages)."""
    ranks = list(ranks) if ranks is not None else list(range(proc.job.size))
    n = len(ranks)
    me = _pos(ranks, proc.rank)
    tag = _coll_tag(proc)
    mask = 1
    while mask < n:
        dst = ranks[(me + mask) % n]
        src = ranks[(me - mask) % n]
        yield from proc.sendrecv(dst, 1, src=src, tag=tag + mask)
        mask <<= 1


@_timed
def allreduce(proc: MPIProcess, size: int,
              ranks: Optional[Sequence[int]] = None, payload: Any = None):
    """Recursive-doubling allreduce of a ``size``-byte buffer.

    Non-power-of-two groups fold the remainder into the nearest power of
    two first (MPICH's approach).
    """
    ranks = list(ranks) if ranks is not None else list(range(proc.job.size))
    n = len(ranks)
    me = _pos(ranks, proc.rank)
    tag = _coll_tag(proc)
    pof2 = 1
    while pof2 * 2 <= n:
        pof2 *= 2
    rem = n - pof2
    new_me = me
    # fold: the first 2*rem ranks pair up (even sends to odd)
    if me < 2 * rem:
        if me % 2 == 0:
            yield from proc.send(ranks[me + 1], size, tag)
            req = yield from proc.recv(src=ranks[me + 1], tag=tag + 1)
            _ = req
            return ("allreduce", size)
        else:
            yield from proc.recv(src=ranks[me - 1], tag=tag)
            new_me = me // 2
    else:
        new_me = me - rem
    # recursive doubling among pof2 survivors
    survivors = ([ranks[i] for i in range(1, 2 * rem, 2)]
                 + ranks[2 * rem:])
    mask = 1
    while mask < pof2:
        partner = survivors[new_me ^ mask]
        yield from proc.sendrecv(partner, size, src=partner, tag=tag + 2)
        mask <<= 1
    # unfold: odd survivors send the result back to their even partner
    if me < 2 * rem and me % 2 == 1:
        yield from proc.send(ranks[me - 1], size, tag + 1)
    return ("allreduce", size)


@_timed
def reduce(proc: MPIProcess, size: int, root: int = 0,
           ranks: Optional[Sequence[int]] = None, payload: Any = None):
    """Binomial-tree reduction to ``root``."""
    ranks = list(ranks) if ranks is not None else list(range(proc.job.size))
    n = len(ranks)
    me = _pos(ranks, proc.rank)
    rel = (me - _pos(ranks, root)) % n
    tag = _coll_tag(proc)
    mask = 1
    while mask < n:
        if rel & mask == 0:
            if rel + mask < n:
                src = ranks[(me + mask) % n]
                yield from proc.recv(src=src, tag=tag)
        else:
            dst = ranks[(me - mask) % n]
            yield from proc.send(dst, size, tag, payload=payload)
            break
        mask <<= 1
    return ("reduce", size) if proc.rank == root else None


# ---------------------------------------------------------------------------
# all-to-all / allgather
# ---------------------------------------------------------------------------

@_timed
def alltoall(proc: MPIProcess, size: int,
             ranks: Optional[Sequence[int]] = None):
    """Pairwise-exchange alltoall: ``size`` bytes to every other rank."""
    ranks = list(ranks) if ranks is not None else list(range(proc.job.size))
    yield from alltoallv(proc, lambda src, dst: size, ranks)


@_timed
def alltoallv(proc: MPIProcess, size_fn,
              ranks: Optional[Sequence[int]] = None,
              concurrency: Optional[int] = None):
    """All-to-all-v; ``size_fn(src_rank, dst_rank)`` gives bytes.

    All sends and receives are posted up front and progressed together
    (how MPI_Alltoallv overlaps transfers); large all-to-alls are thus
    bandwidth-bound, not handshake-latency-bound — the property that
    lets IS/FT tolerate WAN delay in the paper's §3.5.  ``concurrency``
    optionally caps outstanding exchange steps (pairwise fallback = 1).
    """
    ranks = list(ranks) if ranks is not None else list(range(proc.job.size))
    n = len(ranks)
    me = _pos(ranks, proc.rank)
    tag = _coll_tag(proc)
    batch = concurrency if concurrency is not None else n
    reqs = []
    for step in range(1, n):
        dst = ranks[(me + step) % n]
        src = ranks[(me - step) % n]
        s_size = size_fn(proc.rank, dst)
        r_size = size_fn(src, proc.rank)
        if s_size > 0:
            reqs.append(proc.isend(dst, s_size, tag))
        if r_size > 0:
            reqs.append(proc.irecv(src=src, tag=tag))
        if len(reqs) >= 2 * batch:
            yield from proc.waitall(reqs)
            reqs = []
    if reqs:
        yield from proc.waitall(reqs)


@_timed
def allgather(proc: MPIProcess, size: int,
              ranks: Optional[Sequence[int]] = None):
    """Ring allgather: n-1 steps forwarding one ``size``-byte block."""
    ranks = list(ranks) if ranks is not None else list(range(proc.job.size))
    n = len(ranks)
    me = _pos(ranks, proc.rank)
    tag = _coll_tag(proc)
    right = ranks[(me + 1) % n]
    left = ranks[(me - 1) % n]
    for _ in range(n - 1):
        yield from proc.sendrecv(right, size, src=left, tag=tag)


@_timed
def gather(proc: MPIProcess, size: int, root: int = 0,
           ranks: Optional[Sequence[int]] = None, payload: Any = None):
    """Binomial gather of one ``size``-byte block per rank to ``root``.

    Interior tree nodes forward their accumulated subtree, so wire
    volume doubles at each level, as in MPICH.
    """
    ranks = list(ranks) if ranks is not None else list(range(proc.job.size))
    n = len(ranks)
    me = _pos(ranks, proc.rank)
    rel = (me - _pos(ranks, root)) % n
    tag = _coll_tag(proc)
    have = 1  # blocks held (own contribution)
    mask = 1
    while mask < n:
        if rel & mask == 0:
            if rel + mask < n:
                src = ranks[(me + mask) % n]
                req = yield from proc.recv(src=src, tag=tag)
                have += req.data
        else:
            dst = ranks[(me - mask) % n]
            yield from proc.send(dst, have * size, tag, payload=have)
            return None
        mask <<= 1
    return ("gather", have * size) if proc.rank == root else None


@_timed
def scatter(proc: MPIProcess, size: int, root: int = 0,
            ranks: Optional[Sequence[int]] = None):
    """Binomial scatter of one ``size``-byte block per rank from ``root``."""
    ranks = list(ranks) if ranks is not None else list(range(proc.job.size))
    n = len(ranks)
    me = _pos(ranks, proc.rank)
    rel = (me - _pos(ranks, root)) % n
    tag = _coll_tag(proc)
    have = n if proc.rank == root else 0
    mask = 1
    while mask < n:
        if rel & mask:
            src = ranks[(me - mask) % n]
            req = yield from proc.recv(src=src, tag=tag)
            have = req.data
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if rel + mask < n and have > mask:
            dst = ranks[(me + mask) % n]
            cnt = have - mask
            yield from proc.send(dst, cnt * size, tag, payload=cnt)
            have = mask
        mask >>= 1
    return ("scatter", size)


@_timed
def reduce_scatter(proc: MPIProcess, size_per_rank: int,
                   ranks: Optional[Sequence[int]] = None):
    """Recursive-halving reduce-scatter (power-of-two groups).

    At step k each rank exchanges half of its remaining range with a
    partner at distance n/2^k, so wire volume halves every step.
    Non-power-of-two groups fall back to reduce+scatter.
    """
    ranks = list(ranks) if ranks is not None else list(range(proc.job.size))
    n = len(ranks)
    if n & (n - 1):
        yield from reduce(proc, size_per_rank * n, root=ranks[0],
                          ranks=ranks)
        yield from scatter(proc, size_per_rank, root=ranks[0], ranks=ranks)
        return ("reduce_scatter", size_per_rank)
    me = _pos(ranks, proc.rank)
    tag = _coll_tag(proc)
    span = n
    while span > 1:
        half = span // 2
        partner = ranks[me ^ half]
        yield from proc.sendrecv(partner, half * size_per_rank,
                                 src=partner, tag=tag + span)
        span = half
    return ("reduce_scatter", size_per_rank)
