"""MPI library tuning parameters (the MVAPICH2 knob surface).

The paper's §3.4 tuning experiment is exactly a change of
:attr:`MPITuning.eager_threshold` (``VIADEV_RENDEZVOUS_THRESHOLD``), and
its §3.4 broadcast experiment a change of :attr:`MPITuning.bcast_algorithm`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..calibration import KB

__all__ = ["MPITuning", "DEFAULT_TUNING"]


@dataclass(frozen=True)
class MPITuning:
    """Protocol switches for the simulated MPI library."""

    #: Messages at or below this ride the eager path (copied through
    #: pre-registered bounce buffers); above it the rendezvous protocol
    #: (RTS/CTS handshake + zero-copy RDMA write) is used.  MVAPICH2's
    #: default on the paper's testbed was ~8 KB.
    eager_threshold: int = 8 * KB
    #: Broadcast algorithm: "binomial", "scatter_allgather", or
    #: "hierarchical" (the paper's WAN-aware variant); "auto" picks
    #: binomial for small and scatter-allgather for large messages, as
    #: MVAPICH2 does intra-cluster.
    bcast_algorithm: str = "auto"
    #: Message size at which "auto" bcast switches to scatter-allgather.
    bcast_large_threshold: int = 8 * KB
    #: Per-destination limit on in-flight rendezvous transfers.
    rndv_depth: int = 16
    #: Receive descriptors pre-posted per connection.
    recv_ring: int = 512

    def with_overrides(self, **kwargs) -> "MPITuning":
        return replace(self, **kwargs)


DEFAULT_TUNING = MPITuning()
