"""OSU-microbenchmark analogues (OMB), used throughout the paper's §3.4.

Implemented to match the originals' measurement loops:

* ``osu_latency`` — ping-pong, average one-way latency;
* ``osu_bw`` / ``osu_bibw`` — windowed streaming bandwidth with a final
  ACK, sender-observed;
* ``osu_mbw_mr`` — multiple pairs streaming concurrently, aggregate
  message rate (paper Fig. 10);
* ``osu_bcast`` — the paper's ACK-augmented broadcast latency loop: the
  root waits for an ACK from the pre-selected process with the greatest
  ack time before starting the next broadcast (paper §3.4).
"""

from __future__ import annotations

from typing import Optional

from ..fabric.topology import Fabric
from ..sim import Simulator
from .collectives import bcast
from .runtime import MPIJob
from .tuning import DEFAULT_TUNING, MPITuning

__all__ = ["run_osu_latency", "run_osu_bw", "run_osu_bibw",
           "run_osu_mbw_mr", "run_osu_bcast", "run_osu_allreduce",
           "run_osu_alltoall", "run_osu_barrier"]

_DATA_TAG = 1
_ACK_TAG = 2


def _two_rank_job(fabric: Fabric, tuning: MPITuning) -> MPIJob:
    """One rank on each side of the WAN (or the first two LAN nodes)."""
    return MPIJob(fabric, nprocs=2, ppn=1, placement="cyclic", tuning=tuning)


def run_osu_latency(sim: Simulator, fabric: Fabric, size: int,
                    iters: int = 50,
                    tuning: MPITuning = DEFAULT_TUNING) -> float:
    """Average one-way MPI latency in µs between the two clusters."""
    job = _two_rank_job(fabric, tuning)

    def prog(proc):
        if proc.rank == 0:
            t0 = sim.now
            for _ in range(iters):
                yield from proc.send(1, size, _DATA_TAG)
                yield from proc.recv(src=1, tag=_DATA_TAG)
            return (sim.now - t0) / (2 * iters)
        for _ in range(iters):
            yield from proc.recv(src=0, tag=_DATA_TAG)
            yield from proc.send(0, size, _DATA_TAG)

    return job.run(prog)[0]


def run_osu_bw(sim: Simulator, fabric: Fabric, size: int, window: int = 64,
               iters: int = 8, tuning: MPITuning = DEFAULT_TUNING) -> float:
    """Unidirectional streaming bandwidth (MB/s), sender-observed."""
    job = _two_rank_job(fabric, tuning)

    def prog(proc):
        if proc.rank == 0:
            t0 = sim.now
            for _ in range(iters):
                reqs = [proc.isend(1, size, _DATA_TAG) for _ in range(window)]
                yield from proc.waitall(reqs)
            yield from proc.recv(src=1, tag=_ACK_TAG)
            return size * window * iters / (sim.now - t0)
        for _ in range(iters):
            reqs = [proc.irecv(src=0, tag=_DATA_TAG) for _ in range(window)]
            yield from proc.waitall(reqs)
        yield from proc.send(0, 1, _ACK_TAG)

    return job.run(prog)[0]


def run_osu_bibw(sim: Simulator, fabric: Fabric, size: int, window: int = 64,
                 iters: int = 8,
                 tuning: MPITuning = DEFAULT_TUNING) -> float:
    """Bidirectional streaming bandwidth (MB/s, both directions summed)."""
    job = _two_rank_job(fabric, tuning)

    def prog(proc):
        peer = 1 - proc.rank
        t0 = sim.now
        for _ in range(iters):
            rreqs = [proc.irecv(src=peer, tag=_DATA_TAG)
                     for _ in range(window)]
            sreqs = [proc.isend(peer, size, _DATA_TAG)
                     for _ in range(window)]
            yield from proc.waitall(rreqs + sreqs)
        # closing handshake so both directions are fully drained
        yield from proc.sendrecv(peer, 1, tag=_ACK_TAG)
        return 2 * size * window * iters / (sim.now - t0)

    return max(job.run(prog))


def run_osu_mbw_mr(sim: Simulator, fabric: Fabric, pairs: int, size: int,
                   window: int = 64, iters: int = 8,
                   tuning: MPITuning = DEFAULT_TUNING):
    """Multi-pair bandwidth / message rate (paper Fig. 10).

    Rank ``i`` (cluster A) streams to rank ``pairs + i`` (cluster B).
    Returns ``(aggregate_MBps, aggregate_msg_rate_per_sec)``.
    """
    if fabric.wan is None:
        raise ValueError("mbw_mr is defined for cluster-of-clusters fabrics")
    if pairs > len(fabric.cluster_a) or pairs > len(fabric.cluster_b):
        raise ValueError(f"{pairs} pairs need {pairs} nodes per cluster")
    job = MPIJob(fabric, nprocs=2 * pairs, ppn=1, placement="block",
                 tuning=tuning)

    def prog(proc):
        if proc.rank < pairs:  # sender in cluster A
            peer = pairs + proc.rank
            t0 = sim.now
            for _ in range(iters):
                reqs = [proc.isend(peer, size, _DATA_TAG)
                        for _ in range(window)]
                yield from proc.waitall(reqs)
            yield from proc.recv(src=peer, tag=_ACK_TAG)
            return (t0, sim.now)
        peer = proc.rank - pairs
        for _ in range(iters):
            reqs = [proc.irecv(src=peer, tag=_DATA_TAG)
                    for _ in range(window)]
            yield from proc.waitall(reqs)
        yield from proc.send(peer, 1, _ACK_TAG)
        return None

    spans = [r for r in job.run(prog) if r is not None]
    t0 = min(s[0] for s in spans)
    t1 = max(s[1] for s in spans)
    total_msgs = pairs * window * iters
    mbps = total_msgs * size / (t1 - t0)
    rate = total_msgs / ((t1 - t0) * 1e-6)
    return mbps, rate


def _collective_latency(sim: Simulator, fabric: Fabric, coll, iters: int,
                        ppn: int, tuning: MPITuning) -> float:
    """Generic OSU collective loop: barrier-separated timed iterations."""
    from .collectives import barrier

    job = MPIJob(fabric, ppn=ppn, placement="block", tuning=tuning)

    def prog(proc):
        yield from barrier(proc)
        t0 = sim.now
        for _ in range(iters):
            yield from coll(proc)
        return (sim.now - t0) / iters

    return max(job.run(prog))


def run_osu_allreduce(sim: Simulator, fabric: Fabric, size: int,
                      ppn: int = 1, iters: int = 5,
                      hierarchical: bool = False,
                      tuning: MPITuning = DEFAULT_TUNING) -> float:
    """Average allreduce latency (µs) across the cluster-of-clusters."""
    from ..core.hierarchical import hierarchical_allreduce
    from .collectives import allreduce
    fn = hierarchical_allreduce if hierarchical else allreduce

    def coll(proc):
        yield from fn(proc, size)

    return _collective_latency(sim, fabric, coll, iters, ppn, tuning)


def run_osu_alltoall(sim: Simulator, fabric: Fabric, size: int,
                     ppn: int = 1, iters: int = 3,
                     tuning: MPITuning = DEFAULT_TUNING) -> float:
    """Average alltoall latency (µs); per-peer message of ``size``."""
    from .collectives import alltoall

    def coll(proc):
        yield from alltoall(proc, size)

    return _collective_latency(sim, fabric, coll, iters, ppn, tuning)


def run_osu_barrier(sim: Simulator, fabric: Fabric, ppn: int = 1,
                    iters: int = 10, hierarchical: bool = False,
                    tuning: MPITuning = DEFAULT_TUNING) -> float:
    """Average barrier latency (µs)."""
    from ..core.hierarchical import hierarchical_barrier
    from .collectives import barrier as flat_barrier
    fn = hierarchical_barrier if hierarchical else flat_barrier

    def coll(proc):
        yield from fn(proc)

    return _collective_latency(sim, fabric, coll, iters, ppn, tuning)


def run_osu_bcast(sim: Simulator, fabric: Fabric, size: int,
                  ppn: int = 1, iters: int = 10,
                  algorithm: Optional[str] = None,
                  tuning: MPITuning = DEFAULT_TUNING) -> float:
    """Broadcast latency (µs) with the paper's ACK-based loop.

    The root broadcasts, then waits for an ACK from the pre-selected
    process with the greatest ack time (the last rank, which sits
    deepest in the remote cluster under block placement).
    """
    job = MPIJob(fabric, ppn=ppn, placement="block", tuning=tuning)
    designated = job.size - 1

    def prog(proc):
        if proc.rank == 0:
            t0 = sim.now
            for _ in range(iters):
                yield from bcast(proc, size, root=0, algorithm=algorithm)
                yield from proc.recv(src=designated, tag=_ACK_TAG)
            return (sim.now - t0) / iters
        for _ in range(iters):
            yield from bcast(proc, size, root=0, algorithm=algorithm)
            if proc.rank == designated:
                yield from proc.send(0, 1, _ACK_TAG)

    return job.run(prog)[0]
