"""MPI process engine: point-to-point matching, eager and rendezvous.

Mirrors the MVAPICH2 CH3/verbs channel at the granularity the paper's
experiments depend on:

* **Eager path** (size <= :attr:`MPITuning.eager_threshold`): the payload
  is copied through pre-registered bounce buffers and sent on the RC
  connection; the send request completes when the IB-level ACK returns
  (buffer reuse), so eager throughput inherits the RC window dynamics.
* **Rendezvous path**: an RTS control message, a CTS from the receiver
  once a matching receive is posted, a zero-copy RDMA write of the data
  with immediate data as the FIN.  The extra WAN round-trip this
  handshake costs on medium messages is precisely what the paper's
  threshold-tuning experiment (Fig. 9) removes.
* **Matching** is (source, tag) with wildcards, with an unexpected-message
  queue, as the MPI standard requires.

Every rank pays a per-message software overhead and, on the eager path,
a per-byte copy cost, serialized on the rank's single CPU.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..calibration import HardwareProfile
from ..fabric.node import Node
from ..sim import Resource, Simulator, Store
from ..verbs.cq import CompletionQueue
from ..verbs.device import VerbsContext
from ..verbs.ops import RecvWR
from ..verbs.rc import RCQueuePair, connect_rc_pair
from .tuning import MPITuning

__all__ = ["MPIProcess", "MPIRequest", "MPICommError", "ANY_SOURCE",
           "ANY_TAG"]


class MPICommError(RuntimeError):
    """A communication operation failed at the transport layer.

    Raised (via the request's event) when the underlying RC QP reports a
    fatal completion — e.g. retry-budget exhaustion on a faulty WAN.
    The failure surfaces at the ``wait()`` call instead of deadlocking
    the job, so harnesses can catch it and tear down cleanly."""

#: Wildcards for :meth:`MPIProcess.irecv`.
ANY_SOURCE = None
ANY_TAG = None

#: MPI envelope bytes added to every eager message on the wire.
_EAGER_HDR = 32
_HUGE = 1 << 40

_req_ids = itertools.count(1)


class MPIRequest:
    """A non-blocking operation handle (MPI_Request analogue)."""

    __slots__ = ("req_id", "kind", "event", "src", "dst", "tag", "size",
                 "data")

    def __init__(self, sim: Simulator, kind: str):
        self.req_id = next(_req_ids)
        self.kind = kind
        self.event = sim.event()
        self.src: Optional[int] = None
        self.dst: Optional[int] = None
        self.tag: Optional[int] = None
        self.size: int = 0
        self.data: Any = None

    @property
    def done(self) -> bool:
        return self.event.triggered

    def _complete(self) -> None:
        if not self.event.triggered:
            self.event.succeed(self)

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        return f"<MPIRequest {self.kind} #{self.req_id} {state}>"


class _PostedRecv:
    __slots__ = ("src", "tag", "req")

    def __init__(self, src, tag, req):
        self.src = src
        self.tag = tag
        self.req = req

    def matches(self, src: int, tag: int) -> bool:
        return ((self.src is ANY_SOURCE or self.src == src)
                and (self.tag is ANY_TAG or self.tag == tag))


class MPIProcess:
    """One MPI rank bound to a node."""

    def __init__(self, job, rank: int, node: Node, tuning: MPITuning):
        self.job = job
        self.rank = rank
        self.node = node
        self.tuning = tuning
        self.sim: Simulator = node.sim
        self.profile: HardwareProfile = node.profile
        self.ctx = VerbsContext(node)
        self.send_cq: CompletionQueue = self.ctx.create_cq(f"mpi{rank}.scq")
        self.recv_cq: CompletionQueue = self.ctx.create_cq(f"mpi{rank}.rcq")
        self.cpu = Resource(self.sim, capacity=1)
        self._qps: Dict[int, RCQueuePair] = {}
        self._qpn_to_rank: Dict[int, int] = {}
        # matching engine
        self._posted: List[_PostedRecv] = []
        self._unexpected: Deque[Tuple] = deque()
        self._pending_rts: List[Tuple] = []
        self._send_reqs: Dict[int, MPIRequest] = {}   # wr_id -> request
        self._rndv_sends: Dict[int, Tuple] = {}       # req_id -> (dst, size, payload, req)
        self._rndv_recvs: Dict[int, MPIRequest] = {}  # req_id -> request
        self._tx: Store = Store(self.sim)
        self._coll_seq = itertools.count()
        # counters
        self.messages_sent = 0
        self.bytes_sent = 0
        m = getattr(self.sim, "metrics", None)
        if m is not None:
            self._m_eager = m.counter("mpi", "eager_msgs")
            self._m_rndv = m.counter("mpi", "rndv_msgs")
            self._m_bytes = m.counter("mpi", "bytes_sent")
        else:
            self._m_eager = self._m_rndv = self._m_bytes = None
        self.sim.process(self._tx_pump(), name=f"mpi{rank}.tx")
        self.sim.process(self._rx_dispatch(), name=f"mpi{rank}.rx")
        self.sim.process(self._tx_complete(), name=f"mpi{rank}.txc")

    # -- wiring ----------------------------------------------------------
    def qp_for(self, peer_rank: int) -> RCQueuePair:
        qp = self._qps.get(peer_rank)
        if qp is None:
            peer: MPIProcess = self.job.procs[peer_rank]
            qp = self.ctx.create_rc_qp(self.send_cq, self.recv_cq)
            peer_qp = peer.ctx.create_rc_qp(peer.send_cq, peer.recv_cq)
            connect_rc_pair(qp, peer_qp)
            self._register(peer_rank, qp)
            peer._register(self.rank, peer_qp)
        return qp

    def _register(self, peer_rank: int, qp: RCQueuePair) -> None:
        self._qps[peer_rank] = qp
        self._qpn_to_rank[qp.qpn] = peer_rank
        for _ in range(self.tuning.recv_ring):
            qp.post_recv(RecvWR(_HUGE))

    # -- non-blocking API ---------------------------------------------------
    def isend(self, dst: int, size: int, tag: int = 0,
              payload: Any = None) -> MPIRequest:
        """Start a send of ``size`` bytes to rank ``dst``."""
        if dst == self.rank:
            raise ValueError("self-sends are not supported by this engine")
        if size < 0:
            raise ValueError("size must be >= 0")
        req = MPIRequest(self.sim, "send")
        req.dst, req.tag, req.size = dst, tag, size
        if size < self.tuning.eager_threshold:
            if self._m_eager is not None:
                self._m_eager.inc()
            self._tx.put(("eager", dst, size, tag, payload, req))
        else:
            if self._m_rndv is not None:
                self._m_rndv.inc()
            self._rndv_sends[req.req_id] = (dst, size, payload, req)
            self._tx.put(("rts", dst, size, tag, None, req))
        if self._m_bytes is not None:
            self._m_bytes.inc(size)
        return req

    def irecv(self, src: Optional[int] = ANY_SOURCE,
              tag: Optional[int] = ANY_TAG) -> MPIRequest:
        """Post a receive matching ``(src, tag)`` (wildcards allowed)."""
        req = MPIRequest(self.sim, "recv")
        # 1) unexpected eager messages
        for i, msg in enumerate(self._unexpected):
            m_src, m_tag, m_size, m_data = msg
            if ((src is ANY_SOURCE or src == m_src)
                    and (tag is ANY_TAG or tag == m_tag)):
                del self._unexpected[i]
                self._finish_recv(req, m_src, m_tag, m_size, m_data)
                return req
        # 2) unmatched rendezvous RTS
        for i, rts in enumerate(self._pending_rts):
            m_src, m_tag, m_size, sreq_id = rts
            if ((src is ANY_SOURCE or src == m_src)
                    and (tag is ANY_TAG or tag == m_tag)):
                del self._pending_rts[i]
                self._accept_rndv(req, m_src, m_tag, m_size, sreq_id)
                return req
        # 3) wait for a future arrival
        self._posted.append(_PostedRecv(src, tag, req))
        return req

    # -- blocking wrappers (use with ``yield from``) -------------------------
    def send(self, dst: int, size: int, tag: int = 0, payload: Any = None):
        req = self.isend(dst, size, tag, payload)
        yield req.event
        return req

    def recv(self, src: Optional[int] = ANY_SOURCE,
             tag: Optional[int] = ANY_TAG):
        req = self.irecv(src, tag)
        yield req.event
        return req

    def sendrecv(self, dst: int, size: int, src: Optional[int] = None,
                 recv_size: Optional[int] = None, tag: int = 0,
                 payload: Any = None):
        """Concurrent send+recv (the deadlock-free exchange primitive)."""
        sreq = self.isend(dst, size, tag, payload)
        rreq = self.irecv(src if src is not None else dst, tag)
        yield self.sim.all_of([sreq.event, rreq.event])
        return rreq

    def waitall(self, requests):
        yield self.sim.all_of([r.event for r in requests])
        return requests

    def compute(self, us: float):
        """Model a local computation phase of ``us`` microseconds."""
        yield self.sim.timeout(us)

    # -- engine: transmit ----------------------------------------------------
    def _tx_pump(self):
        profile = self.profile
        while True:
            kind, dst, size, tag, payload, req = yield self._tx.get()
            qp = self.qp_for(dst)
            with self.cpu.request() as cpureq:
                yield cpureq
                cost = profile.mpi_overhead_us
                if kind == "eager":
                    cost += size * profile.mpi_eager_copy_us_per_byte
                yield self.sim.timeout(cost)
            if kind == "eager":
                wr = qp.send(size + _EAGER_HDR,
                             payload=("eager", self.rank, tag, size, payload))
                self._send_reqs[wr.wr_id] = req
            elif kind == "rts":
                qp.send(profile.mpi_ctrl_bytes,
                        payload=("rts", self.rank, tag, size, req.req_id))
            elif kind == "cts":
                qp.send(profile.mpi_ctrl_bytes,
                        payload=("cts", self.rank, tag, size, req))
            elif kind == "rndv_data":
                sreq_id, rreq_id = tag
                wr = qp.rdma_write(size, payload=payload,
                                   imm=("fin", rreq_id))
                self._send_reqs[wr.wr_id] = req
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown tx kind {kind}")
            self.messages_sent += 1
            self.bytes_sent += size

    def _tx_complete(self):
        while True:
            wc = yield self.send_cq.wait()
            req = self._send_reqs.pop(wc.wr_id, None)
            if req is not None:
                if not wc.ok:
                    req.event.fail(MPICommError(
                        f"rank {self.rank}: send failed: {wc.status.value}"))
                else:
                    req._complete()

    # -- engine: receive ----------------------------------------------------
    def _rx_dispatch(self):
        profile = self.profile
        while True:
            wc = yield self.recv_cq.wait()
            qp = self.node.hca.qp(wc.qp_num)
            qp.post_recv(RecvWR(_HUGE))  # replenish the ring
            if wc.imm is not None:
                _fin, rreq_id = wc.imm
                rreq = self._rndv_recvs.pop(rreq_id)
                self._finish_rndv_recv(rreq, wc.payload)
                continue
            msg = wc.payload
            with self.cpu.request() as cpureq:
                yield cpureq
                cost = profile.mpi_overhead_us
                if msg[0] == "eager":
                    cost += msg[3] * profile.mpi_eager_copy_us_per_byte
                yield self.sim.timeout(cost)
            self._handle(msg)

    def _handle(self, msg: Tuple) -> None:
        kind = msg[0]
        if kind == "eager":
            _, src, tag, size, data = msg
            posted = self._match_posted(src, tag)
            if posted is None:
                self._unexpected.append((src, tag, size, data))
            else:
                self._finish_recv(posted.req, src, tag, size, data)
        elif kind == "rts":
            _, src, tag, size, sreq_id = msg
            posted = self._match_posted(src, tag)
            if posted is None:
                self._pending_rts.append((src, tag, size, sreq_id))
            else:
                self._accept_rndv(posted.req, src, tag, size, sreq_id)
        elif kind == "cts":
            _, src, _tag, _size, handshake = msg
            sreq_id, rreq_id = handshake
            dst, size, payload, req = self._rndv_sends.pop(sreq_id)
            self._tx.put(("rndv_data", dst, size, (sreq_id, rreq_id),
                          payload, req))
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"rank {self.rank}: bad message {msg!r}")

    def _match_posted(self, src: int, tag: int) -> Optional[_PostedRecv]:
        for i, posted in enumerate(self._posted):
            if posted.matches(src, tag):
                del self._posted[i]
                return posted
        return None

    def _accept_rndv(self, req: MPIRequest, src: int, tag: int, size: int,
                     sreq_id: int) -> None:
        req.src, req.tag, req.size = src, tag, size
        self._rndv_recvs[req.req_id] = req
        self._tx.put(("cts", src, size, tag, None,
                      _CtsCarrier(sreq_id, req.req_id)))

    def _finish_recv(self, req: MPIRequest, src: int, tag: int, size: int,
                     data: Any) -> None:
        req.src, req.tag, req.size, req.data = src, tag, size, data
        req._complete()

    def _finish_rndv_recv(self, req: MPIRequest, data: Any) -> None:
        req.data = data
        req._complete()

    def __repr__(self) -> str:
        return f"<MPIProcess rank={self.rank} on {self.node.name}>"


class _CtsCarrier(tuple):
    """(sreq_id, rreq_id) pair riding a CTS control message."""

    def __new__(cls, sreq_id, rreq_id):
        return super().__new__(cls, (sreq_id, rreq_id))
