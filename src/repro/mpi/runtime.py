"""MPI job launcher: rank placement and collective program execution.

Rank placement matters over WAN: the paper uses a **block** distribution
(ranks 0..n/2-1 on cluster A, the rest on cluster B) and mentions the
cyclic alternative; both are supported because the number of WAN
crossings of every collective depends on it.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..fabric.node import Node
from ..fabric.topology import Fabric
from ..sim import Simulator
from .process import MPIProcess
from .tuning import DEFAULT_TUNING, MPITuning

__all__ = ["MPIJob"]


class MPIJob:
    """A set of MPI ranks placed on a fabric."""

    def __init__(self, fabric: Fabric, nprocs: Optional[int] = None,
                 ppn: int = 1, placement: str = "block",
                 tuning: MPITuning = DEFAULT_TUNING):
        if ppn < 1:
            raise ValueError("ppn must be >= 1")
        if placement not in ("block", "cyclic"):
            raise ValueError(f"unknown placement {placement!r}")
        self.fabric = fabric
        self.sim: Simulator = fabric.sim
        self.tuning = tuning
        self.placement = placement
        slots = self._build_slots(fabric, ppn, placement)
        if nprocs is None:
            nprocs = len(slots)
        if nprocs > len(slots):
            raise ValueError(
                f"{nprocs} ranks but only {len(slots)} slots "
                f"({ppn} per node x {len(fabric.nodes)} nodes)")
        self.procs: List[MPIProcess] = [
            MPIProcess(self, rank, node, tuning)
            for rank, node in enumerate(slots[:nprocs])]
        self.cluster_of: List[str] = [
            fabric.cluster_of(p.node) for p in self.procs]

    @staticmethod
    def _build_slots(fabric: Fabric, ppn: int, placement: str) -> List[Node]:
        if fabric.wan is not None:
            a = [n for n in fabric.cluster_a for _ in range(ppn)]
            b = [n for n in fabric.cluster_b for _ in range(ppn)]
        else:
            a, b = [n for n in fabric.nodes for _ in range(ppn)], []
        if placement == "block" or not b:
            return a + b
        # cyclic: alternate clusters rank by rank
        out: List[Node] = []
        ia = ib = 0
        for i in range(len(a) + len(b)):
            if (i % 2 == 0 and ia < len(a)) or ib >= len(b):
                out.append(a[ia])
                ia += 1
            else:
                out.append(b[ib])
                ib += 1
        return out

    # -- topology queries -----------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.procs)

    def ranks_in_cluster(self, cluster: str) -> List[int]:
        return [r for r, c in enumerate(self.cluster_of) if c == cluster]

    def clusters(self) -> List[str]:
        seen: List[str] = []
        for c in self.cluster_of:
            if c not in seen:
                seen.append(c)
        return seen

    # -- program execution ------------------------------------------------------
    def spawn(self, fn: Callable[[MPIProcess], object]):
        """Start ``fn(proc)`` as a generator on every rank.

        Returns an event that fires when all ranks have returned; its
        value maps rank -> return value via :meth:`collect`.
        """
        self._rank_procs = [
            self.sim.process(fn(proc), name=f"rank{proc.rank}")
            for proc in self.procs]
        return self.sim.all_of(self._rank_procs)

    def run(self, fn: Callable[[MPIProcess], object]) -> List[object]:
        """Run ``fn`` on every rank to completion; list of return values."""
        t0 = self.sim.now
        done = self.spawn(fn)
        self.sim.run(until=done)
        m = getattr(self.sim, "metrics", None)
        if m is not None:
            m.histogram("mpi", "job_us").observe(self.sim.now - t0)
        return [p.value for p in self._rank_procs]
