"""TCP congestion control (Reno-style growth).

The simulated fabric is lossless (deep Longbow buffers, no drops), so
recovery logic never engages in the paper's experiments; what matters is
the *growth* schedule — slow start then congestion avoidance — because
it bounds early-transfer throughput, and the cap
``min(cwnd, peer_rwnd)`` that produces the window-limited WAN curves of
Fig. 6/7.  Loss reaction (ssthresh halving) is implemented for
completeness and exercised by fault-injection tests.
"""

from __future__ import annotations

__all__ = ["CongestionControl"]


class CongestionControl:
    """Per-connection congestion state, byte-based accounting."""

    def __init__(self, mss: int, init_segments: int = 10,
                 ssthresh: float = float("inf")):
        if mss <= 0:
            raise ValueError("mss must be positive")
        self.mss = mss
        self.cwnd = float(init_segments * mss)
        self.ssthresh = ssthresh
        #: Congestion-state generation: bumped on every loss reaction
        #: and on the slow-start -> congestion-avoidance transition.
        #: Flow-mode fingerprints carry it so a cwnd state transition
        #: always breaks a detected steady state (a crossover
        #: condition), without pinning the unbounded raw cwnd value.
        self.generation = 0
        #: Optional ``repro.obs`` histogram sampling cwnd after every
        #: update (set by the owning socket when metrics are attached).
        self.cwnd_hist = None

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def on_ack(self, acked_bytes: int) -> None:
        """Grow cwnd for ``acked_bytes`` of newly acknowledged data."""
        if acked_bytes <= 0:
            return
        if self.in_slow_start:
            self.cwnd += acked_bytes  # exponential: +1 MSS per MSS acked
            if not self.in_slow_start:
                self.generation += 1
        else:
            # Congestion avoidance: +1 MSS per cwnd of acked data.
            self.cwnd += self.mss * (acked_bytes / self.cwnd)
        if self.cwnd_hist is not None:
            self.cwnd_hist.observe(self.cwnd)

    def on_loss(self) -> None:
        """Multiplicative decrease (fast-recovery style)."""
        self.ssthresh = max(2 * self.mss, self.cwnd / 2)
        self.cwnd = self.ssthresh
        self.generation += 1
        if self.cwnd_hist is not None:
            self.cwnd_hist.observe(self.cwnd)
