"""TCP over IPoIB: stacks, listeners and stream sockets.

The stack models what dominates IPoIB throughput in the paper:

* **per-segment CPU cost** (fixed + per-byte) serialized on a per-host
  CPU :class:`~repro.sim.resources.Resource` — this is why IPoIB-UD
  (2 KB segments) peaks far below verbs rates while IPoIB-RC (64 KB
  segments) approaches them (Fig. 6 vs Fig. 7);
* **windowing** — in-flight data is capped by ``min(cwnd, peer rwnd)``,
  so throughput over a long pipe degrades to ``window / RTT`` (the
  Fig. 6a window-size sweep);
* **ACK clocking** — the window only reopens when ACKs return, which is
  what parallel streams mitigate (Fig. 6b/7b).

Segments are unit-accounted (one IP packet per TCP segment, sized by
the IPoIB MTU); payload bytes are counts plus application record
boundaries, which is all the higher layers (NFS RPC) need.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Tuple

from ..calibration import HardwareProfile
from ..sim import Resource, ReusableTimeout, Simulator, Store

if TYPE_CHECKING:  # avoid a tcp <-> ipoib import cycle at runtime
    from ..ipoib.interface import IPoIBInterface
from .cc import CongestionControl
from .segment import ACK, DATA, FIN, SYN, SYNACK, Segment

__all__ = ["TcpStack", "Listener", "Socket"]


class TcpStack:
    """Per-node TCP/IP stack bound to one IPoIB interface."""

    def __init__(self, iface: "IPoIBInterface",
                 retransmit: Optional[bool] = None):
        self.iface = iface
        self.sim: Simulator = iface.sim
        self.profile: HardwareProfile = iface.profile
        self.mss = iface.mtu - self.profile.tcp_header_bytes
        if retransmit is None:
            # Self-enable recovery when the fabric has armed faults; the
            # clean fabric never drops, so sockets skip the RTO
            # machinery entirely there (no extra processes or events).
            fabric = getattr(iface.network, "fabric", None)
            retransmit = bool(getattr(fabric, "faults_active", False))
        self.retransmit = retransmit
        #: One protocol-processing core, shared by every connection on
        #: this host (2008-era single-queue NIC + softirq model).
        self.cpu = Resource(self.sim, capacity=1)
        self._listeners: Dict[int, "Listener"] = {}
        self._socks: Dict[Tuple[int, int, int], "Socket"] = {}
        self._ports = itertools.count(20000)
        self._rx_queue: Store = Store(self.sim)
        self._rx_cpu_wait = ReusableTimeout(self.sim)
        iface.receiver = self._rx_enqueue
        self.sim.process(self._rx_pump(), name=f"tcp@{iface.node.name}")

    @property
    def lid(self) -> int:
        return self.iface.node.lid

    # -- api ------------------------------------------------------------------
    def listen(self, port: int, window: Optional[int] = None) -> "Listener":
        if port in self._listeners:
            raise ValueError(f"port {port} already listening")
        listener = Listener(self, port,
                            window or self.profile.tcp_default_window)
        self._listeners[port] = listener
        return listener

    def connect(self, dst_lid: int, dst_port: int,
                window: Optional[int] = None):
        """Open a connection; yields the established :class:`Socket`."""
        return self.sim.process(self._connect(dst_lid, dst_port, window),
                                name="tcp.connect")

    def _connect(self, dst_lid: int, dst_port: int, window: Optional[int]):
        local_port = next(self._ports)
        sock = Socket(self, dst_lid, dst_port, local_port,
                      window or self.profile.tcp_default_window)
        self._socks[(dst_lid, dst_port, local_port)] = sock
        syn = Segment(SYN, local_port, dst_port, rwnd=sock.rwnd)
        self._tx_control(dst_lid, syn)
        if self.retransmit:
            # A lost SYN/SYN-ACK would otherwise hang the connection
            # forever; retransmit with backoff, like data, but bounded
            # (classic SYN retry budget) so a dead peer surfaces as an
            # error instead of an endless timer loop.
            timeout_us = self.profile.tcp_rto_us
            for _ in range(8):
                timer = self.sim.timeout(timeout_us)
                yield self.sim.any_of([sock._established, timer])
                if sock._established.triggered:
                    return sock
                timeout_us = min(timeout_us * 2, self.profile.tcp_max_rto_us)
                self._tx_control(dst_lid, syn)
            raise ConnectionError(
                f"connect to lid {dst_lid} port {dst_port} timed out")
        yield sock._established
        return sock

    # -- wire side ------------------------------------------------------------
    def _tx_control(self, dst_lid: int, seg: Segment) -> None:
        self.iface.send(dst_lid, self.profile.tcp_header_bytes, seg)

    def _rx_enqueue(self, src_lid: int, nbytes: int, seg: Segment) -> None:
        self._rx_queue.put((src_lid, seg))

    def _rx_pump(self):
        profile = self.profile
        while True:
            src_lid, seg = yield self._rx_queue.get()
            with self.cpu.request() as req:
                yield req
                if seg.kind == DATA:
                    yield self._rx_cpu_wait.arm(
                        profile.tcp_segment_fixed_us
                        + seg.length * profile.tcp_per_byte_us)
                else:
                    yield self._rx_cpu_wait.arm(profile.tcp_ack_cpu_us)
            self._demux(src_lid, seg)

    def _demux(self, src_lid: int, seg: Segment) -> None:
        if seg.kind == SYN:
            listener = self._listeners.get(seg.dst_port)
            if listener is None:
                return  # connection refused: SYN silently dropped here
            existing = self._socks.get((src_lid, seg.src_port, seg.dst_port))
            if existing is not None:
                # Duplicate SYN: our SYN-ACK was lost.  Re-acknowledge;
                # the connection is already established and backlogged.
                self._tx_control(src_lid, Segment(
                    SYNACK, seg.dst_port, seg.src_port, rwnd=existing.rwnd))
                return
            sock = Socket(self, src_lid, seg.src_port, seg.dst_port,
                          listener.window)
            sock.peer_rwnd = seg.rwnd
            self._socks[(src_lid, seg.src_port, seg.dst_port)] = sock
            sock._established.succeed()
            self._tx_control(src_lid, Segment(
                SYNACK, seg.dst_port, seg.src_port, rwnd=sock.rwnd))
            listener._backlog.put(sock)
            return
        sock = self._socks.get((src_lid, seg.src_port, seg.dst_port))
        if sock is None:
            return  # stale segment for a closed connection
        sock._on_segment(seg)

    @property
    def rx_backlog(self) -> int:
        return len(self._rx_queue)


class Listener:
    """A listening port; ``accept()`` yields established sockets."""

    def __init__(self, stack: TcpStack, port: int, window: int):
        self.stack = stack
        self.port = port
        self.window = window
        self._backlog: Store = Store(stack.sim)

    def accept(self):
        return self._backlog.get()


class Socket:
    """One end of an established (or establishing) TCP connection."""

    def __init__(self, stack: TcpStack, peer_lid: int, peer_port: int,
                 local_port: int, window: int):
        self.stack = stack
        self.sim = stack.sim
        self.profile = stack.profile
        self.peer_lid = peer_lid
        self.peer_port = peer_port
        self.local_port = local_port
        self.mss = stack.mss
        #: Local receive window we advertise (the Fig. 6a knob).
        self.rwnd = window
        #: Peer's advertised window (learned from segments).
        self.peer_rwnd = window
        self.cc = CongestionControl(self.mss,
                                    self.profile.tcp_init_cwnd_segments)
        # sender state (byte offsets into the abstract stream)
        self.snd_total = 0
        self.snd_next = 0
        self.snd_una = 0
        self._records_out: Deque[Tuple[int, Any]] = deque()
        # receiver state
        self.rcv_next = 0
        self._recv_records: Store = Store(self.sim)
        self._rcv_watchers: List[Tuple[int, Any]] = []
        self._unacked_segs = 0
        self._last_ack_sent = 0
        #: Pure ACKs emitted; flow-mode accounting extrapolates the
        #: observed ACK cadence from it (delayed ACKs coalesce less in
        #: CPU-paced regimes, where the backlog drains every segment).
        self.acks_sent = 0
        # plumbing
        self._established = self.sim.event()
        self._tx_wakeup = self.sim.event()
        self._closed = False
        self.segments_sent = 0
        self.bytes_acked_in = 0
        # loss recovery (active only on fault-injected fabrics)
        self.retransmit = stack.retransmit
        self.retransmits = 0
        self._m_retx = None
        m = getattr(self.sim, "metrics", None)
        if m is not None:
            self.cc.cwnd_hist = m.histogram("tcp", "cwnd_bytes")
            self._m_segments = m.counter("tcp", "segments_sent")
            self._m_acked = m.counter("tcp", "bytes_acked")
            self._m_wl_us = m.counter("tcp", "window_limited_us")
        else:
            self._m_segments = self._m_acked = self._m_wl_us = None
        self._tx_cpu_wait = ReusableTimeout(self.sim)
        self.sim.process(self._tx_pump(), name=f"sock:{local_port}")
        if self.retransmit:
            self._rto_us = self.profile.tcp_rto_us
            self._last_progress_at = 0.0
            self._dupacks = 0
            self._rto_kick: Store = Store(self.sim)
            self._rto_wait = ReusableTimeout(self.sim)
            self.sim.process(self._rto_pump(),
                             name=f"sock:{local_port}.rto")

    # -- application interface ----------------------------------------------
    def send(self, nbytes: int, record: Any = None) -> None:
        """Queue ``nbytes`` for transmission.

        If ``record`` is given, it marks an application-message boundary
        at the end of those bytes; the peer retrieves it in order with
        :meth:`recv_record`.
        """
        if self._closed:
            raise RuntimeError("send on closed socket")
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        self.snd_total += nbytes
        if record is not None:
            self._records_out.append((self.snd_total, record))
        self._kick()

    def recv_bytes(self, nbytes: int):
        """Event firing once ``nbytes`` more bytes have been received."""
        target = self.rcv_next + nbytes
        evt = self.sim.event()
        if self.rcv_next >= target:
            evt.succeed(self.rcv_next)
        else:
            self._rcv_watchers.append((target, evt))
        return evt

    def recv_record(self):
        """Event yielding the next application record ``(nbytes, obj)``."""
        return self._recv_records.get()

    def flow_halt(self) -> None:
        """Cap the stream at what is already committed for transmission.

        Flow-mode collapse hook: the analytic tail replaces the bytes
        between ``snd_next`` and the old ``snd_total``, so the sender
        must stop producing them.  One segment whose length was fixed
        before a CPU yield may still depart afterwards — harmless, the
        cap only ever shrinks the stream.
        """
        self.snd_total = min(self.snd_total, self.snd_next)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.stack._tx_control(self.peer_lid, Segment(
                FIN, self.local_port, self.peer_port, ack=self.rcv_next))
            self._kick()

    @property
    def inflight(self) -> int:
        return self.snd_next - self.snd_una

    @property
    def send_window(self) -> float:
        return min(self.cc.cwnd, self.peer_rwnd)

    # -- sender ----------------------------------------------------------
    def _kick(self) -> None:
        if not self._tx_wakeup.triggered:
            self._tx_wakeup.succeed()

    def _tx_pump(self):
        profile = self.profile
        if not self._established.processed:
            yield self._established
        while not self._closed:
            unsent = self.snd_total - self.snd_next
            window = self.send_window - self.inflight
            if unsent <= 0 or window <= 0:
                # Data waiting but no window open: the connection is
                # window-limited (the Fig. 6/7 WAN regime); account the
                # stalled time.
                limited = (self._m_wl_us is not None
                           and unsent > 0 and window <= 0)
                stalled_at = self.sim.now
                self._tx_wakeup = self.sim.event()
                yield self._tx_wakeup
                if limited:
                    self._m_wl_us.inc(self.sim.now - stalled_at)
                continue
            seg_len = int(min(self.mss, unsent, window))
            with self.stack.cpu.request() as req:
                yield req
                yield self._tx_cpu_wait.arm(
                    profile.tcp_segment_fixed_us
                    + seg_len * profile.tcp_per_byte_us)
            # Re-read snd_next after the CPU yield: a retransmission
            # timeout may have rewound it to snd_una meanwhile.
            seq = self.snd_next
            end = seq + seg_len
            # Records stay queued until cumulatively ACKed (popped in
            # _on_segment), so a retransmitted range re-carries them.
            records = [r for r in self._records_out if seq < r[0] <= end]
            seg = Segment(DATA, self.local_port, self.peer_port,
                          seq=seq, ack=self.rcv_next,
                          length=seg_len, rwnd=self.rwnd, records=records)
            self.stack.iface.send(
                self.peer_lid, seg_len + profile.tcp_header_bytes, seg)
            was_idle = seq == self.snd_una
            self.snd_next = end
            self.segments_sent += 1
            if self._m_segments is not None:
                self._m_segments.inc()
            if self.retransmit and was_idle:
                # First unacked byte of a burst (re)starts the RTO clock.
                self._last_progress_at = self.sim.now
                self._rto_kick.put(None)

    # -- receiver / ACK processing ------------------------------------------
    def _on_segment(self, seg: Segment) -> None:
        if seg.kind == FIN:
            self._closed = True
            self._kick()
            return
        if seg.kind == SYNACK:
            self.peer_rwnd = seg.rwnd
            if not self._established.triggered:
                self._established.succeed()
            return
        # Every segment may carry an ACK (piggybacked on data).
        if seg.ack > self.snd_una:
            newly = seg.ack - self.snd_una
            self.snd_una = seg.ack
            while self._records_out and self._records_out[0][0] <= self.snd_una:
                self._records_out.popleft()
            self.bytes_acked_in += newly
            if self._m_acked is not None:
                self._m_acked.inc(newly)
            self.cc.on_ack(newly)
            if self.retransmit:
                self._dupacks = 0
                self._last_progress_at = self.sim.now
                self._rto_us = self.profile.tcp_rto_us
                # snd_next can sit below snd_una after an RTO rewind
                # raced a late ACK; never send already-acked bytes.
                if self.snd_next < self.snd_una:
                    self.snd_next = self.snd_una
            self._kick()
        elif (self.retransmit and seg.kind == ACK
              and seg.ack == self.snd_una and self.inflight > 0):
            self._dupacks += 1
            if self._dupacks >= self.profile.tcp_dupack_threshold:
                self._dupacks = 0
                self._retransmit()
        if seg.rwnd:
            self.peer_rwnd = seg.rwnd
        if seg.kind != DATA:
            return
        if self.retransmit:
            end = seg.seq + seg.length
            if end <= self.rcv_next or seg.seq > self.rcv_next:
                # Duplicate (lost ACK / spurious RTO) or a gap after a
                # drop: immediately re-ACK rcv_next so the sender sees
                # dup-ACKs and fast-retransmits.
                self._send_ack()
                return
            # Partial overlap: deliver only the new tail.
            for offset, obj in seg.records:
                if offset > self.rcv_next:
                    self._recv_records.put((offset, obj))
            self.rcv_next = end
        else:
            # Lossless in-order fabric: seq always matches rcv_next.
            assert seg.seq == self.rcv_next, \
                "TCP reordering cannot happen here"
            self.rcv_next += seg.length
            for offset, obj in seg.records:
                self._recv_records.put((offset, obj))
        if self._rcv_watchers:
            still = []
            for target, evt in self._rcv_watchers:
                if self.rcv_next >= target:
                    evt.succeed(self.rcv_next)
                else:
                    still.append((target, evt))
            self._rcv_watchers = still
        # Delayed ACK: every Nth segment, or as soon as the RX softirq
        # queue drains (the delayed-ACK timer analogue).
        self._unacked_segs += 1
        if (self._unacked_segs >= self.profile.tcp_ack_every
                or self.stack.rx_backlog == 0):
            self._send_ack()

    # -- loss recovery (fault-injected fabrics only) ----------------------
    def _rto_pump(self):
        """Retransmission timer: fires when no ACK progress for one RTO."""
        while not self._closed:
            if self.inflight <= 0:
                # Idle: sleep until _tx_pump sends the first unacked byte.
                yield self._rto_kick.get()
                continue
            deadline = self._last_progress_at + self._rto_us
            if deadline > self.sim.now:
                yield self._rto_wait.arm(deadline - self.sim.now)
                continue
            self._rto_us = min(self._rto_us * 2,
                               self.profile.tcp_max_rto_us)
            self._retransmit()

    def _retransmit(self) -> None:
        """Go-back-N: rewind snd_next to the first unacked byte."""
        self.retransmits += 1
        if self._m_retx is None:
            m = getattr(self.sim, "metrics", None)
            if m is not None:
                self._m_retx = m.counter("tcp", "retransmits")
        if self._m_retx is not None:
            self._m_retx.inc()
        self.cc.on_loss()
        self._dupacks = 0
        self.snd_next = self.snd_una
        self._last_progress_at = self.sim.now
        self._kick()

    def _send_ack(self) -> None:
        self._unacked_segs = 0
        self._last_ack_sent = self.rcv_next
        self.acks_sent += 1
        self.stack._tx_control(self.peer_lid, Segment(
            ACK, self.local_port, self.peer_port, ack=self.rcv_next,
            rwnd=self.rwnd))
