"""TCP segment representation."""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

__all__ = ["Segment", "SYN", "SYNACK", "DATA", "ACK", "FIN"]

SYN = "syn"
SYNACK = "synack"
DATA = "data"
ACK = "ack"
FIN = "fin"


class Segment:
    """One TCP segment (header fields only; payload is a byte count).

    ``records`` carries application record boundaries that end inside
    this segment, as ``(stream_offset, obj)`` pairs — the simulator's
    stand-in for the actual payload bytes.
    """

    __slots__ = ("kind", "src_port", "dst_port", "seq", "ack", "length",
                 "rwnd", "records")

    def __init__(self, kind: str, src_port: int, dst_port: int,
                 seq: int = 0, ack: int = 0, length: int = 0,
                 rwnd: int = 0,
                 records: Optional[List[Tuple[int, Any]]] = None):
        self.kind = kind
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq
        self.ack = ack
        self.length = length
        self.rwnd = rwnd
        self.records = records or []

    def __repr__(self) -> str:
        return (f"<Segment {self.kind} {self.src_port}->{self.dst_port} "
                f"seq={self.seq} ack={self.ack} len={self.length}>")
