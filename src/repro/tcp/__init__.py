"""TCP stream transport over IPoIB."""

from .cc import CongestionControl
from .segment import ACK, DATA, FIN, SYN, SYNACK, Segment
from .socket import Listener, Socket, TcpStack

__all__ = ["TcpStack", "Listener", "Socket", "Segment",
           "CongestionControl", "SYN", "SYNACK", "DATA", "ACK", "FIN"]
