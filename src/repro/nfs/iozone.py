"""IOzone-style NFS throughput benchmark (paper §3.7, Fig. 13).

Single server, one client host running ``n_streams`` reader threads over
a shared mount; each thread sequentially reads its slice of a 512 MB
file in 256 KB records.  Three transports: ``rdma``, ``ipoib-rc`` and
``ipoib-ud``.
"""

from __future__ import annotations

from typing import Optional

from ..calibration import MB
from ..fabric.node import Node
from ..fabric.topology import Fabric
from ..ipoib.interface import IPoIBNetwork
from ..sim import Simulator
from ..tcp.socket import TcpStack
from .client import NFSClient
from .rpc import NFS_PORT, RdmaRpcClient, RdmaRpcServer, TcpRpcClient, TcpRpcServer
from .server import NFSServer

__all__ = ["run_iozone_read", "mount"]

TRANSPORTS = ("rdma", "ipoib-rc", "ipoib-ud")


def mount(fabric: Fabric, server_node: Node, client_node: Node,
          transport: str, rpc_timeout_us: Optional[float] = None,
          rpc_max_retries: Optional[int] = None):
    """Set up an NFS export + mount; returns ``(server, client_factory)``.

    ``client_factory`` is a generator: ``client = yield from factory()``.

    ``rpc_timeout_us`` arms per-call timeouts with retransmission on the
    RPC clients.  When it is ``None`` it self-enables (from
    ``profile.nfs_rpc_timeout_us``) iff the fabric has fault injection
    armed — clean mounts keep the exact lossless-fabric call path.
    """
    if transport not in TRANSPORTS:
        raise ValueError(f"transport must be one of {TRANSPORTS}")
    if rpc_timeout_us is None and getattr(fabric, "faults_active", False):
        rpc_timeout_us = server_node.profile.nfs_rpc_timeout_us
    if transport == "rdma":
        server = NFSServer(server_node, copies_data=False)
        rpc_server = RdmaRpcServer(server_node, server.handle)

        def factory():
            rpc_client = RdmaRpcClient(client_node, rpc_server,
                                       call_timeout_us=rpc_timeout_us,
                                       max_retries=rpc_max_retries)
            return NFSClient(rpc_client)
            yield  # pragma: no cover - keeps this a generator

        return server, factory
    mode = "rc" if transport == "ipoib-rc" else "ud"
    net = IPoIBNetwork(fabric, mode=mode)
    server_stack = TcpStack(net.add_interface(server_node))
    client_stack = TcpStack(net.add_interface(client_node))
    server = NFSServer(server_node, copies_data=True)
    TcpRpcServer(server_stack, server.handle, port=NFS_PORT)

    def factory():
        rpc_client = TcpRpcClient(client_stack, server_node.lid,
                                  port=NFS_PORT,
                                  call_timeout_us=rpc_timeout_us,
                                  max_retries=rpc_max_retries)
        yield from rpc_client.connect()
        return NFSClient(rpc_client)

    return server, factory


def run_iozone_read(sim: Simulator, fabric: Fabric, server_node: Node,
                    client_node: Node, transport: str, n_streams: int = 1,
                    file_bytes: int = 512 * MB,
                    record_bytes: int = 256 * 1024,
                    read_bytes: Optional[int] = None) -> float:
    """Aggregate NFS read throughput in MB/s.

    ``read_bytes`` bounds how much of the file is actually read (per the
    whole run), so benchmark runs stay tractable; defaults to the full
    file, matching IOzone.
    """
    if n_streams < 1:
        raise ValueError("n_streams must be >= 1")
    server, factory = mount(fabric, server_node, client_node, transport)
    server.export("/data", file_bytes)
    total = min(read_bytes or file_bytes, file_bytes)
    slice_bytes = total // n_streams
    span = {}

    def thread(client: NFSClient, start: int):
        offset = start
        end = start + slice_bytes
        while offset < end:
            count = min(record_bytes, end - offset)
            got = yield from client.read("/data", offset, count)
            if got == 0:
                break
            offset += got

    def main():
        client = yield from factory()
        t0 = sim.now
        workers = [sim.process(thread(client, i * slice_bytes),
                               name=f"iozone{i}")
                   for i in range(n_streams)]
        yield sim.all_of(workers)
        span["t"] = sim.now - t0

    done = sim.process(main(), name="iozone.main")
    sim.run(until=done)
    return (slice_bytes * n_streams) / span["t"]
