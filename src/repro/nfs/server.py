"""NFS server: exported files, RPC handlers, service thread pool."""

from __future__ import annotations

from typing import Dict, Tuple

from ..calibration import HardwareProfile
from ..fabric.node import Node
from ..sim import Resource, Simulator

__all__ = ["NFSServer", "FileHandle"]


class FileHandle:
    """An exported file (warm in the server's buffer cache — the IOzone
    re-read scenario the paper measures; cold-miss disk latency can be
    injected via ``disk_latency_us``)."""

    def __init__(self, path: str, size: int, disk_latency_us: float = 0.0):
        self.path = path
        self.size = size
        self.disk_latency_us = disk_latency_us


class NFSServer:
    """Transport-agnostic NFS request processor.

    The transport (TCP or RDMA RPC server) calls :meth:`handle` as its
    handler; it returns ``(resp_data_bytes, result)``.
    """

    def __init__(self, node: Node, copies_data: bool):
        """``copies_data``: True for the TCP transport (the server copies
        file data into the stream — the overhead NFS/RDMA removes)."""
        self.node = node
        self.sim: Simulator = node.sim
        self.profile: HardwareProfile = node.profile
        self.copies_data = copies_data
        self.exports: Dict[str, FileHandle] = {}
        self.threads = Resource(self.sim,
                                capacity=self.profile.nfs_server_threads)
        self.ops = 0
        self._rpc_active = 0
        m = getattr(self.sim, "metrics", None)
        if m is not None:
            self._m_inflight = m.gauge("nfs", "rpc_inflight")
            self._m_ops = m.counter("nfs", "ops")
            self._m_read_bytes = m.counter("nfs", "read_bytes")
        else:
            self._m_inflight = self._m_ops = self._m_read_bytes = None

    def export(self, path: str, size: int,
               disk_latency_us: float = 0.0) -> FileHandle:
        fh = FileHandle(path, size, disk_latency_us)
        self.exports[path] = fh
        return fh

    # -- RPC handler (generator) ----------------------------------------------
    def handle(self, proc: str, args: Tuple):
        self._rpc_active += 1
        if self._m_inflight is not None:
            self._m_inflight.set(self._rpc_active)
        try:
            with self.threads.request() as req:
                yield req
                yield self.sim.timeout(self.profile.nfs_rpc_server_us)
                self.ops += 1
                if self._m_ops is not None:
                    self._m_ops.inc()
                if proc == "read":
                    path, offset, count = args
                    fh = self._lookup(path)
                    if offset >= fh.size:
                        return 0, ("eof", 0)
                    count = min(count, fh.size - offset)
                    if fh.disk_latency_us:
                        yield self.sim.timeout(fh.disk_latency_us)
                    if self.copies_data:
                        yield self.sim.timeout(
                            count * self.profile.nfs_tcp_copy_us_per_byte)
                    if self._m_read_bytes is not None:
                        self._m_read_bytes.inc(count)
                    return count, ("ok", count)
                if proc == "write":
                    path, offset, count = args
                    fh = self._lookup(path)
                    if self.copies_data:
                        yield self.sim.timeout(
                            count * self.profile.nfs_tcp_copy_us_per_byte)
                    fh.size = max(fh.size, offset + count)
                    return 0, ("ok", count)
                if proc == "getattr":
                    fh = self._lookup(args[0])
                    return 0, ("ok", fh.size)
                raise ValueError(f"unknown NFS procedure {proc!r}")
        finally:
            self._rpc_active -= 1
            if self._m_inflight is not None:
                self._m_inflight.set(self._rpc_active)

    def _lookup(self, path: str) -> FileHandle:
        try:
            return self.exports[path]
        except KeyError:
            raise KeyError(f"not exported: {path}") from None
