"""NFS over RDMA and over IPoIB (TCP) with an IOzone-style harness."""

from .client import NFSClient
from .iozone import TRANSPORTS, mount, run_iozone_read
from .rpc import (NFS_PORT, RdmaRpcClient, RdmaRpcServer, RPCTimeoutError,
                  TcpRpcClient, TcpRpcServer)
from .server import FileHandle, NFSServer

__all__ = ["NFSServer", "NFSClient", "FileHandle", "NFS_PORT",
           "TcpRpcServer", "TcpRpcClient", "RdmaRpcServer", "RdmaRpcClient",
           "RPCTimeoutError", "mount", "run_iozone_read", "TRANSPORTS"]
