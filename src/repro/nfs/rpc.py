"""ONC RPC over pluggable transports (TCP and RDMA).

NFS in the paper runs over three transports: RDMA (the NFS/RDMA design
of [17]), TCP over IPoIB-RC and TCP over IPoIB-UD.  The RPC layer is
transport-agnostic: a client issues ``call(proc, args, resp_bytes)``
and the server replies.  The crucial difference lives in how READ reply
*data* travels:

* **TCP transport** — data is copied into the socket stream (the server
  pays a per-byte buffer-cache copy the paper calls out as RDMA's
  advantage);
* **RDMA transport** — the server pushes data with zero-copy RDMA writes
  **fragmented into 4 KB chunks** (paper §3.7), then sends the RPC reply.
  Those 4 KB messages ride the RC window, which is why NFS/RDMA collapses
  over long pipes exactly like the verbs 4 KB curve of Fig. 5.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple

from ..calibration import HardwareProfile
from ..fabric.node import Node
from ..tcp.socket import Socket, TcpStack
from ..verbs.device import VerbsContext
from ..verbs.ops import RecvWR
from ..verbs.qp import QPState
from ..verbs.rc import RCQueuePair, connect_rc_pair, reconnect_rc_pair

__all__ = ["RPCTransportServer", "RPCTransportClient", "TcpRpcServer",
           "TcpRpcClient", "RdmaRpcServer", "RdmaRpcClient",
           "RPCTimeoutError", "NFS_PORT"]

NFS_PORT = 2049
_HUGE = 1 << 40
_xids = itertools.count(1)

#: Duplicate-request cache entries kept per connection (the classic
#: NFS server DRC, bounded like the Linux nfsd hash).
_DRC_BOUND = 4096


class RPCTimeoutError(TimeoutError):
    """An RPC exhausted its retransmissions without receiving a reply."""


def _fire_timeout(wake) -> None:
    if not wake.triggered:
        wake.succeed()


class _RetryMixin:
    """Shared client-side timeout/retransmit plumbing.

    ``call_timeout_us=None`` (the default) disables the machinery
    entirely — the call path is then byte-identical to the pre-fault
    implementation, so clean golden traces cannot move.
    """

    def _init_retry(self, call_timeout_us: Optional[float],
                    max_retries: Optional[int],
                    backoff: Optional[float]) -> None:
        profile: HardwareProfile = self.profile
        self.call_timeout_us = call_timeout_us
        self.max_retries = (profile.nfs_rpc_max_retries
                            if max_retries is None else max_retries)
        self.backoff = (profile.nfs_rpc_backoff
                        if backoff is None else backoff)
        self.rpc_retries = 0
        self._m_retries = None

    def _count_retry(self) -> None:
        self.rpc_retries += 1
        if self._m_retries is None:
            m = getattr(self.sim, "metrics", None)
            if m is not None:
                self._m_retries = m.counter("nfs", "rpc_retries")
        if self._m_retries is not None:
            self._m_retries.inc()

    def _reply_or_timeout(self, evt, timeout_us: float):
        """Event that fires when ``evt`` succeeds or ``timeout_us`` pass.

        A cancellable kernel callback replaces the former
        ``any_of([evt, timeout()])`` pair; the heap sees the same pushes
        and pops at the same instants (one timer entry per attempt, one
        wake entry on whichever side fires first), so retry timing is
        unchanged — only the per-attempt Timeout + condition allocations
        are gone.
        """
        wake = self.sim.event()
        timer = self.sim.call_at(timeout_us, _fire_timeout, wake)
        if evt.callbacks is None:
            # A late reply from a previous attempt already completed it.
            timer.cancel()
            wake.succeed()
            return wake

        def _on_reply(_e, wake=wake, timer=timer):
            timer.cancel()
            if not wake.triggered:
                wake.succeed()
        evt.callbacks.append(_on_reply)
        return wake


# ---------------------------------------------------------------------------
# TCP transport
# ---------------------------------------------------------------------------

class TcpRpcServer:
    """RPC endpoint accepting stream connections on the NFS port."""

    def __init__(self, stack: TcpStack,
                 handler: Callable, port: int = NFS_PORT):
        self.stack = stack
        self.sim = stack.sim
        self.profile = stack.profile
        self.handler = handler  # generator: handler(proc, args) -> (resp_bytes, result)
        self.listener = stack.listen(port)
        self.sim.process(self._accept_loop(), name="nfs.tcp.accept")

    def _accept_loop(self):
        while True:
            sock = yield self.listener.accept()
            self.sim.process(self._serve(sock), name="nfs.tcp.conn")

    def _serve(self, sock: Socket):
        # Per-connection duplicate-request cache: a retransmitted xid
        # whose reply was lost is answered from cache (READs are
        # idempotent, but re-execution would double-count server work);
        # a duplicate still in progress is dropped.
        seen: "OrderedDict[int, Any]" = OrderedDict()
        while True:
            _off, msg = yield sock.recv_record()
            xid, proc, args = msg
            if xid in seen:
                cached = seen[xid]
                if cached is not None:
                    resp_bytes, result = cached
                    sock.send(self.profile.nfs_rpc_header + resp_bytes,
                              record=(xid, result))
                continue
            seen[xid] = None
            while len(seen) > _DRC_BOUND:
                seen.popitem(last=False)
            self.sim.process(self._dispatch(sock, xid, proc, args, seen),
                             name="nfs.tcp.rpc")

    def _dispatch(self, sock: Socket, xid: int, proc: str, args: Tuple,
                  seen: "OrderedDict[int, Any]"):
        resp_bytes, result = yield from self.handler(proc, args)
        if xid in seen:
            seen[xid] = (resp_bytes, result)
        sock.send(self.profile.nfs_rpc_header + resp_bytes,
                  record=(xid, result))


class TcpRpcClient(_RetryMixin):
    """Stream-transport RPC client (one connection)."""

    def __init__(self, stack: TcpStack, server_lid: int,
                 port: int = NFS_PORT, *,
                 call_timeout_us: Optional[float] = None,
                 max_retries: Optional[int] = None,
                 backoff: Optional[float] = None):
        self.stack = stack
        self.sim = stack.sim
        self.profile = stack.profile
        self.server_lid = server_lid
        self.port = port
        self.sock: Optional[Socket] = None
        self._waiting: Dict[int, Any] = {}
        self._init_retry(call_timeout_us, max_retries, backoff)

    def connect(self):
        self.sock = yield self.stack.connect(self.server_lid, self.port)
        # Long-lived mount: measure steady state, not slow-start ramp.
        self.sock.cc.cwnd = float(self.sock.peer_rwnd)
        self.sim.process(self._reply_loop(), name="nfs.tcp.replies")
        return self

    def _reply_loop(self):
        while True:
            _off, (xid, result) = yield self.sock.recv_record()
            evt = self._waiting.pop(xid, None)
            if evt is not None:
                evt.succeed(result)

    def call(self, proc: str, args: Tuple, req_bytes: int):
        """Issue one RPC; yields the result object.

        With ``call_timeout_us`` set the request is retransmitted under
        the **same xid** with exponential backoff; the server's
        duplicate-request cache makes retransmissions safe.  Raises
        :class:`RPCTimeoutError` once retries are exhausted.
        """
        if self.sock is None:
            raise RuntimeError("call() before connect()")
        xid = next(_xids)
        evt = self.sim.event()
        self._waiting[xid] = evt
        wire_bytes = self.profile.nfs_rpc_header + req_bytes
        if self.call_timeout_us is None:
            self.sock.send(wire_bytes, record=(xid, proc, args))
            result = yield evt
            return result
        timeout_us = self.call_timeout_us
        for attempt in range(self.max_retries + 1):
            if attempt:
                self._count_retry()
            self.sock.send(wire_bytes, record=(xid, proc, args))
            yield self._reply_or_timeout(evt, timeout_us)
            if evt.triggered:
                return evt.value
            timeout_us *= self.backoff
        self._waiting.pop(xid, None)
        raise RPCTimeoutError(
            f"RPC {proc} xid={xid} timed out after "
            f"{self.max_retries + 1} attempts")


# ---------------------------------------------------------------------------
# RDMA transport
# ---------------------------------------------------------------------------

class RdmaRpcServer:
    """RPC endpoint on a dedicated RC QP per client connection.

    READ data is returned by RDMA writes in
    :attr:`HardwareProfile.nfs_rdma_chunk`-byte fragments before the
    reply send — the [17] server-driven data-transfer design.
    """

    def __init__(self, node: Node, handler: Callable):
        self.node = node
        self.sim = node.sim
        self.profile = node.profile
        self.handler = handler
        self.ctx = VerbsContext(node)
        self._conns: Dict[int, RCQueuePair] = {}
        # One DMA/fragmentation engine: chunk preparation is serialized
        # server-wide, which is what caps LAN NFS/RDMA throughput.
        from ..sim import Resource
        self.data_cpu = Resource(self.sim, capacity=1)

    def accept_connection(self, client_ctx: VerbsContext) -> RCQueuePair:
        """Out-of-band connection setup (RDMA-CM analogue)."""
        scq = self.ctx.create_cq("nfs.scq")
        rcq = self.ctx.create_cq("nfs.rcq")
        qp = self.ctx.create_rc_qp(scq, rcq)
        client_scq = client_ctx.create_cq("nfs.c.scq")
        client_rcq = client_ctx.create_cq("nfs.c.rcq")
        client_qp = client_ctx.create_rc_qp(client_scq, client_rcq)
        connect_rc_pair(qp, client_qp)
        for _ in range(4096):
            qp.post_recv(RecvWR(_HUGE))
        self._conns[qp.qpn] = qp
        self.sim.process(self._serve(qp), name="nfs.rdma.conn")
        return client_qp

    def _serve(self, qp: RCQueuePair):
        # Duplicate-request cache, as in the TCP transport: cached
        # replies are replayed (including the RDMA data push — the
        # client's sink buffer is simply rewritten), in-progress
        # duplicates are dropped.
        seen: "OrderedDict[int, Any]" = OrderedDict()
        while True:
            wc = yield qp.recv_cq.wait()
            if qp.state is not QPState.ERROR:
                qp.post_recv(RecvWR(_HUGE))
            xid, proc, args = wc.payload
            if xid in seen:
                cached = seen[xid]
                if cached is not None:
                    resp_bytes, result = cached
                    self.sim.process(
                        self._push_reply(qp, xid, resp_bytes, result),
                        name="nfs.rdma.replay")
                continue
            seen[xid] = None
            while len(seen) > _DRC_BOUND:
                seen.popitem(last=False)
            self.sim.process(self._dispatch(qp, xid, proc, args, seen),
                             name="nfs.rdma.rpc")

    def _dispatch(self, qp: RCQueuePair, xid: int, proc: str, args: Tuple,
                  seen: "OrderedDict[int, Any]"):
        resp_bytes, result = yield from self.handler(proc, args)
        if xid in seen:
            seen[xid] = (resp_bytes, result)
        yield from self._push_reply(qp, xid, resp_bytes, result)

    def _push_reply(self, qp: RCQueuePair, xid: int, proc_resp_bytes: int,
                    result: Any):
        """RDMA-write the data chunks, then send the RPC reply.

        Bails out if the QP left RTS (connection torn down mid-reply);
        the client's retransmission will trigger a cached replay once
        the connection is re-established.
        """
        chunk = self.profile.nfs_rdma_chunk
        remaining = proc_resp_bytes
        while remaining > 0:
            n = min(chunk, remaining)
            # Per-chunk server work: fragmentation, MR lookup, WQE build.
            with self.data_cpu.request() as req:
                yield req
                yield self.sim.timeout(self.profile.nfs_rdma_chunk_cpu_us)
            if qp.state is not QPState.RTS:
                return
            qp.rdma_write(n)
            remaining -= n
        if qp.state is QPState.RTS:
            qp.send(self.profile.nfs_rpc_header, payload=(xid, result))


class RdmaRpcClient(_RetryMixin):
    """RDMA-transport RPC client (single connection, shared by threads —
    the paper's single-connection multi-threaded IOzone setup)."""

    def __init__(self, node: Node, server: RdmaRpcServer, *,
                 call_timeout_us: Optional[float] = None,
                 max_retries: Optional[int] = None,
                 backoff: Optional[float] = None):
        self.node = node
        self.sim = node.sim
        self.profile = node.profile
        self.ctx = VerbsContext(node)
        self.qp = server.accept_connection(self.ctx)
        # Keep the server-side QP so the client (the RDMA-CM analogue)
        # can drive a reconnect after an RC error.
        self._server_qp = server._conns[self.qp.remote_qpn]
        for _ in range(4096):
            self.qp.post_recv(RecvWR(_HUGE))
        self._waiting: Dict[int, Any] = {}
        self.reconnects = 0
        self._m_reconnects = None
        self._init_retry(call_timeout_us, max_retries, backoff)
        self.sim.process(self._reply_loop(), name="nfs.rdma.replies")

    def _reply_loop(self):
        while True:
            wc = yield self.qp.recv_cq.wait()
            if self.qp.state is not QPState.ERROR:
                self.qp.post_recv(RecvWR(_HUGE))
            xid, result = wc.payload
            evt = self._waiting.pop(xid, None)
            if evt is not None:
                evt.succeed(result)

    def _ensure_connected(self) -> None:
        """Re-establish the RC connection if either side hit an error."""
        if (self.qp.state is QPState.RTS
                and self._server_qp.state is QPState.RTS):
            return
        reconnect_rc_pair(self.qp, self._server_qp)
        self.reconnects += 1
        if self._m_reconnects is None:
            m = getattr(self.sim, "metrics", None)
            if m is not None:
                self._m_reconnects = m.counter("nfs", "reconnects")
        if self._m_reconnects is not None:
            self._m_reconnects.inc()

    def call(self, proc: str, args: Tuple, req_bytes: int):
        xid = next(_xids)
        evt = self.sim.event()
        self._waiting[xid] = evt
        wire_bytes = self.profile.nfs_rpc_header + req_bytes
        if self.call_timeout_us is None:
            self.qp.send(wire_bytes, payload=(xid, proc, args))
            result = yield evt
            return result
        timeout_us = self.call_timeout_us
        for attempt in range(self.max_retries + 1):
            if attempt:
                self._count_retry()
            self._ensure_connected()
            self.qp.send(wire_bytes, payload=(xid, proc, args))
            yield self._reply_or_timeout(evt, timeout_us)
            if evt.triggered:
                return evt.value
            timeout_us *= self.backoff
        self._waiting.pop(xid, None)
        raise RPCTimeoutError(
            f"RPC {proc} xid={xid} timed out after "
            f"{self.max_retries + 1} attempts")


# typing aliases for the public API
RPCTransportServer = (TcpRpcServer, RdmaRpcServer)
RPCTransportClient = (TcpRpcClient, RdmaRpcClient)
