"""ONC RPC over pluggable transports (TCP and RDMA).

NFS in the paper runs over three transports: RDMA (the NFS/RDMA design
of [17]), TCP over IPoIB-RC and TCP over IPoIB-UD.  The RPC layer is
transport-agnostic: a client issues ``call(proc, args, resp_bytes)``
and the server replies.  The crucial difference lives in how READ reply
*data* travels:

* **TCP transport** — data is copied into the socket stream (the server
  pays a per-byte buffer-cache copy the paper calls out as RDMA's
  advantage);
* **RDMA transport** — the server pushes data with zero-copy RDMA writes
  **fragmented into 4 KB chunks** (paper §3.7), then sends the RPC reply.
  Those 4 KB messages ride the RC window, which is why NFS/RDMA collapses
  over long pipes exactly like the verbs 4 KB curve of Fig. 5.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional, Tuple

from ..calibration import HardwareProfile
from ..fabric.node import Node
from ..sim import Simulator, Store
from ..tcp.socket import Listener, Socket, TcpStack
from ..verbs.device import VerbsContext
from ..verbs.ops import RecvWR
from ..verbs.rc import RCQueuePair, connect_rc_pair

__all__ = ["RPCTransportServer", "RPCTransportClient", "TcpRpcServer",
           "TcpRpcClient", "RdmaRpcServer", "RdmaRpcClient", "NFS_PORT"]

NFS_PORT = 2049
_HUGE = 1 << 40
_xids = itertools.count(1)


# ---------------------------------------------------------------------------
# TCP transport
# ---------------------------------------------------------------------------

class TcpRpcServer:
    """RPC endpoint accepting stream connections on the NFS port."""

    def __init__(self, stack: TcpStack,
                 handler: Callable, port: int = NFS_PORT):
        self.stack = stack
        self.sim = stack.sim
        self.profile = stack.profile
        self.handler = handler  # generator: handler(proc, args) -> (resp_bytes, result)
        self.listener = stack.listen(port)
        self.sim.process(self._accept_loop(), name="nfs.tcp.accept")

    def _accept_loop(self):
        while True:
            sock = yield self.listener.accept()
            self.sim.process(self._serve(sock), name="nfs.tcp.conn")

    def _serve(self, sock: Socket):
        while True:
            _off, msg = yield sock.recv_record()
            xid, proc, args = msg
            self.sim.process(self._dispatch(sock, xid, proc, args),
                             name="nfs.tcp.rpc")

    def _dispatch(self, sock: Socket, xid: int, proc: str, args: Tuple):
        resp_bytes, result = yield from self.handler(proc, args)
        sock.send(self.profile.nfs_rpc_header + resp_bytes,
                  record=(xid, result))


class TcpRpcClient:
    """Stream-transport RPC client (one connection)."""

    def __init__(self, stack: TcpStack, server_lid: int,
                 port: int = NFS_PORT):
        self.stack = stack
        self.sim = stack.sim
        self.profile = stack.profile
        self.server_lid = server_lid
        self.port = port
        self.sock: Optional[Socket] = None
        self._waiting: Dict[int, Any] = {}

    def connect(self):
        self.sock = yield self.stack.connect(self.server_lid, self.port)
        # Long-lived mount: measure steady state, not slow-start ramp.
        self.sock.cc.cwnd = float(self.sock.peer_rwnd)
        self.sim.process(self._reply_loop(), name="nfs.tcp.replies")
        return self

    def _reply_loop(self):
        while True:
            _off, (xid, result) = yield self.sock.recv_record()
            evt = self._waiting.pop(xid, None)
            if evt is not None:
                evt.succeed(result)

    def call(self, proc: str, args: Tuple, req_bytes: int):
        """Issue one RPC; yields the result object."""
        if self.sock is None:
            raise RuntimeError("call() before connect()")
        xid = next(_xids)
        evt = self.sim.event()
        self._waiting[xid] = evt
        self.sock.send(self.profile.nfs_rpc_header + req_bytes,
                       record=(xid, proc, args))
        result = yield evt
        return result


# ---------------------------------------------------------------------------
# RDMA transport
# ---------------------------------------------------------------------------

class RdmaRpcServer:
    """RPC endpoint on a dedicated RC QP per client connection.

    READ data is returned by RDMA writes in
    :attr:`HardwareProfile.nfs_rdma_chunk`-byte fragments before the
    reply send — the [17] server-driven data-transfer design.
    """

    def __init__(self, node: Node, handler: Callable):
        self.node = node
        self.sim = node.sim
        self.profile = node.profile
        self.handler = handler
        self.ctx = VerbsContext(node)
        self._conns: Dict[int, RCQueuePair] = {}
        # One DMA/fragmentation engine: chunk preparation is serialized
        # server-wide, which is what caps LAN NFS/RDMA throughput.
        from ..sim import Resource
        self.data_cpu = Resource(self.sim, capacity=1)

    def accept_connection(self, client_ctx: VerbsContext) -> RCQueuePair:
        """Out-of-band connection setup (RDMA-CM analogue)."""
        scq = self.ctx.create_cq("nfs.scq")
        rcq = self.ctx.create_cq("nfs.rcq")
        qp = self.ctx.create_rc_qp(scq, rcq)
        client_scq = client_ctx.create_cq("nfs.c.scq")
        client_rcq = client_ctx.create_cq("nfs.c.rcq")
        client_qp = client_ctx.create_rc_qp(client_scq, client_rcq)
        connect_rc_pair(qp, client_qp)
        for _ in range(4096):
            qp.post_recv(RecvWR(_HUGE))
        self._conns[qp.qpn] = qp
        self.sim.process(self._serve(qp), name="nfs.rdma.conn")
        return client_qp

    def _serve(self, qp: RCQueuePair):
        while True:
            wc = yield qp.recv_cq.wait()
            qp.post_recv(RecvWR(_HUGE))
            xid, proc, args = wc.payload
            self.sim.process(self._dispatch(qp, xid, proc, args),
                             name="nfs.rdma.rpc")

    def _dispatch(self, qp: RCQueuePair, xid: int, proc: str, args: Tuple):
        resp_bytes, result = yield from self.handler(proc, args)
        chunk = self.profile.nfs_rdma_chunk
        remaining = resp_bytes
        while remaining > 0:
            n = min(chunk, remaining)
            # Per-chunk server work: fragmentation, MR lookup, WQE build.
            with self.data_cpu.request() as req:
                yield req
                yield self.sim.timeout(self.profile.nfs_rdma_chunk_cpu_us)
            qp.rdma_write(n)
            remaining -= n
        qp.send(self.profile.nfs_rpc_header, payload=(xid, result))


class RdmaRpcClient:
    """RDMA-transport RPC client (single connection, shared by threads —
    the paper's single-connection multi-threaded IOzone setup)."""

    def __init__(self, node: Node, server: RdmaRpcServer):
        self.node = node
        self.sim = node.sim
        self.profile = node.profile
        self.ctx = VerbsContext(node)
        self.qp = server.accept_connection(self.ctx)
        for _ in range(4096):
            self.qp.post_recv(RecvWR(_HUGE))
        self._waiting: Dict[int, Any] = {}
        self.sim.process(self._reply_loop(), name="nfs.rdma.replies")

    def _reply_loop(self):
        while True:
            wc = yield self.qp.recv_cq.wait()
            self.qp.post_recv(RecvWR(_HUGE))
            xid, result = wc.payload
            evt = self._waiting.pop(xid, None)
            if evt is not None:
                evt.succeed(result)

    def call(self, proc: str, args: Tuple, req_bytes: int):
        xid = next(_xids)
        evt = self.sim.event()
        self._waiting[xid] = evt
        self.qp.send(self.profile.nfs_rpc_header + req_bytes,
                     payload=(xid, proc, args))
        result = yield evt
        return result


# typing aliases for the public API
RPCTransportServer = (TcpRpcServer, RdmaRpcServer)
RPCTransportClient = (TcpRpcClient, RdmaRpcClient)
