"""NFS client: mount-level API over either RPC transport."""

from __future__ import annotations


from ..calibration import HardwareProfile
from ..sim import Simulator

__all__ = ["NFSClient"]


class NFSClient:
    """Issues NFS operations through an RPC transport client.

    One client object per mount; IOzone threads share it (and therefore
    share its transport connection, as the paper's setup does).
    """

    def __init__(self, rpc_client):
        self.rpc = rpc_client
        self.sim: Simulator = rpc_client.sim
        self.profile: HardwareProfile = rpc_client.profile
        self.reads = 0
        self.bytes_read = 0

    def read(self, path: str, offset: int, count: int):
        """Read ``count`` bytes at ``offset``; yields bytes actually read."""
        if count <= 0:
            raise ValueError("count must be positive")
        yield self.sim.timeout(self.profile.nfs_rpc_client_us)
        result = yield from self.rpc.call("read", (path, offset, count),
                                          req_bytes=0)
        status, got = result
        if status == "eof":
            return 0
        self.reads += 1
        self.bytes_read += got
        return got

    def write(self, path: str, offset: int, count: int):
        """Write ``count`` bytes at ``offset`` (data rides the request)."""
        if count <= 0:
            raise ValueError("count must be positive")
        yield self.sim.timeout(self.profile.nfs_rpc_client_us)
        result = yield from self.rpc.call("write", (path, offset, count),
                                          req_bytes=count)
        return result[1]

    def getattr(self, path: str):
        yield self.sim.timeout(self.profile.nfs_rpc_client_us)
        result = yield from self.rpc.call("getattr", (path,), req_bytes=0)
        return result[1]

    def read_file(self, path: str, total: int, record: int,
                  readahead: int = 1):
        """Sequentially read ``total`` bytes in ``record``-byte requests,
        keeping up to ``readahead`` requests in flight.

        ``readahead=1`` is the classic synchronous client; larger values
        model the Linux NFS readahead window, which hides WAN round
        trips the same way parallel streams do (an optimization in the
        spirit of the paper's §3 proposals).  Yields bytes read.
        """
        if readahead < 1:
            raise ValueError("readahead must be >= 1")
        offsets = list(range(0, total, record))
        inflight = []
        done_bytes = 0

        def one(off):
            got = yield from self.read(path, off,
                                       min(record, total - off))
            return got

        i = 0
        while i < len(offsets) or inflight:
            while i < len(offsets) and len(inflight) < readahead:
                inflight.append(self.sim.process(one(offsets[i]),
                                                 name="nfs.ra"))
                i += 1
            first = inflight.pop(0)
            got = yield first
            done_bytes += got
        return done_bytes
