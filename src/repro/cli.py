"""Command-line tools mirroring the utilities the paper's authors ran.

Four subcommands, each the simulated twin of a classic tool:

* ``repro perftest`` — OFED perftest (ib_send_lat / ib_send_bw /
  ib_write_bw, RC or UD, with the Longbow delay knob);
* ``repro netperf``  — TCP throughput over IPoIB (window / MTU /
  parallel streams) plus SDP;
* ``repro iozone``   — NFS read throughput over RDMA / IPoIB;
* ``repro experiments`` — regenerate paper tables/figures by id;
* ``repro worker``      — a socket-backend experiment worker that joins
  an ``experiments --backend socket`` coordinator from any host.

Examples::

    python -m repro.cli perftest bw --size 65536 --delay-us 1000
    python -m repro.cli perftest lat --transport ud
    python -m repro.cli netperf --mode rc --mtu 65520 --streams 4
    python -m repro.cli iozone --transport ipoib-rc --delay-us 1000
    python -m repro.cli experiments fig05a fig13c
    python -m repro.cli experiments --jobs 4 --cache --out results.jsonl

``experiments`` runs on the parallel engine (:mod:`repro.exp`):
``--jobs N`` fans experiments and sweep rows out to worker processes
(byte-identical output to a serial run), ``--cache`` reuses unchanged
results from ``.repro-cache/``, and ``--out`` writes the JSON-lines
store that tables are rendered from.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import Simulator, build_cluster_of_clusters
from .calibration import MB

__all__ = ["main"]


def _fabric(delay_us: float, nodes: int = 1, faults: Optional[str] = None):
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, nodes, nodes,
                                       wan_delay_us=delay_us)
    if faults:
        from .faults import FaultPlan
        FaultPlan.parse(faults).apply(fabric)
    return sim, fabric


def _cmd_perftest(args) -> int:
    from .verbs import perftest
    sim, fabric = _fabric(args.delay_us, faults=args.faults)
    a, b = fabric.cluster_a[0], fabric.cluster_b[0]
    if args.test == "lat":
        lat = perftest.run_send_lat(sim, a, b, args.size, args.iters,
                                    transport=args.transport)
        print(f"{args.transport.upper()} send latency, {args.size}B, "
              f"delay {args.delay_us:g}us: {lat:.2f} us")
    elif args.test == "bw":
        bw = perftest.run_send_bw(sim, a, b, args.size, args.iters,
                                  transport=args.transport, fabric=fabric)
        print(f"{args.transport.upper()} send bandwidth, {args.size}B, "
              f"delay {args.delay_us:g}us: {bw:.1f} MB/s")
    elif args.test == "write_bw":
        bw = perftest.run_write_bw(sim, a, b, args.size, args.iters)
        print(f"RDMA write bandwidth, {args.size}B, "
              f"delay {args.delay_us:g}us: {bw:.1f} MB/s")
    else:
        bw = perftest.run_bidir_bw(sim, a, b, args.size, args.iters,
                                   transport=args.transport, fabric=fabric)
        print(f"{args.transport.upper()} bidirectional bandwidth, "
              f"{args.size}B, delay {args.delay_us:g}us: {bw:.1f} MB/s")
    return 0


def _cmd_netperf(args) -> int:
    sim, fabric = _fabric(args.delay_us, faults=args.faults)
    a, b = fabric.cluster_a[0], fabric.cluster_b[0]
    if args.mode == "sdp":
        from .sdp import run_sdp_stream_bw
        bw = run_sdp_stream_bw(sim, fabric, a, b, args.bytes)
        label = "SDP"
    else:
        from .ipoib import netperf
        if args.streams > 1:
            bw = netperf.run_parallel_stream_bw(
                sim, fabric, a, b, args.bytes, streams=args.streams,
                mode=args.mode, mtu=args.mtu, window=args.window)
        else:
            bw = netperf.run_stream_bw(
                sim, fabric, a, b, args.bytes, mode=args.mode,
                mtu=args.mtu, window=args.window)
        label = f"IPoIB-{args.mode.upper()}"
    print(f"{label} throughput, {args.streams} stream(s), "
          f"delay {args.delay_us:g}us: {bw:.1f} MB/s")
    return 0


def _cmd_iozone(args) -> int:
    from .nfs import run_iozone_read
    sim, fabric = _fabric(args.delay_us, faults=args.faults)
    bw = run_iozone_read(sim, fabric, fabric.cluster_a[0],
                         fabric.cluster_b[0], args.transport,
                         n_streams=args.threads,
                         read_bytes=args.bytes)
    print(f"NFS/{args.transport} read, {args.threads} thread(s), "
          f"delay {args.delay_us:g}us: {bw:.1f} MB/s")
    return 0


def _cmd_experiments(args) -> int:
    import json

    from .core.registry import UnknownExperimentError
    from .exp import DryRunBackend, ResultCache, run_experiments, write_jsonl
    from .exp.chaos import ChaosError
    from .exp.journal import JournalError, new_run_id
    cache = ResultCache(args.cache_dir) if args.cache else None
    # the socket backend shares per-row results through the same
    # content-addressed cache directory
    cell_cache_dir = args.cache_dir if (args.cache and
                                        args.backend == "socket") else None
    backend = args.backend
    dryrun = None
    if backend == "dryrun":
        backend = dryrun = DryRunBackend(workers=args.workers or
                                         args.jobs or 1)
    # Settle the run id here so scripts can capture it (stderr, before
    # any work happens) and pass it back to --resume after a crash.
    journal_id = args.journal_id
    if args.resume is None and (args.journal or args.journal_dir
                                or journal_id):
        if journal_id is None:
            journal_id = new_run_id()
        print(f"repro: journaling run {journal_id} under "
              f"{args.journal_dir or '.repro-cache/journal'}",
              file=sys.stderr)
    journaling = args.resume is not None or journal_id is not None
    failures = []
    try:
        results = run_experiments(ids=args.ids, quick=not args.full,
                                  jobs=args.jobs, cache=cache,
                                  timeout_s=args.timeout,
                                  retries=args.retries,
                                  keep_going=args.keep_going,
                                  failures=failures,
                                  faults_spec=args.faults,
                                  flow_mode=args.flow,
                                  backend=backend,
                                  workers=args.workers,
                                  listen=args.listen,
                                  cell_cache_dir=cell_cache_dir,
                                  chaos_spec=args.chaos,
                                  journal_dir=(args.journal_dir
                                               if journaling else None),
                                  journal_id=journal_id,
                                  resume=args.resume,
                                  connect_budget_s=args.connect_budget,
                                  pipeline=args.pipeline)
    except UnknownExperimentError as exc:
        print(f"repro experiments: {exc}", file=sys.stderr)
        return 2
    except (ChaosError, JournalError) as exc:
        print(f"repro experiments: {exc}", file=sys.stderr)
        return 2
    if dryrun is not None:
        plan = dryrun.last_plan or {"backend": "dryrun", "n_tasks": 0,
                                    "tasks": [], "shards": []}
        print(json.dumps(plan, indent=2, sort_keys=True))
        if cache is not None:
            print(f"cache: {cache.hits} hit(s), {cache.misses} miss(es) "
                  f"in {cache.root}", file=sys.stderr)
        return 0
    if args.out:
        write_jsonl(args.out, results)
    for result in results:
        print(result.to_text())
        print()
    if cache is not None:
        print(f"cache: {cache.hits} hit(s), {cache.misses} miss(es) "
              f"in {cache.root}", file=sys.stderr)
    for failure in failures:
        print(f"FAILED {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_worker(args) -> int:
    from .exp.worker import serve
    return serve(args.connect, worker_id=args.worker_id,
                 cache_dir=args.cache_dir, timeout_s=args.timeout,
                 connect_budget_s=args.connect_budget)


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {text!r}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    metrics_help = "collect metrics and print a summary table after the run"
    faults_help = ("WAN fault-injection spec (see repro.faults.FaultPlan), "
                   "e.g. 'loss=0.02,flap@5000:2000,seed=7'")
    flow_help = ("flow-level acceleration for bulk transfers (see "
                 "repro.flow): 'auto'/'on' collapse proved steady-state "
                 "tails analytically, 'off' forces packet mode; "
                 "automatically disabled under --faults/--metrics")

    p = sub.add_parser("perftest", help="verbs microbenchmarks")
    p.add_argument("test", choices=["lat", "bw", "bibw", "write_bw"])
    p.add_argument("--size", type=int, default=65536)
    p.add_argument("--iters", type=int, default=48)
    p.add_argument("--transport", choices=["rc", "ud"], default="rc")
    p.add_argument("--delay-us", type=float, default=0.0)
    p.add_argument("--faults", default=None, metavar="SPEC",
                   help=faults_help)
    p.add_argument("--metrics", action="store_true", help=metrics_help)
    p.add_argument("--flow", choices=["auto", "on", "off"], default=None,
                   help=flow_help)
    p.set_defaults(fn=_cmd_perftest)

    p = sub.add_parser("netperf", help="socket throughput (IPoIB / SDP)")
    p.add_argument("--mode", choices=["ud", "rc", "sdp"], default="ud")
    p.add_argument("--mtu", type=int, default=None)
    p.add_argument("--window", type=int, default=None)
    p.add_argument("--streams", type=int, default=1)
    p.add_argument("--bytes", type=int, default=8 * MB)
    p.add_argument("--delay-us", type=float, default=0.0)
    p.add_argument("--faults", default=None, metavar="SPEC",
                   help=faults_help)
    p.add_argument("--metrics", action="store_true", help=metrics_help)
    p.add_argument("--flow", choices=["auto", "on", "off"], default=None,
                   help=flow_help)
    p.set_defaults(fn=_cmd_netperf)

    p = sub.add_parser("iozone", help="NFS read throughput")
    p.add_argument("--transport", choices=["rdma", "ipoib-rc", "ipoib-ud"],
                   default="rdma")
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--bytes", type=int, default=8 * MB)
    p.add_argument("--delay-us", type=float, default=0.0)
    p.add_argument("--faults", default=None, metavar="SPEC",
                   help=faults_help)
    p.add_argument("--metrics", action="store_true", help=metrics_help)
    p.set_defaults(fn=_cmd_iozone)

    p = sub.add_parser("experiments", help="regenerate paper tables/figures")
    p.add_argument("ids", nargs="*")
    p.add_argument("--full", action="store_true")
    p.add_argument("--jobs", type=_positive_int, default=None,
                   help="worker processes (default: all CPUs); output is "
                        "byte-identical to --jobs 1")
    p.add_argument("--cache", action=argparse.BooleanOptionalAction,
                   default=False,
                   help="reuse results from the on-disk cache when the "
                        "experiment source/version is unchanged")
    p.add_argument("--cache-dir", default=".repro-cache",
                   help="cache directory (default: %(default)s)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="also write results as JSON-lines to PATH")
    p.add_argument("--faults", default=None, metavar="SPEC",
                   help=faults_help + "; applied process-wide and keyed "
                        "into the cache")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-task wall-clock budget; overruns fail the task")
    p.add_argument("--retries", type=int, default=0,
                   help="retry failed/crashed tasks this many times "
                        "(default: %(default)s)")
    p.add_argument("--keep-going", action="store_true",
                   help="report failed experiments and exit 1 instead of "
                        "aborting the whole sweep")
    p.add_argument("--metrics", action="store_true", help=metrics_help)
    p.add_argument("--flow", choices=["auto", "on", "off"], default=None,
                   help=flow_help + "; keyed into the cache when set")
    p.add_argument("--backend", choices=["local", "socket", "dryrun"],
                   default=None,
                   help="execution backend: 'local' process pool "
                        "(default), 'socket' TCP workers (spawned "
                        "locally, or external with --listen), 'dryrun' "
                        "prints the task/shard plan without executing")
    p.add_argument("--workers", type=_positive_int, default=None,
                   help="socket/dryrun worker count (default: --jobs)")
    p.add_argument("--pipeline", type=_positive_int, default=None,
                   metavar="N",
                   help="with --backend socket: force the credit-based "
                        "lease window (outstanding leases per worker); "
                        "default derives it from the grid size, "
                        "degrading to stop-and-wait (1) on tiny grids")
    p.add_argument("--listen", default=None, metavar="HOST:PORT",
                   help="with --backend socket: wait for externally "
                        "started 'repro worker --connect' processes on "
                        "this address instead of spawning local ones")
    p.add_argument("--chaos", default=None, metavar="SPEC",
                   help="with --backend socket: harness-level fault "
                        "injection on the coordinator/worker wire (see "
                        "repro.exp.chaos.ChaosPlan), e.g. "
                        "'drop=0.05,reset@7,seed=3'; never changes "
                        "result bytes")
    p.add_argument("--journal", action="store_true",
                   help="write a durable run journal (enables --resume "
                        "after a crash); the run id is printed on stderr")
    p.add_argument("--journal-dir", default=None, metavar="DIR",
                   help="journal directory (default: "
                        ".repro-cache/journal); implies --journal")
    p.add_argument("--journal-id", default=None, metavar="RUN_ID",
                   help="explicit run id for the journal (default: "
                        "generated); implies --journal")
    p.add_argument("--resume", default=None, metavar="RUN_ID",
                   help="resume a journaled run: skip journaled tasks, "
                        "re-execute the rest, and produce the same "
                        "bytes an uninterrupted run would have")
    p.add_argument("--connect-budget", type=float, default=None,
                   metavar="SECONDS",
                   help="with --backend socket: fall back to the local "
                        "backend if no worker completes a handshake "
                        "within this budget")
    p.set_defaults(fn=_cmd_experiments)

    p = sub.add_parser("worker",
                       help="socket-backend experiment worker "
                            "(join a --backend socket coordinator)")
    p.add_argument("--connect", required=True, metavar="HOST:PORT",
                   help="coordinator address")
    p.add_argument("--worker-id", default=None,
                   help="stable worker name (default: host-pid)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="optional local cell-cache directory")
    p.add_argument("--timeout", type=float, default=60.0, metavar="SECONDS",
                   help="socket timeout (default: %(default)s)")
    p.add_argument("--connect-budget", type=float, default=None,
                   metavar="SECONDS",
                   help="give up (exit 1) after this long without a "
                        "completed coordinator handshake (default: env "
                        "REPRO_EXP_CONNECT_BUDGET_S or 60)")
    p.set_defaults(fn=_cmd_worker)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from .flow.context import activated as flow_activated
    from .sim import SimulationError
    try:
        with flow_activated(getattr(args, "flow", None)):
            if getattr(args, "metrics", False):
                from .obs import MetricsRegistry, format_summary, use_registry
                registry = MetricsRegistry()
                with use_registry(registry):
                    status = args.fn(args)
                print()
                print(format_summary(registry))
                return status
            return args.fn(args)
    except SimulationError as exc:
        # Typically a closed-loop benchmark starved by injected faults
        # (every in-flight message dropped, nothing left to wake it).
        print(f"repro: simulation stalled: {exc}", file=sys.stderr)
        if getattr(args, "faults", None):
            print("repro: the fault spec likely dropped every outstanding "
                  "message; lossy closed-loop benchmarks need a transport "
                  "with recovery (rc) or the flt* experiments",
                  file=sys.stderr)
        return 3


if __name__ == "__main__":
    sys.exit(main())
