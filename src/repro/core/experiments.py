"""Experiment definitions: one entry per paper table/figure plus ablations.

Each experiment is registered with :func:`repro.core.registry.experiment`
and produces an :class:`~repro.core.registry.ExperimentResult`.
``quick=True`` (the default used by the pytest-benchmark suite) trims
iteration counts and sweep points; ``quick=False`` runs the full sweeps
used to fill EXPERIMENTS.md.  Message *sizes* are never trimmed — sizes
are what determine WAN behaviour.

The big sweeps additionally declare a :class:`~repro.core.registry.CellPlan`:
each table row (a size, window, MTU or stream count swept across the
delay axis) is computed by a standalone cell function that builds its
own fresh scenario.  The serial runner and the parallel engine
(:mod:`repro.exp`) both go through the same cell functions, which is
why ``--jobs N`` output is byte-identical to a serial run.

Run everything from the command line::

    python -m repro.core.experiments            # quick sweeps
    python -m repro.core.experiments --full     # full sweeps
    python -m repro.core.experiments fig05a fig13b
    python -m repro.core.experiments --jobs 4   # parallel engine
"""

from __future__ import annotations

from typing import List

from ..apps.nas import run_nas
from ..calibration import DEFAULT_PROFILE, KB, MB
from ..ipoib import netperf
from ..mpi.benchmarks import (
    run_osu_bcast,
    run_osu_bibw,
    run_osu_bw,
    run_osu_mbw_mr,
)
from ..mpi.tuning import DEFAULT_TUNING
from ..nfs.iozone import run_iozone_read
from ..verbs import perftest
from ..wan.delaymap import table1
from . import scenario
from .adaptive import probe_path, recommend_tuning
from .optimizations import coalesced_message_rate
from .registry import (
    CELL_PLANS,
    EXPERIMENTS,
    CellPlan,
    ExperimentResult,
    experiment,
    run_all,
    run_experiment,
)
from .scenario import back_to_back, lan, wan_clusters, wan_pair

__all__ = ["ExperimentResult", "EXPERIMENTS", "CELL_PLANS",
           "run_experiment", "run_all"]

DELAYS = (0.0, 10.0, 100.0, 1000.0, 10000.0)


def _delay_cols(delays) -> List[str]:
    return [f"{int(d)}us" for d in delays]


# ---------------------------------------------------------------------------
# Table 1 / Fig. 3 — delay map & verbs latency
# ---------------------------------------------------------------------------

@experiment("table1", "WAN delay vs emulated wire length (5 us/km)")
def _table1(quick):
    rows = [(f"{km:g} km", f"{us:g} us") for km, us in table1()]
    return ["distance", "one-way delay"], rows, ""


@experiment("fig03", "Verbs small-message latency (us), 0 km")
def _fig03(quick):
    iters = 20 if quick else 100
    rows = []
    s = wan_pair(0.0)
    rows.append(("Send/Recv UD (Longbows)", perftest.run_send_lat(
        s.sim, s.a, s.b, 2, iters, transport="ud")))
    s = wan_pair(0.0)
    rows.append(("Send/Recv RC (Longbows)", perftest.run_send_lat(
        s.sim, s.a, s.b, 2, iters)))
    s = wan_pair(0.0)
    rows.append(("RDMA Write RC (Longbows)", perftest.run_write_lat(
        s.sim, s.a, s.b, 2, iters)))
    s = back_to_back()
    rows.append(("Send/Recv RC (back-to-back)", perftest.run_send_lat(
        s.sim, *s.fabric.nodes, 2, iters)))
    return ["operation", "latency_us"], rows, \
        "Longbow pair adds ~5 us over the back-to-back baseline"


# ---------------------------------------------------------------------------
# Fig. 4 / Fig. 5 — verbs bandwidth
# ---------------------------------------------------------------------------

def _bw_iters(size):
    return 96 if size <= 4 * KB else (48 if size <= 256 * KB else 16)


def _verbs_bw_row(size, transport, bidir):
    row = [size]
    for d in DELAYS:
        s = wan_pair(d)
        fn = perftest.run_bidir_bw if bidir else perftest.run_send_bw
        row.append(fn(s.sim, s.a, s.b, size, iters=_bw_iters(size),
                      transport=transport, fabric=s.fabric))
    return tuple(row)


def _fig04a_sizes(quick):
    return [2, 512, 2048] if quick else [2, 64, 256, 512, 1024, 2048]


def _fig04a_cell(quick, i):
    return _verbs_bw_row(_fig04a_sizes(quick)[i], "ud", False)


@experiment("fig04a", "Verbs UD bandwidth (MB/s) vs size and delay",
            cells=CellPlan(_fig04a_sizes, _fig04a_cell))
def _fig04a(quick, rows):
    return ["size"] + _delay_cols(DELAYS), rows, \
        "UD bandwidth is delay-independent (no ACKs)"


def _fig04b_sizes(quick):
    return [2048] if quick else [2, 512, 1024, 2048]


def _fig04b_cell(quick, i):
    return _verbs_bw_row(_fig04b_sizes(quick)[i], "ud", True)


@experiment("fig04b", "Verbs UD bidirectional bandwidth (MB/s)",
            cells=CellPlan(_fig04b_sizes, _fig04b_cell))
def _fig04b(quick, rows):
    return ["size"] + _delay_cols(DELAYS), rows, ""


def _fig05a_sizes(quick):
    return ([2 * KB, 64 * KB, 256 * KB, 4 * MB] if quick else
            [2, 256, 2 * KB, 16 * KB, 64 * KB, 256 * KB, 1 * MB, 4 * MB])


def _fig05a_cell(quick, i):
    return _verbs_bw_row(_fig05a_sizes(quick)[i], "rc", False)


@experiment("fig05a", "Verbs RC bandwidth (MB/s) vs size and delay",
            cells=CellPlan(_fig05a_sizes, _fig05a_cell))
def _fig05a(quick, rows):
    return ["size"] + _delay_cols(DELAYS), rows, \
        "RC window limits small/medium messages over long pipes"


def _fig05b_sizes(quick):
    return [64 * KB, 4 * MB] if quick else [2 * KB, 64 * KB, 1 * MB, 4 * MB]


def _fig05b_cell(quick, i):
    return _verbs_bw_row(_fig05b_sizes(quick)[i], "rc", True)


@experiment("fig05b", "Verbs RC bidirectional bandwidth (MB/s)",
            cells=CellPlan(_fig05b_sizes, _fig05b_cell))
def _fig05b(quick, rows):
    return ["size"] + _delay_cols(DELAYS), rows, ""


# ---------------------------------------------------------------------------
# Fig. 6 / Fig. 7 — IPoIB
# ---------------------------------------------------------------------------

def _ipoib_delays(quick):
    return (0.0, 100.0, 1000.0, 10000.0) if quick else DELAYS


def _fig06a_windows(quick):
    return [64 * KB, 256 * KB, 512 * KB, None]  # None = default


def _fig06a_cell(quick, i):
    w = _fig06a_windows(quick)[i]
    total = 4 * MB if quick else 64 * MB
    label = "default" if w is None else f"{w // KB}K"
    row = [label]
    for d in _ipoib_delays(quick):
        s = wan_pair(d)
        row.append(netperf.run_stream_bw(
            s.sim, s.fabric, s.a, s.b, total_bytes=total, mode="ud",
            window=w))
    return tuple(row)


@experiment("fig06a", "IPoIB-UD single-stream throughput (MB/s) vs TCP window",
            cells=CellPlan(_fig06a_windows, _fig06a_cell))
def _fig06a(quick, rows):
    return ["window"] + _delay_cols(_ipoib_delays(quick)), rows, \
        "larger windows sustain longer pipes; all degrade eventually"


def _fig06b_streams(quick):
    return (1, 2, 4, 8) if quick else (1, 2, 4, 6, 8)


def _fig06b_delays(quick):
    return (0.0, 1000.0, 10000.0) if quick else DELAYS


def _fig06b_cell(quick, i):
    n = _fig06b_streams(quick)[i]
    total = 8 * MB if quick else 64 * MB
    row = [n]
    for d in _fig06b_delays(quick):
        s = wan_pair(d)
        row.append(netperf.run_parallel_stream_bw(
            s.sim, s.fabric, s.a, s.b, total_bytes=total, streams=n,
            mode="ud"))
    return tuple(row)


@experiment("fig06b", "IPoIB-UD parallel-stream throughput (MB/s)",
            cells=CellPlan(_fig06b_streams, _fig06b_cell))
def _fig06b(quick, rows):
    return ["streams"] + _delay_cols(_fig06b_delays(quick)), rows, \
        "parallel streams recover throughput on high-delay links"


def _fig07a_mtus(quick):
    return [2044, 16384, 65520]


def _fig07a_cell(quick, i):
    mtu = _fig07a_mtus(quick)[i]
    total = 8 * MB if quick else 64 * MB
    row = [f"{(mtu + 4) // 1024}K MTU"]
    for d in _ipoib_delays(quick):
        s = wan_pair(d)
        row.append(netperf.run_stream_bw(
            s.sim, s.fabric, s.a, s.b, total_bytes=total, mode="rc",
            mtu=mtu))
    return tuple(row)


@experiment("fig07a", "IPoIB-RC single-stream throughput (MB/s) vs IP MTU",
            cells=CellPlan(_fig07a_mtus, _fig07a_cell))
def _fig07a(quick, rows):
    return ["mtu"] + _delay_cols(_ipoib_delays(quick)), rows, \
        "64K MTU amortizes per-packet cost; collapses at >=1ms delays"


def _fig07b_cell(quick, i):
    n = _fig06b_streams(quick)[i]
    total = 8 * MB if quick else 64 * MB
    row = [n]
    for d in _fig06b_delays(quick):
        s = wan_pair(d)
        row.append(netperf.run_parallel_stream_bw(
            s.sim, s.fabric, s.a, s.b, total_bytes=total, streams=n,
            mode="rc"))
    return tuple(row)


@experiment("fig07b", "IPoIB-RC parallel-stream throughput (MB/s)",
            cells=CellPlan(_fig06b_streams, _fig07b_cell))
def _fig07b(quick, rows):
    return ["streams"] + _delay_cols(_fig06b_delays(quick)), rows, ""


# ---------------------------------------------------------------------------
# Fig. 8 / 9 / 10 / 11 — MPI
# ---------------------------------------------------------------------------

def _fig08a_sizes(quick):
    return ([2 * KB, 8 * KB, 64 * KB, 256 * KB, 4 * MB] if quick else
            [2, 256, 2 * KB, 8 * KB, 16 * KB, 64 * KB, 256 * KB,
             1 * MB, 4 * MB])


def _fig08a_cell(quick, i):
    size = _fig08a_sizes(quick)[i]
    row = [size]
    for d in DELAYS:
        s = wan_pair(d)
        iters = 4 if size >= MB else 6
        row.append(run_osu_bw(s.sim, s.fabric, size, window=64,
                              iters=iters))
    return tuple(row)


@experiment("fig08a", "MPI bandwidth (MB/s) vs size and delay (MVAPICH2-like)",
            cells=CellPlan(_fig08a_sizes, _fig08a_cell))
def _fig08a(quick, rows):
    return ["size"] + _delay_cols(DELAYS), rows, \
        "rendezvous handshake penalizes medium sizes under delay"


def _fig08b_sizes(quick):
    return [64 * KB, 4 * MB] if quick else [2 * KB, 64 * KB, 1 * MB, 4 * MB]


def _fig08b_cell(quick, i):
    size = _fig08b_sizes(quick)[i]
    row = [size]
    for d in DELAYS:
        s = wan_pair(d)
        iters = 3 if size >= MB else 6
        row.append(run_osu_bibw(s.sim, s.fabric, size, window=32,
                                iters=iters))
    return tuple(row)


@experiment("fig08b", "MPI bidirectional bandwidth (MB/s)",
            cells=CellPlan(_fig08b_sizes, _fig08b_cell))
def _fig08b(quick, rows):
    return ["size"] + _delay_cols(DELAYS), rows, ""


@experiment("fig09a", "MPI bandwidth at 10ms delay: default vs tuned threshold")
def _fig09a(quick):
    sizes = ([8 * KB, 16 * KB, 32 * KB] if quick else
             [1 * KB, 2 * KB, 4 * KB, 8 * KB, 16 * KB, 32 * KB])
    tuned = DEFAULT_TUNING.with_overrides(eager_threshold=64 * KB + 1)
    rows = []
    for size in sizes:
        s = wan_pair(10000.0)
        orig = run_osu_bw(s.sim, s.fabric, size, window=32, iters=4)
        s = wan_pair(10000.0)
        new = run_osu_bw(s.sim, s.fabric, size, window=32, iters=4,
                         tuning=tuned)
        rows.append((size, orig, new, 100.0 * (new - orig) / orig))
    return ["size", "thresh-8K", "thresh-64K", "improvement_%"], rows, \
        "paper reports large gains for 8K-32K at high delay"


@experiment("fig09b", "MPI bidirectional bandwidth at 10ms: default vs tuned")
def _fig09b(quick):
    sizes = [8 * KB, 32 * KB] if quick else [8 * KB, 16 * KB, 32 * KB,
                                             64 * KB]
    tuned = DEFAULT_TUNING.with_overrides(eager_threshold=64 * KB + 1)
    rows = []
    for size in sizes:
        s = wan_pair(10000.0)
        orig = run_osu_bibw(s.sim, s.fabric, size, window=32, iters=4)
        s = wan_pair(10000.0)
        new = run_osu_bibw(s.sim, s.fabric, size, window=32, iters=4,
                           tuning=tuned)
        rows.append((size, orig, new, 100.0 * (new - orig) / orig))
    return ["size", "thresh-8K", "thresh-64K", "improvement_%"], rows, ""


def _fig10_params(quick):
    delays = (10.0, 1000.0, 10000.0)
    sizes = [1, 1 * KB, 8 * KB] if quick else [1, 256, 1 * KB, 4 * KB,
                                               8 * KB, 32 * KB]
    return [(d, size) for d in delays for size in sizes]


def _fig10_cell(quick, i):
    d, size = _fig10_params(quick)[i]
    iters = 3 if quick else 6
    row = [f"{int(d)}us", size]
    for pairs in (4, 8, 16):
        s = wan_clusters(pairs, pairs, d)
        _, rate = run_osu_mbw_mr(s.sim, s.fabric, pairs, size,
                                 window=32, iters=iters)
        row.append(rate)
    return tuple(row)


@experiment("fig10", "Multi-pair aggregate message rate (msg/s)",
            cells=CellPlan(_fig10_params, _fig10_cell))
def _fig10(quick, rows):
    return ["delay", "size", "4 pairs", "8 pairs", "16 pairs"], rows, \
        "message rate scales with pairs; more streams fill long pipes"


def _fig11_params(quick):
    delays = (10.0, 100.0, 1000.0)
    sizes = ([4 * KB, 32 * KB, 128 * KB] if quick else
             [4 * KB, 16 * KB, 32 * KB, 64 * KB, 128 * KB, 256 * KB])
    return [(d, size) for d in delays for size in sizes]


def _fig11_cell(quick, i):
    d, size = _fig11_params(quick)[i]
    nodes = 8 if quick else 32            # per cluster, 2 ranks per node
    iters = 3 if quick else 10
    s = wan_clusters(nodes, nodes, d)
    orig = run_osu_bcast(s.sim, s.fabric, size, ppn=2, iters=iters)
    s = wan_clusters(nodes, nodes, d)
    hier = run_osu_bcast(s.sim, s.fabric, size, ppn=2, iters=iters,
                         algorithm="hierarchical")
    return (f"{int(d)}us", size, orig, hier,
            100.0 * (orig - hier) / orig)


@experiment("fig11", "Broadcast latency (us): default vs hierarchical",
            cells=CellPlan(_fig11_params, _fig11_cell))
def _fig11(quick, rows):
    nodes = 8 if quick else 32
    return ["delay", "size", "original_us", "hierarchical_us",
            "improvement_%"], rows, \
        f"{4 * nodes} ranks, block placement, ACK-based OSU loop"


# ---------------------------------------------------------------------------
# Fig. 12 — NAS
# ---------------------------------------------------------------------------

def _fig12_benches(quick):
    if quick:
        return (("IS", 0.2), ("FT", 0.05), ("CG", 0.027))
    return (("IS", 0.4), ("FT", 0.1), ("CG", 0.067), ("MG", 0.25),
            ("EP", 1.0))


def _fig12_cell(quick, i):
    bench, bscale = _fig12_benches(quick)[i]
    nodes = 8 if quick else 16
    base = None
    row = [bench]
    for d in (0.0, 100.0, 1000.0, 10000.0):
        s = wan_clusters(nodes, nodes, d)
        r = run_nas(s.sim, s.fabric, bench, ppn=1, scale=bscale)
        if base is None:
            base = r.runtime_us
        row.append(r.runtime_us / base)
    return tuple(row)


@experiment("fig12", "NAS class-B runtime vs WAN delay (normalized)",
            cells=CellPlan(_fig12_benches, _fig12_cell))
def _fig12(quick, rows):
    nodes = 8 if quick else 16
    return ["benchmark"] + _delay_cols((0.0, 100.0, 1000.0, 10000.0)), \
        rows, (f"{2 * nodes} ranks; slowdown relative to 0-delay; IS/FT "
               f"tolerate delay, CG degrades (paper Fig. 12)")


# ---------------------------------------------------------------------------
# Fig. 13 — NFS
# ---------------------------------------------------------------------------

def _fig13a_streams(quick):
    return (1, 2, 4, 8)


def _fig13a_cell(quick, i):
    n = _fig13a_streams(quick)[i]
    read = 8 * MB if quick else 64 * MB
    row = [n]
    s = lan(2)
    row.append(run_iozone_read(s.sim, s.fabric, s.fabric.nodes[0],
                               s.fabric.nodes[1], "rdma", n_streams=n,
                               read_bytes=read))
    for d in (0.0, 10.0, 100.0, 1000.0):
        s = wan_pair(d)
        row.append(run_iozone_read(s.sim, s.fabric, s.a, s.b, "rdma",
                                   n_streams=n, read_bytes=read))
    return tuple(row)


@experiment("fig13a", "NFS/RDMA read throughput (MB/s) vs client streams",
            cells=CellPlan(_fig13a_streams, _fig13a_cell))
def _fig13a(quick, rows):
    return ["streams", "LAN", "0us", "10us", "100us", "1000us"], rows, \
        "LAN runs at DDR; WAN at SDR; 4K chunks collapse at 1ms"


def _fig13_compare(delay_us, quick):
    streams = (1, 2, 4, 8)
    read = 8 * MB if quick else 32 * MB
    rows = []
    for n in streams:
        row = [n]
        for tr in ("rdma", "ipoib-rc", "ipoib-ud"):
            s = wan_pair(delay_us)
            row.append(run_iozone_read(s.sim, s.fabric, s.a, s.b, tr,
                                       n_streams=n, read_bytes=read))
        rows.append(tuple(row))
    return ["streams", "RDMA", "IPoIB-RC", "IPoIB-UD"], rows


@experiment("fig13b", "NFS read throughput by transport, 10us delay (MB/s)")
def _fig13b(quick):
    cols, rows = _fig13_compare(10.0, quick)
    return cols, rows, "RDMA wins at low delay (no copies)"


@experiment("fig13c", "NFS read throughput by transport, 1ms delay (MB/s)")
def _fig13c(quick):
    cols, rows = _fig13_compare(1000.0, quick)
    return cols, rows, "IPoIB-RC wins at high delay (4K RDMA chunks stall)"


# ---------------------------------------------------------------------------
# Optimizations & ablations
# ---------------------------------------------------------------------------

@experiment("opt_streams", "Parallel-stream gain over single stream (IPoIB-UD)")
def _opt_streams(quick):
    total = 8 * MB
    rows = []
    for d in (100.0, 1000.0, 10000.0):
        s = wan_pair(d)
        one = netperf.run_parallel_stream_bw(s.sim, s.fabric, s.a, s.b,
                                             total, streams=1, mode="ud")
        s = wan_pair(d)
        eight = netperf.run_parallel_stream_bw(s.sim, s.fabric, s.a, s.b,
                                               total, streams=8, mode="ud")
        rows.append((f"{int(d)}us", one, eight,
                     100.0 * (eight - one) / one))
    return ["delay", "1 stream", "8 streams", "gain_%"], rows, \
        "the paper's 'up to ~50%' parallel-stream claim"


@experiment("opt_coalescing", "Message coalescing gain (small-message rate)")
def _opt_coalescing(quick):
    from ..mpi.runtime import MPIJob
    count = 256 if quick else 1024
    rows = []
    for d in (100.0, 1000.0):
        rates = []
        for threshold in (None, 64 * KB):
            s = wan_pair(d)
            job = MPIJob(s.fabric, nprocs=2, ppn=1, placement="cyclic")
            rates.append(coalesced_message_rate(
                s.sim, job.procs[0], job.procs[1], msg_bytes=512,
                count=count, threshold=threshold))
        rows.append((f"{int(d)}us", rates[0], rates[1],
                     rates[1] / rates[0]))
    return ["delay", "individual msg/s", "coalesced msg/s", "speedup"], \
        rows, "512B messages, 64K coalescing buffer"


@experiment("opt_adaptive", "Adaptive threshold tuning vs static default")
def _opt_adaptive(quick):
    rows = []
    for d in (1000.0, 10000.0):
        s = wan_pair(d)
        est = probe_path(s.sim, s.fabric)
        tuned = recommend_tuning(est)
        s = wan_pair(d)
        orig = run_osu_bw(s.sim, s.fabric, 16 * KB, window=32, iters=4)
        s = wan_pair(d)
        new = run_osu_bw(s.sim, s.fabric, 16 * KB, window=32, iters=4,
                         tuning=tuned)
        rows.append((f"{int(d)}us", tuned.eager_threshold, orig, new,
                     100.0 * (new - orig) / max(orig, 1e-9)))
    return ["delay", "chosen_threshold", "default MB/s", "adaptive MB/s",
            "gain_%"], rows, "probe RTT+BW, set threshold ~ BDP"


@experiment("abl_rc_window", "Ablation: RC send window vs 64K bandwidth")
def _abl_rc_window(quick):
    rows = []
    for window in (4, 16, 64):
        row = [window]
        for d in (100.0, 1000.0, 10000.0):
            s = wan_pair(d)
            row.append(perftest.run_send_bw(s.sim, s.a, s.b, 64 * KB,
                                            iters=48, window=window))
        rows.append(tuple(row))
    return ["window", "100us", "1000us", "10000us"], rows, \
        "window vs BDP is the whole RC-over-WAN story"


@experiment("abl_credits", "Ablation: Longbow buffer credits vs throughput")
def _abl_credits(quick):
    rows = []
    for credits in (64 * KB, 1 * MB, 64 * MB):
        profile = DEFAULT_PROFILE.with_overrides(
            longbow_buffer_bytes=credits)
        s = wan_pair(1000.0, profile=profile)
        bw = perftest.run_send_bw(s.sim, s.a, s.b, 256 * KB, iters=24)
        rows.append((f"{credits // KB}K", bw))
    return ["credit pool", "256K bw @1ms (MB/s)"], rows, \
        "deep buffers are what make long-haul IB work at all"


@experiment("abl_bcast", "Ablation: bcast algorithm comparison at 128K")
def _abl_bcast(quick):
    nodes = 8 if quick else 16
    iters = 3 if quick else 6
    rows = []
    for d in (10.0, 1000.0):
        row = [f"{int(d)}us"]
        for algo in ("binomial", "scatter_allgather",
                     "scatter_rd_allgather", "hierarchical"):
            s = wan_clusters(nodes, nodes, d)
            row.append(run_osu_bcast(s.sim, s.fabric, 128 * KB, ppn=2,
                                     iters=iters, algorithm=algo))
        rows.append(tuple(row))
    return ["delay", "binomial", "scat+ring", "scat+rd", "hierarchical"], \
        rows, "WAN crossings dominate: 1 (binomial/hier) vs O(P) (ring)"


@experiment("ext_hier_allreduce", "Extension: hierarchical vs flat allreduce")
def _ext_hier_allreduce(quick):
    from ..mpi.collectives import allreduce
    from ..mpi.runtime import MPIJob
    from .hierarchical import hierarchical_allreduce
    nodes = 8 if quick else 16
    size = 64 * KB
    rows = []
    for d in (10.0, 1000.0):
        times = []
        for fn in (allreduce, hierarchical_allreduce):
            s = wan_clusters(nodes, nodes, d)
            job = MPIJob(s.fabric, ppn=1, placement="block")

            def prog(proc, fn=fn):
                t0 = proc.sim.now
                for _ in range(3):
                    yield from fn(proc, size)
                return (proc.sim.now - t0) / 3

            times.append(max(job.run(prog)))
        rows.append((f"{int(d)}us", times[0], times[1],
                     100.0 * (times[0] - times[1]) / times[0]))
    return ["delay", "flat_us", "hierarchical_us", "improvement_%"], rows, \
        "future-work item from the paper's conclusions"


@experiment("ext_sdp", "Extension: SDP vs IPoIB socket paths (MB/s)")
def _ext_sdp(quick):
    from ..sdp import run_sdp_stream_bw
    total = 8 * MB
    rows = []
    for d in (0.0, 1000.0, 10000.0):
        s = wan_pair(d)
        sdp = run_sdp_stream_bw(s.sim, s.fabric, s.a, s.b, total)
        s = wan_pair(d)
        rc = netperf.run_stream_bw(s.sim, s.fabric, s.a, s.b, total,
                                   mode="rc")
        s = wan_pair(d)
        ud = netperf.run_stream_bw(s.sim, s.fabric, s.a, s.b, total,
                                   mode="ud")
        rows.append((f"{int(d)}us", sdp, rc, ud))
    return ["delay", "SDP", "IPoIB-RC", "IPoIB-UD"], rows, \
        "SDP skips the TCP stack ([19]'s ttcp-over-SDP comparison)"


@experiment("ext_pfs", "Extension: striped parallel FS read over WAN (MB/s)")
def _ext_pfs(quick):
    from ..pfs import run_pfs_read
    file_bytes = 8 * MB if quick else 32 * MB
    rows = []
    for d in (0.0, 1000.0):
        row = [f"{int(d)}us"]
        for n_oss in (1, 2, 4):
            s = wan_clusters(n_oss, 1, d)
            row.append(run_pfs_read(s.sim, s.fabric,
                                    s.fabric.cluster_a[:n_oss],
                                    s.fabric.cluster_b[0],
                                    file_bytes=file_bytes))
        rows.append(tuple(row))
    return ["delay", "1 OSS", "2 OSS", "4 OSS"], rows, \
        "striping = parallel streams for filesystems (paper future work)"


@experiment("ext_readahead", "Extension: NFS client readahead over WAN")
def _ext_readahead(quick):
    from ..nfs.iozone import mount
    rows = []
    for ra in (1, 4, 8):
        row = [ra]
        for d in (100.0, 1000.0):
            s = wan_pair(d)
            server, factory = mount(s.fabric, s.a, s.b, "ipoib-rc")
            server.export("/f", 64 * MB)
            span = {}

            def main(ra=ra, span=span, factory=factory, s=s):
                client = yield from factory()
                t0 = s.sim.now
                yield from client.read_file("/f", 8 * MB, 256 * 1024,
                                            readahead=ra)
                span["t"] = s.sim.now - t0

            done = s.sim.process(main())
            s.sim.run(until=done)
            row.append(8 * MB / span["t"])
        rows.append(tuple(row))
    return ["readahead", "100us (MB/s)", "1000us (MB/s)"], rows, \
        "client readahead pipelines RPC round trips like parallel streams"


@experiment("ext_dlm", "Extension: RDMA-atomic lock handoff over WAN")
def _ext_dlm(quick):
    from .dlm import LockClient, LockServer
    rows = []
    for d in (0.0, 100.0, 1000.0, 10000.0):
        s = wan_pair(d)
        server = LockServer(s.a)
        client = LockClient(s.b, server, client_id=1)
        addr = server.create_lock()
        span = {}

        def main(s=s, client=client, addr=addr, span=span):
            t0 = s.sim.now
            for _ in range(5):
                yield from client.acquire(addr)
                yield from client.release(addr)
            span["t"] = (s.sim.now - t0) / 5

        s.sim.run(until=s.sim.process(main()))
        rows.append((f"{int(d)}us", span["t"]))
    return ["delay", "acquire+release_us"], rows, \
        "each handoff costs ~2 WAN RTTs; atomics cannot hide distance"


# ---------------------------------------------------------------------------
# Fault injection — goodput vs loss rate x WAN delay, plus recovery
# ---------------------------------------------------------------------------

FAULT_DELAYS = (10.0, 1000.0)


def _flt_losses(quick) -> List[float]:
    return [0.0, 0.02] if quick else [0.0, 0.005, 0.02, 0.08]


def _flt_spec(loss: float) -> str:
    """Default Gilbert-Elliott spec averaging ``loss`` overall.

    With p(good->bad)=0.1 and p(bad->good)=0.3 the chain spends 25 % of
    frames in the bad state, so a bad-state drop rate of 4x the target
    averages out to the target loss while still arriving in bursts.
    """
    if loss <= 0.0:
        return ""
    return f"burst={min(0.9, 4.0 * loss):g}/0.1/0.3,seed=23"


def _flt_plan(loss: float):
    """Plan for one sweep row; a CLI ``--faults SPEC`` (the process-wide
    active spec) overrides the row default for what-if runs — the cache
    keys results under the active spec, so clean results are unharmed."""
    from ..faults import FaultPlan, get_active_spec
    spec = get_active_spec() or _flt_spec(loss)
    return FaultPlan.parse(spec) if spec else None


def _flt01_row(quick, i, runner, **kwargs):
    loss = _flt_losses(quick)[i]
    row = [f"{loss:g}"]
    for d in FAULT_DELAYS:
        stats = runner(d, _flt_plan(loss), **kwargs)
        row.append(stats["goodput_mb_s"])
    return tuple(row)


def _flt01a_cell(quick, i):
    from ..faults.workloads import run_rc_goodput
    return _flt01_row(quick, i, run_rc_goodput,
                      duration_us=20000.0 if quick else 40000.0)


@experiment("flt01a", "Faults: verbs RC goodput (MB/s) vs loss and delay",
            cells=CellPlan(_flt_losses, _flt01a_cell))
def _flt01a(quick, rows):
    return ["loss"] + _delay_cols(FAULT_DELAYS), rows, \
        "RC loss recovery costs a retransmit RTT: degradation compounds " \
        "with delay"


def _flt01b_cell(quick, i):
    from ..faults.workloads import run_ud_goodput
    return _flt01_row(quick, i, run_ud_goodput,
                      duration_us=20000.0 if quick else 40000.0)


@experiment("flt01b", "Faults: verbs UD goodput (MB/s) vs loss and delay",
            cells=CellPlan(_flt_losses, _flt01b_cell))
def _flt01b(quick, rows):
    return ["loss"] + _delay_cols(FAULT_DELAYS), rows, \
        "UD goodput is delay-independent and drops only by the delivered " \
        "fraction"


def _flt01c_cell(quick, i):
    from ..faults.workloads import run_tcp_goodput
    return _flt01_row(quick, i, run_tcp_goodput,
                      total_bytes=MB if quick else 2 * MB)


@experiment("flt01c", "Faults: IPoIB-UD TCP goodput (MB/s) vs loss and delay",
            cells=CellPlan(_flt_losses, _flt01c_cell))
def _flt01c(quick, rows):
    return ["loss"] + _delay_cols(FAULT_DELAYS), rows, \
        "TCP completes under burst loss via RTO/fast retransmit " \
        "(go-back-N over the WAN)"


def _flt01d_cell(quick, i):
    from ..faults.workloads import run_nfs_goodput
    return _flt01_row(quick, i, run_nfs_goodput,
                      read_bytes=MB if quick else 2 * MB)


@experiment("flt01d", "Faults: NFS/RDMA read goodput (MB/s) vs loss and delay",
            cells=CellPlan(_flt_losses, _flt01d_cell))
def _flt01d(quick, rows):
    return ["loss"] + _delay_cols(FAULT_DELAYS), rows, \
        "RPC timeouts retransmit under the same xid; the server DRC " \
        "absorbs replays"


@experiment("flt02", "Faults: RC recovery timeline under a link flap")
def _flt02(quick):
    from ..faults import FaultPlan
    from ..faults.workloads import run_rc_goodput
    duration = 40000.0 if quick else 60000.0
    scenarios = (
        ("baseline", ""),
        ("flap 15ms", "flap@5000:15000,seed=7"),
        ("flap+loss", "flap@5000:15000,burst=0.2/0.05/0.3,seed=7"),
    )
    rows = []
    for label, spec in scenarios:
        plan = FaultPlan.parse(spec) if spec else None
        st = run_rc_goodput(100.0, plan, duration_us=duration)
        rows.append((label, st["goodput_mb_s"], st["rc_retransmissions"],
                     st["qp_errors"], st["reconnects"],
                     st["wan_frames_dropped"]))
    return ["scenario", "goodput_mb_s", "retransmissions", "qp_errors",
            "reconnects", "wan_drops"], rows, \
        "retry-budget exhaustion -> QP error -> reconnect -> traffic resumes"


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def main(argv=None):
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("ids", nargs="*", help="experiment ids (default all)")
    parser.add_argument("--full", action="store_true",
                        help="full sweeps instead of quick ones")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1 = in-process)")
    parser.add_argument("--flow", choices=["auto", "on", "off"],
                        default=None,
                        help="flow-level acceleration for bulk sweeps "
                             "(default packet mode)")
    args = parser.parse_args(argv)
    from ..flow.context import activated as flow_activated
    with flow_activated(args.flow):
        if args.jobs > 1:
            from ..exp import run_experiments
            results = run_experiments(ids=args.ids, quick=not args.full,
                                      jobs=args.jobs, flow_mode=args.flow)
        else:
            results = run_all(quick=not args.full, ids=args.ids)
    for res in results:
        print(res.to_text())
        print()


if __name__ == "__main__":
    main()
