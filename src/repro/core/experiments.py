"""Experiment registry: one entry per paper table/figure plus ablations.

Each experiment is a function ``fn(quick: bool) -> ExperimentResult``.
``quick=True`` (the default used by the pytest-benchmark suite) trims
iteration counts and sweep points; ``quick=False`` runs the full sweeps
used to fill EXPERIMENTS.md.  Message *sizes* are never trimmed — sizes
are what determine WAN behaviour.

Run everything from the command line::

    python -m repro.core.experiments            # quick sweeps
    python -m repro.core.experiments --full     # full sweeps
    python -m repro.core.experiments fig05a fig13b
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from ..calibration import DEFAULT_PROFILE, KB, MB
from ..apps.nas import run_nas
from ..ipoib import netperf
from ..mpi.benchmarks import (run_osu_bcast, run_osu_bibw, run_osu_bw,
                              run_osu_latency, run_osu_mbw_mr)
from ..mpi.tuning import DEFAULT_TUNING, MPITuning
from ..nfs.iozone import run_iozone_read
from ..verbs import perftest
from ..wan.delaymap import table1
from . import scenario
from .adaptive import auto_tune, probe_path, recommend_tuning
from .optimizations import coalesced_message_rate
from .scenario import back_to_back, lan, wan_clusters, wan_pair

__all__ = ["ExperimentResult", "EXPERIMENTS", "run_experiment",
           "run_all"]

DELAYS = (0.0, 10.0, 100.0, 1000.0, 10000.0)


@dataclass
class ExperimentResult:
    """A regenerated table/figure: labelled columns and data rows."""

    exp_id: str
    title: str
    columns: List[str]
    rows: List[Tuple]
    notes: str = ""

    def to_text(self) -> str:
        widths = [max(len(str(c)), *(len(_fmt(r[i])) for r in self.rows))
                  for i, c in enumerate(self.columns)]
        lines = [f"== {self.exp_id}: {self.title} =="]
        lines.append("  ".join(str(c).ljust(w)
                               for c, w in zip(self.columns, widths)))
        for row in self.rows:
            lines.append("  ".join(_fmt(v).ljust(w)
                                   for v, w in zip(row, widths)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def column(self, name: str) -> List:
        i = self.columns.index(name)
        return [r[i] for r in self.rows]


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.1f}" if abs(v) >= 10 else f"{v:.2f}"
    return str(v)


EXPERIMENTS: Dict[str, Callable[[bool], ExperimentResult]] = {}


def experiment(exp_id: str, title: str):
    def wrap(fn):
        def runner(quick: bool = True) -> ExperimentResult:
            cols, rows, notes = fn(quick)
            return ExperimentResult(exp_id, title, cols, rows, notes)
        runner.exp_id = exp_id
        runner.title = title
        EXPERIMENTS[exp_id] = runner
        return runner
    return wrap


def run_experiment(exp_id: str, quick: bool = True) -> ExperimentResult:
    return EXPERIMENTS[exp_id](quick)


def run_all(quick: bool = True, ids: Sequence[str] = ()) -> List[ExperimentResult]:
    keys = list(ids) if ids else list(EXPERIMENTS)
    return [run_experiment(k, quick) for k in keys]


def _delay_cols(delays) -> List[str]:
    return [f"{int(d)}us" for d in delays]


# ---------------------------------------------------------------------------
# Table 1 / Fig. 3 — delay map & verbs latency
# ---------------------------------------------------------------------------

@experiment("table1", "WAN delay vs emulated wire length (5 us/km)")
def _table1(quick):
    rows = [(f"{km:g} km", f"{us:g} us") for km, us in table1()]
    return ["distance", "one-way delay"], rows, ""


@experiment("fig03", "Verbs small-message latency (us), 0 km")
def _fig03(quick):
    iters = 20 if quick else 100
    rows = []
    s = wan_pair(0.0)
    rows.append(("Send/Recv UD (Longbows)", perftest.run_send_lat(
        s.sim, s.a, s.b, 2, iters, transport="ud")))
    s = wan_pair(0.0)
    rows.append(("Send/Recv RC (Longbows)", perftest.run_send_lat(
        s.sim, s.a, s.b, 2, iters)))
    s = wan_pair(0.0)
    rows.append(("RDMA Write RC (Longbows)", perftest.run_write_lat(
        s.sim, s.a, s.b, 2, iters)))
    s = back_to_back()
    rows.append(("Send/Recv RC (back-to-back)", perftest.run_send_lat(
        s.sim, *s.fabric.nodes, 2, iters)))
    return ["operation", "latency_us"], rows, \
        "Longbow pair adds ~5 us over the back-to-back baseline"


# ---------------------------------------------------------------------------
# Fig. 4 / Fig. 5 — verbs bandwidth
# ---------------------------------------------------------------------------

def _verbs_bw_rows(sizes, delays, transport, bidir, iters_of):
    rows = []
    for size in sizes:
        row = [size]
        for d in delays:
            s = wan_pair(d)
            fn = perftest.run_bidir_bw if bidir else perftest.run_send_bw
            row.append(fn(s.sim, s.a, s.b, size, iters=iters_of(size),
                          transport=transport))
        rows.append(tuple(row))
    return rows


def _bw_iters(size):
    return 96 if size <= 4 * KB else (48 if size <= 256 * KB else 16)


@experiment("fig04a", "Verbs UD bandwidth (MB/s) vs size and delay")
def _fig04a(quick):
    sizes = [2, 512, 2048] if quick else [2, 64, 256, 512, 1024, 2048]
    rows = _verbs_bw_rows(sizes, DELAYS, "ud", False, _bw_iters)
    return ["size"] + _delay_cols(DELAYS), rows, \
        "UD bandwidth is delay-independent (no ACKs)"


@experiment("fig04b", "Verbs UD bidirectional bandwidth (MB/s)")
def _fig04b(quick):
    sizes = [2048] if quick else [2, 512, 1024, 2048]
    rows = _verbs_bw_rows(sizes, DELAYS, "ud", True, _bw_iters)
    return ["size"] + _delay_cols(DELAYS), rows, ""


@experiment("fig05a", "Verbs RC bandwidth (MB/s) vs size and delay")
def _fig05a(quick):
    sizes = ([2 * KB, 64 * KB, 256 * KB, 4 * MB] if quick else
             [2, 256, 2 * KB, 16 * KB, 64 * KB, 256 * KB, 1 * MB, 4 * MB])
    rows = _verbs_bw_rows(sizes, DELAYS, "rc", False, _bw_iters)
    return ["size"] + _delay_cols(DELAYS), rows, \
        "RC window limits small/medium messages over long pipes"


@experiment("fig05b", "Verbs RC bidirectional bandwidth (MB/s)")
def _fig05b(quick):
    sizes = [64 * KB, 4 * MB] if quick else [2 * KB, 64 * KB, 1 * MB, 4 * MB]
    rows = _verbs_bw_rows(sizes, DELAYS, "rc", True, _bw_iters)
    return ["size"] + _delay_cols(DELAYS), rows, ""


# ---------------------------------------------------------------------------
# Fig. 6 / Fig. 7 — IPoIB
# ---------------------------------------------------------------------------

@experiment("fig06a", "IPoIB-UD single-stream throughput (MB/s) vs TCP window")
def _fig06a(quick):
    windows = [64 * KB, 256 * KB, 512 * KB, None]  # None = default
    delays = DELAYS if not quick else (0.0, 100.0, 1000.0, 10000.0)
    total = 4 * MB if quick else 16 * MB
    rows = []
    for w in windows:
        label = "default" if w is None else f"{w // KB}K"
        row = [label]
        for d in delays:
            s = wan_pair(d)
            row.append(netperf.run_stream_bw(
                s.sim, s.fabric, s.a, s.b, total_bytes=total, mode="ud",
                window=w))
        rows.append(tuple(row))
    return ["window"] + _delay_cols(delays), rows, \
        "larger windows sustain longer pipes; all degrade eventually"


@experiment("fig06b", "IPoIB-UD parallel-stream throughput (MB/s)")
def _fig06b(quick):
    streams = (1, 2, 4, 8) if quick else (1, 2, 4, 6, 8)
    delays = (0.0, 1000.0, 10000.0) if quick else DELAYS
    total = 8 * MB if quick else 16 * MB
    rows = []
    for n in streams:
        row = [n]
        for d in delays:
            s = wan_pair(d)
            row.append(netperf.run_parallel_stream_bw(
                s.sim, s.fabric, s.a, s.b, total_bytes=total, streams=n,
                mode="ud"))
        rows.append(tuple(row))
    return ["streams"] + _delay_cols(delays), rows, \
        "parallel streams recover throughput on high-delay links"


@experiment("fig07a", "IPoIB-RC single-stream throughput (MB/s) vs IP MTU")
def _fig07a(quick):
    mtus = [2044, 16384, 65520]
    delays = DELAYS if not quick else (0.0, 100.0, 1000.0, 10000.0)
    total = 8 * MB if quick else 16 * MB
    rows = []
    for mtu in mtus:
        row = [f"{(mtu + 4) // 1024}K MTU"]
        for d in delays:
            s = wan_pair(d)
            row.append(netperf.run_stream_bw(
                s.sim, s.fabric, s.a, s.b, total_bytes=total, mode="rc",
                mtu=mtu))
        rows.append(tuple(row))
    return ["mtu"] + _delay_cols(delays), rows, \
        "64K MTU amortizes per-packet cost; collapses at >=1ms delays"


@experiment("fig07b", "IPoIB-RC parallel-stream throughput (MB/s)")
def _fig07b(quick):
    streams = (1, 2, 4, 8) if quick else (1, 2, 4, 6, 8)
    delays = (0.0, 1000.0, 10000.0) if quick else DELAYS
    total = 8 * MB if quick else 16 * MB
    rows = []
    for n in streams:
        row = [n]
        for d in delays:
            s = wan_pair(d)
            row.append(netperf.run_parallel_stream_bw(
                s.sim, s.fabric, s.a, s.b, total_bytes=total, streams=n,
                mode="rc"))
        rows.append(tuple(row))
    return ["streams"] + _delay_cols(delays), rows, ""


# ---------------------------------------------------------------------------
# Fig. 8 / 9 / 10 / 11 — MPI
# ---------------------------------------------------------------------------

@experiment("fig08a", "MPI bandwidth (MB/s) vs size and delay (MVAPICH2-like)")
def _fig08a(quick):
    sizes = ([2 * KB, 8 * KB, 64 * KB, 256 * KB, 4 * MB] if quick else
             [2, 256, 2 * KB, 8 * KB, 16 * KB, 64 * KB, 256 * KB,
              1 * MB, 4 * MB])
    rows = []
    for size in sizes:
        row = [size]
        for d in DELAYS:
            s = wan_pair(d)
            iters = 4 if size >= MB else 6
            row.append(run_osu_bw(s.sim, s.fabric, size, window=64,
                                  iters=iters))
        rows.append(tuple(row))
    return ["size"] + _delay_cols(DELAYS), rows, \
        "rendezvous handshake penalizes medium sizes under delay"


@experiment("fig08b", "MPI bidirectional bandwidth (MB/s)")
def _fig08b(quick):
    sizes = [64 * KB, 4 * MB] if quick else [2 * KB, 64 * KB, 1 * MB, 4 * MB]
    rows = []
    for size in sizes:
        row = [size]
        for d in DELAYS:
            s = wan_pair(d)
            iters = 3 if size >= MB else 6
            row.append(run_osu_bibw(s.sim, s.fabric, size, window=32,
                                    iters=iters))
        rows.append(tuple(row))
    return ["size"] + _delay_cols(DELAYS), rows, ""


@experiment("fig09a", "MPI bandwidth at 10ms delay: default vs tuned threshold")
def _fig09a(quick):
    sizes = ([8 * KB, 16 * KB, 32 * KB] if quick else
             [1 * KB, 2 * KB, 4 * KB, 8 * KB, 16 * KB, 32 * KB])
    tuned = DEFAULT_TUNING.with_overrides(eager_threshold=64 * KB + 1)
    rows = []
    for size in sizes:
        s = wan_pair(10000.0)
        orig = run_osu_bw(s.sim, s.fabric, size, window=32, iters=4)
        s = wan_pair(10000.0)
        new = run_osu_bw(s.sim, s.fabric, size, window=32, iters=4,
                         tuning=tuned)
        rows.append((size, orig, new, 100.0 * (new - orig) / orig))
    return ["size", "thresh-8K", "thresh-64K", "improvement_%"], rows, \
        "paper reports large gains for 8K-32K at high delay"


@experiment("fig09b", "MPI bidirectional bandwidth at 10ms: default vs tuned")
def _fig09b(quick):
    sizes = [8 * KB, 32 * KB] if quick else [8 * KB, 16 * KB, 32 * KB,
                                             64 * KB]
    tuned = DEFAULT_TUNING.with_overrides(eager_threshold=64 * KB + 1)
    rows = []
    for size in sizes:
        s = wan_pair(10000.0)
        orig = run_osu_bibw(s.sim, s.fabric, size, window=32, iters=4)
        s = wan_pair(10000.0)
        new = run_osu_bibw(s.sim, s.fabric, size, window=32, iters=4,
                           tuning=tuned)
        rows.append((size, orig, new, 100.0 * (new - orig) / orig))
    return ["size", "thresh-8K", "thresh-64K", "improvement_%"], rows, ""


@experiment("fig10", "Multi-pair aggregate message rate (msg/s)")
def _fig10(quick):
    delays = (10.0, 1000.0, 10000.0)
    pairs_list = (4, 8, 16)
    sizes = [1, 1 * KB, 8 * KB] if quick else [1, 256, 1 * KB, 4 * KB,
                                               8 * KB, 32 * KB]
    iters = 3 if quick else 6
    rows = []
    for d in delays:
        for size in sizes:
            row = [f"{int(d)}us", size]
            for pairs in pairs_list:
                s = wan_clusters(pairs, pairs, d)
                _, rate = run_osu_mbw_mr(s.sim, s.fabric, pairs, size,
                                         window=32, iters=iters)
                row.append(rate)
            rows.append(tuple(row))
    return ["delay", "size", "4 pairs", "8 pairs", "16 pairs"], rows, \
        "message rate scales with pairs; more streams fill long pipes"


@experiment("fig11", "Broadcast latency (us): default vs hierarchical")
def _fig11(quick):
    delays = (10.0, 100.0, 1000.0)
    nodes = 8 if quick else 32            # per cluster, 2 ranks per node
    sizes = ([4 * KB, 32 * KB, 128 * KB] if quick else
             [4 * KB, 16 * KB, 32 * KB, 64 * KB, 128 * KB, 256 * KB])
    iters = 3 if quick else 10
    rows = []
    for d in delays:
        for size in sizes:
            s = wan_clusters(nodes, nodes, d)
            orig = run_osu_bcast(s.sim, s.fabric, size, ppn=2, iters=iters)
            s = wan_clusters(nodes, nodes, d)
            hier = run_osu_bcast(s.sim, s.fabric, size, ppn=2, iters=iters,
                                 algorithm="hierarchical")
            rows.append((f"{int(d)}us", size, orig, hier,
                         100.0 * (orig - hier) / orig))
    return ["delay", "size", "original_us", "hierarchical_us",
            "improvement_%"], rows, \
        f"{4 * nodes} ranks, block placement, ACK-based OSU loop"


# ---------------------------------------------------------------------------
# Fig. 12 — NAS
# ---------------------------------------------------------------------------

@experiment("fig12", "NAS class-B runtime vs WAN delay (normalized)")
def _fig12(quick):
    delays = (0.0, 100.0, 1000.0, 10000.0)
    if quick:
        nodes, benches = 8, (("IS", 0.2), ("FT", 0.05), ("CG", 0.027))
    else:
        nodes, benches = 16, (("IS", 0.4), ("FT", 0.1), ("CG", 0.067),
                              ("MG", 0.25), ("EP", 1.0))
    rows = []
    for bench, bscale in benches:
        base = None
        row = [bench]
        for d in delays:
            s = wan_clusters(nodes, nodes, d)
            r = run_nas(s.sim, s.fabric, bench, ppn=1, scale=bscale)
            if base is None:
                base = r.runtime_us
            row.append(r.runtime_us / base)
        rows.append(tuple(row))
    return ["benchmark"] + _delay_cols(delays), rows, \
        (f"{2 * nodes} ranks; slowdown relative to 0-delay; IS/FT "
         f"tolerate delay, CG degrades (paper Fig. 12)")


# ---------------------------------------------------------------------------
# Fig. 13 — NFS
# ---------------------------------------------------------------------------

@experiment("fig13a", "NFS/RDMA read throughput (MB/s) vs client streams")
def _fig13a(quick):
    streams = (1, 2, 4, 8)
    read = 8 * MB if quick else 64 * MB
    rows = []
    for n in streams:
        row = [n]
        s = lan(2)
        row.append(run_iozone_read(s.sim, s.fabric, s.fabric.nodes[0],
                                   s.fabric.nodes[1], "rdma", n_streams=n,
                                   read_bytes=read))
        for d in (0.0, 10.0, 100.0, 1000.0):
            s = wan_pair(d)
            row.append(run_iozone_read(s.sim, s.fabric, s.a, s.b, "rdma",
                                       n_streams=n, read_bytes=read))
        rows.append(tuple(row))
    return ["streams", "LAN", "0us", "10us", "100us", "1000us"], rows, \
        "LAN runs at DDR; WAN at SDR; 4K chunks collapse at 1ms"


def _fig13_compare(delay_us, quick):
    streams = (1, 2, 4, 8)
    read = 8 * MB if quick else 32 * MB
    rows = []
    for n in streams:
        row = [n]
        for tr in ("rdma", "ipoib-rc", "ipoib-ud"):
            s = wan_pair(delay_us)
            row.append(run_iozone_read(s.sim, s.fabric, s.a, s.b, tr,
                                       n_streams=n, read_bytes=read))
        rows.append(tuple(row))
    return ["streams", "RDMA", "IPoIB-RC", "IPoIB-UD"], rows


@experiment("fig13b", "NFS read throughput by transport, 10us delay (MB/s)")
def _fig13b(quick):
    cols, rows = _fig13_compare(10.0, quick)
    return cols, rows, "RDMA wins at low delay (no copies)"


@experiment("fig13c", "NFS read throughput by transport, 1ms delay (MB/s)")
def _fig13c(quick):
    cols, rows = _fig13_compare(1000.0, quick)
    return cols, rows, "IPoIB-RC wins at high delay (4K RDMA chunks stall)"


# ---------------------------------------------------------------------------
# Optimizations & ablations
# ---------------------------------------------------------------------------

@experiment("opt_streams", "Parallel-stream gain over single stream (IPoIB-UD)")
def _opt_streams(quick):
    total = 8 * MB
    rows = []
    for d in (100.0, 1000.0, 10000.0):
        s = wan_pair(d)
        one = netperf.run_parallel_stream_bw(s.sim, s.fabric, s.a, s.b,
                                             total, streams=1, mode="ud")
        s = wan_pair(d)
        eight = netperf.run_parallel_stream_bw(s.sim, s.fabric, s.a, s.b,
                                               total, streams=8, mode="ud")
        rows.append((f"{int(d)}us", one, eight,
                     100.0 * (eight - one) / one))
    return ["delay", "1 stream", "8 streams", "gain_%"], rows, \
        "the paper's 'up to ~50%' parallel-stream claim"


@experiment("opt_coalescing", "Message coalescing gain (small-message rate)")
def _opt_coalescing(quick):
    from ..mpi.runtime import MPIJob
    count = 256 if quick else 1024
    rows = []
    for d in (100.0, 1000.0):
        rates = []
        for threshold in (None, 64 * KB):
            s = wan_pair(d)
            job = MPIJob(s.fabric, nprocs=2, ppn=1, placement="cyclic")
            rates.append(coalesced_message_rate(
                s.sim, job.procs[0], job.procs[1], msg_bytes=512,
                count=count, threshold=threshold))
        rows.append((f"{int(d)}us", rates[0], rates[1],
                     rates[1] / rates[0]))
    return ["delay", "individual msg/s", "coalesced msg/s", "speedup"], \
        rows, "512B messages, 64K coalescing buffer"


@experiment("opt_adaptive", "Adaptive threshold tuning vs static default")
def _opt_adaptive(quick):
    rows = []
    for d in (1000.0, 10000.0):
        s = wan_pair(d)
        est = probe_path(s.sim, s.fabric)
        tuned = recommend_tuning(est)
        s = wan_pair(d)
        orig = run_osu_bw(s.sim, s.fabric, 16 * KB, window=32, iters=4)
        s = wan_pair(d)
        new = run_osu_bw(s.sim, s.fabric, 16 * KB, window=32, iters=4,
                         tuning=tuned)
        rows.append((f"{int(d)}us", tuned.eager_threshold, orig, new,
                     100.0 * (new - orig) / max(orig, 1e-9)))
    return ["delay", "chosen_threshold", "default MB/s", "adaptive MB/s",
            "gain_%"], rows, "probe RTT+BW, set threshold ~ BDP"


@experiment("abl_rc_window", "Ablation: RC send window vs 64K bandwidth")
def _abl_rc_window(quick):
    rows = []
    for window in (4, 16, 64):
        row = [window]
        for d in (100.0, 1000.0, 10000.0):
            s = wan_pair(d)
            row.append(perftest.run_send_bw(s.sim, s.a, s.b, 64 * KB,
                                            iters=48, window=window))
        rows.append(tuple(row))
    return ["window", "100us", "1000us", "10000us"], rows, \
        "window vs BDP is the whole RC-over-WAN story"


@experiment("abl_credits", "Ablation: Longbow buffer credits vs throughput")
def _abl_credits(quick):
    rows = []
    for credits in (64 * KB, 1 * MB, 64 * MB):
        profile = DEFAULT_PROFILE.with_overrides(
            longbow_buffer_bytes=credits)
        s = wan_pair(1000.0, profile=profile)
        bw = perftest.run_send_bw(s.sim, s.a, s.b, 256 * KB, iters=24)
        rows.append((f"{credits // KB}K", bw))
    return ["credit pool", "256K bw @1ms (MB/s)"], rows, \
        "deep buffers are what make long-haul IB work at all"


@experiment("abl_bcast", "Ablation: bcast algorithm comparison at 128K")
def _abl_bcast(quick):
    nodes = 8 if quick else 16
    iters = 3 if quick else 6
    rows = []
    for d in (10.0, 1000.0):
        row = [f"{int(d)}us"]
        for algo in ("binomial", "scatter_allgather",
                     "scatter_rd_allgather", "hierarchical"):
            s = wan_clusters(nodes, nodes, d)
            row.append(run_osu_bcast(s.sim, s.fabric, 128 * KB, ppn=2,
                                     iters=iters, algorithm=algo))
        rows.append(tuple(row))
    return ["delay", "binomial", "scat+ring", "scat+rd", "hierarchical"], \
        rows, "WAN crossings dominate: 1 (binomial/hier) vs O(P) (ring)"


@experiment("ext_hier_allreduce", "Extension: hierarchical vs flat allreduce")
def _ext_hier_allreduce(quick):
    from ..mpi.collectives import allreduce
    from ..mpi.runtime import MPIJob
    from .hierarchical import hierarchical_allreduce
    nodes = 8 if quick else 16
    size = 64 * KB
    rows = []
    for d in (10.0, 1000.0):
        times = []
        for fn in (allreduce, hierarchical_allreduce):
            s = wan_clusters(nodes, nodes, d)
            job = MPIJob(s.fabric, ppn=1, placement="block")

            def prog(proc, fn=fn):
                t0 = proc.sim.now
                for _ in range(3):
                    yield from fn(proc, size)
                return (proc.sim.now - t0) / 3

            times.append(max(job.run(prog)))
        rows.append((f"{int(d)}us", times[0], times[1],
                     100.0 * (times[0] - times[1]) / times[0]))
    return ["delay", "flat_us", "hierarchical_us", "improvement_%"], rows, \
        "future-work item from the paper's conclusions"


@experiment("ext_sdp", "Extension: SDP vs IPoIB socket paths (MB/s)")
def _ext_sdp(quick):
    from ..sdp import run_sdp_stream_bw
    total = 8 * MB
    rows = []
    for d in (0.0, 1000.0, 10000.0):
        s = wan_pair(d)
        sdp = run_sdp_stream_bw(s.sim, s.fabric, s.a, s.b, total)
        s = wan_pair(d)
        rc = netperf.run_stream_bw(s.sim, s.fabric, s.a, s.b, total,
                                   mode="rc")
        s = wan_pair(d)
        ud = netperf.run_stream_bw(s.sim, s.fabric, s.a, s.b, total,
                                   mode="ud")
        rows.append((f"{int(d)}us", sdp, rc, ud))
    return ["delay", "SDP", "IPoIB-RC", "IPoIB-UD"], rows, \
        "SDP skips the TCP stack ([19]'s ttcp-over-SDP comparison)"


@experiment("ext_pfs", "Extension: striped parallel FS read over WAN (MB/s)")
def _ext_pfs(quick):
    from ..pfs import run_pfs_read
    file_bytes = 8 * MB if quick else 32 * MB
    rows = []
    for d in (0.0, 1000.0):
        row = [f"{int(d)}us"]
        for n_oss in (1, 2, 4):
            s = wan_clusters(n_oss, 1, d)
            row.append(run_pfs_read(s.sim, s.fabric,
                                    s.fabric.cluster_a[:n_oss],
                                    s.fabric.cluster_b[0],
                                    file_bytes=file_bytes))
        rows.append(tuple(row))
    return ["delay", "1 OSS", "2 OSS", "4 OSS"], rows, \
        "striping = parallel streams for filesystems (paper future work)"


@experiment("ext_readahead", "Extension: NFS client readahead over WAN")
def _ext_readahead(quick):
    from ..nfs.iozone import mount
    rows = []
    for ra in (1, 4, 8):
        row = [ra]
        for d in (100.0, 1000.0):
            s = wan_pair(d)
            server, factory = mount(s.fabric, s.a, s.b, "ipoib-rc")
            server.export("/f", 64 * MB)
            span = {}

            def main(ra=ra, span=span, factory=factory, s=s):
                client = yield from factory()
                t0 = s.sim.now
                yield from client.read_file("/f", 8 * MB, 256 * 1024,
                                            readahead=ra)
                span["t"] = s.sim.now - t0

            done = s.sim.process(main())
            s.sim.run(until=done)
            row.append(8 * MB / span["t"])
        rows.append(tuple(row))
    return ["readahead", "100us (MB/s)", "1000us (MB/s)"], rows, \
        "client readahead pipelines RPC round trips like parallel streams"


@experiment("ext_dlm", "Extension: RDMA-atomic lock handoff over WAN")
def _ext_dlm(quick):
    from .dlm import LockClient, LockServer
    rows = []
    for d in (0.0, 100.0, 1000.0, 10000.0):
        s = wan_pair(d)
        server = LockServer(s.a)
        client = LockClient(s.b, server, client_id=1)
        addr = server.create_lock()
        span = {}

        def main(s=s, client=client, addr=addr, span=span):
            t0 = s.sim.now
            for _ in range(5):
                yield from client.acquire(addr)
                yield from client.release(addr)
            span["t"] = (s.sim.now - t0) / 5

        s.sim.run(until=s.sim.process(main()))
        rows.append((f"{int(d)}us", span["t"]))
    return ["delay", "acquire+release_us"], rows, \
        "each handoff costs ~2 WAN RTTs; atomics cannot hide distance"


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def main(argv=None):
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("ids", nargs="*", help="experiment ids (default all)")
    parser.add_argument("--full", action="store_true",
                        help="full sweeps instead of quick ones")
    args = parser.parse_args(argv)
    for res in run_all(quick=not args.full, ids=args.ids):
        print(res.to_text())
        print()


if __name__ == "__main__":
    main()
