"""Testbed scenarios (paper Fig. 2 and §3.1).

Every measurement builds a fresh simulator + fabric so runs are
independent and deterministic.  The canonical WAN scenario is two
clusters joined by a Longbow pair; `back_to_back` and `lan` cover the
Fig. 3 baseline and the NFS "LAN" reference.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..calibration import DEFAULT_PROFILE, HardwareProfile
from ..fabric.topology import (Fabric, build_back_to_back, build_cluster,
                               build_cluster_of_clusters)
from ..sim import Simulator

__all__ = ["Scenario", "wan_pair", "wan_clusters", "back_to_back", "lan"]

#: The WAN delays (µs) the paper sweeps (Table 1: 0 to 2000 km).
PAPER_DELAYS_US = (0.0, 10.0, 100.0, 1000.0, 10000.0)


@dataclass
class Scenario:
    """A freshly built simulator + fabric pair."""

    sim: Simulator
    fabric: Fabric

    @property
    def a(self):
        """First endpoint (cluster A side where applicable)."""
        return (self.fabric.cluster_a or self.fabric.nodes)[0]

    @property
    def b(self):
        """Second endpoint (cluster B side where applicable)."""
        return (self.fabric.cluster_b or self.fabric.nodes[1:2]
                or self.fabric.nodes)[0]


def wan_pair(delay_us: float,
             profile: HardwareProfile = DEFAULT_PROFILE) -> Scenario:
    """One node per cluster across the Longbow pair (microbenchmarks)."""
    sim = Simulator()
    return Scenario(sim, build_cluster_of_clusters(
        sim, 1, 1, wan_delay_us=delay_us, profile=profile))


def wan_clusters(nodes_a: int, nodes_b: int, delay_us: float,
                 profile: HardwareProfile = DEFAULT_PROFILE) -> Scenario:
    """Multi-node cluster-of-clusters (MPI jobs, NAS, multi-pair)."""
    sim = Simulator()
    return Scenario(sim, build_cluster_of_clusters(
        sim, nodes_a, nodes_b, wan_delay_us=delay_us, profile=profile))


def back_to_back(profile: HardwareProfile = DEFAULT_PROFILE) -> Scenario:
    """Two nodes on one cable — the Fig. 3 no-Longbow baseline."""
    sim = Simulator()
    return Scenario(sim, build_back_to_back(sim, profile=profile))


def lan(n_nodes: int = 2,
        profile: HardwareProfile = DEFAULT_PROFILE) -> Scenario:
    """A single switched DDR cluster (the NFS 'LAN' reference)."""
    sim = Simulator()
    return Scenario(sim, build_cluster(sim, n_nodes, profile=profile))
