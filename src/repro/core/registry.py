"""Experiment registry core: the result type, registration, serial runner.

Split out of :mod:`repro.core.experiments` (which now holds only the
experiment *definitions*) so the parallel engine in :mod:`repro.exp`
can schedule work without caring what the experiments compute:

* :class:`ExperimentResult` — labelled rows plus canonical JSON
  (de)serialization, the unit stored by the result cache and the
  JSON-lines store;
* :func:`experiment` — the registration decorator filling
  :data:`EXPERIMENTS`;
* :class:`CellPlan` — an optional row-parallel decomposition of a big
  sweep: the scheduler fans individual rows ("cells") out to worker
  processes and reassembles them in index order, so parallel output is
  byte-identical to the serial run;
* :func:`run_experiment` / :func:`run_all` — the serial runner.

Importing :mod:`repro.core` (or anything under it) populates the
registry as a side effect of loading the definitions module.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from .render import render_text

__all__ = ["ExperimentResult", "CellPlan", "EXPERIMENTS", "CELL_PLANS",
           "UnknownExperimentError", "experiment", "resolve_ids",
           "run_experiment", "run_all", "n_cells", "run_cell",
           "finalize_cells"]


@dataclass
class ExperimentResult:
    """A regenerated table/figure: labelled columns and data rows."""

    exp_id: str
    title: str
    columns: List[str]
    rows: List[Tuple]
    notes: str = ""

    def to_text(self) -> str:
        return render_text(self)

    def column(self, name: str) -> List:
        i = self.columns.index(name)
        return [r[i] for r in self.rows]

    # -- canonical serialization (cache, JSON-lines store) --------------
    def to_dict(self) -> Dict:
        return {"exp_id": self.exp_id, "title": self.title,
                "columns": list(self.columns),
                "rows": [list(r) for r in self.rows],
                "notes": self.notes}

    def to_json(self) -> str:
        """Canonical form: sorted keys, no whitespace.  Deterministic
        runs serialize byte-for-byte identically, which is what the
        serial-vs-parallel and cache-hit tests pin."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict) -> "ExperimentResult":
        return cls(exp_id=data["exp_id"], title=data["title"],
                   columns=list(data["columns"]),
                   rows=[tuple(r) for r in data["rows"]],
                   notes=data.get("notes", ""))

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class CellPlan:
    """Row-parallel decomposition of one experiment.

    ``params_of(quick)`` lists one opaque parameter per row (its length
    is the cell count); ``run_cell(quick, i)`` computes row ``i`` alone,
    building its own fresh scenario exactly as the serial path does.
    """

    params_of: Callable[[bool], Sequence]
    run_cell: Callable[[bool, int], Tuple]

    def n_cells(self, quick: bool) -> int:
        return len(self.params_of(quick))


EXPERIMENTS: Dict[str, Callable[[bool], ExperimentResult]] = {}
CELL_PLANS: Dict[str, CellPlan] = {}


class UnknownExperimentError(KeyError):
    """Raised for an experiment id that is not in the registry."""

    def __init__(self, exp_id: str):
        super().__init__(exp_id)
        self.exp_id = exp_id

    def __str__(self) -> str:
        return (f"unknown experiment id {self.exp_id!r}; known ids: "
                + ", ".join(EXPERIMENTS))


def experiment(exp_id: str, title: str, cells: CellPlan = None):
    """Register ``fn`` as an experiment.

    Without ``cells``, ``fn(quick)`` returns ``(columns, rows, notes)``.
    With ``cells``, ``fn(quick, rows)`` receives the already-computed
    row list (serial path computes it in-process; the parallel engine
    computes each row in a worker) and returns ``(columns, rows,
    notes)`` — both paths share the per-row code, which is what makes
    them byte-identical.
    """
    def wrap(fn):
        if cells is not None:
            def runner(quick: bool = True) -> ExperimentResult:
                rows = [cells.run_cell(quick, i)
                        for i in range(cells.n_cells(quick))]
                return finalize_cells(exp_id, quick, rows)
            CELL_PLANS[exp_id] = cells
        else:
            def runner(quick: bool = True) -> ExperimentResult:
                cols, rows, notes = fn(quick)
                return ExperimentResult(exp_id, title, cols, rows, notes)
        runner.exp_id = exp_id
        runner.title = title
        runner.raw_fn = fn
        EXPERIMENTS[exp_id] = runner
        return runner
    return wrap


def resolve_ids(ids: Sequence[str] = ()) -> List[str]:
    """Validate ``ids`` against the registry (empty means all)."""
    if not ids:
        return list(EXPERIMENTS)
    for exp_id in ids:
        if exp_id not in EXPERIMENTS:
            raise UnknownExperimentError(exp_id)
    return list(ids)


def run_experiment(exp_id: str, quick: bool = True) -> ExperimentResult:
    if exp_id not in EXPERIMENTS:
        raise UnknownExperimentError(exp_id)
    return EXPERIMENTS[exp_id](quick)


def run_all(quick: bool = True,
            ids: Sequence[str] = ()) -> List[ExperimentResult]:
    return [run_experiment(k, quick) for k in resolve_ids(ids)]


# -- cell helpers (what scheduler workers call) -----------------------------

def n_cells(exp_id: str, quick: bool) -> int:
    """Cell count of ``exp_id``, or 0 if it has no row decomposition."""
    plan = CELL_PLANS.get(exp_id)
    return plan.n_cells(quick) if plan is not None else 0


def run_cell(exp_id: str, quick: bool, index: int) -> Tuple:
    """Compute one row of a cell-decomposed experiment."""
    return CELL_PLANS[exp_id].run_cell(quick, index)


def finalize_cells(exp_id: str, quick: bool,
                   rows: Sequence[Tuple]) -> ExperimentResult:
    """Assemble computed rows into the experiment's final result."""
    runner = EXPERIMENTS[exp_id]
    cols, rows, notes = runner.raw_fn(quick, list(rows))
    return ExperimentResult(exp_id, runner.title, cols, rows, notes)
