"""WAN-aware communication optimizations (paper §3, abstract claims).

Three optimizations the paper proposes and evaluates:

* **message coalescing** — batch small application messages into large
  wire transfers ("transferring data using large messages");
* **parallel streams** — stripe one logical transfer over several
  connections so more data is in flight per RTT;
* (protocol threshold tuning lives in :mod:`repro.core.adaptive`).
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..mpi.process import MPIProcess, MPIRequest
from ..tcp.socket import Socket

__all__ = ["MessageCoalescer", "striped_send", "coalesced_message_rate"]


class MessageCoalescer:
    """Batches small MPI sends to one destination into large messages.

    The receiver side unpacks with :meth:`expected_messages` /
    :func:`decoalesce`.  Flushing happens when the buffer reaches
    ``threshold`` bytes or on an explicit :meth:`flush`.
    """

    def __init__(self, proc: MPIProcess, dst: int, threshold: int = 65536,
                 tag: int = 7):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.proc = proc
        self.dst = dst
        self.threshold = threshold
        self.tag = tag
        self._buffer: List[Tuple[int, Any]] = []
        self._buffered_bytes = 0
        self.flushes = 0
        self.messages_absorbed = 0
        self._inflight: List[MPIRequest] = []

    def add(self, nbytes: int, payload: Any = None) -> Optional[MPIRequest]:
        """Queue one small message; returns a request when a flush fired."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        self._buffer.append((nbytes, payload))
        self._buffered_bytes += nbytes
        self.messages_absorbed += 1
        if self._buffered_bytes >= self.threshold:
            return self.flush()
        return None

    def flush(self) -> Optional[MPIRequest]:
        """Send everything buffered as one wire message."""
        if not self._buffer:
            return None
        batch, self._buffer = self._buffer, []
        nbytes, self._buffered_bytes = self._buffered_bytes, 0
        self.flushes += 1
        req = self.proc.isend(self.dst, nbytes, self.tag,
                              payload=("coalesced", batch))
        self._inflight.append(req)
        return req

    def drain(self):
        """Generator: flush and wait for all outstanding batches."""
        self.flush()
        if self._inflight:
            yield from self.proc.waitall(self._inflight)
            self._inflight = []


def decoalesce(payload: Any) -> List[Tuple[int, Any]]:
    """Unpack a coalesced batch back into (nbytes, payload) items."""
    if not (isinstance(payload, tuple) and payload
            and payload[0] == "coalesced"):
        raise ValueError("not a coalesced batch")
    return payload[1]


def coalesced_message_rate(sim, proc_a: MPIProcess, proc_b: MPIProcess,
                           msg_bytes: int, count: int,
                           threshold: Optional[int]):
    """Move ``count`` small messages A->B; returns messages/second.

    ``threshold=None`` sends them individually (the baseline);
    otherwise they are coalesced into ``threshold``-byte batches.
    """
    done = {}

    def sender():
        t0 = sim.now
        if threshold is None:
            reqs = [proc_a.isend(proc_b.rank, msg_bytes, 7)
                    for _ in range(count)]
            yield from proc_a.waitall(reqs)
        else:
            co = MessageCoalescer(proc_a, proc_b.rank, threshold)
            for _ in range(count):
                co.add(msg_bytes)
            yield from co.drain()
        # one-byte handshake confirms full delivery
        yield from proc_a.send(proc_b.rank, 1, 8)
        done["t"] = sim.now - t0

    def receiver():
        got = 0
        while got < count:
            req = yield from proc_b.recv(src=proc_a.rank, tag=7)
            if (isinstance(req.data, tuple) and req.data
                    and req.data[0] == "coalesced"):
                got += len(decoalesce(req.data))
            else:
                got += 1
        yield from proc_b.recv(src=proc_a.rank, tag=8)

    sim.process(receiver(), name="coal.rx")
    p = sim.process(sender(), name="coal.tx")
    sim.run(until=p)
    return count / (done["t"] * 1e-6)


def striped_send(sim, sockets: List[Socket], total_bytes: int):
    """Stripe ``total_bytes`` evenly over ``sockets`` (parallel streams).

    Returns per-socket byte counts; completion is observed by the
    receiver (see :func:`repro.ipoib.netperf.run_parallel_stream_bw` for
    the measurement harness).
    """
    if not sockets:
        raise ValueError("need at least one socket")
    share = total_bytes // len(sockets)
    rem = total_bytes - share * len(sockets)
    out = []
    for i, sock in enumerate(sockets):
        nbytes = share + (rem if i == 0 else 0)
        if nbytes:
            sock.send(nbytes)
        out.append(nbytes)
    return out
