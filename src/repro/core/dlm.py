"""Distributed lock manager over network atomics (extension).

The paper's group proposed RDMA-atomic-based distributed locking for
data-centers; the paper's own future work names data-centers over IB
WAN as the next target.  This module combines the two: a spin lock whose
state lives in one node's HCA-addressable memory, acquired with remote
compare-and-swap and released with fetch-and-add — so we can measure
how lock handoff behaves across emulated WAN separations.

The acquire protocol (simplified N-R-A scheme):

* ``cmp_swap(addr, 0 -> my_id)`` — success means the lock was free;
* on failure, back off for one RTT estimate and retry (spin-with-backoff
  rather than a queue, which is enough to expose the WAN cost).
"""

from __future__ import annotations

from typing import Optional

from ..fabric.node import Node
from ..sim import Simulator
from ..verbs.device import VerbsContext
from ..verbs.rc import RCQueuePair, connect_rc_pair

__all__ = ["LockServer", "LockClient"]


class LockServer:
    """Hosts lock words in its HCA's atomic memory."""

    def __init__(self, node: Node):
        self.node = node
        self.sim: Simulator = node.sim
        self.ctx = VerbsContext(node)
        self._next_addr = 0x1000

    def create_lock(self) -> int:
        """Allocate a lock word (0 = free); returns its address."""
        addr = self._next_addr
        self._next_addr += 8
        self.node.hca.atomic_mem[addr] = 0
        return addr

    def holder(self, addr: int) -> int:
        return self.node.hca.atomic_mem.get(addr, 0)


class LockClient:
    """One client with an RC connection to the lock server."""

    def __init__(self, node: Node, server: LockServer, client_id: int,
                 backoff_us: float = 10.0):
        if client_id <= 0:
            raise ValueError("client_id must be positive (0 means free)")
        self.node = node
        self.sim: Simulator = node.sim
        self.client_id = client_id
        self.backoff_us = backoff_us
        self.ctx = VerbsContext(node)
        self.qp: RCQueuePair = self.ctx.create_rc_qp(
            self.ctx.create_cq("dlm.scq"), self.ctx.create_cq("dlm.rcq"))
        server_qp = server.ctx.create_rc_qp(
            server.ctx.create_cq("dlm.s.scq"),
            server.ctx.create_cq("dlm.s.rcq"))
        connect_rc_pair(self.qp, server_qp)
        self.acquires = 0
        self.retries = 0

    def acquire(self, addr: int, max_retries: Optional[int] = None):
        """Generator: spin until the lock at ``addr`` is ours."""
        attempts = 0
        while True:
            self.qp.atomic_cmp_swap(addr, 0, self.client_id)
            wc = yield self.qp.send_cq.wait()
            if wc.payload == 0:  # observed free -> we now hold it
                self.acquires += 1
                return attempts
            attempts += 1
            self.retries += 1
            if max_retries is not None and attempts > max_retries:
                raise TimeoutError(
                    f"client {self.client_id}: lock {addr:#x} still held "
                    f"by {wc.payload} after {attempts} attempts")
            yield self.sim.timeout(self.backoff_us * attempts)

    def release(self, addr: int):
        """Generator: release a lock we hold (CAS my_id -> 0)."""
        self.qp.atomic_cmp_swap(addr, self.client_id, 0)
        wc = yield self.qp.send_cq.wait()
        if wc.payload != self.client_id:
            raise RuntimeError(
                f"client {self.client_id}: released a lock held by "
                f"{wc.payload}")
