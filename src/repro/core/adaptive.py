"""Adaptive MPI protocol tuning (paper §3.4: "mechanisms like adaptive
tuning of MPI protocol ... are likely to yield the best performance").

The tuner probes the path once (small-message RTT and a streaming
bandwidth estimate), then raises the eager/rendezvous threshold so that
every message whose rendezvous handshake would cost more than its
transfer time rides the eager path instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..calibration import KB, MB
from ..fabric.topology import Fabric
from ..mpi.benchmarks import run_osu_bw, run_osu_latency
from ..mpi.tuning import DEFAULT_TUNING, MPITuning
from ..sim import Simulator

__all__ = ["PathEstimate", "probe_path", "recommend_tuning", "auto_tune"]


@dataclass(frozen=True)
class PathEstimate:
    """Measured path characteristics."""

    rtt_us: float
    bandwidth_mbps: float  # MB/s == bytes/µs

    @property
    def bdp_bytes(self) -> float:
        """Bandwidth-delay product of the path."""
        return self.bandwidth_mbps * self.rtt_us


def probe_path(sim: Simulator, fabric: Fabric,
               tuning: MPITuning = DEFAULT_TUNING) -> PathEstimate:
    """One latency ping-pong + one streaming probe across the WAN."""
    lat = run_osu_latency(sim, fabric, size=8, iters=10, tuning=tuning)
    bw = run_osu_bw(sim, fabric, size=256 * KB, window=16, iters=3,
                    tuning=tuning)
    return PathEstimate(rtt_us=2 * lat, bandwidth_mbps=bw)


def recommend_tuning(estimate: PathEstimate,
                     base: MPITuning = DEFAULT_TUNING,
                     floor: int = 8 * KB, ceiling: int = 1 * MB) -> MPITuning:
    """Threshold rule: a message should go rendezvous only once its
    transfer time dwarfs the handshake RTT.  Eager up to ~one RTT's
    worth of wire occupancy (clamped to [floor, ceiling])."""
    if estimate.rtt_us <= 0:
        raise ValueError("rtt must be positive")
    threshold = int(estimate.bandwidth_mbps * estimate.rtt_us)
    threshold = max(floor, min(ceiling, threshold))
    algo = "hierarchical" if estimate.rtt_us > 100.0 else base.bcast_algorithm
    return base.with_overrides(eager_threshold=threshold,
                               bcast_algorithm=algo)


def auto_tune(sim: Simulator, fabric: Fabric,
              base: MPITuning = DEFAULT_TUNING) -> MPITuning:
    """Probe then recommend — the adaptive loop a WAN-aware MPI would run
    at connection setup (and periodically, since WAN links are dynamic)."""
    return recommend_tuning(probe_path(sim, fabric, base), base)
