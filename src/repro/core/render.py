"""Renderers for :class:`~repro.core.registry.ExperimentResult` tables.

The registry stores raw labelled rows; everything about how a table
*looks* lives here, so the same result renders as the CLI's fixed-width
text block, as a Markdown table for EXPERIMENTS.md-style docs, or as a
multi-table report.  Renderers are pure functions of the result — no
wall time, no locale — so rendered output of a deterministic run is
itself reproducible.
"""

from __future__ import annotations

from typing import Iterable, List

__all__ = ["format_value", "render_text", "render_markdown",
           "render_report"]


def format_value(v) -> str:
    """One table cell: floats get 1-2 decimals, everything else str()."""
    if isinstance(v, float):
        return f"{v:.1f}" if abs(v) >= 10 else f"{v:.2f}"
    return str(v)


def _widths(result) -> List[int]:
    return [max(len(str(c)), *(len(format_value(r[i])) for r in result.rows))
            for i, c in enumerate(result.columns)]


def render_text(result) -> str:
    """The fixed-width block the CLI prints (``== id: title ==`` header)."""
    widths = _widths(result)
    lines = [f"== {result.exp_id}: {result.title} =="]
    lines.append("  ".join(str(c).ljust(w)
                           for c, w in zip(result.columns, widths)))
    for row in result.rows:
        lines.append("  ".join(format_value(v).ljust(w)
                               for v, w in zip(row, widths)))
    if result.notes:
        lines.append(f"note: {result.notes}")
    return "\n".join(lines)


def render_markdown(result) -> str:
    """The same table as GitHub-flavoured Markdown."""
    lines = [f"### {result.exp_id} — {result.title}", ""]
    lines.append("| " + " | ".join(str(c) for c in result.columns) + " |")
    lines.append("|" + "|".join("---" for _ in result.columns) + "|")
    for row in result.rows:
        lines.append("| " + " | ".join(format_value(v) for v in row) + " |")
    if result.notes:
        lines += ["", f"*{result.notes}*"]
    return "\n".join(lines)


def render_report(results: Iterable, markdown: bool = False) -> str:
    """All tables joined with blank lines, text or Markdown flavour."""
    render = render_markdown if markdown else render_text
    return "\n\n".join(render(r) for r in results)
