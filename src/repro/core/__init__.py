"""The paper's core: scenarios, WAN-aware optimizations, experiments."""

from .adaptive import PathEstimate, auto_tune, probe_path, recommend_tuning
from .dlm import LockClient, LockServer
from .experiments import (EXPERIMENTS, ExperimentResult, run_all,
                          run_experiment)
from .hierarchical import hierarchical_allreduce, hierarchical_barrier
from .optimizations import MessageCoalescer, coalesced_message_rate, decoalesce, striped_send
from .scenario import Scenario, back_to_back, lan, wan_clusters, wan_pair

__all__ = ["Scenario", "wan_pair", "wan_clusters", "back_to_back", "lan",
           "MessageCoalescer", "decoalesce", "striped_send",
           "coalesced_message_rate", "PathEstimate", "probe_path",
           "recommend_tuning", "auto_tune", "hierarchical_allreduce",
           "hierarchical_barrier", "ExperimentResult", "EXPERIMENTS",
           "run_experiment", "run_all", "LockServer", "LockClient"]
