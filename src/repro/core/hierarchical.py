"""WAN-aware hierarchical collectives.

The paper demonstrates a hierarchical broadcast (§3.4, Fig. 11) and
names collectives over cluster-of-clusters as future work (§5).  This
module provides the broadcast's siblings built on the same principle —
cross the WAN once (per direction), do everything else inside the
clusters:

* :func:`hierarchical_allreduce` — local reduce to a cluster leader,
  leader exchange over the WAN, local broadcast;
* :func:`hierarchical_barrier`  — local barrier, leader handshake,
  local release.

(The hierarchical *broadcast* itself lives in
:func:`repro.mpi.collectives.bcast` with ``algorithm="hierarchical"``.)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..mpi.collectives import _bcast_binomial, _coll_tag, barrier, reduce
from ..mpi.process import MPIProcess

__all__ = ["hierarchical_allreduce", "hierarchical_barrier"]


def _cluster_groups(proc: MPIProcess,
                    ranks: Optional[Sequence[int]]) -> Dict[str, List[int]]:
    ranks = list(ranks) if ranks is not None else list(range(proc.job.size))
    groups: Dict[str, List[int]] = {}
    for r in ranks:
        groups.setdefault(proc.job.cluster_of[r], []).append(r)
    return groups


def hierarchical_allreduce(proc: MPIProcess, size: int,
                           ranks: Optional[Sequence[int]] = None):
    """Allreduce with exactly one WAN crossing per direction per cluster."""
    groups = _cluster_groups(proc, ranks)
    clusters = sorted(groups)
    mine = proc.job.cluster_of[proc.rank]
    local = groups[mine]
    leader = local[0]
    tag = _coll_tag(proc)
    # 1) local reduction to the cluster leader
    if len(local) > 1:
        yield from reduce(proc, size, root=leader, ranks=local)
    # 2) leaders exchange partial results (all-to-all among leaders;
    #    with two clusters this is a single WAN round trip)
    if proc.rank == leader and len(clusters) > 1:
        others = [groups[c][0] for c in clusters if c != mine]
        sreqs = [proc.isend(o, size, tag) for o in others]
        rreqs = [proc.irecv(src=o, tag=tag) for o in others]
        yield from proc.waitall(sreqs + rreqs)
    # 3) local broadcast of the combined result
    if len(local) > 1:
        yield from _bcast_binomial(proc, local, leader, size, None, tag + 1)
    return ("allreduce", size)


def hierarchical_barrier(proc: MPIProcess,
                         ranks: Optional[Sequence[int]] = None):
    """Barrier crossing the WAN once per direction (leader handshake)."""
    groups = _cluster_groups(proc, ranks)
    clusters = sorted(groups)
    mine = proc.job.cluster_of[proc.rank]
    local = groups[mine]
    leader = local[0]
    tag = _coll_tag(proc)
    # gather: everyone checks in with the local leader
    if proc.rank == leader:
        for r in local[1:]:
            yield from proc.recv(src=r, tag=tag)
    else:
        yield from proc.send(leader, 1, tag)
    # leader handshake across the WAN
    if proc.rank == leader and len(clusters) > 1:
        others = [groups[c][0] for c in clusters if c != mine]
        sreqs = [proc.isend(o, 1, tag + 1) for o in others]
        rreqs = [proc.irecv(src=o, tag=tag + 1) for o in others]
        yield from proc.waitall(sreqs + rreqs)
    # release
    if proc.rank == leader:
        reqs = [proc.isend(r, 1, tag + 2) for r in local[1:]]
        if reqs:
            yield from proc.waitall(reqs)
    else:
        yield from proc.recv(src=leader, tag=tag + 2)
