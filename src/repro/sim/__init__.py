"""Discrete-event simulation kernel (time unit: microseconds)."""

from .core import (NORMAL, URGENT, AllOf, AnyOf, Event, Interrupt, Process,
                   ReusableTimeout, SimulationError, Simulator, Timeout)
from .monitor import StatAccumulator, ThroughputMeter, TimeSeries, mbps_from_bytes
from .resources import PriorityStore, Resource, Store
from .rng import RngRegistry

__all__ = [
    "Simulator", "Event", "Timeout", "ReusableTimeout", "Process",
    "Interrupt", "AnyOf", "AllOf", "SimulationError", "NORMAL", "URGENT",
    "Store", "PriorityStore", "Resource",
    "StatAccumulator", "ThroughputMeter", "TimeSeries", "mbps_from_bytes",
    "RngRegistry",
]
