"""Waitable resources for simulation processes.

Three primitives cover every queueing need in the protocol models:

* :class:`Store` — a FIFO buffer of items with optional capacity; ``put``
  blocks when full, ``get`` blocks when empty.  Message queues, NIC rings
  and socket buffers are all Stores.
* :class:`PriorityStore` — a Store that yields the smallest item first
  (items must be orderable); used for out-of-order reassembly.
* :class:`Resource` — a counted semaphore with FIFO grant order; used for
  link arbitration and server thread pools.

All operations return :class:`~repro.sim.core.Event` subclasses so that
processes simply ``yield store.get()``.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, List

from .core import Event, Simulator

__all__ = ["Store", "PriorityStore", "Resource", "StorePut", "StoreGet",
           "ResourceRequest"]


class StorePut(Event):
    """Pending put; succeeds (value=None) once the item is buffered."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.sim)
        self.item = item
        # Common case inlined: room available and no queued putters ahead
        # of us.  Succeed-order is identical to the generic loop — the
        # put succeeds first, then any getter it unblocks.
        if not store._put_waiters and len(store._items) < store.capacity:
            store._do_put(item)
            self.succeed()
            if store._get_waiters:
                store._dispatch()
        else:
            store._put_waiters.append(self)
            store._dispatch()


class StoreGet(Event):
    """Pending get; succeeds with the retrieved item."""

    __slots__ = ()

    def __init__(self, store: "Store"):
        super().__init__(store.sim)
        # Common case inlined: an item is ready and nobody queued ahead.
        # Order matches the generic loop — when the store sits at
        # capacity with blocked putters, the getter still succeeds first
        # and the freed slot then unblocks the head putter.
        if not store._get_waiters and store._items:
            self.succeed(store._do_get())
            if store._put_waiters:
                store._dispatch()
        else:
            store._get_waiters.append(self)
            store._dispatch()


class Store:
    """FIFO item buffer with optional capacity."""

    def __init__(self, sim: Simulator, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self._items = self._make_items()
        self._put_waiters: List[StorePut] = []
        self._get_waiters: List[StoreGet] = []

    def _make_items(self):
        """FIFO stores keep a deque so ``get`` pops the head in O(1);
        :class:`PriorityStore` overrides this with a list for ``heapq``."""
        return deque()

    # -- public api -----------------------------------------------------
    def put(self, item: Any) -> StorePut:
        return StorePut(self, item)

    def get(self) -> StoreGet:
        return StoreGet(self)

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the store is full."""
        if len(self._items) >= self.capacity and not self._get_waiters:
            return False
        self.put(item)
        return True

    @property
    def items(self):
        """The buffered items (a deque for FIFO stores, a heap list for
        :class:`PriorityStore`)."""
        return self._items

    def __len__(self) -> int:
        return len(self._items)

    # -- storage policy (overridden by PriorityStore) --------------------
    def _do_put(self, item: Any) -> None:
        self._items.append(item)

    def _do_get(self) -> Any:
        return self._items.popleft()

    # -- matching -------------------------------------------------------
    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._put_waiters and len(self._items) < self.capacity:
                putter = self._put_waiters.pop(0)
                self._do_put(putter.item)
                putter.succeed()
                progress = True
            while self._get_waiters and self._items:
                getter = self._get_waiters.pop(0)
                getter.succeed(self._do_get())
                progress = True


class PriorityStore(Store):
    """A Store that always yields its smallest item (heap order)."""

    def _make_items(self):
        return []

    def _do_put(self, item: Any) -> None:
        heapq.heappush(self._items, item)

    def _do_get(self) -> Any:
        return heapq.heappop(self._items)


class ResourceRequest(Event):
    """Pending acquisition of one resource slot.

    Usable as a context manager inside a process::

        with res.request() as req:
            yield req
            ... hold the resource ...
        # released on exit
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource
        resource._waiters.append(self)
        resource._dispatch()

    def __enter__(self) -> "ResourceRequest":
        return self

    def __exit__(self, *exc) -> None:
        self.resource.release(self)


class Resource:
    """Counted semaphore with FIFO grant order."""

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._users: List[ResourceRequest] = []
        self._waiters: List[ResourceRequest] = []

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> ResourceRequest:
        return ResourceRequest(self)

    def release(self, request: ResourceRequest) -> None:
        """Release a held (or still-queued) request.  Idempotent."""
        if request in self._users:
            self._users.remove(request)
            self._dispatch()
        elif request in self._waiters:
            self._waiters.remove(request)

    def _dispatch(self) -> None:
        while self._waiters and len(self._users) < self.capacity:
            req = self._waiters.pop(0)
            self._users.append(req)
            req.succeed()
