"""Discrete-event simulation kernel.

This is the substrate every protocol model in :mod:`repro` runs on.  The
design follows the classic event-list / process-interaction style (the
same model SimPy uses): a :class:`Simulator` owns a priority queue of
:class:`Event` objects ordered by ``(time, priority, sequence)``, and a
:class:`Process` wraps a Python generator that advances by yielding
events.  Time is a ``float`` in **microseconds** throughout the project;
the unit is a convention, nothing in the kernel depends on it.

The kernel is deliberately small and dependency-free: the correctness of
every figure in the paper reproduction rests on the ordering guarantees
documented here, which the test-suite pins down:

* events scheduled for the same instant fire in ``(priority, sequence)``
  order — i.e. FIFO among equal priorities;
* a process resumes in the same event-loop step its awaited event is
  processed, before any later-scheduled event;
* failures propagate into the waiting process as raised exceptions, and
  un-waited failures surface from :meth:`Simulator.run`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "ReusableTimeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "URGENT",
    "NORMAL",
    "SimulationError",
]

#: Scheduling priority for interrupts and other must-run-first events.
URGENT = 0
#: Default scheduling priority.
NORMAL = 1

_PENDING = object()

#: Sentinel distinguishing "no argument" from an explicit ``None`` in
#: :meth:`Simulator.call_at`; a callback scheduled without ``arg`` is
#: invoked as ``fn()``.
_NO_ARG = object()

#: Filled in by :mod:`repro.obs.metrics` when the observability layer is
#: imported: a zero-arg callable returning the process-wide default
#: ``MetricsRegistry`` (or ``None``).  The kernel itself never imports
#: the obs layer, so simulations that never touch metrics pay nothing.
default_metrics_provider: Optional[Callable[[], Any]] = None


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupting cause is available as :attr:`cause`.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *pending*, becomes *triggered* once given a value (or
    failure) and scheduled, and *processed* after its callbacks have run.
    Processes wait on events by ``yield``-ing them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused", "_scheduled")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._defused: bool = False
        self._scheduled: bool = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is on the event queue."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful if triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("value of untriggered event is undefined")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0,
                priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``.

        ``delay`` schedules processing that far in the future (used by
        :class:`Timeout`); events may only be triggered once.
        """
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay=delay, priority=priority)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0,
             priority: int = NORMAL) -> "Event":
        """Trigger the event as failed with exception ``exc``."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"{exc!r} is not an exception")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exc
        self.sim._schedule(self, delay=delay, priority=priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another (triggered) event."""
        if event._value is _PENDING:
            raise SimulationError(
                f"cannot trigger {self!r} from {event!r}: the source "
                f"event has not been triggered yet")
        if event._ok:
            self.succeed(event._value)
        else:
            self._defused = True
            self.fail(event._value)

    def __repr__(self) -> str:
        state = ("processed" if self.processed
                 else "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated microseconds from *now*."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(sim)
        self.succeed(value, delay=delay)


class ReusableTimeout(Event):
    """A timeout event its owner re-arms instead of reallocating.

    Generator pumps that sleep at most once per loop iteration (link
    serialization, HCA send overhead, retransmit timers) previously
    built a fresh :class:`Timeout` — one object plus one callback list —
    per frame.  A ``ReusableTimeout`` is created once per pump and
    re-armed after each trip through the event loop::

        t = ReusableTimeout(sim)
        while True:
            ...
            yield t.arm(serialization_us)

    Scheduling behaviour is *identical* to ``Timeout`` (same heap entry,
    same sequence-number consumption point), so swapping one in cannot
    move an event trace.  The owner must guarantee a single outstanding
    arm at a time; :meth:`arm` raises if the previous one is still
    pending.
    """

    __slots__ = ()

    def arm(self, delay: float, value: Any = None) -> "ReusableTimeout":
        """(Re-)schedule this timeout ``delay`` from now; returns self."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        if self._value is not _PENDING and self.callbacks is not None:
            raise SimulationError(f"{self!r} re-armed while still pending")
        self.callbacks = []
        self._value = value
        self._ok = True
        self._scheduled = True
        sim = self.sim
        heapq.heappush(sim._queue,
                       (sim._now + delay, NORMAL, next(sim._seq), self))
        return self


class _Callback:
    """A bare scheduled callable — the zero-allocation fast path.

    Rides the same ``(time, priority, seq)`` heap as :class:`Event`
    entries, so interleaving with events is exactly the FIFO-among-equal
    -priorities order the kernel guarantees; but dispatch is a direct
    call, with no callback list, no defused-failure bookkeeping and no
    per-occurrence ``Event`` allocation.  Nothing can wait on one —
    processes still yield events; callbacks are for fire-and-forget
    work (frame delivery, switch forwarding, completion delivery).
    """

    __slots__ = ("fn", "arg", "active", "recycle")

    def __init__(self, fn: Callable, arg: Any):
        self.fn = fn
        self.arg = arg
        self.active = True
        #: Freelist flag: set on non-cancellable callbacks, whose record
        #: goes back to the simulator's pool right after dispatch (no
        #: caller holds a handle that could cancel a recycled record).
        self.recycle = False

    def cancel(self) -> None:
        """Deactivate: the heap entry stays but dispatch is a no-op.

        This is the cheap timer-cancel used by retransmit/RPC timers —
        O(1), no heap surgery; the inert entry is popped and discarded
        at its original deadline.
        """
        self.active = False

    def __repr__(self) -> str:
        state = "active" if self.active else "cancelled"
        return f"<_Callback {state} {self.fn!r} at {id(self):#x}>"


class Process(Event):
    """A simulation process wrapping a generator.

    The process is itself an event that triggers when the generator
    returns (value = return value) or raises (failure).  Other processes
    may therefore ``yield proc`` to join it.
    """

    __slots__ = ("_generator", "_target", "name", "_m_resumes")

    def __init__(self, sim: "Simulator",
                 generator: Generator[Event, Any, Any],
                 name: Optional[str] = None):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        self._m_resumes = (
            sim.metrics.counter("sim", "process_resumes", process=self.name)
            if sim.metrics is not None else None)
        # Kick off at the current instant.
        init = Event(sim)
        init.callbacks.append(self._resume)
        init.succeed(None, priority=URGENT)

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        if self._generator is self.sim._active_gen:
            raise SimulationError("a process cannot interrupt itself")
        evt = Event(self.sim)
        evt.callbacks.append(self._resume_interrupt)
        evt.fail(Interrupt(cause), priority=URGENT)

    # -- internal ------------------------------------------------------
    def _resume_interrupt(self, event: Event) -> None:
        if not self.is_alive:  # raced with normal termination
            event._defused = True
            return
        # Detach from whatever we were waiting on.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self._resume(event)

    def _resume(self, event: Event) -> None:
        if self._m_resumes is not None:
            self._m_resumes.inc()
        self.sim._active_proc = self
        self.sim._active_gen = self._generator
        try:
            while True:
                try:
                    if event._ok:
                        target = self._generator.send(event._value)
                    else:
                        event._defused = True
                        target = self._generator.throw(event._value)
                except StopIteration as stop:
                    self._target = None
                    self.succeed(stop.value, priority=URGENT)
                    return
                except BaseException as exc:
                    self._target = None
                    self.fail(exc, priority=URGENT)
                    return

                if not isinstance(target, Event):
                    exc = TypeError(
                        f"process {self.name!r} yielded non-event {target!r}")
                    event = Event(self.sim)
                    event._ok = False
                    event._value = exc
                    continue
                if target.sim is not self.sim:
                    exc = SimulationError(
                        f"process {self.name!r} yielded event from a "
                        f"different simulator")
                    event = Event(self.sim)
                    event._ok = False
                    event._value = exc
                    continue

                if target.processed:
                    # Already done: resume synchronously with its value.
                    event = target
                    continue
                target.callbacks.append(self._resume)
                self._target = target
                return
        finally:
            self.sim._active_proc = None
            self.sim._active_gen = None


class _Condition(Event):
    """Base for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("_events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._count = 0
        for evt in self._events:
            if evt.sim is not sim:
                raise SimulationError("condition mixes simulators")
        for evt in self._events:
            if evt.processed:
                self._check(evt)
            else:
                evt.callbacks.append(self._check)
        if not self._events and not self.triggered:
            self.succeed({})

    def _matched(self, count: int) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._matched(self._count):
            self.succeed(self._collect())

    def _collect(self) -> dict:
        return {evt: evt._value
                for evt in self._events if evt.processed and evt._ok}


class AnyOf(_Condition):
    """Triggers when the first of ``events`` succeeds (fails on first failure)."""

    __slots__ = ()

    def _matched(self, count: int) -> bool:
        return count >= 1


class AllOf(_Condition):
    """Triggers when all of ``events`` have succeeded."""

    __slots__ = ()

    def _matched(self, count: int) -> bool:
        return count >= len(self._events)


class Simulator:
    """Event loop: owns simulated time and the pending-event queue."""

    def __init__(self, metrics: Any = None):
        self._now: float = 0.0
        self._queue: list = []
        self._seq = itertools.count()
        self._active_proc: Optional[Process] = None
        self._active_gen = None
        self._event_count = 0
        #: Analytic completions scheduled by flow mode (see
        #: :meth:`schedule_flow_completion`); packet-mode purity tests
        #: assert this stays zero.
        self.flow_events = 0
        #: Freelist of dispatched non-cancellable ``_Callback`` records.
        self._cb_pool: list = []
        #: Optional ``repro.obs.MetricsRegistry`` observing this run.
        self.metrics: Any = None
        self._m_events = None
        self._m_qdepth = None
        if metrics is None and default_metrics_provider is not None:
            metrics = default_metrics_provider()
        if metrics is not None:
            self.attach_metrics(metrics)

    def attach_metrics(self, registry: Any) -> None:
        """Observe this simulator with ``registry``.

        Must be called before the components whose activity should be
        recorded are constructed — instrumented objects cache their
        metric handles (or ``None``) at ``__init__`` time.
        """
        self.metrics = registry
        self._m_events = registry.counter("sim", "events_processed")
        self._m_qdepth = registry.gauge("sim", "queue_depth")

    # -- clock ----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_proc

    @property
    def event_count(self) -> int:
        """Total number of events processed so far (diagnostic)."""
        return self._event_count

    # -- factories ------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling -----------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = NORMAL) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} already scheduled")
        event._scheduled = True
        heapq.heappush(self._queue,
                       (self._now + delay, priority, next(self._seq), event))

    def call_at(self, delay: float, fn: Callable, arg: Any = _NO_ARG,
                priority: int = NORMAL,
                cancellable: bool = True) -> Optional[_Callback]:
        """Schedule a bare callable ``delay`` from now (fast path).

        The callback shares the event heap's ``(time, priority, seq)``
        ordering — it fires exactly where an ``Event`` scheduled at the
        same instant would — but costs one slotted record instead of an
        ``Event`` plus callback list plus closure, and dispatches as a
        direct call.  With ``arg`` given the callable is invoked as
        ``fn(arg)``, otherwise as ``fn()``.  The returned record's
        :meth:`~_Callback.cancel` makes the dispatch a no-op (cheap
        retransmit-timer cancellation).

        ``cancellable=False`` declares fire-and-forget use: no handle is
        returned, and the record is recycled through a freelist after
        dispatch, so steady-state per-packet scheduling allocates only
        the heap tuple.  Pass it at every hot site that never cancels.

        Nothing can *wait* on a callback: processes yield events.  Use
        ``call_at`` only for fire-and-forget work.
        """
        if cancellable:
            cb = _Callback(fn, arg)
        else:
            pool = self._cb_pool
            if pool:
                cb = pool.pop()
                cb.fn = fn
                cb.arg = arg
            else:
                cb = _Callback(fn, arg)
                cb.recycle = True
        heapq.heappush(self._queue,
                       (self._now + delay, priority, next(self._seq), cb))
        return cb if cancellable else None

    def call_soon(self, fn: Callable, arg: Any = _NO_ARG,
                  priority: int = NORMAL,
                  cancellable: bool = True) -> Optional[_Callback]:
        """:meth:`call_at` with zero delay — runs after pending events
        already scheduled for the current instant."""
        return self.call_at(0.0, fn, arg, priority, cancellable)

    def schedule_flow_completion(self, delay: float, fn: Callable,
                                 arg: Any = _NO_ARG) -> None:
        """Schedule an analytically computed flow-mode completion.

        The hybrid dispatch hook: :mod:`repro.flow` collapses a proved
        steady state into one of these instead of simulating its
        packets.  Semantically a fire-and-forget :meth:`call_at` on the
        freelist fast path; counted separately in :attr:`flow_events`
        so packet-fidelity invariants (``--faults``/``--metrics`` runs,
        the equivalence wall's packet side) can assert none fired.
        """
        self.flow_events += 1
        self.call_at(delay, fn, arg, cancellable=False)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (or scheduled callback)."""
        if not self._queue:
            raise SimulationError("step() on empty event queue")
        t, _, _, event = heapq.heappop(self._queue)
        if t < self._now:  # pragma: no cover - defensive
            raise SimulationError("event scheduled in the past")
        self._now = t
        self._event_count += 1
        if self._m_events is not None:
            self._m_events.inc()
            self._m_qdepth.set(len(self._queue))
        if event.__class__ is _Callback:
            if event.active:
                arg = event.arg
                if arg is _NO_ARG:
                    event.fn()
                else:
                    event.fn(arg)
            if event.recycle and len(self._cb_pool) < 1024:
                self._cb_pool.append(event)
            return
        callbacks, event.callbacks = event.callbacks, None
        for cb in callbacks:
            cb(event)
        if not event._ok and not event._defused:
            raise event._value

    def _dispatch_until(self, stop: Callable[[], bool]) -> None:
        """No-metrics fast loop: :meth:`step` with the per-event metric
        branches, defensive checks and method-call overhead hoisted out.
        Runs until the queue drains or ``stop()`` goes true."""
        queue = self._queue
        pop = heapq.heappop
        no_arg = _NO_ARG
        cb_cls = _Callback
        pool = self._cb_pool
        count = 0
        try:
            while queue:
                if stop():
                    return
                t, _, _, event = pop(queue)
                self._now = t
                count += 1
                if event.__class__ is cb_cls:
                    if event.active:
                        arg = event.arg
                        if arg is no_arg:
                            event.fn()
                        else:
                            event.fn(arg)
                    if event.recycle and len(pool) < 1024:
                        pool.append(event)
                    continue
                callbacks, event.callbacks = event.callbacks, None
                for cb in callbacks:
                    cb(event)
                if not event._ok and not event._defused:
                    raise event._value
        finally:
            self._event_count += count

    def _dispatch_until_time(self, limit: float) -> None:
        """:meth:`_dispatch_until` specialised for a numeric horizon: the
        stop predicate is inlined (``queue[0][0] >= limit``), saving a
        Python-level call per dispatched event on the hottest entry point
        (``run(until=<number>)``, which every figure sweep drives)."""
        queue = self._queue
        pop = heapq.heappop
        no_arg = _NO_ARG
        cb_cls = _Callback
        pool = self._cb_pool
        count = 0
        try:
            while queue:
                item = queue[0]
                if item[0] >= limit:
                    return
                t, _, _, event = pop(queue)
                self._now = t
                count += 1
                if event.__class__ is cb_cls:
                    if event.active:
                        arg = event.arg
                        if arg is no_arg:
                            event.fn()
                        else:
                            event.fn(arg)
                    if event.recycle and len(pool) < 1024:
                        pool.append(event)
                    continue
                callbacks, event.callbacks = event.callbacks, None
                for cb in callbacks:
                    cb(event)
                if not event._ok and not event._defused:
                    raise event._value
        finally:
            self._event_count += count

    def _run_all_fast(self) -> None:
        """Drain the queue with no stop condition (the hottest loop)."""
        queue = self._queue
        pop = heapq.heappop
        no_arg = _NO_ARG
        cb_cls = _Callback
        pool = self._cb_pool
        count = 0
        try:
            while queue:
                t, _, _, event = pop(queue)
                self._now = t
                count += 1
                if event.__class__ is cb_cls:
                    if event.active:
                        arg = event.arg
                        if arg is no_arg:
                            event.fn()
                        else:
                            event.fn(arg)
                    if event.recycle and len(pool) < 1024:
                        pool.append(event)
                    continue
                callbacks, event.callbacks = event.callbacks, None
                for cb in callbacks:
                    cb(event)
                if not event._ok and not event._defused:
                    raise event._value
        finally:
            self._event_count += count

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to exhaustion), a number (run
        until simulated time reaches it), or an :class:`Event` (run
        until that event is processed; returns its value / raises its
        failure).

        Numeric ``until`` semantics are **strict**: events scheduled for
        exactly ``until`` do *not* run — the loop processes events with
        ``time < until``, then sets the clock to ``until`` and returns,
        leaving boundary events pending for the next ``run()`` call.
        The regression tests pin this, so rely on it.

        The loop body is selected once here: with no metrics registry
        attached the no-branch fast loop runs; an instrumented run goes
        through :meth:`step` so every event updates the counters.
        """
        fast = self._m_events is None
        if until is None:
            if fast:
                self._run_all_fast()
            else:
                while self._queue:
                    self.step()
            return None
        if isinstance(until, Event):
            if until.processed:
                if until._ok:
                    return until._value
                raise until._value
            sentinel: list = []
            until.callbacks.append(lambda e: sentinel.append(e))
            if fast:
                self._dispatch_until(sentinel.__len__)
            else:
                while self._queue and not sentinel:
                    self.step()
            if not sentinel:
                raise SimulationError(
                    "event queue empty before awaited event triggered")
            if until._ok:
                return until._value
            until._defused = True
            raise until._value
        limit = float(until)
        if limit < self._now:
            raise ValueError(f"until={limit} is in the past (now={self._now})")
        queue = self._queue
        if fast:
            self._dispatch_until_time(limit)
        else:
            while queue and queue[0][0] < limit:
                self.step()
        self._now = limit
        return None
