"""Deterministic random-number streams.

Every stochastic element (fault injection, jittered links, randomized
workloads) draws from a named child stream of one master seed, so runs
are exactly reproducible and adding a new consumer never perturbs the
draws of existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry"]


class RngRegistry:
    """Named, independently-seeded ``random.Random`` streams."""

    def __init__(self, master_seed: int = 0x1B):
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name`` (created on first use).

        The child seed is derived by hashing ``(master_seed, name)``, so
        streams are stable across runs and independent of creation order.
        """
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def reseed(self, master_seed: int) -> None:
        """Restart every stream from a new master seed."""
        self.master_seed = master_seed
        self._streams.clear()
