"""Measurement helpers: accumulators and time-series recorders.

The benchmark harness never reads protocol internals; it records
observable quantities (bytes delivered, completion times) through these
helpers, mirroring how perftest / OMB / IOzone measure the real systems.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

__all__ = ["StatAccumulator", "ThroughputMeter", "TimeSeries",
           "mbps_from_bytes"]


def mbps_from_bytes(nbytes: float, elapsed_us: float) -> float:
    """Throughput in MillionBytes/sec (the paper's unit) from bytes and µs.

    1 MillionBytes/sec == 1 byte/µs, so this is simply ``nbytes / µs``.
    """
    if elapsed_us <= 0:
        raise ValueError(f"elapsed_us must be positive, got {elapsed_us}")
    return nbytes / elapsed_us


class StatAccumulator:
    """Streaming min/max/mean/variance (Welford) accumulator."""

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        return self._mean if self.n else math.nan

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)


class ThroughputMeter:
    """Counts delivered bytes/messages between ``start()`` and ``stop()``."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self.bytes = 0
        self.messages = 0
        self._t0: Optional[float] = None
        self._t1: Optional[float] = None

    def start(self) -> None:
        self._t0 = self.sim.now
        self.bytes = 0
        self.messages = 0

    def account(self, nbytes: int) -> None:
        self.bytes += nbytes
        self.messages += 1

    def stop(self) -> None:
        self._t1 = self.sim.now

    @property
    def elapsed_us(self) -> float:
        if self._t0 is None:
            raise RuntimeError("meter was never started")
        t1 = self._t1 if self._t1 is not None else self.sim.now
        return t1 - self._t0

    @property
    def mbps(self) -> float:
        """MillionBytes/sec over the measured interval."""
        return mbps_from_bytes(self.bytes, self.elapsed_us)

    @property
    def msg_rate(self) -> float:
        """Messages per second over the measured interval."""
        return self.messages / (self.elapsed_us * 1e-6)


class TimeSeries:
    """Records (time, value) samples; used for traces and debugging."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self.samples: List[Tuple[float, float]] = []

    def record(self, value: float) -> None:
        self.samples.append((self.sim.now, value))

    def values(self) -> List[float]:
        return [v for _, v in self.samples]

    def __len__(self) -> int:
        return len(self.samples)
