"""Pre-fast-path dispatch shims — the benchmarking/equivalence harness.

The kernel fast path (``Simulator.call_at`` callback records, re-armed
timeouts, the link pump's direct-continue inner loop) is proved
ordering-equivalent to the original allocate-an-``Event``-per-occurrence
dispatch by *running both*: :func:`legacy_dispatch` swaps the fast
entry points for implementations with the exact pre-fast-path cost
profile (one ``Event`` + callback list + closure per occurrence, one
``Timeout`` per sleep, one generator resume per pump iteration), so

* ``tools/bench_kernel.py`` measures honest before/after numbers on the
  same source tree, and
* ``tests/test_kernel_fastpath.py`` asserts a busy multi-hop workload
  produces identical event counts, clocks and bandwidths either way.

Nothing in the simulator itself consults this module; it is patch-in,
patch-out, and safe to nest with ordinary runs.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable

from .core import (_NO_ARG, NORMAL, Event, ReusableTimeout, Simulator,
                   Timeout)

__all__ = ["legacy_dispatch"]


class _LegacyHandle:
    """Stand-in for ``_Callback``'s cancel support in legacy mode."""

    __slots__ = ("active",)

    def __init__(self):
        self.active = True

    def cancel(self) -> None:
        self.active = False


def _legacy_call_at(self: Simulator, delay: float, fn: Callable,
                    arg: Any = _NO_ARG, priority: int = NORMAL,
                    cancellable: bool = True):
    """What every migrated hot site used to do: Event + list + closure."""
    evt = Event(self)
    handle = _LegacyHandle()
    if arg is _NO_ARG:
        evt.callbacks.append(lambda _e: fn() if handle.active else None)
    else:
        evt.callbacks.append(lambda _e: fn(arg) if handle.active else None)
    evt.succeed(None, delay=delay, priority=priority)
    return handle if cancellable else None


def _legacy_arm(self: ReusableTimeout, delay: float, value: Any = None):
    """One fresh :class:`Timeout` per sleep, as before the freelist."""
    return Timeout(self.sim, delay, value)


def _legacy_run(self: Simulator, until: Any = None) -> Any:
    """The pre-fast-path ``run``: one ``step()`` method call per event,
    no hoisted dispatch loop, no mode selection at entry."""
    if until is None:
        while self._queue:
            self.step()
        return None
    if isinstance(until, Event):
        if until.processed:
            if until._ok:
                return until._value
            raise until._value
        sentinel: list = []
        until.callbacks.append(lambda e: sentinel.append(e))
        while self._queue and not sentinel:
            self.step()
        if not sentinel:
            from .core import SimulationError
            raise SimulationError(
                "event queue empty before awaited event triggered")
        if until._ok:
            return until._value
        until._defused = True
        raise until._value
    limit = float(until)
    if limit < self._now:
        raise ValueError(f"until={limit} is in the past (now={self._now})")
    while self._queue and self._queue[0][0] < limit:
        self.step()
    self._now = limit
    return None


@contextmanager
def legacy_dispatch():
    """Scope in which the kernel fast paths behave like the original
    allocation-per-event dispatch (see module docstring)."""
    from ..fabric import link as _link
    from ..verbs import rc as _rc
    from ..verbs import ud as _ud
    from ..wan import longbow as _longbow

    saved = (Simulator.call_at, ReusableTimeout.arm, Simulator.run,
             _link._FAST_PUMP, _longbow._FAST_PUMP,
             _rc._FAST_PUMP, _ud._FAST_PUMP)
    Simulator.call_at = _legacy_call_at
    ReusableTimeout.arm = _legacy_arm
    Simulator.run = _legacy_run
    _link._FAST_PUMP = False
    _longbow._FAST_PUMP = False
    _rc._FAST_PUMP = False
    _ud._FAST_PUMP = False
    try:
        yield
    finally:
        (Simulator.call_at, ReusableTimeout.arm, Simulator.run,
         _link._FAST_PUMP, _longbow._FAST_PUMP,
         _rc._FAST_PUMP, _ud._FAST_PUMP) = saved
