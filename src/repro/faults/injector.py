"""Per-link fault injector driven by a :class:`~repro.faults.plan.FaultPlan`.

One injector serves both directions of a link (each
:class:`~repro.fabric.link._HalfLink` keeps independent Gilbert–Elliott
state, but shares the plan's single seeded RNG stream, so a fixed seed
reproduces the exact same drop pattern run after run).

Zero-overhead contract: with no plan applied, ``half.faults`` stays
``None`` and the link pump takes the exact pre-fault path — no extra
events, RNG draws or metric series — which is what keeps the golden
traces and cached experiment bytes byte-identical.  Flap windows and
delay spikes are pure functions of the current simulation time (no
timers are scheduled for them), and fault metrics are registered here,
at apply time, never at component construction.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["LinkFaultInjector"]


class LinkFaultInjector:
    """Armed fault state for one link (both directions)."""

    def __init__(self, plan, link, rng):
        self.plan = plan
        self.link = link
        self.rng = rng
        self.windows = tuple((f.at_us, f.at_us + f.down_us)
                             for f in plan.flaps)
        self.spikes = tuple((s.at_us, s.at_us + s.duration_us, s.extra_us)
                            for s in plan.spikes)
        self.drops_loss = 0
        self.drops_flap = 0
        self._bad: Dict[str, bool] = {}
        m = getattr(link.sim, "metrics", None)
        if m is not None:
            self._m_drop_loss = m.counter("faults", "frames_dropped",
                                          link=link.name, cause="loss")
            self._m_drop_flap = m.counter("faults", "frames_dropped",
                                          link=link.name, cause="flap")
            if self.windows:
                m.counter("faults", "flap_windows",
                          link=link.name).inc(len(self.windows))
                m.counter("faults", "link_down_us", link=link.name).inc(
                    sum(end - start for start, end in self.windows))
        else:
            self._m_drop_loss = self._m_drop_flap = None
        for half in (link._ab, link._ba):
            half.faults = self
            self._bad[half.name] = False

    # -- flaps -----------------------------------------------------------
    def is_down(self, now: float) -> bool:
        for start, end in self.windows:
            if start <= now < end:
                return True
            if start > now:
                break  # windows are sorted by start time
        return False

    def count_flap_drop(self) -> None:
        self.drops_flap += 1
        if self._m_drop_flap is not None:
            self._m_drop_flap.inc()

    # -- loss ------------------------------------------------------------
    def should_drop(self, half_name: str) -> bool:
        """Advance the GE chain one frame for this direction; drop?"""
        ge = self.plan.loss
        if ge is None:
            return False
        rng = self.rng
        bad = self._bad[half_name]
        if ge.is_bursty:
            if bad:
                if rng.random() < ge.p_bad_to_good:
                    bad = False
            elif rng.random() < ge.p_good_to_bad:
                bad = True
            self._bad[half_name] = bad
        p = ge.loss_bad if bad else ge.loss_good
        if p and rng.random() < p:
            self.drops_loss += 1
            if self._m_drop_loss is not None:
                self._m_drop_loss.inc()
            return True
        return False

    # -- delay -----------------------------------------------------------
    def extra_delay(self, now: float) -> float:
        extra = 0.0
        for start, end, amount in self.spikes:
            if start <= now < end:
                extra += amount
        if self.plan.jitter_us:
            extra += self.rng.uniform(0.0, self.plan.jitter_us)
        return extra

    @property
    def frames_dropped(self) -> int:
        return self.drops_loss + self.drops_flap
