"""repro.faults — deterministic, seeded WAN fault injection.

The declarative entry point is :class:`FaultPlan` (see
:mod:`repro.faults.plan` for the ``--faults`` spec grammar):

    >>> from repro.faults import FaultPlan
    >>> plan = FaultPlan.parse("burst=0.4/0.05/0.3,flap@20000:5000,seed=7")
    >>> injector = plan.apply(fabric)          # arms the WAN link

Goodput-under-fault workload runners (RC with auto-reconnect, paced UD,
IPoIB/TCP with retransmission, NFS with RPC retries) live in
:mod:`repro.faults.workloads`; it is not imported eagerly so that the
cache/scheduler can use the plan machinery without dragging every
protocol stack in.
"""

from .context import activated, get_active_spec, set_active_spec
from .injector import LinkFaultInjector
from .plan import DelaySpike, FaultPlan, GilbertElliott, LinkFlap

__all__ = ["FaultPlan", "GilbertElliott", "LinkFlap", "DelaySpike",
           "LinkFaultInjector", "get_active_spec", "set_active_spec",
           "activated"]
