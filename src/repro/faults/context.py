"""Process-wide active fault-plan spec.

The CLI (``--faults SPEC``) and the experiment scheduler set the active
spec here; fault-aware experiments read it to override their built-in
plans, and :class:`repro.exp.cache.ResultCache` folds it into cache
keys **only when set**, so clean-run cache entries keep their exact
pre-fault keys.

This module is import-light on purpose (no simulator dependencies): the
cache and scheduler can import it without pulling the whole fault
machinery in.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = ["get_active_spec", "set_active_spec", "activated"]

_active_spec: Optional[str] = None


def get_active_spec() -> Optional[str]:
    """The fault spec string currently in force, or ``None``."""
    return _active_spec


def set_active_spec(spec: Optional[str]) -> Optional[str]:
    """Install ``spec`` (empty/None clears it); returns the previous one."""
    global _active_spec
    previous = _active_spec
    _active_spec = spec or None
    return previous


@contextmanager
def activated(spec: Optional[str]) -> Iterator[None]:
    """Scope with ``spec`` active; restores the previous spec on exit."""
    previous = set_active_spec(spec)
    try:
        yield
    finally:
        set_active_spec(previous)
