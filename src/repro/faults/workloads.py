"""Goodput-under-faults workloads (the fault experiment family's engine).

Each runner builds a fresh two-cluster WAN fabric, arms an optional
:class:`~repro.faults.plan.FaultPlan` on the WAN link, drives one
protocol for a fixed horizon (or fixed transfer) and returns a stats
dict.  They exercise the recovery path of every layer:

* **verbs RC** — retry-budget exhaustion drives the QP into the error
  state; a supervisor process reconnects the pair and refills the send
  pipeline (the application-level APM/CM analogue);
* **verbs UD** — no transport recovery at all: lost datagrams are simply
  gone, so goodput tracks ``offered * (1 - loss)`` independent of delay;
* **TCP/IPoIB** — the socket's RTO / fast-retransmit machinery
  (self-enabled on fault-armed fabrics) carries a fixed transfer to
  completion;
* **NFS** — RPC-level timeouts retransmit under the same xid, the
  server's duplicate-request cache absorbs replays, and the RDMA
  transport reconnects its RC QPs after errors.

This module deliberately avoids importing :mod:`repro.core` so the
``faults`` package stays import-light (``core.experiments`` imports us).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..calibration import DEFAULT_PROFILE, KB, MB, HardwareProfile
from ..fabric.topology import build_cluster_of_clusters
from ..ipoib.netperf import run_stream_bw
from ..nfs.iozone import run_iozone_read
from ..sim import Simulator
from ..verbs.device import create_connected_rc_pair, create_ud_pair
from ..verbs.ops import RecvWR
from ..verbs.qp import QPState
from ..verbs.rc import reconnect_rc_pair
from .plan import FaultPlan

__all__ = ["fault_profile", "run_rc_goodput", "run_ud_goodput",
           "run_tcp_goodput", "run_nfs_goodput"]

_HUGE = 1 << 40


def fault_profile(delay_us: float,
                  profile: HardwareProfile = DEFAULT_PROFILE,
                  ) -> HardwareProfile:
    """Profile tuned for fault runs: an RC retransmission timeout that
    scales with the WAN RTT (the production 500 ms default would eat the
    whole measurement horizon) and a small retry budget so loss bursts
    actually exhaust it."""
    rto = max(8.0 * delay_us + 500.0, 1000.0)
    return profile.with_overrides(rc_retransmit_timeout_us=rto,
                                  rc_retry_count=5)


def _wan_stats(fabric) -> Dict[str, float]:
    link = fabric.wan.wan_link
    return {"wan_frames_dropped": link.frames_dropped,
            "wan_frames_carried": link.frames_carried}


def run_rc_goodput(delay_us: float, plan: Optional[FaultPlan] = None,
                   duration_us: float = 40000.0, msg_bytes: int = 64 * KB,
                   depth: int = 8,
                   reconnect_wait_us: Optional[float] = None,
                   ) -> Dict[str, float]:
    """Verbs RC goodput over a fixed horizon, with reconnect-on-error.

    A supervisor process mirrors what a CM/APM-aware application does:
    wait for the QP error event, back off briefly, reset + reconnect the
    pair and refill the send pipeline.
    """
    sim = Simulator()
    profile = fault_profile(delay_us)
    fabric = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=delay_us,
                                       profile=profile)
    if plan is not None:
        plan.apply(fabric)
    node_a, node_b = fabric.cluster_a[0], fabric.cluster_b[0]
    qa, qb = create_connected_rc_pair(node_a, node_b)
    if reconnect_wait_us is None:
        reconnect_wait_us = max(2000.0, 4.0 * delay_us)
    stats = {"received_bytes": 0.0, "qp_errors": 0.0, "reconnects": 0.0}

    for _ in range(64):
        qb.post_recv(RecvWR(_HUGE))

    def receiver():
        while True:
            wc = yield qb.recv_cq.wait()
            if qb.state is not QPState.ERROR:
                qb.post_recv(RecvWR(_HUGE))
            if wc.ok:
                stats["received_bytes"] += wc.byte_len

    def sender():
        # Keep `depth` messages outstanding; errors park the pipeline
        # until the supervisor refills it after the reconnect.
        while True:
            wc = yield qa.send_cq.wait()
            if wc.ok and qa.state is QPState.RTS:
                qa.send(msg_bytes)

    def supervisor():
        while True:
            # reset() re-arms error_event, so re-read it every loop.
            yield qa.error_event
            stats["qp_errors"] += 1
            yield sim.timeout(reconnect_wait_us)
            reconnect_rc_pair(qa, qb)
            stats["reconnects"] += 1
            for _ in range(depth):
                qa.send(msg_bytes)

    sim.process(receiver(), name="flt.rc.rx")
    sim.process(sender(), name="flt.rc.tx")
    sim.process(supervisor(), name="flt.rc.sup")
    for _ in range(depth):
        qa.send(msg_bytes)
    sim.run(until=duration_us)
    stats["goodput_mb_s"] = stats["received_bytes"] / duration_us
    stats["rc_retransmissions"] = float(qa.retransmissions)
    stats.update(_wan_stats(fabric))
    return stats


def run_ud_goodput(delay_us: float, plan: Optional[FaultPlan] = None,
                   duration_us: float = 40000.0, msg_bytes: int = 2 * KB,
                   ) -> Dict[str, float]:
    """Paced open-loop UD datagram stream: what arrives, arrives.

    The sender paces at the WAN wire rate, so goodput is delay-
    independent and degrades only with the delivered fraction — the
    paper's UD-vs-RC WAN contrast, extended to lossy links.
    """
    sim = Simulator()
    profile = DEFAULT_PROFILE
    fabric = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=delay_us,
                                       profile=profile)
    if plan is not None:
        plan.apply(fabric)
    node_a, node_b = fabric.cluster_a[0], fabric.cluster_b[0]
    qa, qb = create_ud_pair(node_a, node_b)
    msg_bytes = min(msg_bytes, profile.ib_mtu)
    stats = {"received_bytes": 0.0, "sent_msgs": 0.0}

    for _ in range(512):
        qb.post_recv(RecvWR(_HUGE))

    def receiver():
        while True:
            wc = yield qb.recv_cq.wait()
            qb.post_recv(RecvWR(_HUGE))
            if wc.ok:
                stats["received_bytes"] += wc.byte_len

    def sender():
        gap = msg_bytes / profile.wan_rate
        remote = (node_b.lid, qb.qpn)
        while True:
            qa.send(remote, msg_bytes)
            stats["sent_msgs"] += 1
            yield sim.timeout(gap)

    sim.process(receiver(), name="flt.ud.rx")
    sim.process(sender(), name="flt.ud.tx")
    sim.run(until=duration_us)
    stats["goodput_mb_s"] = stats["received_bytes"] / duration_us
    stats.update(_wan_stats(fabric))
    return stats


def run_tcp_goodput(delay_us: float, plan: Optional[FaultPlan] = None,
                    total_bytes: int = 4 * MB, mode: str = "ud",
                    window: Optional[int] = None) -> Dict[str, float]:
    """IPoIB TCP stream goodput for a fixed transfer.

    On a fault-armed fabric the stack self-enables its RTO/fast-
    retransmit machinery, so the transfer completes (more slowly)
    instead of hanging on the first dropped segment.
    """
    sim = Simulator()
    fabric = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=delay_us)
    if plan is not None:
        plan.apply(fabric)
    bw = run_stream_bw(sim, fabric, fabric.cluster_a[0],
                       fabric.cluster_b[0], total_bytes, mode=mode,
                       window=window)
    stats = {"goodput_mb_s": bw, "received_bytes": float(total_bytes)}
    stats.update(_wan_stats(fabric))
    return stats


def run_nfs_goodput(delay_us: float, plan: Optional[FaultPlan] = None,
                    transport: str = "rdma", read_bytes: int = 2 * MB,
                    n_streams: int = 2) -> Dict[str, float]:
    """NFS read goodput for a bounded IOzone run under faults.

    RPC timeouts/retransmissions self-enable from ``faults_active``;
    the RDMA transport additionally reconnects its RC pair after
    retry-budget exhaustion.
    """
    sim = Simulator()
    profile = fault_profile(delay_us)
    fabric = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=delay_us,
                                       profile=profile)
    if plan is not None:
        plan.apply(fabric)
    bw = run_iozone_read(sim, fabric, fabric.cluster_a[0],
                         fabric.cluster_b[0], transport,
                         n_streams=n_streams, read_bytes=read_bytes)
    stats = {"goodput_mb_s": bw, "received_bytes": float(read_bytes)}
    stats.update(_wan_stats(fabric))
    return stats
