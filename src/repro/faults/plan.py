"""Declarative, seeded WAN fault plans.

A :class:`FaultPlan` describes everything that can go wrong on a link,
in one immutable value that parses from (and round-trips to) a compact
spec string — the same string the CLI takes via ``--faults`` and the
result cache keys on:

``loss=P``
    Uniform per-frame loss probability (bit-error model).
``burst=LB/G2B/B2G``
    Two-state Gilbert–Elliott loss: frames drop with probability ``LB``
    while the channel is in the *bad* state; the chain moves good→bad
    with probability ``G2B`` and bad→good with ``B2G`` per frame.
``jitter=US``
    Uniform extra per-frame delivery delay in ``[0, US]`` µs
    (dispersion jitter; never reorders frames).
``flap@T:D``
    The link goes dark at ``T`` µs for ``D`` µs.  Queue-drain
    semantics: frames reaching the head of the transmit queue during
    the outage are lost without occupying the wire.  Repeatable.
``spike@T:D:E``
    ``E`` µs of extra one-way delay during ``[T, T+D)`` (route change /
    congestion spike).  Repeatable.
``overrun=BYTES``
    Caps the Longbow ingress buffer at ``BYTES``; frames arriving on
    the IB side beyond that are dropped (the credit pool normally hides
    this — shrinking it models an overdriven WAN extender).
``seed=N``
    Master seed for every random decision the plan makes (default 0).

Tokens are comma-separated: ``"burst=0.4/0.05/0.3,flap@20000:5000,seed=7"``.
With the same seed a plan's behaviour is byte-reproducible across
repeats and across scheduler worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..sim.rng import RngRegistry

__all__ = ["GilbertElliott", "LinkFlap", "DelaySpike", "FaultPlan"]


def _check_prob(name: str, value: float, closed: bool = True) -> float:
    value = float(value)
    hi_ok = value <= 1.0 if closed else value < 1.0
    if not (0.0 <= value and hi_ok):
        bound = "[0, 1]" if closed else "[0, 1)"
        raise ValueError(f"{name} must be in {bound}, got {value!r}")
    return value


@dataclass(frozen=True)
class GilbertElliott:
    """Two-state Markov loss model (uniform loss when both states agree)."""

    loss_good: float = 0.0
    loss_bad: float = 0.0
    p_good_to_bad: float = 0.0
    p_bad_to_good: float = 0.0

    def __post_init__(self):
        _check_prob("loss_good", self.loss_good, closed=False)
        _check_prob("loss_bad", self.loss_bad, closed=False)
        _check_prob("p_good_to_bad", self.p_good_to_bad)
        _check_prob("p_bad_to_good", self.p_bad_to_good)

    @property
    def is_bursty(self) -> bool:
        return bool(self.p_good_to_bad or self.p_bad_to_good)


@dataclass(frozen=True)
class LinkFlap:
    """The link is down during ``[at_us, at_us + down_us)``."""

    at_us: float
    down_us: float

    def __post_init__(self):
        if self.at_us < 0:
            raise ValueError(f"flap start must be >= 0, got {self.at_us!r}")
        if self.down_us <= 0:
            raise ValueError(
                f"flap duration must be > 0, got {self.down_us!r}")


@dataclass(frozen=True)
class DelaySpike:
    """``extra_us`` of one-way delay during ``[at_us, at_us + duration_us)``."""

    at_us: float
    duration_us: float
    extra_us: float

    def __post_init__(self):
        if self.at_us < 0:
            raise ValueError(f"spike start must be >= 0, got {self.at_us!r}")
        if self.duration_us <= 0:
            raise ValueError(
                f"spike duration must be > 0, got {self.duration_us!r}")
        if self.extra_us < 0:
            raise ValueError(
                f"spike extra delay must be >= 0, got {self.extra_us!r}")


@dataclass(frozen=True)
class FaultPlan:
    """One immutable description of everything injected into a link."""

    loss: Optional[GilbertElliott] = None
    jitter_us: float = 0.0
    flaps: Tuple[LinkFlap, ...] = field(default_factory=tuple)
    spikes: Tuple[DelaySpike, ...] = field(default_factory=tuple)
    overrun_bytes: Optional[int] = None
    seed: int = 0

    def __post_init__(self):
        if self.jitter_us < 0:
            raise ValueError(f"jitter_us must be >= 0, got {self.jitter_us!r}")
        if self.overrun_bytes is not None and self.overrun_bytes <= 0:
            raise ValueError(
                f"overrun_bytes must be > 0, got {self.overrun_bytes!r}")
        object.__setattr__(self, "flaps", tuple(
            sorted(self.flaps, key=lambda f: (f.at_us, f.down_us))))
        object.__setattr__(self, "spikes", tuple(
            sorted(self.spikes,
                   key=lambda s: (s.at_us, s.duration_us, s.extra_us))))

    # -- spec string round trip -----------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from the comma-separated spec grammar above."""
        loss: Optional[GilbertElliott] = None
        jitter = 0.0
        flaps = []
        spikes = []
        overrun = None
        seed = 0
        for raw in spec.split(","):
            token = raw.strip()
            if not token:
                continue
            try:
                if token.startswith("loss="):
                    loss = GilbertElliott(loss_good=float(token[5:]),
                                          loss_bad=float(token[5:]))
                elif token.startswith("burst="):
                    lb, g2b, b2g = (float(p) for p in token[6:].split("/"))
                    loss = GilbertElliott(loss_good=0.0, loss_bad=lb,
                                          p_good_to_bad=g2b,
                                          p_bad_to_good=b2g)
                elif token.startswith("jitter="):
                    jitter = float(token[7:])
                elif token.startswith("flap@"):
                    at, down = (float(p) for p in token[5:].split(":"))
                    flaps.append(LinkFlap(at, down))
                elif token.startswith("spike@"):
                    at, dur, extra = (float(p) for p in token[6:].split(":"))
                    spikes.append(DelaySpike(at, dur, extra))
                elif token.startswith("overrun="):
                    overrun = int(token[8:])
                elif token.startswith("seed="):
                    seed = int(token[5:])
                else:
                    raise ValueError(f"unknown fault token {token!r}")
            except ValueError:
                raise
            except Exception as exc:
                raise ValueError(f"bad fault token {token!r}: {exc}") from exc
        return cls(loss=loss, jitter_us=jitter, flaps=tuple(flaps),
                   spikes=tuple(spikes), overrun_bytes=overrun, seed=seed)

    def to_spec(self) -> str:
        """Canonical spec string; ``parse(to_spec())`` is the identity."""
        parts = []
        if self.loss is not None:
            ge = self.loss
            if ge.is_bursty:
                parts.append(f"burst={ge.loss_bad:g}/{ge.p_good_to_bad:g}"
                             f"/{ge.p_bad_to_good:g}")
            else:
                parts.append(f"loss={ge.loss_good:g}")
        if self.jitter_us:
            parts.append(f"jitter={self.jitter_us:g}")
        parts.extend(f"flap@{f.at_us:g}:{f.down_us:g}" for f in self.flaps)
        parts.extend(f"spike@{s.at_us:g}:{s.duration_us:g}:{s.extra_us:g}"
                     for s in self.spikes)
        if self.overrun_bytes is not None:
            parts.append(f"overrun={self.overrun_bytes}")
        parts.append(f"seed={self.seed}")
        return ",".join(parts)

    # -- application ------------------------------------------------------
    def apply(self, target, rng=None):
        """Arm this plan on a :class:`~repro.fabric.link.Link` or on a
        fabric's WAN segment; returns the :class:`LinkFaultInjector`.

        When ``target`` is a fabric, the plan attaches to the Longbow
        WAN link, any ``overrun=`` cap shrinks both Longbow ingress
        buffers, and ``fabric.faults_active`` is set so fault-aware
        layers (TCP retransmit, NFS RPC timeouts) self-enable.
        """
        from ..fabric.link import Link
        from .injector import LinkFaultInjector
        if rng is None:
            rng = RngRegistry(self.seed).stream("faults")
        if isinstance(target, Link):
            return LinkFaultInjector(self, target, rng)
        wan = getattr(target, "wan", None)
        if wan is None:
            raise ValueError(
                "fault plan targets the WAN segment, but this fabric has "
                "no Longbow pair (use plan.apply(link) for a raw link)")
        injector = LinkFaultInjector(self, wan.wan_link, rng)
        if self.overrun_bytes is not None:
            wan.a.set_ingress_limit(self.overrun_bytes)
            wan.b.set_ingress_limit(self.overrun_bytes)
        target.faults_active = True
        target.fault_injector = injector
        return injector
