"""The unit of lint output.

A :class:`Violation` is one (rule, location, message) triple.  Rules
yield them; the engine filters them against suppressions and hands the
survivors to a reporter.  The class is slotted and value-like so reports
are cheap to build, sort and serialize, and so cached lint results
round-trip exactly through :meth:`to_dict` / :meth:`from_dict`.
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = ["Violation"]


class Violation:
    """One rule hit at one source location."""

    __slots__ = ("rule", "name", "path", "line", "col", "message")

    def __init__(self, rule: str, name: str, path: str, line: int,
                 col: int, message: str):
        self.rule = rule          #: rule id, e.g. ``"DET101"``
        self.name = name          #: rule slug, e.g. ``"wall-clock"``
        self.path = path          #: posix-style path as given to the engine
        self.line = line          #: 1-based line number
        self.col = col            #: 0-based column
        self.message = message

    # -- ordering / equality (stable report order) -----------------------
    def sort_key(self):
        return (self.path, self.line, self.col, self.rule, self.message)

    def __eq__(self, other: Any) -> bool:
        return (isinstance(other, Violation)
                and self.sort_key() == other.sort_key())

    def __hash__(self) -> int:
        return hash(self.sort_key())

    def __repr__(self) -> str:
        return (f"Violation({self.rule} {self.path}:{self.line}:"
                f"{self.col} {self.message!r})")

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"rule": self.rule, "name": self.name, "path": self.path,
                "line": self.line, "col": self.col, "message": self.message}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Violation":
        return cls(d["rule"], d["name"], d["path"], int(d["line"]),
                   int(d["col"]), d["message"])
