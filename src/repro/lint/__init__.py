"""Determinism & simulation-safety static analysis.

Every replay guarantee in this reproduction — golden traces, cached
parallel runs, seeded fault plans, the fast-vs-legacy equivalence
proof — rests on code-level invariants (no wall clock, no unseeded
randomness, no unordered iteration feeding the event loop, slotted
hot-path records, fast/legacy patch parity).  This package turns those
conventions into machine-checked rules; ``python -m repro.lint`` is
wired into CI as a gate.

Rule families:

* **DET** — determinism: bans nondeterministic inputs (wall clock,
  entropy, module-level :mod:`random`, ``id()`` ordering, set-order
  leaks).
* **SIM** — simulation safety: process generators yield events,
  callbacks are not generators, hot-path records declare
  ``__slots__``, no container mutation during its own iteration.
* **PAR** — fast/legacy parity: :func:`repro.sim._legacy.legacy_dispatch`
  patch targets must exist with matching signatures, and every
  fast-pump module must keep its generator-mode twin.

See ``python -m repro.lint --list-rules`` for the full table, and the
README "Static analysis" section for suppression syntax.
"""

from __future__ import annotations

from .cache import LintCache, lint_source_digest
from .engine import ENGINE_VERSION, FileContext, LintEngine, LintReport, \
    discover_files
from .registry import RULES, Rule, expand_selection, load_builtin_rules, \
    register
from .report import render_json, render_text
from .suppress import parse_suppressions
from .violations import Violation

__all__ = [
    "ENGINE_VERSION", "FileContext", "LintCache", "LintEngine",
    "LintReport", "RULES", "Rule", "Violation", "discover_files",
    "expand_selection", "lint_source_digest", "load_builtin_rules",
    "parse_suppressions", "register", "render_json", "render_text",
]
