"""Suppression comments.

Two scopes, both requiring a justification after ``--``:

* line scope — trailing comment suppresses the named rules on its own
  physical line; a comment on a line of its own suppresses them on the
  next code line::

      t0 = time.process_time()  # repro-lint: disable=DET101 -- host-side bench timing

      # repro-lint: disable=SIM201 -- guarded unreachable yield keeps this a generator
      if False:
          yield

* file scope — ``disable-file=`` anywhere in the file suppresses the
  rules for the whole file::

      # repro-lint: disable-file=DET103 -- this IS the seeded-stream factory

A suppression without a ``-- <reason>`` justification is **inert** and
itself reported as ``LNT001``; an unknown rule id in the list is
reported as ``LNT002`` (the remaining ids still apply).  Comments are
found with :mod:`tokenize`, so a ``#`` inside a string never parses as
a suppression.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, List, Set, Tuple

from .registry import RULES
from .violations import Violation

__all__ = ["SuppressionSet", "parse_suppressions"]

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+?)\s*(?:--\s*(?P<reason>\S.*?)\s*)?$")


class SuppressionSet:
    """Parsed suppressions for one file."""

    __slots__ = ("file_rules", "line_rules")

    def __init__(self):
        #: Rule ids suppressed for the whole file.
        self.file_rules: Set[str] = set()
        #: line number -> rule ids suppressed on that line.
        self.line_rules: Dict[int, Set[str]] = {}

    def is_suppressed(self, rule: str, line: int) -> bool:
        if rule in self.file_rules:
            return True
        return rule in self.line_rules.get(line, ())


def _comment_tokens(source: str):
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    comments: List[Tuple[int, int, str]] = []  # (line, col, text)
    code_lines: Set[int] = set()
    try:
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.start[1], tok.string))
            elif tok.type not in (tokenize.NL, tokenize.NEWLINE,
                                  tokenize.INDENT, tokenize.DEDENT,
                                  tokenize.ENCODING, tokenize.ENDMARKER):
                for ln in range(tok.start[0], tok.end[0] + 1):
                    code_lines.add(ln)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The AST pass reports the syntax error; comments seen so far
        # still count.
        pass
    return comments, code_lines


def parse_suppressions(
        rel: str, source: str) -> Tuple[SuppressionSet, List[Violation]]:
    """Extract suppressions and their meta-violations from ``source``."""
    supp = SuppressionSet()
    meta: List[Violation] = []
    comments, code_lines = _comment_tokens(source)
    for line, col, text in comments:
        m = _PRAGMA.search(text)
        if m is None:
            continue
        if not m.group("reason"):
            meta.append(Violation(
                "LNT001", "suppression-needs-justification", rel, line, col,
                "suppression has no `-- <reason>` justification; it is "
                "inert until one is added"))
            continue
        rules: Set[str] = set()
        for rid in m.group("rules").split(","):
            rid = rid.strip()
            if not rid:
                continue
            if rid not in RULES:
                meta.append(Violation(
                    "LNT002", "suppression-unknown-rule", rel, line, col,
                    f"suppression names unknown rule {rid!r}"))
                continue
            rules.add(rid)
        if not rules:
            continue
        if m.group("kind") == "disable-file":
            supp.file_rules |= rules
        elif line in code_lines:
            supp.line_rules.setdefault(line, set()).update(rules)
        else:
            # Standalone comment: applies to the next code line.
            target = min((ln for ln in code_lines if ln > line),
                         default=None)
            if target is not None:
                supp.line_rules.setdefault(target, set()).update(rules)
    return supp, meta
