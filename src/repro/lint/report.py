"""Reporters: human text and machine JSON.

The JSON schema is part of the CI contract (the workflow uploads it as
an artifact) and is pinned by ``tests/test_lint.py``::

    {
      "tool": "repro.lint",
      "version": "<engine version>",
      "files_checked": <int>,
      "violations": [{"rule", "name", "path", "line", "col", "message"}],
      "counts": {"<rule id>": <int>, ...},
      "cache": {"incremental": <bool>, "hits": <int>, "misses": <int>}
    }
"""

from __future__ import annotations

import json
from typing import Dict

from .engine import ENGINE_VERSION, LintReport
from .registry import RULES

__all__ = ["render_text", "render_json", "render_sarif",
           "render_rule_table"]

#: Canonical SARIF 2.1.0 schema URI (the store URL GitHub code
#: scanning and VS Code both accept).
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"


def render_text(report: LintReport) -> str:
    lines = [f"{v.path}:{v.line}:{v.col}: {v.rule} [{v.name}] {v.message}"
             for v in report.violations]
    counts = report.counts
    if counts:
        per_rule = ", ".join(f"{rid}={n}" for rid, n in sorted(counts.items()))
        lines.append(f"{len(report.violations)} violation(s) in "
                     f"{report.files_checked} file(s): {per_rule}")
    else:
        lines.append(f"clean: {report.files_checked} file(s), 0 violations")
    if report.incremental:
        lines.append(f"cache: {report.cache_hits} hit(s), "
                     f"{report.cache_misses} miss(es)")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    doc: Dict = {
        "tool": "repro.lint",
        "version": ENGINE_VERSION,
        "files_checked": report.files_checked,
        "violations": [v.to_dict() for v in report.violations],
        "counts": report.counts,
        "cache": {"incremental": report.incremental,
                  "hits": report.cache_hits,
                  "misses": report.cache_misses},
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def render_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 document: rule metadata + physical locations.

    Every registered rule is listed in the driver (stable ``ruleIndex``
    regardless of what fired), each violation becomes one ``error``
    result, and columns are converted from the engine's 0-based to
    SARIF's 1-based convention.  CI uploads this so findings annotate
    pull requests as code-scanning results.
    """
    rule_ids = list(RULES)
    rule_index = {rid: i for i, rid in enumerate(rule_ids)}
    rules = [{
        "id": rid,
        "name": RULES[rid].name,
        "shortDescription": {"text": RULES[rid].summary},
        "defaultConfiguration": {"level": "error"},
        "properties": {"scope": RULES[rid].scope},
    } for rid in rule_ids]
    results = [{
        "ruleId": v.rule,
        "ruleIndex": rule_index.get(v.rule, -1),
        "level": "error",
        "message": {"text": f"[{v.name}] {v.message}"},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": v.path},
                "region": {"startLine": max(v.line, 1),
                           "startColumn": v.col + 1},
            },
        }],
    } for v in report.violations]
    doc: Dict = {
        "$schema": SARIF_SCHEMA_URI,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro.lint",
                "version": ENGINE_VERSION,
                "rules": rules,
            }},
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def render_rule_table() -> str:
    """The ``--list-rules`` output: one line per registered rule."""
    lines = []
    for rid, rule in RULES.items():
        lines.append(f"{rid}  {rule.name:32s} [{rule.scope:7s}] "
                     f"{rule.summary}")
    return "\n".join(lines)
