"""``python -m repro.lint`` — the CI lint gate.

Exit codes: 0 clean, 1 violations found, 2 usage error (unknown rule in
``--select``/``--ignore``, no files found).  ``--incremental`` reuses
the ``.repro-cache`` content-addressed digest scheme so re-linting an
unchanged tree re-checks nothing.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .cache import DEFAULT_CACHE_DIR, LintCache
from .engine import LintEngine, discover_files
from .registry import SelectionError, load_builtin_rules
from .report import (render_json, render_rule_table, render_sarif,
                     render_text)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Determinism & simulation-safety static analysis "
                    "for the repro codebase.")
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src and tools "
             "when they exist, else the current directory)")
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids or family prefixes to enable "
             "(e.g. DET,SIM203); default: all rules")
    parser.add_argument(
        "--ignore", default="", metavar="RULES",
        help="comma-separated rule ids or family prefixes to disable")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text); sarif emits a SARIF "
             "2.1.0 document for code-scanning upload")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan file-scope rules out over N worker processes "
             "(project rules stay serial; output is byte-identical "
             "to --jobs 1)")
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the report to FILE (CI artifact)")
    parser.add_argument(
        "--incremental", action="store_true",
        help="reuse per-file verdicts from the content-addressed cache")
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
        help=f"cache root for --incremental (default: {DEFAULT_CACHE_DIR})")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit")
    return parser


def _default_paths() -> List[Path]:
    paths = [Path(p) for p in ("src", "tools", "benchmarks")
             if Path(p).is_dir()]
    return paths or [Path(".")]


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    load_builtin_rules()

    if args.list_rules:
        print(render_rule_table())
        return 0

    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else []
    cache = LintCache(args.cache_dir) if args.incremental else None
    try:
        engine = LintEngine(select=select, ignore=ignore, cache=cache,
                            jobs=args.jobs)
    except SelectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    paths = [Path(p) for p in args.paths] or _default_paths()
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): "
              f"{', '.join(str(p) for p in missing)}", file=sys.stderr)
        return 2
    files = discover_files(paths)
    if not files:
        print("error: no python files found", file=sys.stderr)
        return 2

    report = engine.run(files)
    renderers = {"json": render_json, "sarif": render_sarif,
                 "text": lambda r: render_text(r) + "\n"}
    rendered = renderers[args.format](report)
    sys.stdout.write(rendered)
    if args.out:
        Path(args.out).write_text(rendered)
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
