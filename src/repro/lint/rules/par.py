"""PAR — fast/legacy and flow/packet parity rules.

PR 4's ordering-equivalence proof only means something while
:func:`repro.sim._legacy.legacy_dispatch` actually swaps *current*
entry points: if ``Simulator.call_at`` grows a parameter and the legacy
shim does not, or a new fast-pump module never gets flipped, the
equivalence test silently compares the fast path against a stale
baseline.  These rules parse ``_legacy.py`` *and* the modules it
patches, so the parity contract is re-checked on every lint run instead
of rotting between benchmark refreshes.

The flow-acceleration twins (``repro.flow``) carry the same rot risk
in two new shapes.  Their analytic models recompute wire footprints
and service times from :class:`repro.calibration.HardwareProfile`
fields the packet layer uses implicitly — a renamed or retired field
would silently evaluate wrong only in flow mode (PAR303).  And every
flow twin declares which packet module it must stay in lockstep with
via a ``PACKET_TWIN`` global; a twin without the pointer, or a pointer
to a module that no longer exists, orphans the equivalence wall
(PAR304).

The distributed wire protocol gets the same treatment: PAR307 reads
``repro/exp/protocol.py`` and requires every frame type listed in
``MESSAGE_TYPES`` to carry a malformed-body fixture in
``FAIL_CLOSED_FIXTURES`` — the decode-fixture wall parametrizes over
that dict, so a new frame type cannot ship without a fail-closed
decode test.

All rules but one are ``project``-scope: they need the whole file set
and locate their anchors by path suffix (``repro/sim/_legacy.py``,
``repro/calibration.py``), which makes them equally happy on the real
tree and on test fixtures.  PAR306 is the ``file``-scope outlier: it
polices the distributed harness (``repro/exp/``) itself, banning
non-monotonic clocks from timeout/lease/backoff arithmetic so the
chaos and resume walls measure what they think they measure.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from ..engine import FileContext
from ..project import (FUNC_NODES, ProjectIndex, find_file,
                       frozenset_strings, global_assign, module_parts,
                       resolve_imports)
from ..registry import Rule, register
from ..violations import Violation

__all__ = ["LegacyPatchParity", "FastPumpLegacyTwin",
           "ProfileAttrParity", "FlowPacketTwin",
           "BackendProtocolSurface", "MonotonicDurations",
           "FrameFixtureCoverage"]

_LEGACY_SUFFIX = "repro/sim/_legacy.py"
_EXP_PACKAGE = "repro/exp/"
#: Clocks that jump on NTP slew/step or timezone churn.  Timeout,
#: lease, backoff and heartbeat arithmetic in the distributed harness
#: must come off ``time.monotonic``; ``perf_counter`` is banned too
#: because it is not comparable across processes, and the harness
#: routinely hands deadlines from coordinator to worker.
_NON_MONOTONIC_CLOCKS = {
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}
_CALIBRATION_SUFFIX = "repro/calibration.py"
_PROTOCOL_SUFFIX = "repro/exp/protocol.py"
_BACKENDS_BASE_SUFFIX = "repro/exp/backends/base.py"
_BACKENDS_PACKAGE = "repro/exp/backends/"
_FLOW_PACKAGE = "repro/flow/"
#: Packet-protocol packages a flow twin shadows.
_PACKET_PACKAGES = (("repro", "tcp"), ("repro", "verbs"),
                    ("repro", "ipoib"))
#: Shared helpers live in :mod:`repro.lint.project` since PR 10; the
#: private aliases keep this module's call sites unchanged.
_FUNC_NODES = FUNC_NODES
_find_file = find_file
_module_parts = module_parts
_resolve_imports = resolve_imports


def _signature(fn: ast.AST) -> Tuple:
    """Comparable shape of a function def: positional arg names, number
    of defaults, vararg/kwarg presence, keyword-only names."""
    a = fn.args
    return (
        tuple(arg.arg for arg in a.posonlyargs + a.args),
        len(a.defaults),
        a.vararg is not None,
        tuple(arg.arg for arg in a.kwonlyargs),
        a.kwarg is not None,
    )


def _class_method(ctx: FileContext, cls_name: str,
                  attr: str) -> Optional[ast.AST]:
    for node in ctx.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == cls_name:
            for stmt in node.body:
                if isinstance(stmt, _FUNC_NODES) and stmt.name == attr:
                    return stmt
            return None
    return None


def _has_class(ctx: FileContext, cls_name: str) -> bool:
    return any(isinstance(n, ast.ClassDef) and n.name == cls_name
               for n in ctx.tree.body)


def _module_global(ctx: FileContext, name: str) -> bool:
    for node in ctx.tree.body:
        if isinstance(node, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == name
                   for t in node.targets):
                return True
        elif (isinstance(node, ast.AnnAssign)
              and isinstance(node.target, ast.Name)
              and node.target.id == name):
            return True
    return False


def _patch_assignments(legacy: FileContext):
    """``Target.attr = value`` assignments inside ``legacy_dispatch``."""
    for node in ast.walk(legacy.tree):
        if not (isinstance(node, _FUNC_NODES)
                and node.name == "legacy_dispatch"):
            continue
        for stmt in ast.walk(node):
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)):
                    yield stmt, target.value.id, target.attr, stmt.value


@register
class LegacyPatchParity(Rule):
    id = "PAR301"
    name = "legacy-patch-parity"
    summary = ("every attribute legacy_dispatch patches must exist on "
               "its target, with the shim matching the real signature")
    scope = "project"

    def check_project(self, files: Dict[str, FileContext],
                      index: Optional[ProjectIndex] = None
                      ) -> Iterator[Violation]:
        legacy = _find_file(files, _LEGACY_SUFFIX)
        if legacy is None:
            return
        imports = _resolve_imports(legacy)
        local_funcs = {n.name: n for n in ast.walk(legacy.tree)
                       if isinstance(n, _FUNC_NODES)}
        for stmt, root, attr, value in _patch_assignments(legacy):
            origin = imports.get(root)
            if origin is None:
                continue  # patching something local; not our contract
            target_ctx = _find_file(files, "/".join(origin) + ".py")
            if target_ctx is not None:
                # Root is a module: the patched name must be a global.
                if not _module_global(target_ctx, attr):
                    yield self.violation(
                        legacy, stmt,
                        f"legacy_dispatch patches `{root}.{attr}` but "
                        f"module {'.'.join(origin)} defines no global "
                        f"{attr!r} — the flip is a no-op and the "
                        f"equivalence proof tests nothing")
                continue
            # Root is a class imported from a module file.
            mod_ctx = _find_file(files, "/".join(origin[:-1]) + ".py")
            if mod_ctx is None:
                continue  # target outside the lint set; nothing to check
            cls_name = origin[-1]
            if not _has_class(mod_ctx, cls_name):
                continue
            method = _class_method(mod_ctx, cls_name, attr)
            if method is None:
                yield self.violation(
                    legacy, stmt,
                    f"legacy_dispatch patches `{cls_name}.{attr}` but "
                    f"{'.'.join(origin[:-1])}.{cls_name} defines no "
                    f"method {attr!r} — the shim replaces nothing")
                continue
            shim = (local_funcs.get(value.id)
                    if isinstance(value, ast.Name) else None)
            if shim is None:
                continue
            if _signature(shim) != _signature(method):
                yield self.violation(
                    legacy, stmt,
                    f"legacy shim for `{cls_name}.{attr}` has signature "
                    f"{_signature(shim)!r} but the fast implementation "
                    f"has {_signature(method)!r} — callers exercised "
                    f"only under legacy_dispatch will diverge")


@register
class FastPumpLegacyTwin(Rule):
    id = "PAR302"
    name = "fast-pump-legacy-twin"
    summary = ("every module with a _FAST_PUMP switch must be flipped "
               "by legacy_dispatch and keep a generator-mode pump twin")
    scope = "project"

    def check_project(self, files: Dict[str, FileContext],
                      index: Optional[ProjectIndex] = None
                      ) -> Iterator[Violation]:
        legacy = _find_file(files, _LEGACY_SUFFIX)
        flipped: set = set()
        if legacy is not None:
            imports = _resolve_imports(legacy)
            for _stmt, root, attr, _value in _patch_assignments(legacy):
                if attr == "_FAST_PUMP" and root in imports:
                    flipped.add("/".join(imports[root]) + ".py")
        for rel in sorted(files):
            ctx = files[rel]
            if ctx.tree is None or rel.endswith(_LEGACY_SUFFIX):
                continue
            node = self._fast_pump_assign(ctx)
            if node is None:
                continue
            if legacy is not None and not any(
                    rel.endswith(sfx) for sfx in flipped):
                yield self.violation(
                    ctx, node,
                    f"{rel} defines _FAST_PUMP but legacy_dispatch never "
                    f"flips it — the fast-vs-legacy equivalence test "
                    f"runs this pump in fast mode on both sides")
            if not self._has_generator(ctx):
                yield self.violation(
                    ctx, node,
                    f"{rel} defines _FAST_PUMP but contains no "
                    f"generator-mode pump — there is no legacy twin "
                    f"left to prove ordering equivalence against")

    @staticmethod
    def _fast_pump_assign(ctx: FileContext) -> Optional[ast.AST]:
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == "_FAST_PUMP"
                    for t in node.targets):
                return node
        return None

    @staticmethod
    def _has_generator(ctx: FileContext) -> bool:
        for node in ast.walk(ctx.tree):
            if isinstance(node, _FUNC_NODES):
                stack = list(ast.iter_child_nodes(node))
                while stack:
                    sub = stack.pop()
                    if isinstance(sub, _FUNC_NODES + (ast.Lambda,)):
                        continue
                    if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                        return True
                    stack.extend(ast.iter_child_nodes(sub))
        return False


def _flow_files(files: Dict[str, FileContext]) -> Iterator[FileContext]:
    for rel in sorted(files):
        ctx = files[rel]
        if (ctx.tree is not None and _FLOW_PACKAGE in rel
                and not rel.endswith("__init__.py")):
            yield ctx


def _profile_members(calib: FileContext) -> Optional[set]:
    """Annotated fields + methods of ``HardwareProfile``, or ``None``
    when the class is not in this file."""
    for node in calib.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "HardwareProfile":
            members = set()
            for stmt in node.body:
                if (isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Name)):
                    members.add(stmt.target.id)
                elif isinstance(stmt, _FUNC_NODES):
                    members.add(stmt.name)
            return members
    return None


@register
class ProfileAttrParity(Rule):
    id = "PAR303"
    name = "profile-attr-parity"
    summary = ("every profile.<attr> the flow models read must be a "
               "HardwareProfile field — analytic wire math must not "
               "drift from the calibration schema")
    scope = "project"

    def check_project(self, files: Dict[str, FileContext],
                      index: Optional[ProjectIndex] = None
                      ) -> Iterator[Violation]:
        calib = _find_file(files, _CALIBRATION_SUFFIX)
        if calib is None:
            return  # calibration outside the lint set; nothing to check
        members = _profile_members(calib)
        if members is None:
            return
        for ctx in _flow_files(files):
            for node in ast.walk(ctx.tree):
                if not (isinstance(node, ast.Attribute)
                        and isinstance(node.value, (ast.Name,
                                                    ast.Attribute))):
                    continue
                base = node.value
                base_name = (base.id if isinstance(base, ast.Name)
                             else base.attr)
                if base_name != "profile" or node.attr in members:
                    continue
                yield self.violation(
                    ctx, node,
                    f"{ctx.rel} reads `profile.{node.attr}` but "
                    f"HardwareProfile defines no such field — the flow "
                    f"model's analytic math has drifted from the "
                    f"calibration schema")


@register
class FlowPacketTwin(Rule):
    id = "PAR304"
    name = "flow-packet-twin"
    summary = ("every flow module shadowing a packet protocol must "
               "name its PACKET_TWIN module, and the pointer must "
               "resolve")
    scope = "project"

    def check_project(self, files: Dict[str, FileContext],
                      index: Optional[ProjectIndex] = None
                      ) -> Iterator[Violation]:
        # Twin resolution is only meaningful when the repro package
        # root is in the lint set (single-file runs cannot tell a
        # renamed twin from an unlinted one).
        root_present = any(rel.endswith("repro/__init__.py")
                           for rel in files)
        for ctx in _flow_files(files):
            imports = _resolve_imports(ctx)
            shadowed = sorted({
                ".".join(pkg) for parts in imports.values()
                for pkg in _PACKET_PACKAGES
                if tuple(parts[:2]) == pkg})
            twin = self._packet_twin(ctx)
            if twin is None:
                if shadowed:
                    yield self.violation(
                        ctx, ctx.tree,
                        f"{ctx.rel} imports from packet protocol "
                        f"package(s) {', '.join(shadowed)} but declares "
                        f"no PACKET_TWIN — the flow/packet equivalence "
                        f"wall cannot see which module it shadows")
                continue
            node, name = twin
            if not isinstance(name, str):
                yield self.violation(
                    ctx, node,
                    f"{ctx.rel} PACKET_TWIN must be a dotted module "
                    f"path string")
                continue
            if root_present and not self._resolves(files, name):
                yield self.violation(
                    ctx, node,
                    f"{ctx.rel} names PACKET_TWIN {name!r} but no such "
                    f"module exists — the twin pointer has rotted and "
                    f"the equivalence wall is orphaned")

    @staticmethod
    def _packet_twin(ctx: FileContext):
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == "PACKET_TWIN"
                    for t in node.targets):
                value = (node.value.value
                         if isinstance(node.value, ast.Constant) else None)
                return node, value
        return None

    @staticmethod
    def _resolves(files: Dict[str, FileContext], dotted: str) -> bool:
        path = dotted.replace(".", "/")
        return any(rel.endswith(path + ".py")
                   or rel.endswith(path + "/__init__.py")
                   for rel in files)


def _abstract_methods(base_ctx: FileContext) -> Optional[Dict[str, ast.AST]]:
    """``ExecutionBackend``'s ``@abstractmethod`` defs, by name, or
    ``None`` when the class is not in this file."""
    for node in base_ctx.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "ExecutionBackend":
            table: Dict[str, ast.AST] = {}
            for stmt in node.body:
                if isinstance(stmt, _FUNC_NODES) and any(
                        (isinstance(d, ast.Name) and d.id == "abstractmethod")
                        or (isinstance(d, ast.Attribute)
                            and d.attr == "abstractmethod")
                        for d in stmt.decorator_list):
                    table[stmt.name] = stmt
            return table
    return None


@register
class BackendProtocolSurface(Rule):
    id = "PAR305"
    name = "backend-protocol-surface"
    summary = ("every ExecutionBackend subclass must implement the full "
               "abstract protocol surface with matching signatures and "
               "set a non-empty registry name")
    scope = "project"

    def check_project(self, files: Dict[str, FileContext],
                      index: Optional[ProjectIndex] = None
                      ) -> Iterator[Violation]:
        base_ctx = _find_file(files, _BACKENDS_BASE_SUFFIX)
        if base_ctx is None:
            return  # base outside the lint set; nothing to check
        surface = _abstract_methods(base_ctx)
        if not surface:
            return
        for rel in sorted(files):
            ctx = files[rel]
            if (ctx.tree is None or _BACKENDS_PACKAGE not in rel
                    or rel.endswith(_BACKENDS_BASE_SUFFIX)):
                continue
            for cls in ctx.tree.body:
                if (isinstance(cls, ast.ClassDef)
                        and self._extends_backend(cls)):
                    yield from self._check_class(ctx, cls, surface)

    @staticmethod
    def _extends_backend(cls: ast.ClassDef) -> bool:
        return any(
            (isinstance(b, ast.Name) and b.id == "ExecutionBackend")
            or (isinstance(b, ast.Attribute)
                and b.attr == "ExecutionBackend")
            for b in cls.bases)

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef,
                     surface: Dict[str, ast.AST]) -> Iterator[Violation]:
        for attr, spec in sorted(surface.items()):
            impl = next((s for s in cls.body
                         if isinstance(s, _FUNC_NODES) and s.name == attr),
                        None)
            if impl is None:
                yield self.violation(
                    ctx, cls,
                    f"{cls.name} implements no {attr!r} — the "
                    f"ExecutionBackend protocol surface is incomplete "
                    f"and the scheduler (and conformance wall) cannot "
                    f"drive this backend")
            elif _signature(impl) != _signature(spec):
                yield self.violation(
                    ctx, impl,
                    f"{cls.name}.{attr} has signature "
                    f"{_signature(impl)!r} but ExecutionBackend declares "
                    f"{_signature(spec)!r} — the scheduler calls every "
                    f"backend identically, so the surface must not drift")
        if not self._registry_name(cls):
            yield self.violation(
                ctx, cls,
                f"{cls.name} never sets a non-empty `name` class "
                f"attribute — the backend cannot be selected with "
                f"--backend or labelled in repro.obs counters")

    @staticmethod
    def _registry_name(cls: ast.ClassDef) -> bool:
        for stmt in cls.body:
            if isinstance(stmt, ast.Assign):
                targets = [t for t in stmt.targets
                           if isinstance(t, ast.Name)]
            elif (isinstance(stmt, ast.AnnAssign)
                  and isinstance(stmt.target, ast.Name)):
                targets = [stmt.target]
            else:
                continue
            if any(t.id == "name" for t in targets):
                value = stmt.value
                return (isinstance(value, ast.Constant)
                        and isinstance(value.value, str)
                        and value.value != "")
        return False


@register
class MonotonicDurations(Rule):
    id = "PAR306"
    name = "monotonic-durations"
    summary = ("repro/exp/ timeout/lease/backoff arithmetic must read "
               "time.monotonic, never time.time/perf_counter or "
               "datetime clocks")
    scope = "file"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if _EXP_PACKAGE not in ctx.rel:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = ctx.resolved_call_chain(node.func)
            if chain not in _NON_MONOTONIC_CLOCKS:
                continue
            yield self.violation(
                ctx, node,
                f"`{chain}()` in the distributed harness — wall clocks "
                f"jump on NTP slew and are not comparable across "
                f"processes, so a lease or connect budget computed from "
                f"one can expire instantly or never; use "
                f"time.monotonic() (suppress only for operational "
                f"metadata such as journal run ids)")


_frozenset_strings = frozenset_strings
_global_assign = global_assign


@register
class FrameFixtureCoverage(Rule):
    id = "PAR307"
    name = "frame-fixture-coverage"
    summary = ("every protocol MESSAGE_TYPES frame type must have a "
               "fail-closed decode fixture in FAIL_CLOSED_FIXTURES")
    scope = "project"

    def check_project(self, files: Dict[str, FileContext],
                      index: Optional[ProjectIndex] = None
                      ) -> Iterator[Violation]:
        proto = _find_file(files, _PROTOCOL_SUFFIX)
        if proto is None:
            return  # protocol outside the lint set; nothing to check
        types_node = _global_assign(proto, "MESSAGE_TYPES")
        if types_node is None:
            return
        types = _frozenset_strings(types_node.value)
        if types is None:
            yield self.violation(
                proto, types_node,
                "MESSAGE_TYPES must be a frozenset literal of string "
                "frame types — a computed value hides the protocol "
                "vocabulary from static fixture-coverage checking")
            return
        fixtures_node = _global_assign(proto, "FAIL_CLOSED_FIXTURES")
        if fixtures_node is None:
            yield self.violation(
                proto, types_node,
                "protocol.py declares MESSAGE_TYPES but no "
                "FAIL_CLOSED_FIXTURES dict — no frame type has a "
                "fail-closed decode fixture, so malformed-frame "
                "handling is untested")
            return
        value = fixtures_node.value
        if not isinstance(value, ast.Dict):
            yield self.violation(
                proto, fixtures_node,
                "FAIL_CLOSED_FIXTURES must be an explicit dict literal "
                "keyed by frame type — a comprehension or computed "
                "value defeats static coverage checking")
            return
        covered = {k.value for k in value.keys
                   if isinstance(k, ast.Constant)
                   and isinstance(k.value, str)}
        for mtype in types:
            if mtype not in covered:
                yield self.violation(
                    proto, fixtures_node,
                    f"frame type {mtype!r} is in MESSAGE_TYPES but has "
                    f"no FAIL_CLOSED_FIXTURES entry — the decode-fixture "
                    f"wall never proves decode_body fails closed on a "
                    f"malformed {mtype} body")
