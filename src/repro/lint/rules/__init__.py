"""Built-in rule packages; importing a module registers its rules."""

from . import det, par, sim  # noqa: F401

__all__ = ["det", "par", "sim"]
