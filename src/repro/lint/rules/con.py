"""CON — concurrency-discipline rules.

PRs 7–9 made the harness genuinely concurrent: a heartbeat thread
shares the worker's socket behind ``_Link.lock``, the chaos proxy runs
an accept thread plus one relay thread per direction, and the local
backend parks a daemon watchdog next to a fork-based process pool.
Those PRs hand-verified their lock discipline in review; these rules
re-verify it on every lint run, using the per-module thread model from
:mod:`repro.lint.project` (``threading.Thread(target=...)`` entries
plus bare-name call-graph closure).

CON401  an attribute written outside ``__init__`` and touched from
        both thread context and main-thread context must have *one*
        common ``with <lock>:`` guard around every write.  Guarding
        each write with a different lock is the classic near-miss —
        two locks serialise nothing.
CON402  blocking calls (``time.sleep``, ``os.fsync``, socket
        send/recv/accept, protocol frame I/O) while holding a lock:
        every other thread contending for that lock now waits on the
        network, which is how a WAN stall becomes a process stall.
CON403  bare ``lock.acquire()`` must be immediately followed by
        ``try:`` / ``finally: lock.release()`` — any raise in between
        otherwise leaves the lock held forever.  (``with lock:`` is
        always fine and always preferred.)
CON404  a daemon thread mutating module-level state in a module that
        also starts a fork-based process pool: children fork with a
        snapshot of that state taken at an arbitrary point in the
        daemon's loop (the PR-8 parent-watchdog hazard).

The thread model over-approximates (bare-name reachability), which for
CON401 can at worst demand a lock that is merely redundant; CON402–404
do not depend on reachability at all.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..engine import FileContext
from ..project import (FUNC_NODES, ThreadModel, dotted_name, is_lockish,
                       own_body_nodes, thread_model)
from ..registry import Rule, register
from ..violations import Violation

__all__ = ["SharedWriteNoCommonLock", "BlockingCallUnderLock",
           "BareAcquireWithoutFinally", "DaemonThreadVsForkPool"]

#: Mutating container methods — ``self.attr.append(...)`` is a write
#: to ``attr`` for CON401 purposes (same set SIM204 uses).
_MUTATORS = {
    "append", "appendleft", "add", "insert", "extend", "remove",
    "discard", "pop", "popleft", "popitem", "clear", "update",
    "setdefault",
}

#: Socket methods that block on the peer or the network.
_BLOCKING_SOCKET_METHODS = {
    "send", "sendall", "sendto", "sendmsg",
    "recv", "recvfrom", "recv_into", "recvmsg",
    "accept", "connect",
}

#: Module-level calls that block outright.
_BLOCKING_CHAINS = {"time.sleep", "os.fsync"}

#: Frame I/O helpers from the wire protocol: one call is a full
#: network round of writes or reads.
_FRAME_IO = {"send_frame", "recv_frame"}

#: Call chains that start a fork-based worker pool (CON404).
_POOL_CHAINS = {
    "concurrent.futures.ProcessPoolExecutor",
    "multiprocessing.Pool", "multiprocessing.get_context",
}


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.x`` -> ``"x"``; None otherwise."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


class _GuardWalk:
    """Walks one function body tracking the set of held lock guards.

    Visits every node except nested function defs, calling
    ``callback(node, guards)`` with the *frozenset* of lock names
    (normalised dotted strings) held at that point.
    """

    def __init__(self, model: ThreadModel, cls: Optional[str]):
        self.model = model
        self.cls = cls

    def _lock_names(self, item: ast.withitem) -> Optional[str]:
        name = dotted_name(item.context_expr)
        if name is None:
            return None
        if is_lockish(name):
            return name
        attr = _self_attr(item.context_expr)
        if (attr is not None and self.cls
                and attr in self.model.class_lock_attrs(self.cls)):
            return name
        return None

    def walk(self, fn: ast.AST, callback) -> None:
        self._visit(list(ast.iter_child_nodes(fn)), frozenset(), callback)

    def _visit(self, nodes: List[ast.AST], guards: frozenset,
               callback) -> None:
        for node in nodes:
            if isinstance(node, FUNC_NODES):
                continue
            callback(node, guards)
            if isinstance(node, (ast.With, ast.AsyncWith)):
                held = {n for n in (self._lock_names(i)
                                    for i in node.items) if n}
                # Guard expressions themselves are evaluated unlocked.
                self._visit([i.context_expr for i in node.items],
                            guards, callback)
                self._visit(node.body, guards | held, callback)
            else:
                self._visit(list(ast.iter_child_nodes(node)), guards,
                            callback)


@register
class SharedWriteNoCommonLock(Rule):
    id = "CON401"
    name = "shared-write-no-common-lock"
    summary = ("an attribute touched from both thread and main context "
               "must have one common `with <lock>:` guard around every "
               "write outside __init__")
    scope = "file"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        model = thread_model(ctx)
        if not model.entries:
            return
        # class -> attr -> list of (write node, guards, threaded)
        writes: Dict[Tuple[str, str], List[Tuple[ast.AST, frozenset,
                                                 bool]]] = {}
        touched_threaded: Set[Tuple[str, str]] = set()
        touched_main: Set[Tuple[str, str]] = set()
        for info in model.functions.values():
            if info.cls is None or info.bare == "__init__":
                continue
            threaded = model.is_threaded(info.qualname)
            cls = info.cls

            def record(node, guards, *, cls=cls, threaded=threaded):
                attr = self._write_target(node)
                if attr is not None:
                    writes.setdefault((cls, attr), []).append(
                        (node, guards, threaded))
                for read in self._touched_attrs(node):
                    key = (cls, read)
                    (touched_threaded if threaded
                     else touched_main).add(key)

            _GuardWalk(model, cls).walk(info.node, record)
        for (cls, attr) in sorted(writes,
                                  key=lambda k: (k[0], k[1])):
            if is_lockish(attr):
                continue
            if attr in model.class_lock_attrs(cls):
                continue
            if attr in model.class_safe_attrs(cls):
                continue
            key = (cls, attr)
            if not (key in touched_threaded and key in touched_main):
                continue
            sites = writes[key]
            common = frozenset.intersection(*(g for _, g, _ in sites))
            if common:
                continue
            node = min((n for n, _, _ in sites),
                       key=lambda n: (n.lineno, n.col_offset))
            locks = sorted({lk for _, g, _ in sites for lk in g})
            held = (f" (writes hold {', '.join(locks)} — no single "
                    f"lock covers all of them)" if locks else "")
            yield self.violation(
                ctx, node,
                f"`{cls}.{attr}` is written outside __init__ and "
                f"touched from both a spawned thread and main-thread "
                f"code, but its writes share no common `with <lock>:` "
                f"guard{held} — interleaved mutation can tear the "
                f"structure mid-read")

    @staticmethod
    def _write_target(node: ast.AST) -> Optional[str]:
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for t in targets:
                attr = _self_attr(t)
                if attr is not None:
                    return attr
                # self.attr[k] = v mutates attr too.
                if isinstance(t, ast.Subscript):
                    attr = _self_attr(t.value)
                    if attr is not None:
                        return attr
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _MUTATORS):
                attr = _self_attr(func.value)
                if attr is not None:
                    return attr
        return None

    @staticmethod
    def _touched_attrs(node: ast.AST) -> Iterator[str]:
        if isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is not None:
                yield attr


@register
class BlockingCallUnderLock(Rule):
    id = "CON402"
    name = "blocking-call-under-lock"
    summary = ("no blocking call (sleep, fsync, socket send/recv/"
               "accept, frame I/O) while holding a lock — contention "
               "turns a network stall into a process stall")
    scope = "file"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        model = thread_model(ctx)
        found: List[Violation] = []

        def record(node, guards):
            if not guards or not isinstance(node, ast.Call):
                return
            why = self._blocking_reason(ctx, node)
            if why is None:
                return
            locks = ", ".join(sorted(guards))
            found.append(self.violation(
                ctx, node,
                f"{why} while holding {locks} — every thread "
                f"contending for that lock now blocks behind this "
                f"call; move the blocking operation outside the "
                f"critical section or hand the data off under the "
                f"lock and perform I/O after releasing it"))

        for info in model.functions.values():
            _GuardWalk(model, info.cls).walk(info.node, record)
        # Module-level `with lock:` blocks are rare but possible.
        yield from found

    @staticmethod
    def _blocking_reason(ctx: FileContext,
                         node: ast.Call) -> Optional[str]:
        chain = ctx.resolved_call_chain(node.func)
        if chain in _BLOCKING_CHAINS:
            return f"`{chain}()` blocks"
        func = node.func
        if isinstance(func, ast.Attribute):
            base = dotted_name(func.value)
            if (func.attr in _BLOCKING_SOCKET_METHODS and base
                    and "sock" in base.rsplit(".", 1)[-1].lower()):
                return f"socket call `{base}.{func.attr}()` blocks"
            if func.attr in _FRAME_IO:
                return f"frame I/O `{func.attr}()` blocks on the wire"
        if isinstance(func, ast.Name) and func.id in _FRAME_IO:
            origin = ctx.imports.get(func.id, "")
            if "protocol" in origin:
                return f"frame I/O `{func.id}()` blocks on the wire"
        return None


@register
class BareAcquireWithoutFinally(Rule):
    id = "CON403"
    name = "bare-acquire-without-finally"
    summary = ("`lock.acquire()` must be a statement immediately "
               "followed by try/finally `lock.release()` (or use "
               "`with lock:`)")
    scope = "file"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.tree is None:
            return
        safe: Set[int] = set()
        for body in self._statement_lists(ctx.tree):
            for i, stmt in enumerate(body):
                target = self._acquire_stmt(stmt)
                if target is None:
                    continue
                nxt = body[i + 1] if i + 1 < len(body) else None
                if (isinstance(nxt, ast.Try)
                        and self._releases(nxt.finalbody, target)):
                    safe.add(id(stmt.value))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr == "acquire"):
                continue
            base = dotted_name(func.value)
            if not is_lockish(base):
                continue
            if id(node) in safe:
                continue
            yield self.violation(
                ctx, node,
                f"bare `{base}.acquire()` without an immediate "
                f"try/finally `{base}.release()` — any exception "
                f"between acquire and release leaves the lock held "
                f"forever; prefer `with {base}:`")

    @staticmethod
    def _statement_lists(tree: ast.AST) -> Iterator[List[ast.AST]]:
        for node in ast.walk(tree):
            for field in ("body", "orelse", "finalbody"):
                block = getattr(node, field, None)
                if isinstance(block, list) and block:
                    yield block

    @staticmethod
    def _acquire_stmt(stmt: ast.AST) -> Optional[str]:
        if not (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)):
            return None
        func = stmt.value.func
        if not (isinstance(func, ast.Attribute)
                and func.attr == "acquire"):
            return None
        base = dotted_name(func.value)
        return base if is_lockish(base) else None

    @staticmethod
    def _releases(finalbody: List[ast.AST], target: str) -> bool:
        for stmt in finalbody:
            for node in ast.walk(stmt):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "release"
                        and dotted_name(node.func.value) == target):
                    return True
        return False


@register
class DaemonThreadVsForkPool(Rule):
    id = "CON404"
    name = "daemon-thread-vs-fork-pool"
    summary = ("a daemon thread must not mutate module-level state in "
               "a module that starts a fork-based process pool — "
               "children fork a torn snapshot")
    scope = "file"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        model = thread_model(ctx)
        if not model.daemon_entries:
            return
        if not self._starts_pool(ctx):
            return
        daemon_reach = self._daemon_closure(model)
        for qual in sorted(daemon_reach):
            info = model.functions.get(qual)
            if info is None:
                continue
            for node in own_body_nodes(info.node):
                name = self._global_write(node, model)
                if name is None:
                    continue
                yield self.violation(
                    ctx, node,
                    f"daemon thread code ({qual}) mutates module "
                    f"global `{name}` in a module that starts a "
                    f"fork-based pool — a child process forks with "
                    f"whatever half-written snapshot the daemon left "
                    f"at fork time; keep daemon threads read-only or "
                    f"move the state into the pool initializer")

    @staticmethod
    def _starts_pool(ctx: FileContext) -> bool:
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Call)
                    and ctx.resolved_call_chain(node.func)
                    in _POOL_CHAINS):
                return True
        return False

    @staticmethod
    def _daemon_closure(model: ThreadModel) -> Set[str]:
        reach = set(model.daemon_entries)
        work = sorted(reach)
        while work:
            qual = work.pop()
            info = model.functions.get(qual)
            if info is None:
                continue
            for ref in info.refs:
                for nxt in model.by_bare.get(ref, ()):
                    if nxt not in reach:
                        reach.add(nxt)
                        work.append(nxt)
        return reach

    @staticmethod
    def _global_write(node: ast.AST,
                      model: ThreadModel) -> Optional[str]:
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for t in targets:
                if (isinstance(t, ast.Name)
                        and t.id in model.module_globals):
                    return t.id
                if (isinstance(t, ast.Subscript)
                        and isinstance(t.value, ast.Name)
                        and t.value.id in model.module_globals):
                    return t.value.id
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _MUTATORS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in model.module_globals):
                return func.value.id
        return None
