"""DET — determinism rules.

Replay in this project means: same seed, same event trace, byte for
byte.  Anything that injects state from outside the simulation — the
wall clock, the OS entropy pool, the interpreter's hash-randomized set
order, CPython object addresses — breaks that silently, usually far
downstream in a golden-trace diff.  These rules ban the injection
points at the source level.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext
from ..registry import Rule, register
from ..violations import Violation

__all__ = ["WallClock", "Entropy", "UnseededRandom", "IdOrdering",
           "SetOrderLeak"]

#: Wall-clock readers.  ``time.sleep`` is deliberately absent: the
#: host-side experiment scheduler sleeps between retries, which delays
#: work but never feeds a value into a result.
_WALL_CLOCK = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

_ENTROPY = {"os.urandom", "uuid.uuid1", "uuid.uuid4"}

#: Files (path suffixes) where module-level :mod:`random` use is the
#: point: the seeded-stream factory itself.
_RNG_FACTORY_SUFFIX = "repro/sim/rng.py"


def _calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


@register
class WallClock(Rule):
    id = "DET101"
    name = "wall-clock"
    summary = ("no wall-clock reads (time.time/monotonic/perf_counter, "
               "datetime.now, ...): simulated time is Simulator.now")
    scope = "file"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for call in _calls(ctx.tree):
            chain = ctx.resolved_call_chain(call.func)
            if chain in _WALL_CLOCK:
                yield self.violation(
                    ctx, call,
                    f"wall-clock read `{chain}()` — simulation code must "
                    f"use `sim.now`; host-side tooling needs a justified "
                    f"suppression")


@register
class Entropy(Rule):
    id = "DET102"
    name = "entropy"
    summary = ("no OS entropy (os.urandom, uuid.uuid1/uuid4, secrets.*): "
               "identifiers and draws must derive from the master seed")
    scope = "file"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for call in _calls(ctx.tree):
            chain = ctx.resolved_call_chain(call.func)
            if chain is None:
                continue
            if chain in _ENTROPY or chain.startswith("secrets."):
                yield self.violation(
                    ctx, call,
                    f"entropy source `{chain}()` — derive ids and draws "
                    f"from RngRegistry named streams instead")


@register
class UnseededRandom(Rule):
    id = "DET103"
    name = "unseeded-random"
    summary = ("no module-level random.* calls or direct random.Random() "
               "outside repro/sim/rng.py: draw from RngRegistry streams")
    scope = "file"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.rel.endswith(_RNG_FACTORY_SUFFIX):
            return
        for call in _calls(ctx.tree):
            chain = ctx.resolved_call_chain(call.func)
            if chain is None or not chain.startswith("random."):
                continue
            # `rng.random()` on a stream object resolves to None (root
            # is a variable, not the module) and is the blessed path.
            yield self.violation(
                ctx, call,
                f"`{chain}()` bypasses the seeded stream registry — "
                f"route every draw through "
                f"`repro.sim.rng.RngRegistry.stream(name)`")


@register
class IdOrdering(Rule):
    id = "DET104"
    name = "id-ordering"
    summary = ("no ordering or <-comparison by id(): CPython addresses "
               "differ across runs and processes")
    scope = "file"

    _ORDER_FNS = {"sorted", "min", "max", "sort"}

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                fn = node.func
                fn_name = (fn.id if isinstance(fn, ast.Name)
                           else fn.attr if isinstance(fn, ast.Attribute)
                           else None)
                if fn_name in self._ORDER_FNS:
                    for kw in node.keywords:
                        if (kw.arg == "key"
                                and isinstance(kw.value, ast.Name)
                                and kw.value.id == "id"):
                            yield self.violation(
                                ctx, node,
                                f"`{fn_name}(..., key=id)` orders by "
                                f"object address — order by a stable "
                                f"field (sequence number, name) instead")
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                ranked = any(isinstance(op, (ast.Lt, ast.LtE, ast.Gt,
                                             ast.GtE))
                             for op in node.ops)
                if ranked and any(
                        isinstance(o, ast.Call)
                        and isinstance(o.func, ast.Name)
                        and o.func.id == "id" for o in operands):
                    yield self.violation(
                        ctx, node,
                        "ordering comparison on `id(...)` — object "
                        "addresses are not stable across runs")


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


@register
class SetOrderLeak(Rule):
    id = "DET105"
    name = "set-order-leak"
    summary = ("no iterating (or list()/tuple()/enumerate()-ing) a set "
               "expression: hash order is run-dependent — sorted() it")
    scope = "file"

    _MATERIALIZERS = {"list", "tuple", "enumerate", "iter"}

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        msg = ("iteration order of a set is hash-randomized across "
               "interpreter runs — wrap it in `sorted(...)` before it "
               "can feed event scheduling")
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter):
                    yield self.violation(ctx, node.iter, msg)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    if _is_set_expr(gen.iter):
                        yield self.violation(ctx, gen.iter, msg)
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Name)
                  and node.func.id in self._MATERIALIZERS
                  and node.args and _is_set_expr(node.args[0])):
                yield self.violation(ctx, node.args[0], msg)
