"""WIRE — wire-protocol conformance rules.

The distributed harness speaks an 11-frame-type versioned protocol
(``repro/exp/protocol.py``); the coordinator
(``repro/exp/backends/socket.py``) and the worker
(``repro/exp/worker.py``) each implement one side of the frame state
machine.  PRs 7–9 proved by hand that the two machines are duals —
every frame one side emits, the other dispatches on, and every
dispatch chain fails closed.  These rules extract both machines
statically and re-prove the duality on every lint run, so a handler
branch cannot be deleted (or a frame type added) without the linter
exiting nonzero.

Frame *sends* are recognised as dict literals carrying a
``"type": "<ALL-CAPS>"`` key — the harness builds every outbound frame
that way, and lowercase ``type`` dicts (journal events, task specs)
are deliberately ignored.  Frame *handling* is recognised as equality
/ membership comparisons against MESSAGE_TYPES vocabulary constants.

WIRE501  duality: a sent type must be in MESSAGE_TYPES, a type one
         side sends must be dispatched by the other, and every
         vocabulary entry must have a handler on at least one side.
WIRE502  a dispatch chain (two or more vocabulary comparisons in one
         function) must end fail-closed: a bare ``raise`` after the
         last dispatch arm, or a raising ``else``.  Silently dropping
         an unknown frame is how version skew becomes data loss.
WIRE503  a wire-derived value (from ``recv_frame``/``decode_body`` or
         a message-like parameter) must pass through a validator
         before reaching a filesystem path sink — a lightweight
         intra-module taint walk.
WIRE504  fields listed in ``protocol.VERSION_GATED_FIELDS`` may only
         be read in modules that gate on the protocol version
         (``check_versions`` or a ``PROTOCOL_VERSION`` reference).

All four are project-scope and locate their anchors by path suffix,
so they run identically on the real tree and on fixture trees; when
an anchor is missing from the lint set they stay silent (single-file
runs must not produce phantom duality findings).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..engine import FileContext
from ..project import (FUNC_NODES, ProjectIndex, frozenset_strings,
                       global_assign, own_body_nodes)
from ..registry import Rule, register
from ..violations import Violation

__all__ = ["FrameDuality", "DispatchFailClosed", "WireTaintToPath",
           "VersionGatedFieldRead"]

_PROTOCOL_SUFFIX = "repro/exp/protocol.py"
_WORKER_SUFFIX = "repro/exp/worker.py"
_COORDINATOR_SUFFIX = "repro/exp/backends/socket.py"

#: Importing any of these names from the protocol module makes a file
#: a wire endpoint (it parses or emits frames itself).
_PROTOCOL_IO = {"send_frame", "recv_frame", "decode_body",
                "encode_frame", "check_versions"}

#: Parameter names treated as wire-derived for the WIRE503 taint walk.
_MESSAGE_PARAMS = {"message", "msg", "reply", "frame", "welcome",
                   "body", "payload"}

#: Call chains that consume a filesystem path (taint sinks).
_PATH_SINKS = {
    "os.open", "os.remove", "os.unlink", "os.rename", "os.replace",
    "os.makedirs", "os.mkdir", "os.rmdir", "os.path.join",
    "pathlib.Path", "shutil.rmtree", "shutil.copy", "shutil.copyfile",
    "shutil.move",
}

#: Function-name fragments that launder a wire value (validators).
_SANITIZER_FRAGMENTS = ("valid", "check", "sanit", "key")
_SANITIZER_NAMES = {"int", "float", "len", "bool"}


def _sorted_by_pos(nodes: Sequence[ast.AST]) -> List[ast.AST]:
    return sorted(nodes, key=lambda n: (n.lineno, n.col_offset))


def _message_vocab(index: ProjectIndex) -> Tuple[Optional[FileContext],
                                                 Set[str]]:
    proto = index.find(_PROTOCOL_SUFFIX)
    if proto is None:
        return None, set()
    node = global_assign(proto, "MESSAGE_TYPES")
    if node is None:
        return proto, set()
    types = frozenset_strings(node.value)
    return proto, set(types or ())


def _sent_types(ctx: FileContext) -> Dict[str, ast.AST]:
    """Frame type -> first dict-literal construction site.

    A send is a ``{..., "type": "<ALL-CAPS>", ...}`` literal: every
    outbound frame in the harness is built as one, while journal
    events and task specs use lowercase ``type`` tags.
    """
    out: Dict[str, ast.AST] = {}
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Dict):
            continue
        for key, value in zip(node.keys, node.values):
            if not (isinstance(key, ast.Constant) and key.value == "type"
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)):
                continue
            mtype = value.value
            if not mtype or mtype != mtype.upper():
                continue
            if mtype not in out:
                out[mtype] = node
    return out


def _compared_constants(test: ast.AST, vocab: Set[str],
                        positive_only: bool = False) -> Set[str]:
    """Vocabulary constants an expression compares against."""
    found: Set[str] = set()
    for node in ast.walk(test):
        if not isinstance(node, ast.Compare):
            continue
        ops_ok = (all(isinstance(op, ast.Eq) for op in node.ops)
                  if positive_only else
                  all(isinstance(op, (ast.Eq, ast.NotEq, ast.In))
                      for op in node.ops))
        if not ops_ok:
            continue
        for side in [node.left] + list(node.comparators):
            if (isinstance(side, ast.Constant)
                    and isinstance(side.value, str)
                    and side.value in vocab):
                found.add(side.value)
            elif isinstance(side, (ast.Tuple, ast.Set, ast.List)):
                for elt in side.elts:
                    if (isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)
                            and elt.value in vocab):
                        found.add(elt.value)
    return found


def _handled_types(ctx: FileContext, vocab: Set[str]) -> Set[str]:
    found: Set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Compare):
            found |= _compared_constants(node, vocab)
    return found


def _is_endpoint(index: ProjectIndex, ctx: FileContext) -> bool:
    if ctx.rel.endswith(_PROTOCOL_SUFFIX):
        return False
    for name, parts in index.imports(ctx).items():
        if (name in _PROTOCOL_IO and len(parts) >= 2
                and parts[-2] == "protocol"):
            return True
    return False


@register
class FrameDuality(Rule):
    id = "WIRE501"
    name = "frame-duality"
    summary = ("every frame type one side sends must be in "
               "MESSAGE_TYPES and dispatched by the other side, and "
               "every vocabulary entry must have a handler somewhere")
    scope = "project"

    def check_project(self, files: Dict[str, FileContext],
                      index: Optional[ProjectIndex] = None
                      ) -> Iterator[Violation]:
        index = index or ProjectIndex(files)
        proto, vocab = _message_vocab(index)
        worker = index.find(_WORKER_SUFFIX)
        coord = index.find(_COORDINATOR_SUFFIX)
        if proto is None or not vocab or worker is None or coord is None:
            return  # an anchor is outside the lint set; stay silent
        w_sent = _sent_types(worker)
        c_sent = _sent_types(coord)
        w_handled = _handled_types(worker, vocab)
        c_handled = _handled_types(coord, vocab)
        for mtype, node in sorted(w_sent.items()):
            if mtype not in vocab:
                yield self.violation(
                    worker, node,
                    f"worker builds a frame of type {mtype!r} that is "
                    f"not in protocol.MESSAGE_TYPES — the coordinator's "
                    f"fail-closed dispatch will kill the connection on "
                    f"first contact")
            elif mtype not in c_handled:
                yield self.violation(
                    worker, node,
                    f"worker sends {mtype!r} but the coordinator never "
                    f"dispatches on it — the frame falls into the "
                    f"coordinator's fail-closed arm and the session "
                    f"dies")
        for mtype, node in sorted(c_sent.items()):
            if mtype not in vocab:
                yield self.violation(
                    coord, node,
                    f"coordinator builds a frame of type {mtype!r} "
                    f"that is not in protocol.MESSAGE_TYPES — the "
                    f"worker's dispatch cannot have a matching arm")
            elif mtype not in w_handled:
                yield self.violation(
                    coord, node,
                    f"coordinator sends {mtype!r} but the worker never "
                    f"dispatches on it — the frame is dead on arrival")
        anchor = global_assign(proto, "MESSAGE_TYPES")
        for mtype in sorted(vocab):
            if mtype not in (w_handled | c_handled):
                yield self.violation(
                    proto, anchor,
                    f"MESSAGE_TYPES entry {mtype!r} has no dispatch "
                    f"arm in either the worker or the coordinator — a "
                    f"vocabulary entry nobody handles is either dead "
                    f"protocol surface or a silently-dropped frame")


@register
class DispatchFailClosed(Rule):
    id = "WIRE502"
    name = "dispatch-fail-closed"
    summary = ("a frame dispatch chain (>=2 vocabulary comparisons in "
               "one function) must end in a raise — unknown frames "
               "must not be silently dropped")
    scope = "project"

    def check_project(self, files: Dict[str, FileContext],
                      index: Optional[ProjectIndex] = None
                      ) -> Iterator[Violation]:
        index = index or ProjectIndex(files)
        proto, vocab = _message_vocab(index)
        if proto is None or not vocab:
            return
        for ctx in index.sorted_contexts():
            if not _is_endpoint(index, ctx):
                continue
            for fn in ast.walk(ctx.tree):
                if not isinstance(fn, FUNC_NODES):
                    continue
                yield from self._check_function(ctx, fn, vocab)

    def _check_function(self, ctx: FileContext, fn: ast.AST,
                        vocab: Set[str]) -> Iterator[Violation]:
        for block in self._blocks(fn):
            arms = [stmt for stmt in block
                    if isinstance(stmt, ast.If)
                    and _compared_constants(stmt.test, vocab,
                                            positive_only=True)]
            if len(arms) < 2:
                continue
            last = arms[-1]
            if self._fail_closed_after(block, last):
                continue
            if self._raises(last.orelse):
                continue
            types = sorted({t for stmt in arms
                            for t in _compared_constants(
                                stmt.test, vocab, positive_only=True)})
            yield self.violation(
                ctx, fn,
                f"`{fn.name}` dispatches over frame types "
                f"({', '.join(types)}) but the chain falls through "
                f"without a raise — an unknown or misrouted frame is "
                f"silently dropped instead of failing closed; add a "
                f"trailing `raise` (see the coordinator's `_handle`)")
            return  # one finding per function is enough

    @staticmethod
    def _blocks(fn: ast.AST) -> Iterator[List[ast.AST]]:
        # Own statement lists only: a nested def is its own dispatch
        # unit and is visited separately by check_project.
        stack: List[ast.AST] = [fn]
        while stack:
            node = stack.pop()
            if isinstance(node, FUNC_NODES) and node is not fn:
                continue
            for field in ("body", "orelse", "finalbody"):
                block = getattr(node, field, None)
                if isinstance(block, list) and block:
                    yield block
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _fail_closed_after(block: List[ast.AST],
                           last_arm: ast.AST) -> bool:
        idx = block.index(last_arm)
        for stmt in block[idx + 1:]:
            if isinstance(stmt, ast.Raise):
                return True
            for node in ast.walk(stmt):
                if isinstance(node, ast.Raise):
                    return True
        # The last arm itself may raise on its final statement
        # (`if mtype == "BYE": raise _Eof(...)`) *and* be followed by
        # nothing — that still leaves the fall-through open.
        return False

    @staticmethod
    def _raises(orelse: List[ast.AST]) -> bool:
        for stmt in orelse:
            if isinstance(stmt, ast.Raise):
                return True
            if isinstance(stmt, ast.If):
                return DispatchFailClosed._raises(stmt.body) and \
                    DispatchFailClosed._raises(stmt.orelse)
        return False


class _TaintWalk:
    """Forward may-taint pass over one function, two fixpoint rounds."""

    def __init__(self, ctx: FileContext, fn: ast.AST):
        self.ctx = ctx
        self.fn = fn
        self.tainted: Set[str] = set()
        args = fn.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs):
            if arg.arg in _MESSAGE_PARAMS:
                self.tainted.add(arg.arg)

    # -- expression classification ---------------------------------------
    def _is_source_call(self, node: ast.Call) -> bool:
        func = node.func
        name = (func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None)
        return name in {"recv_frame", "decode_body", "check_versions"}

    def _is_sanitizer_call(self, node: ast.Call) -> bool:
        func = node.func
        name = (func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None)
        if name is None:
            return False
        if name in _SANITIZER_NAMES:
            return True
        low = name.lower()
        return any(frag in low for frag in _SANITIZER_FRAGMENTS)

    def expr_tainted(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Call):
            if self._is_source_call(node):
                return True
            if self._is_sanitizer_call(node):
                return False
            # str(tainted), tainted.get("k"), os.path.basename(tainted):
            # transformation is not validation, so taint flows through
            # both arguments and the method receiver.
            if any(self.expr_tainted(arg) for arg in node.args):
                return True
            return (isinstance(node.func, ast.Attribute)
                    and self.expr_tainted(node.func.value))
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Attribute):
            return self.expr_tainted(node.value)
        if isinstance(node, ast.Subscript):
            return self.expr_tainted(node.value)
        if isinstance(node, ast.BinOp):
            return (self.expr_tainted(node.left)
                    or self.expr_tainted(node.right))
        if isinstance(node, ast.JoinedStr):
            return any(self.expr_tainted(v.value)
                       for v in node.values
                       if isinstance(v, ast.FormattedValue))
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any(self.expr_tainted(e) for e in node.elts)
        if isinstance(node, ast.IfExp):
            return (self.expr_tainted(node.body)
                    or self.expr_tainted(node.orelse))
        return False

    # -- propagation -----------------------------------------------------
    def propagate(self) -> None:
        for _round in range(2):
            for node in own_body_nodes(self.fn):
                if isinstance(node, ast.Assign):
                    if self.expr_tainted(node.value):
                        for t in node.targets:
                            self._taint_target(t)
                elif isinstance(node, ast.AnnAssign):
                    if node.value is not None \
                            and self.expr_tainted(node.value):
                        self._taint_target(node.target)
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    if self.expr_tainted(node.iter):
                        self._taint_target(node.target)

    def _taint_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.tainted.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._taint_target(elt)


@register
class WireTaintToPath(Rule):
    id = "WIRE503"
    name = "wire-taint-to-path"
    summary = ("wire-derived values must flow through a validator "
               "before reaching a filesystem path sink")
    scope = "project"

    def check_project(self, files: Dict[str, FileContext],
                      index: Optional[ProjectIndex] = None
                      ) -> Iterator[Violation]:
        index = index or ProjectIndex(files)
        proto, _vocab = _message_vocab(index)
        if proto is None:
            return
        for ctx in index.sorted_contexts():
            if not _is_endpoint(index, ctx):
                continue
            for fn in ast.walk(ctx.tree):
                if not isinstance(fn, FUNC_NODES):
                    continue
                yield from self._check_function(ctx, fn)

    def _check_function(self, ctx: FileContext,
                        fn: ast.AST) -> Iterator[Violation]:
        walk = _TaintWalk(ctx, fn)
        if not walk.tainted and not any(
                isinstance(n, ast.Call) and walk._is_source_call(n)
                for n in own_body_nodes(fn)):
            return
        walk.propagate()
        for node in own_body_nodes(fn):
            if not isinstance(node, ast.Call):
                continue
            if not self._is_path_sink(ctx, node):
                continue
            for arg in node.args:
                if walk.expr_tainted(arg):
                    yield self.violation(
                        ctx, node,
                        f"wire-derived value reaches a filesystem "
                        f"path sink in `{fn.name}` without passing "
                        f"through a validator — a malicious peer "
                        f"controls this path (use the cache key check "
                        f"or an explicit validator before touching "
                        f"the filesystem)")
                    break

    @staticmethod
    def _is_path_sink(ctx: FileContext, node: ast.Call) -> bool:
        chain = ctx.resolved_call_chain(node.func)
        if chain in _PATH_SINKS:
            return True
        func = node.func
        return isinstance(func, ast.Name) and func.id in {"open", "Path"}


@register
class VersionGatedFieldRead(Rule):
    id = "WIRE504"
    name = "version-gated-field-read"
    summary = ("fields in protocol.VERSION_GATED_FIELDS may only be "
               "read by modules that gate on the protocol version")
    scope = "project"

    def check_project(self, files: Dict[str, FileContext],
                      index: Optional[ProjectIndex] = None
                      ) -> Iterator[Violation]:
        index = index or ProjectIndex(files)
        proto, _vocab = _message_vocab(index)
        if proto is None:
            return
        gated = self._gated_fields(proto)
        if not gated:
            return
        for ctx in index.sorted_contexts():
            if not _is_endpoint(index, ctx):
                continue
            if self._module_gates(ctx):
                continue
            for node in _sorted_by_pos(
                    [n for n in ast.walk(ctx.tree)
                     if self._gated_read(n, gated) is not None]):
                field = self._gated_read(node, gated)
                yield self.violation(
                    ctx, node,
                    f"reads version-gated field {field!r} (added in "
                    f"protocol v{gated[field]}) but this module never "
                    f"checks the protocol version — an older peer "
                    f"simply omits the field and the read misparses; "
                    f"call check_versions() or gate on "
                    f"PROTOCOL_VERSION first")

    @staticmethod
    def _gated_fields(proto: FileContext) -> Dict[str, object]:
        node = global_assign(proto, "VERSION_GATED_FIELDS")
        if node is None or not isinstance(node.value, ast.Dict):
            return {}
        out: Dict[str, object] = {}
        for key, value in zip(node.value.keys, node.value.values):
            if isinstance(key, ast.Constant) \
                    and isinstance(key.value, str):
                out[key.value] = (value.value
                                  if isinstance(value, ast.Constant)
                                  else "?")
        return out

    @staticmethod
    def _module_gates(ctx: FileContext) -> bool:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Name) \
                    and node.id == "PROTOCOL_VERSION":
                return True
            if isinstance(node, ast.Call):
                func = node.func
                name = (func.id if isinstance(func, ast.Name)
                        else func.attr
                        if isinstance(func, ast.Attribute) else None)
                if name == "check_versions":
                    return True
        return False

    @staticmethod
    def _gated_read(node: ast.AST, gated: Dict[str, object]
                    ) -> Optional[str]:
        # message.get("field") / message["field"] reads
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get" and node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value in gated):
            return node.args[0].value
        if (isinstance(node, ast.Subscript)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.slice, ast.Constant)
                and node.slice.value in gated
                and isinstance(node.slice.value, str)):
            return node.slice.value
        return None
