"""SIM — simulation-safety rules.

The kernel's contract is narrow: processes yield :class:`Event`\\ s,
``call_at``/``call_soon`` take plain callables, hot-path records are
slotted, and nothing mutates a container it is iterating.  Each rule
here catches one way of violating that contract that fails *silently*
or far from the cause at runtime (a generator handed to ``call_soon``
is created and never advanced; an unslotted ``Event`` subclass quietly
grows a ``__dict__`` and the zero-allocation claim rots).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from ..engine import FileContext
from ..registry import Rule, register
from ..violations import Violation

__all__ = ["YieldNonEvent", "GeneratorCallback", "MissingSlots",
           "MutateDuringIteration"]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SKIP_SCOPES = _FUNC_NODES + (ast.Lambda, ast.ClassDef)


def _own_statements(fn: ast.AST, *, skip_dead: bool = False):
    """Nodes belonging to ``fn``'s own body — nested defs/lambdas/classes
    are opaque.  With ``skip_dead``, statically-false ``if`` arms are
    skipped (the ``if False: yield`` keep-me-a-generator idiom)."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, _SKIP_SCOPES):
            continue
        if (skip_dead and isinstance(node, ast.If)
                and isinstance(node.test, ast.Constant)
                and not node.test.value):
            stack.extend(node.orelse)
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_generator(fn: ast.AST) -> bool:
    return any(isinstance(n, (ast.Yield, ast.YieldFrom))
               for n in _own_statements(fn))


def _function_index(tree: ast.Module) -> Dict[str, List[ast.AST]]:
    """Every function/method definition in the module, by bare name.

    Nested functions are included — perftest-style experiments define
    their process generators inline.  Collisions keep all candidates;
    callers treat a hit on *any* candidate as a finding (rare in
    practice, and suppressible).
    """
    index: Dict[str, List[ast.AST]] = {}
    for node in ast.walk(tree):
        if isinstance(node, _FUNC_NODES):
            index.setdefault(node.name, []).append(node)
    return index


def _callee_name(expr: ast.AST) -> Optional[str]:
    """Bare name of a callback/generator reference: ``pump`` or
    ``self._pump`` (any attribute chain resolves to its last part)."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


@register
class YieldNonEvent(Rule):
    id = "SIM201"
    name = "yield-non-event"
    summary = ("a generator registered via sim.process() must yield "
               "event expressions — never bare `yield` or literals")
    scope = "file"

    _LITERALS = (ast.Constant, ast.Tuple, ast.List, ast.Set, ast.Dict,
                 ast.JoinedStr)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        registered: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "process" and node.args):
                gen = node.args[0]
                if isinstance(gen, ast.Call):
                    name = _callee_name(gen.func)
                    if name:
                        registered.add(name)
        if not registered:
            return
        index = _function_index(ctx.tree)
        for name in sorted(registered):
            for fn in index.get(name, ()):
                if not _is_generator(fn):
                    continue
                for node in _own_statements(fn, skip_dead=True):
                    if not isinstance(node, ast.Yield):
                        continue
                    if node.value is None:
                        yield self.violation(
                            ctx, node,
                            f"process generator {name!r} has a bare "
                            f"`yield` — the kernel rejects non-event "
                            f"yields at runtime, long after the cause")
                    elif isinstance(node.value, self._LITERALS):
                        yield self.violation(
                            ctx, node,
                            f"process generator {name!r} yields a "
                            f"literal — processes wait by yielding "
                            f"events (e.g. `yield sim.timeout(delay)`)")


@register
class GeneratorCallback(Rule):
    id = "SIM202"
    name = "generator-callback"
    summary = ("call_soon/call_at must get a plain callable: passing a "
               "generator function creates a generator that never runs")
    scope = "file"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        index = _function_index(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("call_soon", "call_at")):
                continue
            fn_pos = 0 if node.func.attr == "call_soon" else 1
            cb: Optional[ast.AST] = None
            if len(node.args) > fn_pos:
                cb = node.args[fn_pos]
            else:
                for kw in node.keywords:
                    if kw.arg == "fn":
                        cb = kw.value
            if cb is None:
                continue
            name = _callee_name(cb)
            if name is None:
                continue
            if any(_is_generator(fn) for fn in index.get(name, ())):
                yield self.violation(
                    ctx, node,
                    f"{node.func.attr}() given generator function "
                    f"{name!r}: the call returns a suspended generator "
                    f"and the callback body never executes — register "
                    f"it with sim.process() instead")


#: Classes whose subclasses ride the event heap / hot path: leaving
#: ``__slots__`` off a subclass silently re-grows a per-instance
#: ``__dict__`` and voids the kernel's zero-allocation accounting.
_SLOTTED_BASES = {
    "Event", "Timeout", "ReusableTimeout", "Process", "_Callback",
    "_Condition", "AnyOf", "AllOf", "StorePut", "StoreGet",
    "ResourceRequest", "Frame",
}


@register
class MissingSlots(Rule):
    id = "SIM203"
    name = "missing-slots"
    summary = ("hot-path record classes (Event/Frame subclasses, and "
               "subclasses of in-module slotted classes) must declare "
               "__slots__")
    scope = "file"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        classes = [n for n in ast.walk(ctx.tree)
                   if isinstance(n, ast.ClassDef)]
        slotted_local = {c.name for c in classes if self._has_slots(c)}
        bases_needing_slots = _SLOTTED_BASES | slotted_local
        for cls in classes:
            base_names = {b.id if isinstance(b, ast.Name)
                          else b.attr if isinstance(b, ast.Attribute)
                          else "" for b in cls.bases}
            hit = base_names & bases_needing_slots
            if hit and not self._has_slots(cls):
                yield self.violation(
                    ctx, cls,
                    f"class {cls.name!r} extends slotted hot-path "
                    f"record {sorted(hit)[0]!r} without declaring "
                    f"__slots__ — instances grow a __dict__ and the "
                    f"zero-allocation fast path rots (use "
                    f"`__slots__ = ()` when adding no fields)")

    @staticmethod
    def _has_slots(cls: ast.ClassDef) -> bool:
        for stmt in cls.body:
            if isinstance(stmt, ast.Assign):
                if any(isinstance(t, ast.Name) and t.id == "__slots__"
                       for t in stmt.targets):
                    return True
            elif isinstance(stmt, ast.AnnAssign):
                if (isinstance(stmt.target, ast.Name)
                        and stmt.target.id == "__slots__"):
                    return True
        return False


_MUTATORS = {
    "append", "appendleft", "add", "insert", "extend", "remove",
    "discard", "pop", "popleft", "popitem", "clear", "update",
    "setdefault",
}


def _simple_target(expr: ast.AST) -> Optional[str]:
    """Canonical form of a plain name / dotted-attribute chain, or
    ``None`` for anything with calls or subscripts in it."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@register
class MutateDuringIteration(Rule):
    id = "SIM204"
    name = "mutate-during-iteration"
    summary = ("no structural mutation of a container inside its own "
               "for-loop: iterate a copy (`list(c)`) or collect-then-"
               "apply")
    scope = "file"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.For, ast.AsyncFor)):
                continue
            target = _simple_target(loop.iter)
            if target is None:  # iterating a copy/call — safe
                continue
            for node in self._loop_body_nodes(loop):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _MUTATORS
                        and _simple_target(node.func.value) == target):
                    yield self.violation(
                        ctx, node,
                        f"`{target}.{node.func.attr}(...)` mutates "
                        f"`{target}` while iterating it — resize during "
                        f"iteration skips or repeats elements "
                        f"nondeterministically")
                elif isinstance(node, ast.Delete):
                    for tgt in node.targets:
                        if (isinstance(tgt, ast.Subscript)
                                and _simple_target(tgt.value) == target):
                            yield self.violation(
                                ctx, node,
                                f"`del {target}[...]` inside the loop "
                                f"iterating `{target}`")

    @staticmethod
    def _loop_body_nodes(loop: ast.AST):
        stack: List[ast.AST] = list(loop.body)
        while stack:
            node = stack.pop()
            if isinstance(node, _SKIP_SCOPES):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))
