"""Shared project symbol-table pass: thread model + call-graph reach.

PR 10 adds two rule families that both need to answer the same
questions about a module before they can say anything useful:

* which functions run on a spawned thread?  (``CON`` needs the split
  between thread context and main-thread context to reason about
  shared attributes and lock discipline);
* where do imports actually point, and which file in the lint set is
  the protocol / worker / coordinator anchor?  (``WIRE`` extracts one
  frame state machine per endpoint and compares them).

Rather than each rule re-walking the AST with its own half of the
answer, this module builds the answers once.  The engine constructs a
single :class:`ProjectIndex` per run and hands it to every
project-scope rule; file-scope rules call :func:`thread_model`
directly (results are memoised on the :class:`FileContext`).

Thread-entry inference
----------------------

A function is a *thread entry* when it appears as the ``target=`` of a
``threading.Thread(...)`` construction — ``target=name`` for module
functions, ``target=self.attr`` for methods (resolved against the
enclosing class).  From the entries we take a call-graph closure over
*bare-name* references: function ``f`` reaches ``g`` when ``f``'s body
mentions ``g``'s name as a call, a bare reference (callback passing:
``record=self.record``), or an attribute tail (``self._link.send``).
Bare-name matching over-approximates on collisions, which is the safe
direction for a concurrency linter: treating main-thread code as
threaded can at worst demand a lock that is merely redundant.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .engine import FileContext

__all__ = ["ProjectIndex", "ThreadModel", "FunctionInfo", "thread_model",
           "find_file", "module_parts", "resolve_imports", "dotted_name",
           "frozenset_strings", "global_assign", "is_lockish",
           "FUNC_NODES", "LOCK_FACTORIES", "THREADSAFE_FACTORIES"]

FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Constructors whose result is a lock-like guard object.
LOCK_FACTORIES = {"threading.Lock", "threading.RLock"}

#: Constructors whose result is internally synchronised — attributes
#: holding one of these are exempt from CON401 (calling ``.set()`` on
#: an Event from two threads is the *point* of an Event).
THREADSAFE_FACTORIES = {
    "threading.Event", "threading.Condition", "threading.Semaphore",
    "threading.BoundedSemaphore", "threading.Barrier",
    "queue.Queue", "queue.LifoQueue", "queue.PriorityQueue",
    "queue.SimpleQueue",
}


# -- generic helpers (shared with the PAR family) ------------------------

def find_file(files: Dict[str, FileContext],
              suffix: str) -> Optional[FileContext]:
    """First parsed context whose relative path ends with ``suffix``."""
    for rel, ctx in files.items():
        if rel.endswith(suffix) and ctx.tree is not None:
            return ctx
    return None


def module_parts(rel: str) -> List[str]:
    """``src/repro/sim/_legacy.py`` -> ``["repro", "sim", "_legacy"]``
    (best effort: everything from the first ``repro`` component on)."""
    parts = rel[:-3].split("/") if rel.endswith(".py") else rel.split("/")
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    return parts


def resolve_imports(ctx: FileContext) -> Dict[str, List[str]]:
    """Local alias -> absolute dotted-path parts, for every import in
    the file, with relative levels resolved against the file path."""
    pkg = module_parts(ctx.rel)[:-1]  # containing package
    table: Dict[str, List[str]] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                table[local] = (alias.name.split(".") if alias.asname
                                else [alias.name.split(".")[0]])
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = (pkg[:len(pkg) - (node.level - 1)]
                        if node.level <= len(pkg) + 1 else [])
            else:
                base = []
            base = base + (node.module.split(".") if node.module else [])
            for alias in node.names:
                if alias.name == "*":
                    continue
                table[alias.asname or alias.name] = base + [alias.name]
    return table


def dotted_name(node: ast.AST) -> Optional[str]:
    """``self._link.lock`` -> ``"self._link.lock"``; ``None`` when the
    expression is not a plain dotted chain rooted at a Name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def is_lockish(dotted: Optional[str]) -> bool:
    """Heuristic: the last path component names a lock (``self._lock``,
    ``self._link.lock``, ``_registry_lock``, ``mutex``)."""
    if not dotted:
        return False
    tail = dotted.rsplit(".", 1)[-1].lower()
    return "lock" in tail or "mutex" in tail


def frozenset_strings(node: ast.AST) -> Optional[List[str]]:
    """String elements of a ``frozenset({...})`` / ``frozenset([...])``
    literal, or ``None`` when the value is not that shape."""
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "frozenset" and len(node.args) == 1
            and not node.keywords):
        return None
    arg = node.args[0]
    if not isinstance(arg, (ast.Set, ast.List, ast.Tuple)):
        return None
    out: List[str] = []
    for elt in arg.elts:
        if not (isinstance(elt, ast.Constant)
                and isinstance(elt.value, str)):
            return None
        out.append(elt.value)
    return out


def global_assign(ctx: FileContext, name: str) -> Optional[ast.AST]:
    """The module-level ``name = ...`` statement, if any."""
    for node in ctx.tree.body:
        if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == name
                for t in node.targets):
            return node
        if (isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.target.id == name and node.value is not None):
            return node
    return None


# -- per-module thread model ---------------------------------------------

class FunctionInfo:
    """One function (or method, or nested def) in a module."""

    __slots__ = ("qualname", "cls", "node", "refs")

    def __init__(self, qualname: str, cls: Optional[str], node: ast.AST):
        self.qualname = qualname
        self.cls = cls
        self.node = node
        #: Bare names this function's own body references (call targets,
        #: attribute tails, plain Name loads) — the call-graph edges.
        self.refs: Set[str] = set()

    @property
    def bare(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


def own_body_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Every node in ``fn``'s body *excluding* nested function defs —
    a nested def is its own unit with its own thread context."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, FUNC_NODES):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class ThreadModel:
    """Which functions of one module run on a spawned thread."""

    def __init__(self, ctx: FileContext):
        self.ctx = ctx
        #: qualname -> FunctionInfo for every def in the module.
        self.functions: Dict[str, FunctionInfo] = {}
        #: bare name -> qualnames sharing it (collision-tolerant index).
        self.by_bare: Dict[str, Set[str]] = {}
        #: qualnames named as ``Thread(target=...)``.
        self.entries: Set[str] = set()
        #: subset of entries constructed with ``daemon=True``.
        self.daemon_entries: Set[str] = set()
        #: entries plus everything bare-name-reachable from them.
        self.threaded: Set[str] = set()
        #: class name -> attrs assigned a Lock/RLock in that class.
        self.lock_attrs: Dict[str, Set[str]] = {}
        #: class name -> attrs assigned an internally-synchronised
        #: object (Event, Queue, ...).
        self.safe_attrs: Dict[str, Set[str]] = {}
        #: names assigned at module top level (CON404's "module state").
        self.module_globals: Set[str] = set()
        if ctx.tree is not None:
            self._build()

    # -- construction ----------------------------------------------------
    def _build(self) -> None:
        tree = self.ctx.tree
        for node in tree.body:
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        self.module_globals.add(t.id)
            elif (isinstance(node, ast.AnnAssign)
                  and isinstance(node.target, ast.Name)):
                self.module_globals.add(node.target.id)
        self._collect_functions(tree, cls=None)
        for info in self.functions.values():
            self.by_bare.setdefault(info.bare, set()).add(info.qualname)
        for info in self.functions.values():
            self._collect_refs(info)
            self._collect_entries(info.node, info.cls,
                                  skip_nested_defs=True)
        # Module-level Thread(...) constructions (no enclosing def).
        self._collect_entries(tree, cls=None, skip_nested_defs=True,
                              top_level=True)
        self._collect_attr_classes(tree)
        self._close_over_refs()

    def _collect_functions(self, node: ast.AST, cls: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                self._collect_functions(child, cls=child.name)
            elif isinstance(child, FUNC_NODES):
                qual = f"{cls}.{child.name}" if cls else child.name
                # Last definition wins on duplicates; fine for analysis.
                self.functions[qual] = FunctionInfo(qual, cls, child)
                self._collect_functions(child, cls=cls)
            else:
                self._collect_functions(child, cls=cls)

    def _collect_refs(self, info: FunctionInfo) -> None:
        for node in own_body_nodes(info.node):
            if isinstance(node, ast.Call) and isinstance(node.func,
                                                         ast.Name):
                info.refs.add(node.func.id)
            elif isinstance(node, ast.Name):
                if node.id in self.by_bare:
                    info.refs.add(node.id)
            elif isinstance(node, ast.Attribute):
                # Attribute references (method calls, callback passing
                # like `record=self.record`) count only when rooted at
                # ``self`` — matching `dst.close()` against every
                # method named `close` would wrongly mark main-thread
                # teardown code as threaded and hide real CON401 races.
                if node.attr not in self.by_bare:
                    continue
                base = dotted_name(node.value)
                if base == "self" or (base or "").startswith("self."):
                    info.refs.add(node.attr)

    def _thread_target(self, call: ast.Call,
                       cls: Optional[str]) -> Tuple[Optional[str], bool]:
        """(entry key, daemon flag) of a ``Thread(...)`` call, if any."""
        chain = self.ctx.resolved_call_chain(call.func)
        if chain != "threading.Thread":
            return None, False
        target = None
        daemon = False
        for kw in call.keywords:
            if kw.arg == "target":
                target = kw.value
            elif kw.arg == "daemon":
                daemon = (isinstance(kw.value, ast.Constant)
                          and bool(kw.value.value))
        if target is None:
            return None, daemon
        if isinstance(target, ast.Name):
            return target.id, daemon
        if isinstance(target, ast.Attribute):
            if (isinstance(target.value, ast.Name)
                    and target.value.id == "self" and cls):
                return f"{cls}.{target.attr}", daemon
            return target.attr, daemon
        return None, daemon

    def _collect_entries(self, scope: ast.AST, cls: Optional[str],
                         skip_nested_defs: bool,
                         top_level: bool = False) -> None:
        nodes = (own_body_nodes(scope) if skip_nested_defs and not top_level
                 else self._top_level_nodes(scope) if top_level
                 else ast.walk(scope))
        for node in nodes:
            if not isinstance(node, ast.Call):
                continue
            key, daemon = self._thread_target(node, cls)
            if key is None:
                continue
            for qual in self._resolve_entry(key):
                self.entries.add(qual)
                if daemon:
                    self.daemon_entries.add(qual)

    def _top_level_nodes(self, tree: ast.AST) -> Iterator[ast.AST]:
        for stmt in ast.iter_child_nodes(tree):
            if isinstance(stmt, FUNC_NODES + (ast.ClassDef,)):
                continue
            yield stmt
            yield from ast.walk(stmt)

    def _resolve_entry(self, key: str) -> Set[str]:
        if key in self.functions:
            return {key}
        bare = key.rsplit(".", 1)[-1]
        return set(self.by_bare.get(bare, ()))

    def _collect_attr_classes(self, tree: ast.Module) -> None:
        for info in self.functions.values():
            if info.cls is None:
                continue
            for node in own_body_nodes(info.node):
                if not isinstance(node, ast.Assign):
                    continue
                for t in node.targets:
                    if not (isinstance(t, ast.Attribute)
                            and isinstance(t.value, ast.Name)
                            and t.value.id == "self"):
                        continue
                    chain = (self.ctx.resolved_call_chain(node.value.func)
                             if isinstance(node.value, ast.Call) else None)
                    if chain in LOCK_FACTORIES:
                        self.lock_attrs.setdefault(info.cls,
                                                   set()).add(t.attr)
                    elif chain in THREADSAFE_FACTORIES:
                        self.safe_attrs.setdefault(info.cls,
                                                   set()).add(t.attr)

    def _close_over_refs(self) -> None:
        work = sorted(self.entries)
        self.threaded = set(work)
        while work:
            qual = work.pop()
            info = self.functions.get(qual)
            if info is None:
                continue
            for ref in info.refs:
                for nxt in self.by_bare.get(ref, ()):
                    if nxt not in self.threaded:
                        self.threaded.add(nxt)
                        work.append(nxt)

    # -- queries ---------------------------------------------------------
    def is_threaded(self, qualname: str) -> bool:
        return qualname in self.threaded

    def class_lock_attrs(self, cls: str) -> Set[str]:
        return self.lock_attrs.get(cls, set())

    def class_safe_attrs(self, cls: str) -> Set[str]:
        return self.safe_attrs.get(cls, set())


def thread_model(ctx: FileContext) -> ThreadModel:
    """Memoised :class:`ThreadModel` for one file context."""
    model = getattr(ctx, "_thread_model", None)
    if model is None:
        model = ThreadModel(ctx)
        ctx._thread_model = model
    return model


# -- whole-run index -----------------------------------------------------

class ProjectIndex:
    """One-per-run view of the lint set for project-scope rules.

    Wraps the ``files`` dict the engine already builds and memoises the
    expensive per-module answers (thread models, resolved imports) so
    CON, WIRE and PAR rules share one symbol-table pass instead of
    three.
    """

    def __init__(self, files: Dict[str, FileContext]):
        self.files = files
        self._imports: Dict[str, Dict[str, List[str]]] = {}

    def find(self, suffix: str) -> Optional[FileContext]:
        return find_file(self.files, suffix)

    def thread_model(self, ctx: FileContext) -> ThreadModel:
        return thread_model(ctx)

    def imports(self, ctx: FileContext) -> Dict[str, List[str]]:
        table = self._imports.get(ctx.rel)
        if table is None:
            table = resolve_imports(ctx)
            self._imports[ctx.rel] = table
        return table

    def sorted_contexts(self) -> Iterator[FileContext]:
        for rel in sorted(self.files):
            ctx = self.files[rel]
            if ctx.tree is not None:
                yield ctx
