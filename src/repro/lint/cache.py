"""Incremental lint cache.

Same content-addressed scheme as :mod:`repro.exp.cache`: the key is a
SHA-256 over everything that can change a file's verdict — the file's
source, the enabled rule set, the engine version and a digest of the
linter's own source — so editing a rule, flipping ``--select`` or
touching the file all invalidate exactly the affected entries.  Entries
live under ``<cache-root>/lint/`` next to the experiment results, one
JSON file per (file, configuration) pair; a corrupted entry is a miss,
never an error.

Project-scope rules (the PAR family) are *not* cached: their verdicts
depend on pairs of files, which a per-file digest cannot key, and they
are cheap.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import List, Optional, Sequence, Union

from .violations import Violation

__all__ = ["DEFAULT_CACHE_DIR", "LintCache", "lint_source_digest"]

#: Shared with :data:`repro.exp.cache.DEFAULT_CACHE_DIR` by value; the
#: lint entries live in a ``lint/`` subdirectory so ``repro.exp``'s
#: ``clear()`` (which globs the top level) and this cache never collide.
DEFAULT_CACHE_DIR = ".repro-cache"

_digest_memo: Optional[str] = None


def lint_source_digest() -> str:
    """SHA-256 over the linter's own source files.

    The analogue of :func:`repro.exp.cache.source_digest`: editing any
    rule or engine module changes this digest and therefore every key,
    so a stale verdict can never survive a linter change.
    """
    global _digest_memo
    if _digest_memo is None:
        pkg = Path(__file__).parent
        h = hashlib.sha256()
        for path in sorted(pkg.rglob("*.py")):
            h.update(path.relative_to(pkg).as_posix().encode())
            h.update(b"\0")
            h.update(path.read_bytes())
        _digest_memo = h.hexdigest()
    return _digest_memo


class LintCache:
    """Content-addressed per-file lint verdicts under ``root``."""

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR):
        self.root = Path(root) / "lint"
        self.hits = 0
        self.misses = 0

    def key(self, rel: str, source: str,
            enabled_rules: Sequence[str]) -> str:
        from .engine import ENGINE_VERSION
        payload = {
            "path": rel,
            "source": hashlib.sha256(source.encode()).hexdigest(),
            "rules": sorted(enabled_rules),
            "engine": ENGINE_VERSION,
            "lint_digest": lint_source_digest(),
        }
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()).hexdigest()

    def path(self, rel: str, source: str,
             enabled_rules: Sequence[str]) -> Path:
        stem = Path(rel).stem or "file"
        return self.root / f"{stem}-{self.key(rel, source, enabled_rules)[:16]}.json"

    def load(self, rel: str, source: str,
             enabled_rules: Sequence[str]) -> Optional[List[Violation]]:
        """Cached violations, or ``None`` on miss/corruption."""
        path = self.path(rel, source, enabled_rules)
        try:
            data = json.loads(path.read_text())
            out = [Violation.from_dict(d) for d in data["violations"]]
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return out

    def save(self, rel: str, source: str, enabled_rules: Sequence[str],
             violations: Sequence[Violation]) -> Path:
        """Atomically persist one file's verdict (temp write + rename)."""
        path = self.path(rel, source, enabled_rules)
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(
            {"violations": [v.to_dict() for v in violations]},
            sort_keys=True))
        tmp.replace(path)
        return path
