"""Per-file visitor pipeline and project-rule driver.

The engine is deliberately shaped like the experiment scheduler it
guards: deterministic inputs (sorted file list), deterministic outputs
(violations sorted by location), and a content-addressed cache so a
clean incremental re-run touches nothing.  One :class:`FileContext` is
built per file and shared by every rule, so each file is read and
parsed exactly once per invocation.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from .registry import RULES, load_builtin_rules
from .suppress import SuppressionSet, parse_suppressions
from .violations import Violation

__all__ = ["ENGINE_VERSION", "FileContext", "LintReport", "LintEngine",
           "discover_files", "check_single_file"]

#: Bumped whenever rule semantics change incompatibly; part of the
#: incremental-cache key, so stale cached verdicts are never reused.
#: v2: CON/WIRE families, shared project symbol-table pass.
ENGINE_VERSION = "2"


class FileContext:
    """Everything rules may know about one file: source, AST, imports."""

    def __init__(self, path: Path, rel: str, source: str):
        self.path = path
        #: Posix-style path as reported in violations and used by
        #: project rules for suffix matching (e.g. ``src/repro/sim/core.py``).
        self.rel = rel
        self.source = source
        self.tree: Optional[ast.Module] = None
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(source, filename=rel)
        except SyntaxError as exc:
            self.syntax_error = exc
        self._imports: Optional[Dict[str, str]] = None

    # -- shared helpers --------------------------------------------------
    @property
    def imports(self) -> Dict[str, str]:
        """Local name -> dotted origin for every import in the file.

        ``import random as rnd`` maps ``rnd -> random``; ``from random
        import Random`` maps ``Random -> random.Random``.  Relative
        imports keep their dots (rules that need them resolve against
        the file path themselves).  Function-local imports are included:
        determinism hazards hide in those too.
        """
        if self._imports is None:
            table: Dict[str, str] = {}
            if self.tree is not None:
                for node in ast.walk(self.tree):
                    if isinstance(node, ast.Import):
                        for alias in node.names:
                            local = alias.asname or alias.name.split(".")[0]
                            origin = (alias.name if alias.asname
                                      else alias.name.split(".")[0])
                            table[local] = origin
                    elif isinstance(node, ast.ImportFrom):
                        mod = ("." * node.level) + (node.module or "")
                        for alias in node.names:
                            if alias.name == "*":
                                continue
                            table[alias.asname or alias.name] = (
                                f"{mod}.{alias.name}" if mod else alias.name)
            self._imports = table
        return self._imports

    def resolved_call_chain(self, func: ast.AST) -> Optional[str]:
        """Dotted name of a call target with its root import-resolved.

        ``time.time`` -> ``time.time``; with ``import datetime as dt``,
        ``dt.now`` -> ``datetime.now``; with ``from random import
        Random``, ``Random`` -> ``random.Random``.  Returns ``None``
        when the root is not an imported name (e.g. ``self.rng.random``)
        — such calls go through objects, not modules, and are not this
        linter's business.
        """
        parts: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        origin = self.imports.get(node.id)
        if origin is None:
            return None
        parts.append(origin)
        return ".".join(reversed(parts))


class LintReport:
    """The outcome of one engine run."""

    def __init__(self, violations: List[Violation], files_checked: int,
                 cache_hits: int = 0, cache_misses: int = 0,
                 incremental: bool = False):
        self.violations = sorted(violations, key=Violation.sort_key)
        self.files_checked = files_checked
        self.cache_hits = cache_hits
        self.cache_misses = cache_misses
        self.incremental = incremental

    @property
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for v in self.violations:
            out[v.rule] = out.get(v.rule, 0) + 1
        return out

    @property
    def exit_code(self) -> int:
        return 1 if self.violations else 0


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories to a sorted, deduplicated ``.py`` list."""
    seen = {}
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for cand in candidates:
            parts = cand.parts
            if "__pycache__" in parts or any(
                    p.startswith(".") and p not in (".", "..")
                    for p in parts):
                continue
            seen[str(cand)] = cand
    return [seen[k] for k in sorted(seen)]


def check_single_file(ctx: FileContext, supp: SuppressionSet,
                      enabled: Sequence[str]) -> List[Violation]:
    """Meta + file-scope violations for one file (the cache payload).

    Module-level (not a method) so the ``--jobs`` process pool can run
    it in a child without pickling engine state.
    """
    found: List[Violation] = []
    _, meta = parse_suppressions(ctx.rel, ctx.source)
    found.extend(v for v in meta if v.rule in enabled)
    if ctx.syntax_error is not None:
        if "LNT003" in enabled:
            err = ctx.syntax_error
            found.append(Violation(
                "LNT003", "syntax-error", ctx.rel, err.lineno or 1,
                (err.offset or 1) - 1, f"syntax error: {err.msg}"))
        return found
    for rid in enabled:
        rule = RULES[rid]
        if rule.scope != "file":
            continue
        for v in rule.check(ctx):
            if not supp.is_suppressed(v.rule, v.line):
                found.append(v)
    return found


def _pool_check(args: tuple) -> List[dict]:
    """Process-pool worker: lint one file, return violation dicts.

    Re-reads and re-parses the file in the child (AST contexts are not
    worth pickling) and ships violations back as plain dicts so the
    parent can rebuild them regardless of pickle protocol quirks.
    """
    path_str, rel, enabled = args
    load_builtin_rules()
    source = Path(path_str).read_text(encoding="utf-8", errors="replace")
    ctx = FileContext(Path(path_str), rel, source)
    supp, _ = parse_suppressions(rel, source)
    return [v.to_dict() for v in check_single_file(ctx, supp, enabled)]


class LintEngine:
    """Runs the selected rules over a file set."""

    def __init__(self, select: Optional[Sequence[str]] = None,
                 ignore: Sequence[str] = (), cache=None, jobs: int = 1):
        load_builtin_rules()
        from .registry import expand_selection
        enabled = (expand_selection(select) if select
                   else list(RULES))
        for rid in expand_selection(ignore):
            if rid in enabled:
                enabled.remove(rid)
        #: Concrete rule ids this run checks, in registry order.
        self.enabled: List[str] = [rid for rid in RULES if rid in enabled]
        #: Optional :class:`repro.lint.cache.LintCache` for incremental
        #: runs; project rules always re-run (they are cross-file).
        self.cache = cache
        #: File-scope fan-out width.  Project rules always run serially
        #: in the parent: they need every context at once, and their
        #: verdicts depend on *pairs* of files.
        self.jobs = max(1, int(jobs))

    # -- internals -------------------------------------------------------
    def _file_rules(self):
        return [RULES[rid] for rid in self.enabled
                if RULES[rid].scope == "file"]

    def _project_rules(self):
        return [RULES[rid] for rid in self.enabled
                if RULES[rid].scope == "project"]

    def _check_one(self, ctx: FileContext,
                   supp: SuppressionSet) -> List[Violation]:
        return check_single_file(ctx, supp, self.enabled)

    # -- entry point -----------------------------------------------------
    def run(self, files: Sequence[Path],
            root: Optional[Path] = None) -> LintReport:
        from .project import ProjectIndex
        root = root or Path.cwd()
        contexts: Dict[str, FileContext] = {}
        supps: Dict[str, SuppressionSet] = {}
        violations: List[Violation] = []
        pending: List[tuple] = []  # cache misses for the pool
        hits = misses = 0

        for path in files:
            try:
                rel = path.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                rel = path.as_posix()
            source = path.read_text(encoding="utf-8", errors="replace")
            ctx = FileContext(path, rel, source)
            contexts[rel] = ctx
            supp, _ = parse_suppressions(rel, source)
            supps[rel] = supp

            if self.cache is not None:
                cached = self.cache.load(rel, source, self.enabled)
                if cached is not None:
                    hits += 1
                    violations.extend(cached)
                    continue
                misses += 1
            if self.jobs > 1:
                pending.append((str(path), rel, list(self.enabled)))
                continue
            found = self._check_one(ctx, supp)
            violations.extend(found)
            if self.cache is not None:
                self.cache.save(rel, source, self.enabled, found)

        if pending:
            violations.extend(self._run_pool(pending, contexts))

        # Project rules see every file and always run: their verdicts
        # depend on *pairs* of files, which a per-file digest cannot key.
        index = ProjectIndex(contexts)
        for rule in self._project_rules():
            for v in rule.check_project(contexts, index):
                supp = supps.get(v.path)
                if supp is None or not supp.is_suppressed(v.rule, v.line):
                    violations.append(v)

        return LintReport(violations, files_checked=len(files),
                          cache_hits=hits, cache_misses=misses,
                          incremental=self.cache is not None)

    def _run_pool(self, pending: List[tuple],
                  contexts: Dict[str, FileContext]) -> List[Violation]:
        """Fan file-scope checks out over a process pool.

        ``executor.map`` preserves submission order, and the report
        sorts violations by location anyway, so ``--jobs N`` output is
        byte-identical to ``--jobs 1`` (pinned by a test).  Falls back
        to serial when the platform cannot spawn processes.
        """
        import concurrent.futures
        found_all: List[Violation] = []
        try:
            with concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.jobs) as pool:
                results = list(pool.map(_pool_check, pending))
        except (OSError, ImportError):  # pragma: no cover - no fork
            results = [_pool_check(args) for args in pending]
        for (path_str, rel, _enabled), dicts in zip(pending, results):
            found = [Violation.from_dict(d) for d in dicts]
            found_all.extend(found)
            if self.cache is not None:
                ctx = contexts[rel]
                self.cache.save(rel, ctx.source, self.enabled, found)
        return found_all
