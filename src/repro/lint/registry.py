"""Rule model and registry.

Every check is a :class:`Rule` subclass registered with :func:`register`.
Rules come in two scopes:

* ``file`` rules get one :class:`~repro.lint.engine.FileContext` at a
  time and may only look at that file;
* ``project`` rules run once per lint invocation over the whole file
  set — the PAR family needs to compare ``repro/sim/_legacy.py``
  against the modules it patches.

The ``LNT`` meta-rules are registered here too so they show up in
``--list-rules`` and can be ``--ignore``-d, but they are emitted by the
engine itself (suppression parsing, syntax errors), never invoked as
visitors.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List

from .violations import Violation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import FileContext

__all__ = ["Rule", "RULES", "register", "load_builtin_rules",
           "expand_selection", "SelectionError"]

#: Registry of rule id -> rule instance, filled by :func:`register`.
RULES: Dict[str, "Rule"] = {}


class Rule:
    """Base class for lint rules."""

    id: str = ""        #: e.g. ``"DET101"``
    name: str = ""      #: kebab-case slug, e.g. ``"wall-clock"``
    summary: str = ""   #: one-line description for ``--list-rules``
    scope: str = "file"  #: ``"file"``, ``"project"`` or ``"meta"``

    def check(self, ctx: "FileContext") -> Iterator[Violation]:
        """Yield violations for one file (``file``-scope rules)."""
        return iter(())

    def check_project(self, files: Dict[str, "FileContext"],
                      index=None) -> Iterator[Violation]:
        """Yield violations over the whole file set (``project`` scope).

        ``files`` maps the engine's posix-style relative path to its
        parsed context; rules locate anchors by path suffix so the same
        code works for ``src/repro/...`` trees and test fixtures.
        ``index`` is the engine's shared
        :class:`~repro.lint.project.ProjectIndex` (memoised thread
        models and import tables); rules must tolerate ``None`` and
        build their own for direct invocation in tests.
        """
        return iter(())

    # -- helpers ---------------------------------------------------------
    def violation(self, ctx: "FileContext", node: ast.AST,
                  message: str) -> Violation:
        return Violation(self.id, self.name, ctx.rel,
                         getattr(node, "lineno", 1),
                         getattr(node, "col_offset", 0), message)


def register(cls):
    """Class decorator adding a rule (as a singleton) to :data:`RULES`."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULES[cls.id] = cls()
    return cls


# -- meta rules (emitted by the engine, not run as visitors) -------------

@register
class SuppressionNeedsJustification(Rule):
    id = "LNT001"
    name = "suppression-needs-justification"
    summary = ("a `# repro-lint: disable=...` comment must carry a "
               "`-- <reason>` justification; unjustified suppressions "
               "are inert")
    scope = "meta"


@register
class SuppressionUnknownRule(Rule):
    id = "LNT002"
    name = "suppression-unknown-rule"
    summary = ("a suppression names a rule id that does not exist "
               "(typo or removed rule); the unknown id is ignored")
    scope = "meta"


@register
class SyntaxErrorRule(Rule):
    id = "LNT003"
    name = "syntax-error"
    summary = "the file does not parse; no other rule ran on it"
    scope = "meta"


_LOADED = False


def load_builtin_rules() -> None:
    """Import the rule packages exactly once, populating :data:`RULES`."""
    global _LOADED
    if _LOADED:
        return
    from .rules import con, det, par, sim, wire  # noqa: F401  (import = register)
    _LOADED = True


class SelectionError(ValueError):
    """A ``--select``/``--ignore`` token matched no registered rule."""


def expand_selection(tokens: Iterable[str]) -> List[str]:
    """Expand rule-id / family-prefix tokens to concrete rule ids.

    ``"DET"`` expands to every DET rule; ``"SIM203"`` to itself.  An
    unknown token raises :class:`SelectionError` (CLI exit code 2) so
    typos cannot silently disable a gate.
    """
    out: List[str] = []
    for tok in tokens:
        tok = tok.strip()
        if not tok:
            continue
        matches = [rid for rid in RULES
                   if rid == tok or rid.startswith(tok)]
        if not matches:
            raise SelectionError(f"unknown rule or family {tok!r}")
        out.extend(m for m in matches if m not in out)
    return out
