"""Hardware calibration profile.

Every latency, rate and overhead constant used by the simulator lives in
:class:`HardwareProfile`.  The defaults are calibrated so that the
zero-delay (LAN) microbenchmark results land near the numbers the paper
reports for its testbed (dual Xeon nodes, MT25208 DDR HCAs, OFED 1.2,
Obsidian Longbow XR at SDR):

========================================  =================  ===============
quantity                                  paper              simulated target
========================================  =================  ===============
verbs RC send/recv latency (back-to-back) "quite low" (DDR)  ~3.3 µs
added latency of a Longbow pair           ~5 µs              ~5 µs
verbs UD peak bandwidth (2 KB)            ~967 MB/s          ~960 MB/s
verbs RC peak bandwidth                   ~980 MB/s          ~980 MB/s
verbs RC peak bidirectional bandwidth     ~1960 MB/s         ~1960 MB/s
MPI peak bandwidth                        ~969 MB/s          ~965 MB/s
IPoIB-RC peak (64 KB MTU)                 ~890 MB/s          ~880 MB/s
NFS/RDMA peak read (LAN, DDR)             ~1100 MB/s         ~1100 MB/s
========================================  =================  ===============

Rates are in bytes/µs (== MB/s), times in µs, sizes in bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["HardwareProfile", "DEFAULT_PROFILE", "KB", "MB", "US_PER_KM"]

KB = 1024
MB = 1024 * 1024

#: Wire latency per kilometre of fibre (the paper's 5 µs/km rule).
US_PER_KM = 5.0


@dataclass(frozen=True)
class HardwareProfile:
    """Calibrated constants for the simulated IB WAN testbed.

    Instances are immutable; derive variants with :meth:`with_overrides`.
    """

    # ---- InfiniBand links ------------------------------------------------
    #: 4x DDR data rate (16 Gb/s after 8b/10b) in bytes/µs.
    ddr_rate: float = 2000.0
    #: 4x SDR data rate (8 Gb/s after 8b/10b) — the Longbow WAN limit.
    sdr_rate: float = 1000.0
    #: IB MTU used by RC/UD packets on the fabric.
    ib_mtu: int = 2048
    #: Per-packet wire header for RC packets (LRH+BTH+ICRC+VCRC).
    rc_packet_header: int = 30
    #: Per-packet wire header for UD packets (adds GRH+DETH).
    ud_packet_header: int = 86
    #: Propagation delay of an intra-cluster copper/fibre cable.
    cable_delay_us: float = 0.05
    #: Cut-through forwarding latency of an IB switch.
    switch_latency_us: float = 0.20

    # ---- HCA / verbs -------------------------------------------------------
    #: Time to post + DMA-launch one send work request.
    hca_send_overhead_us: float = 0.40
    #: Receive-side completion/dispatch time per message.
    hca_recv_overhead_us: float = 0.40
    #: Additional one-way latency of the first byte through an HCA pair
    #: (PIO/doorbell + PCIe round trip), applied once per message.
    hca_wire_latency_us: float = 1.10
    #: RDMA ops skip the receive-side WQE consumption; small discount.
    rdma_write_discount_us: float = 0.30
    #: Maximum messages a RC QP keeps in flight awaiting ACK.  This is the
    #: effective send window (send-queue depth combined with IB end-to-end
    #: credits); it produces the paper's medium-message RC degradation.
    rc_send_window: int = 16
    #: ACK packet size on the wire.
    rc_ack_bytes: int = 30
    #: Retransmission timeout for RC (µs); generous, loss is rare here.
    rc_retransmit_timeout_us: float = 500000.0
    #: Maximum retries before the QP enters an error state.
    rc_retry_count: int = 7

    # ---- Obsidian Longbow XR ----------------------------------------------
    #: Fixed store-and-forward latency added by one Longbow, per direction.
    longbow_forward_us: float = 2.5
    #: WAN link data rate (SONET / 10 GigE carrying SDR IB).
    wan_rate: float = 1000.0
    #: Buffer credit pool of a Longbow in bytes — deep enough to cover the
    #: bandwidth-delay product of trans-continental pipes (Obsidian's
    #: headline feature).  Traffic stalls when exceeded.
    longbow_buffer_bytes: int = 64 * MB

    # ---- TCP / IPoIB --------------------------------------------------------
    #: Fixed per-segment TCP/IP stack cost, per host (interrupt, protocol
    #: processing).  This is what starves IPoIB-UD at its 2 KB MTU.
    tcp_segment_fixed_us: float = 2.3
    #: Per-byte copy/checksum cost of the TCP stack, per host (~0.9 GB/s).
    tcp_per_byte_us: float = 0.0011
    #: CPU cost to generate or absorb a bare ACK segment.
    tcp_ack_cpu_us: float = 0.3
    #: TCP/IP header bytes per segment.
    tcp_header_bytes: int = 40
    #: IPoIB encapsulation header.
    ipoib_header_bytes: int = 4
    #: IPoIB UD-mode IP MTU (2048 IB MTU minus encapsulation).
    ipoib_ud_mtu: int = 2044
    #: IPoIB connected-mode (RC) default IP MTU.
    ipoib_rc_mtu: int = 65520
    #: Default TCP window (the paper's ">1M default").
    tcp_default_window: int = 1 * MB
    #: Initial congestion window in segments.
    tcp_init_cwnd_segments: int = 10
    #: TCP delayed-ACK aggregation (segments per ACK).
    tcp_ack_every: int = 2

    # ---- SDP (Sockets Direct Protocol) --------------------------------------
    #: Payloads at/above this take the zero-copy path.
    sdp_zcopy_threshold: int = 64 * KB
    #: Per-byte buffer-copy cost on the bcopy path (per host).
    sdp_bcopy_us_per_byte: float = 0.0009
    #: Fixed per-operation overhead on the bcopy path.
    sdp_op_overhead_us: float = 1.0
    #: Pin/post setup cost per zcopy operation.
    sdp_zcopy_setup_us: float = 4.0
    #: Largest single SDP wire message (stream is chunked above this).
    sdp_max_message: int = 128 * KB

    # ---- MPI (MVAPICH2-like) -----------------------------------------------
    #: Eager -> rendezvous switch point.
    mpi_eager_threshold: int = 8 * KB
    #: Per-message MPI software overhead (matching, request bookkeeping).
    mpi_overhead_us: float = 0.30
    #: Extra copy cost per byte for eager messages (bounce buffers).
    mpi_eager_copy_us_per_byte: float = 0.0003
    #: Control-message size for RTS/CTS/FIN.
    mpi_ctrl_bytes: int = 64
    #: Maximum concurrent in-flight sends per process pair the MPI
    #: progress engine keeps (mirrors MVAPICH2's send-queue depth).
    mpi_send_depth: int = 16

    # ---- NFS -----------------------------------------------------------------
    #: RDMA transport chunk size (the paper: "data is fragmented into 4K
    #: packets for transferring").
    nfs_rdma_chunk: int = 4 * KB
    #: Server-side per-RPC processing time (lookup, cache hit).
    nfs_rpc_server_us: float = 12.0
    #: Client-side per-RPC processing time.
    nfs_rpc_client_us: float = 6.0
    #: Per-byte server buffer-cache copy cost for the TCP transport
    #: (RDMA avoids this copy; that asymmetry is the paper's low-delay win).
    nfs_tcp_copy_us_per_byte: float = 0.00035
    #: NFS READ RPC header bytes.
    nfs_rpc_header: int = 128
    #: Server CPU per RDMA chunk (fragmentation, MR lookup, WQE build);
    #: calibrated so LAN (DDR) NFS/RDMA read peaks near the paper's
    #: ~1.1 GB/s.
    nfs_rdma_chunk_cpu_us: float = 3.6
    #: Concurrent RPC service threads on the server (nfsd count).
    nfs_server_threads: int = 16

    # ---- fault recovery ------------------------------------------------------
    # These only engage when fault injection is active; the clean fabric
    # never drops, so none of this machinery even starts there.
    #: Initial TCP retransmission timeout.
    tcp_rto_us: float = 20000.0
    #: Cap on the exponentially backed-off TCP RTO.
    tcp_max_rto_us: float = 640000.0
    #: Duplicate ACKs that trigger a TCP fast retransmit.
    tcp_dupack_threshold: int = 3
    #: Per-call NFS RPC timeout before the call is retransmitted.
    nfs_rpc_timeout_us: float = 50000.0
    #: NFS RPC retransmissions before ``RPCTimeoutError`` surfaces.
    nfs_rpc_max_retries: int = 8
    #: Multiplier applied to the RPC timeout after each retry.
    nfs_rpc_backoff: float = 2.0

    # ------------------------------------------------------------------------
    def with_overrides(self, **kwargs) -> "HardwareProfile":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def link_rate(self, wan: bool) -> float:
        """Data rate of a link: WAN links run at SDR, LAN links at DDR."""
        return self.wan_rate if wan else self.ddr_rate


#: Module-level default used when callers do not pass a profile.
DEFAULT_PROFILE = HardwareProfile()
