"""On-disk content-addressed cache of experiment results.

A cache entry is one :class:`~repro.core.registry.ExperimentResult` in
its canonical JSON form, stored under ``.repro-cache/`` in a file named
``<exp_id>-<key>.json`` where ``key`` is the SHA-256 of the full cache
key:

* the experiment id;
* the quick/full flag;
* the installed ``repro.__version__``;
* a source digest of the experiment's functions (the registered body
  plus, for cell-decomposed sweeps, the cell-plan functions);
* the process-wide fault-injection spec, when one is active (clean runs
  keep their historical keys);
* the flow-acceleration mode, when set to ``auto``/``on`` (``off`` and
  unset are both exact packet mode and share the clean key).

Any of those changing — editing an experiment, bumping the package
version, flipping quick to full — changes the key, so stale entries are
simply never looked up again.  A corrupted or truncated entry fails the
JSON round-trip and is treated as a miss (and deleted best-effort),
never as an error: the cache can be blown away or half-written at any
time and the engine just recomputes.

Because canonical serialization is deterministic, a cache hit returns
byte-for-byte the same JSON a cold run would produce — the
determinism tests pin this.
"""

from __future__ import annotations

import hashlib
import inspect
import itertools
import json
import os
import re
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from ..core import registry
from ..core.registry import ExperimentResult

__all__ = ["DEFAULT_CACHE_DIR", "ResultCache", "CellCache", "source_digest"]

DEFAULT_CACHE_DIR = ".repro-cache"

#: Per-process sequence for temp-file names: two *threads* of one
#: process writing the same entry concurrently must not share a temp
#: path (two processes are already distinguished by pid).
_TMP_SEQ = itertools.count()

#: Cell-cache keys arrive over the wire from workers and become file
#: names; only a bare SHA-256 hex digest is ever a valid key.
_KEY_RE = re.compile(r"\A[0-9a-f]{64}\Z")   # \Z: "$" would admit "...\n"


def _function_source(fn) -> str:
    try:
        return inspect.getsource(fn)
    except (OSError, TypeError):        # builtins, C funcs, lost source
        return repr(fn)


#: Digest memo keyed by exp_id, holding the exact registered objects
#: it was computed from.  Within one process an experiment's source
#: cannot change without re-registering (a new runner/plan object), so
#: identity checks make invalidation exact — and a warm worker stops
#: paying ``inspect.getsource`` file I/O for every cell of a sweep.
_DIGEST_MEMO: Dict[str, Tuple[Any, Any, str]] = {}


def source_digest(exp_id: str) -> str:
    """SHA-256 over the source of everything ``exp_id`` executes
    directly: its registered body and, if it is a cell-decomposed
    sweep, the cell plan's parameter and row functions.  Memoized per
    registered (runner, plan) pair — cache keys are computed once per
    cell per worker, and the sources cannot change under a live
    registration."""
    runner = registry.EXPERIMENTS[exp_id]
    plan = registry.CELL_PLANS.get(exp_id)
    memo = _DIGEST_MEMO.get(exp_id)
    if memo is not None and memo[0] is runner and memo[1] is plan:
        return memo[2]
    parts = [_function_source(getattr(runner, "raw_fn", runner))]
    if plan is not None:
        parts.append(_function_source(plan.params_of))
        parts.append(_function_source(plan.run_cell))
    digest = hashlib.sha256("\n".join(parts).encode()).hexdigest()
    _DIGEST_MEMO[exp_id] = (runner, plan, digest)
    return digest


def _package_version() -> str:
    import repro
    return repro.__version__


class ResultCache:
    """Content-addressed experiment result cache rooted at ``root``."""

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    # -- keys -----------------------------------------------------------
    def key(self, exp_id: str, quick: bool) -> str:
        payload = {"exp_id": exp_id, "quick": bool(quick),
                   "version": _package_version(),
                   "digest": source_digest(exp_id)}
        # A process-wide fault spec changes what experiments measure, so
        # it becomes part of the key — but only when one is active:
        # clean keys (and every pre-existing cache entry) are untouched.
        from ..faults.context import get_active_spec
        spec = get_active_spec()
        if spec:
            payload["faults"] = spec
        # Same deal for flow-level acceleration: "auto"/"on" produce
        # shape-identical but not byte-identical numbers, so they get
        # their own keys; "off" (and unset) IS packet mode and must
        # share the clean key.
        from ..flow.context import get_flow_mode
        flow_mode = get_flow_mode()
        if flow_mode and flow_mode != "off":
            payload["flow"] = flow_mode
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()).hexdigest()

    def path(self, exp_id: str, quick: bool) -> Path:
        return self.root / f"{exp_id}-{self.key(exp_id, quick)[:16]}.json"

    # -- load/save ------------------------------------------------------
    def load(self, exp_id: str, quick: bool) -> Optional[ExperimentResult]:
        """The cached result, or ``None`` on miss/corruption."""
        path = self.path(exp_id, quick)
        try:
            result = ExperimentResult.from_json(path.read_text())
            if result.exp_id != exp_id:
                raise ValueError("cache entry names a different experiment")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # corrupted/truncated entry: drop it and recompute
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return result

    def save(self, exp_id: str, quick: bool,
             result: ExperimentResult) -> Path:
        """Atomically persist ``result`` (write temp file, rename).

        Concurrent writers are safe: each writes a private temp file
        (pid + per-process sequence) and the final ``rename`` is atomic
        on POSIX, so readers only ever see a complete entry — the last
        rename wins, and for a content-addressed key every writer's
        bytes are identical anyway.
        """
        path = self.path(exp_id, quick)
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{next(_TMP_SEQ)}")
        tmp.write_text(result.to_json())
        tmp.replace(path)
        return path

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for entry in self.root.glob("*.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


class CellCache:
    """Content-addressed cache of individual *task* payloads.

    Where :class:`ResultCache` holds whole assembled
    :class:`ExperimentResult` objects, this one holds the unit the
    distributed backends trade in: one :class:`~repro.exp.planner.Task`
    payload (a sweep row, or a whole-experiment result JSON for
    plan-less experiments).  It lives under ``<root>/cells/`` next to
    the experiment-level entries and shares the same key ingredients —
    experiment id, cell index, quick/full, package version, source
    digest, active fault spec and flow mode — so the two caches
    invalidate together.

    This is the store behind the remote-cache protocol: socket workers
    ``CACHE_GET`` a digest before computing and ``CACHE_PUT`` what they
    computed, the coordinator answers from (and publishes to) this
    directory, and a row any worker computed is a hit for every other
    worker of this and every later sweep.

    The concurrency story is the same as :meth:`ResultCache.save`:
    private temp file, atomic rename, corrupted/torn entries read as a
    miss and are deleted best-effort.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR):
        self.root = Path(root) / "cells"
        self.hits = 0
        self.misses = 0

    # -- keys -----------------------------------------------------------
    def key(self, exp_id: str, quick: bool, index: Optional[int]) -> str:
        payload = {"exp_id": exp_id, "quick": bool(quick),
                   "index": index, "version": _package_version(),
                   "digest": source_digest(exp_id)}
        from ..faults.context import get_active_spec
        spec = get_active_spec()
        if spec:
            payload["faults"] = spec
        from ..flow.context import get_flow_mode
        flow_mode = get_flow_mode()
        if flow_mode and flow_mode != "off":
            payload["flow"] = flow_mode
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()).hexdigest()

    def path_of(self, key: str) -> Path:
        if not _KEY_RE.match(key):
            raise ValueError(f"malformed cell-cache key {key!r}")
        return self.root / f"{key}.json"

    # -- load/save ------------------------------------------------------
    def load(self, key: str) -> Optional[Any]:
        """The cached payload, or ``None`` on miss/corruption."""
        try:
            path = self.path_of(key)
        except ValueError:
            self.misses += 1
            return None
        try:
            entry = json.loads(path.read_text())
            payload = entry["payload"]
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # torn/corrupted entry (e.g. a crash mid-write before the
            # atomic rename semantics existed): drop it and recompute
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def save(self, key: str, payload: Any) -> Path:
        """Atomically persist ``payload`` under ``key``."""
        path = self.path_of(key)
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{next(_TMP_SEQ)}")
        tmp.write_text(json.dumps({"key": key, "payload": payload},
                                  sort_keys=True, separators=(",", ":")))
        tmp.replace(path)
        return path

    def clear(self) -> int:
        """Delete every cell entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for entry in self.root.glob("*.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
