"""The execution-backend interface and its shared plumbing.

An :class:`ExecutionBackend` answers one question for the scheduler:
*given these tasks and this run context, get each one executed
somewhere and hand me the outcomes*.  Everything else — cache
prefetching, result assembly in request order, ``keep_going``
semantics — stays in :mod:`repro.exp.scheduler`, identical for every
backend, which is what the conformance wall
(``tests/test_exp_backends.py``) pins.

The protocol surface every backend must implement (and that the
PAR305 lint rule statically enforces):

* :meth:`run_tasks` — a generator yielding exactly one final
  :class:`TaskOutcome` per task, in any order.  Retries, lease
  reassignment and worker supervision are the backend's private
  business; by the time an outcome is yielded it is final.
* :meth:`plan` — the placement the backend *would* use, as plain data
  (worker/shard breakdown), for dry runs and cost estimation.
* :meth:`close` — release external resources (pools, sockets, spawned
  workers).  Idempotent; the scheduler always calls it.

Backends report operational counters in ``self.stats`` (a plain dict,
always on) and mirror them into :mod:`repro.obs` via
:meth:`_count`/:meth:`_count_cache_hit` when a default registry is
attached — leases issued, reassignments, remote/local cache hits are
then observable next to the simulation's own metrics.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence

from ..planner import RunContext, Task, plan_shards, task_key

__all__ = ["TaskOutcome", "ExecutionBackend"]


@dataclass
class TaskOutcome:
    """The final fate of one task under a backend.

    Exactly one of three shapes:

    * executed/cache-served: ``payload`` set (``snapshot`` too when the
      run is observed), ``error`` None, ``planned`` False;
    * failed after the backend's full retry/reassignment budget:
      ``error`` holds the exception (or its repr, for remote workers);
    * planned only (dry run): ``planned`` True, nothing else set.
    """

    task: Task
    payload: Any = None
    snapshot: Optional[Dict] = None
    error: Optional[BaseException] = None
    attempts: int = 1
    cached: Optional[str] = None     # None | "remote" | "local"
    planned: bool = False


class ExecutionBackend(ABC):
    """Where tasks run: in-process pool, socket workers, or nowhere."""

    #: registry key (``--backend <name>``); set by every subclass.
    name: str = ""

    def __init__(self) -> None:
        self.stats: Dict[str, int] = {}
        #: The run journal, when the scheduler attached one.
        self.journal = None

    # -- protocol surface (PAR305 pins subclasses to all of these) ------
    @abstractmethod
    def run_tasks(self, tasks: Sequence[Task],
                  ctx: RunContext) -> Iterator[TaskOutcome]:
        """Yield one final :class:`TaskOutcome` per task, any order."""

    @abstractmethod
    def plan(self, tasks: Sequence[Task], ctx: RunContext) -> Dict:
        """The intended placement, as JSON-ready data (see
        :meth:`_shard_plan` for the common shape)."""

    @abstractmethod
    def close(self) -> None:
        """Release pools/sockets/spawned workers; idempotent."""

    # -- shared helpers -------------------------------------------------
    def attach_journal(self, journal) -> None:
        """Record lease grants into a :class:`~repro.exp.journal.RunJournal`.

        Deliberately *not* part of the abstract surface: journaling is
        optional, and backends that never grant (dry run) simply inherit
        the no-op behaviour of :meth:`_journal_event`.
        """
        self.journal = journal

    def _journal_event(self, record: Dict) -> None:
        if self.journal is not None:
            self.journal.append(record)

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _bump(self, stat: str, amount: int = 1) -> None:
        self.stats[stat] = self.stats.get(stat, 0) + amount

    def _count(self, name: str, amount: int = 1, **labels) -> None:
        """``stats`` bump plus a repro.obs counter when one is attached."""
        self._bump(name if not labels
                   else "_".join([name] + sorted(labels.values())), amount)
        from ...obs import get_default_registry
        registry = get_default_registry()
        if registry is not None:
            registry.counter("exp", name, backend=self.name,
                             **labels).inc(amount)

    def _count_cache_hit(self, where: str) -> None:
        """A shared-cache hit: ``where`` is ``"remote"`` or ``"local"``."""
        self._count("cache_hits", where=where)

    def _shard_plan(self, tasks: Sequence[Task], ctx: RunContext,
                    n_shards: int) -> List[Dict]:
        """The canonical per-shard breakdown used by :meth:`plan`."""
        return [{"shard": i, "tasks": [task_key(t) for t in shard]}
                for i, shard in enumerate(plan_shards(tasks, n_shards))]
