"""SocketWorkerBackend — multi-host execution over TCP sockets.

The coordinator side of the length-prefixed JSON protocol
(:mod:`repro.exp.protocol`): it binds a listening socket, admits N
workers (spawned locally as ``python -m repro.exp.worker`` subprocesses,
or started by hand on any hosts with ``repro worker --connect``), and
drains one sweep through the lease machinery:

* tasks are pre-sharded by the stable cell-key hash
  (:func:`~repro.exp.planner.plan_shards`); a worker is granted the
  next pending task of its shard first, and steals from the global
  queue when its shard is drained — the sweep finishes whatever
  happens to individual shards;
* grants are **credit-based pipelined**: each worker may hold up to a
  window of ``k`` outstanding leases (derived from the grid size, or
  forced with ``--pipeline N``), so the next task is already queued
  worker-side when the current one finishes — the static-window
  stop-and-wait shape the paper's Fig. 5 shows collapsing over WAN
  never forms.  A grant refills the window whenever a RESULT frees a
  credit;
* every grant is a :class:`~repro.exp.leases.Lease` renewed by worker
  HEARTBEATs — or, while result/cache traffic flows, by the
  ``holding`` lease-id lists piggybacked on those frames
  (:meth:`~repro.exp.leases.LeaseTable.renew_worker`), so a busy
  pipeline never pays for dedicated heartbeat frames.  A lease whose
  deadline passes, or whose worker's connection drops (SIGKILL,
  network cut), returns its task to the queue for **reassignment** —
  the PR-3 fresh-pool retry machinery generalised to hosts;
* workers share the content-addressed cell cache through the batched
  CACHE_MGET / CACHE_MPUT frames (a worker's shard keys are announced
  at WELCOME and prefetched in one round trip; computed rows are
  published in batches) with single-key CACHE_GET / CACHE_PUT kept for
  reassigned leases and legacy flows.  A row any worker ever computed
  is served back over the wire instead of being recomputed, and hits
  are counted per kind (``remote``/``local``) in :mod:`repro.obs`;
* malformed frames fail closed: the offending connection is dropped on
  the spot (its leases reassigned), the run continues, and every
  socket carries a timeout so a wedged peer becomes an error, not a
  hang.  Large frame bodies travel zlib-compressed under the same
  ``MAX_FRAME``/fail-closed rules (see :mod:`repro.exp.protocol`).

Wire-efficiency accounting: ``round_trips`` counts the exchanges where
the coordinator was on a worker's critical path — a blocking
CACHE_GET, a batched CACHE_MGET, or a grant to a worker that had
drained its window and sat idle waiting (``grant_wait``).  The
stop-and-wait protocol paid ~2 per task; the pipelined one amortises
grants and cache queries across the window, which is what
``tools/bench_sched.py`` gates on.

Determinism: none of this machinery touches result *values*.  Tasks
are idempotent pure functions of (experiment, cell, context), so
whichever worker finally computes a row — after any number of
reassignments, in any completion order — yields the same bytes, and
the scheduler reassembles them in request order.
"""

from __future__ import annotations

import json
import os
import selectors
import socket as socketlib
import subprocess
import sys
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..cache import CellCache
from ..chaos import ChaosPlan, ChaosProxy, maybe_crash
from ..leases import LeaseTable
from ..planner import RunContext, Task, plan_shards, task_key
from ..protocol import (COMPRESS_MAGIC, MAX_FRAME, PROTOCOL_VERSION,
                        ProtocolError, VersionMismatchError, check_versions,
                        decode_body, encode_frame, package_version)
from ..worker import CONNECT_BUDGET_ENV
from .base import ExecutionBackend, TaskOutcome

__all__ = ["SocketWorkerBackend", "RemoteTaskError", "NoWorkersError",
           "parse_address"]

#: Environment knob bounding every socket operation (seconds).
IO_TIMEOUT_ENV = "REPRO_EXP_IO_TIMEOUT_S"
_DEFAULT_IO_TIMEOUT_S = 60.0
_LEN_BYTES = 4

#: Ceiling on the credit window when derived from the grid size.
_MAX_WINDOW = 16

#: Ceiling on the shard task list announced in WELCOME for prefetch.
_PREFETCH_CAP = 4096

#: Soft per-frame budget when chunking a batched CACHE reply
#: (estimated on raw JSON; compression only shrinks from here, and
#: 4 MiB raw stays far under MAX_FRAME even when incompressible).
_MGET_CHUNK_BYTES = 4 * 1024 * 1024


class RemoteTaskError(RuntimeError):
    """A task failed on a remote worker after its full retry budget."""


class NoWorkersError(RuntimeError):
    """No worker completed a HELLO within the connect budget.

    Raised strictly *before* any outcome is produced, so the scheduler
    can degrade gracefully — fall back to the local pool and still
    finish the sweep — without risking double execution.
    """


def parse_address(address: Union[str, Tuple[str, int], None]
                  ) -> Tuple[str, int]:
    """``"host:port"`` / ``(host, port)`` / ``None`` → a bind tuple
    (``None`` means loopback on an ephemeral port)."""
    if address is None:
        return ("127.0.0.1", 0)
    if isinstance(address, tuple):
        host, port = address
        return (host, int(port))
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"listen/connect address must be HOST:PORT, "
                         f"got {address!r}")
    return (host or "127.0.0.1", int(port))


def _io_timeout_s() -> float:
    try:
        value = float(os.environ.get(IO_TIMEOUT_ENV, ""))
        return value if value > 0 else _DEFAULT_IO_TIMEOUT_S
    except ValueError:
        return _DEFAULT_IO_TIMEOUT_S


def _now() -> float:
    """Host-side lease/heartbeat clock (never feeds a result)."""
    return time.monotonic()  # repro-lint: disable=DET101 -- host-side lease clock only


class _Conn:
    """Per-worker connection state on the coordinator."""

    __slots__ = ("sock", "buffer", "worker", "slot", "outstanding",
                 "done", "helloed", "suspect")

    def __init__(self, sock: socketlib.socket):
        self.sock = sock
        self.buffer = b""
        self.worker: Optional[str] = None
        self.slot: Optional[int] = None
        #: leases currently in flight to this worker (credit window use)
        self.outstanding = 0
        #: RESULT frames received — a grant to a worker with ``done > 0``
        #: and an empty pipeline means it sat idle waiting on us
        self.done = 0
        self.helloed = False
        #: leases of ours that expired (a silent or deaf worker);
        #: healthy peers are granted requeued work first
        self.suspect = 0


class SocketWorkerBackend(ExecutionBackend):
    """Coordinate ``workers`` socket workers draining one task set.

    ``listen=None`` (the default) binds loopback on an ephemeral port
    and **spawns** the workers as local subprocesses; with an explicit
    ``listen`` address nothing is spawned — start workers yourself on
    any hosts with ``repro worker --connect HOST:PORT``.  Pass
    ``spawn`` explicitly to override either default.
    """

    name = "socket"

    def __init__(self, workers: int = 1,
                 listen: Union[str, Tuple[str, int], None] = None,
                 spawn: Optional[bool] = None,
                 cache_dir: Union[str, None] = None,
                 lease_timeout_s: float = 30.0,
                 connect_grace_s: Optional[float] = None,
                 chaos: Union[str, ChaosPlan, None] = None,
                 connect_budget_s: Optional[float] = None,
                 pipeline: Optional[int] = None,
                 prefetch: bool = True):
        super().__init__()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if pipeline is not None and pipeline < 1:
            raise ValueError(f"pipeline must be >= 1, got {pipeline}")
        self.workers = workers
        #: forced credit window (``--pipeline N``); None derives it
        #: from the grid size per run
        self.pipeline = pipeline
        #: announce shard task lists at WELCOME so workers prefetch
        #: their keys in one CACHE_MGET (False restores the per-cell
        #: blocking CACHE_GET — the stop-and-wait baseline the
        #: scheduler bench compares against)
        self.prefetch = prefetch
        self.spawn = (listen is None) if spawn is None else spawn
        self.lease_timeout_s = lease_timeout_s
        self.io_timeout_s = _io_timeout_s()
        self.connect_grace_s = (self.io_timeout_s if connect_grace_s is None
                                else connect_grace_s)
        self.connect_budget_s = (self.connect_grace_s
                                 if connect_budget_s is None
                                 else connect_budget_s)
        self.cell_cache = CellCache(cache_dir) if cache_dir else None
        self._procs: List[subprocess.Popen] = []
        self._server = socketlib.socket(socketlib.AF_INET,
                                        socketlib.SOCK_STREAM)
        self._server.setsockopt(socketlib.SOL_SOCKET,
                                socketlib.SO_REUSEADDR, 1)
        self._server.bind(parse_address(listen))
        self._server.listen(max(8, workers))
        self._server.settimeout(self.io_timeout_s)
        #: The bound ``(host, port)`` of the coordinator itself.
        self.address: Tuple[str, int] = self._server.getsockname()[:2]
        self.chaos_plan = (ChaosPlan.parse(chaos)
                           if isinstance(chaos, str) else chaos)
        #: The chaos proxy, when a plan is armed — frames between
        #: workers and coordinator pass through its injectors.
        self.proxy: Optional[ChaosProxy] = None
        if self.chaos_plan is not None and not self.chaos_plan.is_noop:
            self.proxy = ChaosProxy(self.chaos_plan, self.address,
                                    io_timeout_s=self.io_timeout_s)

    @property
    def public_address(self) -> Tuple[str, int]:
        """Where workers should connect: the chaos proxy when armed,
        the coordinator itself otherwise."""
        return self.proxy.address if self.proxy is not None else self.address

    # -- protocol surface ----------------------------------------------
    def run_tasks(self, tasks: Sequence[Task],
                  ctx: RunContext) -> Iterator[TaskOutcome]:
        if not tasks:       # nothing to do: don't spawn or accept anyone
            return
        shards = plan_shards(tasks, self.workers)
        table = LeaseTable(tasks, self.lease_timeout_s,
                           max_failures=ctx.retries)
        lease_tasks: Dict[int, Task] = {}
        errors: Dict[Task, str] = {}
        heartbeat_s = max(self.lease_timeout_s / 3.0, 0.05)
        window = self._window(len(tasks))
        welcome_base = {"type": "WELCOME", "proto": PROTOCOL_VERSION,
                        "version": package_version(),
                        "workers": self.workers,
                        "heartbeat_s": heartbeat_s,
                        "cache": self.cell_cache is not None,
                        "pipeline": window,
                        "ctx": ctx.to_wire()}

        sel = selectors.DefaultSelector()
        self._server.setblocking(False)
        sel.register(self._server, selectors.EVENT_READ, None)
        conns: List[_Conn] = []
        used_slots: set = set()
        if self.spawn:
            self._spawn_workers(self.workers)
        started = _now()
        last_progress = started
        any_helloed = False
        tick = min(0.25, max(self.lease_timeout_s / 4.0, 0.02))

        def grant(conn: _Conn) -> None:
            """Refill ``conn``'s credit window from the pending queue."""
            if not conn.helloed:
                return
            was_idle = conn.outstanding == 0
            granted = 0
            while conn.outstanding < window:
                prefer = (shards[conn.slot] if conn.slot is not None
                          else None)
                lease = table.issue(conn.worker, _now(),
                                    prefer_shard=prefer)
                if lease is None:
                    break
                lease_tasks[lease.lease_id] = lease.task
                exp_id, index = lease.task
                self._journal_event({"type": "lease",
                                     "task": task_key(lease.task),
                                     "worker": str(conn.worker),
                                     "lease": lease.lease_id,
                                     "attempt": lease.attempt})
                maybe_crash("backend.lease")
                if self._send(conn, {"type": "LEASE",
                                     "lease": lease.lease_id,
                                     "exp_id": exp_id, "index": index,
                                     "attempt": lease.attempt}):
                    if conn.outstanding >= 1:
                        self._count("leases_pipelined")
                    conn.outstanding += 1
                    granted += 1
                    self._count("leases_issued")
                else:
                    drop(conn, "send failed")
                    return
            if was_idle and granted and conn.done:
                # the worker had drained its whole window and sat
                # waiting on this grant — one coordinator round trip
                # the pipelining failed to hide
                self._count("round_trips", kind="grant_wait")

        def drop(conn: _Conn, why: str) -> None:
            if conn not in conns:
                return
            conns.remove(conn)
            if conn.slot is not None:
                used_slots.discard(conn.slot)
            try:
                sel.unregister(conn.sock)
            except (KeyError, ValueError):
                pass
            try:
                conn.sock.close()
            except OSError:
                pass
            if conn.worker is not None:
                released = table.release_worker(conn.worker)
                if released:
                    self._count("reassignments", len(released),
                                cause="death")

        try:
            while not table.settled():
                events = sel.select(timeout=tick)
                now = _now()
                for key, _mask in events:
                    if key.data is None:                    # server socket
                        self._accept(sel, conns)
                        last_progress = now
                        continue
                    conn: _Conn = key.data
                    progressed = False
                    try:
                        for message in self._pump(conn):
                            progressed = True
                            outcome = self._handle(
                                message, conn, table, shards, lease_tasks,
                                errors, conns, used_slots,
                                welcome_base, grant, drop)
                            if outcome is not None:
                                yield outcome
                    except VersionMismatchError:
                        # already counted; the BYE carried the reason
                        drop(conn, "version mismatch")
                    except ProtocolError:
                        # fail closed: garbage ends the connection
                        self._count("protocol_errors")
                        drop(conn, "protocol error")
                    except ConnectionError:
                        drop(conn, "connection reset")
                    except _Eof:
                        drop(conn, "eof")
                        progressed = True
                    if progressed:
                        last_progress = now
                expired = table.expire(now)
                if expired:
                    self._count("reassignments", len(expired),
                                cause="expiry")
                    last_progress = now
                    # the holder may still be connected but never saw
                    # (or lost) the LEASE frame — its credits come back,
                    # but healthy peers get requeued work first
                    lost: Dict[str, int] = {}
                    for lease in expired:
                        lost[lease.worker] = lost.get(lease.worker, 0) + 1
                    for conn in conns:
                        if conn.worker in lost:
                            conn.outstanding = max(
                                0, conn.outstanding - lost[conn.worker])
                            conn.suspect += 1
                # idle workers pick up requeued / remaining work
                # (least-suspect first, so a silent lease-holder cannot
                # keep soaking up the task it just lost)
                for conn in sorted(list(conns),
                                   key=lambda c: c.suspect):
                    grant(conn)
                if self.spawn and not table.settled():
                    self._respawn_if_needed(conns)
                if not any_helloed:
                    any_helloed = any(c.helloed for c in conns)
                    if (not any_helloed
                            and now - started > self.connect_budget_s):
                        raise NoWorkersError(
                            f"no worker completed a handshake within "
                            f"{self.connect_budget_s:g}s (listening on "
                            f"{self.address[0]}:{self.address[1]}, "
                            f"{len(conns)} connection(s) open)")
                if now - last_progress > max(self.connect_grace_s,
                                             self.lease_timeout_s * 2):
                    raise RuntimeError(
                        f"socket backend stalled: {len(conns)} worker(s) "
                        f"connected, {len(table.pending_tasks())} task(s) "
                        f"pending with no progress for "
                        f"{now - last_progress:.0f}s")
            for task in table.exhausted_tasks():
                yield TaskOutcome(
                    task, error=RemoteTaskError(
                        errors.get(task, "task failed on remote worker")),
                    attempts=ctx.retries + 1)
        finally:
            for conn in list(conns):
                self._send(conn, {"type": "BYE"})
                drop(conn, "done")
            sel.close()
            self._reap_workers()

    def plan(self, tasks: Sequence[Task], ctx: RunContext) -> Dict:
        plan = {"backend": self.name, "workers": self.workers,
                "n_tasks": len(tasks),
                "listen": f"{self.address[0]}:{self.address[1]}",
                "spawn": self.spawn,
                "pipeline": self._window(len(tasks)),
                "prefetch": self.prefetch and self.cell_cache is not None,
                "shards": self._shard_plan(tasks, ctx, self.workers)}
        if self.chaos_plan is not None:
            plan["chaos"] = self.chaos_plan.to_spec()
        return plan

    def _window(self, n_tasks: int) -> int:
        """The credit window for a run of ``n_tasks``.

        Deterministic in the grid shape: half the per-worker task
        share, clamped to [1, 16].  Small grids (fewer than two tasks
        per window slot) degrade to the stop-and-wait window of 1 —
        pipelining buys nothing when every worker gets a handful of
        long tasks, and the conformance wall's failure scenarios keep
        their single-lease timing.  ``pipeline`` (``--pipeline N``)
        overrides unconditionally.
        """
        if self.pipeline is not None:
            return self.pipeline
        return max(1, min(_MAX_WINDOW, n_tasks // (2 * self.workers)))

    def close(self) -> None:
        if self.proxy is not None:
            self.proxy.close()
            self.proxy = None
        try:
            self._server.close()
        except OSError:
            pass
        self._reap_workers(kill=True)

    # -- coordinator internals -----------------------------------------
    def _accept(self, sel: selectors.DefaultSelector,
                conns: List[_Conn]) -> None:
        try:
            sock, _addr = self._server.accept()
        except (BlockingIOError, OSError):
            return
        sock.settimeout(self.io_timeout_s)
        try:
            # Pipelined grants stream small frames back-to-back; Nagle
            # plus delayed ACKs would stall every batch ~40ms.
            sock.setsockopt(socketlib.IPPROTO_TCP,
                            socketlib.TCP_NODELAY, 1)
        except OSError:
            pass        # e.g. AF_UNIX in tests: no TCP layer to tune
        conn = _Conn(sock)
        conns.append(conn)
        sel.register(sock, selectors.EVENT_READ, conn)

    def _pump(self, conn: _Conn) -> Iterator[Dict]:
        """Drain readable bytes into frames (incremental, fail-closed)."""
        try:
            chunk = conn.sock.recv(65536)
        except socketlib.timeout:
            return
        if not chunk:
            if conn.buffer:
                raise ProtocolError("connection closed mid-frame")
            raise _Eof()
        conn.buffer += chunk
        while len(conn.buffer) >= _LEN_BYTES:
            length = int.from_bytes(conn.buffer[:_LEN_BYTES], "big")
            if length == 0 or length > MAX_FRAME:
                raise ProtocolError(
                    f"frame length {length} outside (0, {MAX_FRAME}]")
            if len(conn.buffer) < _LEN_BYTES + length:
                return
            body = conn.buffer[_LEN_BYTES:_LEN_BYTES + length]
            conn.buffer = conn.buffer[_LEN_BYTES + length:]
            if body[:1] == COMPRESS_MAGIC:
                self._count("frames_compressed")
            yield decode_body(body)

    def _handle(self, message: Dict, conn: _Conn, table: LeaseTable,
                shards, lease_tasks: Dict[int, Task],
                errors: Dict[Task, str], conns, used_slots: set,
                welcome_base: Dict, grant, drop) -> Optional[TaskOutcome]:
        mtype = message["type"]
        if mtype == "HELLO":
            try:
                check_versions(message, "worker")
            except VersionMismatchError as exc:
                # fail closed, but tell the peer *why* before dropping:
                # a mixed-version worker must exit, not reconnect
                self._count("version_mismatches")
                self._send(conn, {"type": "BYE", "error": str(exc)})
                raise
            conn.worker = str(message.get("worker") or
                              f"worker-{id(conn.sock) & 0xffff}")
            free = [s for s in range(self.workers) if s not in used_slots]
            conn.slot = free[0] if free else None
            if conn.slot is not None:
                used_slots.add(conn.slot)
            conn.helloed = True
            self._count("workers_joined")
            welcome = dict(welcome_base)
            welcome["slot"] = conn.slot
            if (self.prefetch and self.cell_cache is not None
                    and conn.slot is not None):
                # announce the worker's shard so it can prefetch every
                # key it is likely to be granted in one CACHE_MGET
                welcome["prefetch"] = [
                    [exp_id, index] for exp_id, index
                    in shards[conn.slot][:_PREFETCH_CAP]]
            if self._send(conn, welcome):
                grant(conn)
            return None
        if not conn.helloed:
            raise ProtocolError(f"{mtype} before HELLO")
        if mtype == "HEARTBEAT":
            now = _now()
            renewed = 0
            if "holding" in message:
                renewed = self._renew_holding(message, conn, table)
            if message.get("lease") is not None:
                if table.heartbeat(_lease_id_of(message), now):
                    renewed += 1
            if renewed:
                self._count("heartbeats")
            else:
                self._count("stale_heartbeats")
            return None
        if mtype == "CACHE_GET":
            self._renew_holding(message, conn, table)
            self._count("round_trips", kind="cache_get")
            payload = None
            if self.cell_cache is not None:
                payload = self.cell_cache.load(str(message.get("key", "")))
            self._send(conn, {"type": "CACHE",
                              "key": message.get("key"),
                              "payload": payload})
            return None
        if mtype == "CACHE_MGET":
            self._renew_holding(message, conn, table)
            self._handle_mget(message, conn)
            return None
        if mtype == "CACHE_PUT":
            self._renew_holding(message, conn, table)
            if self.cell_cache is not None:
                try:
                    self.cell_cache.save(str(message.get("key", "")),
                                         message.get("payload"))
                    self._count("cache_publishes")
                except (ValueError, OSError):
                    pass        # bad key/disk trouble: cache is advisory
            return None
        if mtype == "CACHE_MPUT":
            self._renew_holding(message, conn, table)
            entries = message.get("entries")
            if not isinstance(entries, dict):
                raise ProtocolError("CACHE_MPUT entries must be an object")
            if self.cell_cache is not None:
                for key in sorted(entries):
                    try:
                        self.cell_cache.save(str(key), entries[key])
                        self._count("cache_publishes")
                    except (ValueError, OSError):
                        pass    # advisory, same as CACHE_PUT
            return None
        if mtype == "RESULT":
            return self._handle_result(message, conn, table, lease_tasks,
                                       errors, grant)
        if mtype == "BYE":
            raise _Eof()
        raise ProtocolError(f"unexpected {mtype} from a worker")

    def _handle_mget(self, message: Dict, conn: _Conn) -> None:
        """Answer a batched cache query in as few frames as possible.

        One CACHE_MGET collapses what used to be one blocking round
        trip per cell.  Replies are chunked by estimated body size so
        a shard of large rows never produces an over-``MAX_FRAME``
        frame; the final chunk carries ``eom`` so the worker knows the
        batch is complete.
        """
        keys = message.get("keys")
        if not isinstance(keys, list):
            raise ProtocolError("CACHE_MGET keys must be a list")
        self._count("round_trips", kind="cache_mget")
        entries: Dict[str, object] = {}
        estimate = 0
        for key in keys:
            key = str(key)
            payload = (self.cell_cache.load(key)
                       if self.cell_cache is not None else None)
            if payload is not None:
                self._count("cache_prefetch_hits")
                estimate += len(json.dumps(payload, sort_keys=True,
                                           separators=(",", ":")))
            entries[key] = payload
            estimate += len(key) + 16
            if estimate >= _MGET_CHUNK_BYTES:
                if not self._send(conn, {"type": "CACHE",
                                         "entries": entries,
                                         "eom": False}):
                    return
                entries, estimate = {}, 0
        self._send(conn, {"type": "CACHE", "entries": entries,
                          "eom": True})

    def _renew_holding(self, message: Dict, conn: _Conn,
                       table: LeaseTable) -> int:
        """Piggybacked liveness: renew the leases a worker says it holds.

        Worker frames carry ``"holding"`` — every lease id queued or
        computing on that worker — so result/cache traffic keeps the
        whole pipeline alive without dedicated HEARTBEAT frames.  Only
        the listed leases are renewed (and only this worker's): a LEASE
        frame lost on the wire is held by nobody and must still expire.
        """
        holding = message.get("holding")
        if holding is None:
            return 0
        if not isinstance(holding, list):
            raise ProtocolError("holding must be a list of lease ids")
        try:
            ids = [int(h) for h in holding]
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed holding list: {exc}") from exc
        return table.renew_worker(str(conn.worker), _now(), holding=ids)

    def _handle_result(self, message: Dict, conn: _Conn, table: LeaseTable,
                       lease_tasks: Dict[int, Task],
                       errors: Dict[Task, str],
                       grant) -> Optional[TaskOutcome]:
        conn.outstanding = max(0, conn.outstanding - 1)
        conn.done += 1
        self._renew_holding(message, conn, table)
        lease_id = _lease_id_of(message)
        task = lease_tasks.get(lease_id)
        if task is None:
            raise ProtocolError(f"RESULT for unknown lease {lease_id}")
        error = message.get("error")
        if error is not None:
            errors[task] = str(error)
            self._count("task_errors")
            table.fail(lease_id, task)
            grant(conn)
            return None
        verdict = table.complete(lease_id, task)
        grant(conn)
        if verdict == "duplicate":
            self._count("duplicate_results")
            return None
        if verdict == "late":
            self._count("late_results")
        cached = message.get("cached")
        if cached == "local":
            self._count_cache_hit("local")
        elif cached == "remote":
            # counted on the RESULT, not when answering CACHE_GET /
            # CACHE_MGET: a prefetched key only becomes a *hit* when a
            # lease is actually served from it, and duplicates have
            # already been filtered above
            self._count_cache_hit("remote")
        if (self.cell_cache is not None and cached is None
                and message.get("key")):
            try:        # publish computed rows the worker didn't PUT
                self.cell_cache.save(str(message["key"]),
                                     message.get("payload"))
            except (ValueError, OSError):
                pass
        self._count("results")
        return TaskOutcome(task, payload=message.get("payload"),
                           snapshot=message.get("snapshot"),
                           cached=cached)

    def _send(self, conn: _Conn, message: Dict) -> bool:
        try:
            frame, compressed = encode_frame(message)
            conn.sock.setblocking(True)
            conn.sock.settimeout(self.io_timeout_s)
            conn.sock.sendall(frame)
            if compressed:
                self._count("frames_compressed")
            return True
        except (OSError, ProtocolError):
            return False

    # -- spawned-worker supervision ------------------------------------
    def _spawn_workers(self, n: int) -> None:
        import repro
        src_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        parts = [src_root] + [p for p in
                              env.get("PYTHONPATH", "").split(os.pathsep)
                              if p]
        env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
        # spawned workers inherit our connect budget so orphans (after
        # a coordinator SIGKILL) exit promptly instead of lingering
        env.setdefault(CONNECT_BUDGET_ENV, f"{self.connect_budget_s:g}")
        host, port = self.public_address
        for _ in range(n):
            index = len(self._procs)
            self._procs.append(subprocess.Popen(
                [sys.executable, "-m", "repro.exp.worker",
                 "--connect", f"{host}:{port}",
                 "--worker-id", f"local-{os.getpid()}-{index}"],
                env=env, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL))
            self._count("workers_spawned")

    def _respawn_if_needed(self, conns: List[_Conn]) -> None:
        alive = [p for p in self._procs if p.poll() is None]
        budget = self.workers + 2
        if not alive and not conns and \
                self.stats.get("workers_spawned", 0) < budget:
            self._spawn_workers(1)

    def _reap_workers(self, kill: bool = False) -> None:
        for proc in self._procs:
            if proc.poll() is None:
                if kill:
                    proc.kill()
                else:
                    try:
                        proc.wait(timeout=5)
                    except subprocess.TimeoutExpired:
                        proc.kill()
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                pass
        self._procs = []

    #: pids of spawned workers (chaos tests SIGKILL these).
    @property
    def worker_pids(self) -> List[int]:
        return [p.pid for p in self._procs if p.poll() is None]


def _lease_id_of(message: Dict) -> int:
    """The frame's lease id, failing closed on non-integer garbage."""
    try:
        return int(message.get("lease", -1))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed lease id: {exc}") from exc


class _Eof(Exception):
    """Internal: the peer closed cleanly at a frame boundary."""
