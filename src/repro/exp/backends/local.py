"""LocalPoolBackend — the ProcessPool execution backend (the default).

This is the engine PR 2 built and PR 3 hardened, repackaged behind the
:class:`~repro.exp.backends.base.ExecutionBackend` interface: tasks fan
out to a :class:`~concurrent.futures.ProcessPoolExecutor`, and a worker
that dies outright (OOM kill, segfault) breaks the pool — so each retry
attempt rebuilds a **fresh pool** and resubmits only the unfinished
tasks, with exponential backoff.  Completed tasks are never recomputed;
a task still failing after the attempt budget is yielded as a failed
outcome and the scheduler decides (raise vs ``keep_going``).

Futures are collected in submission (= request) order, never completion
order, so per-attempt progress and merged metrics stay deterministic.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, Iterator, Sequence

from ..chaos import maybe_crash
from ..planner import RunContext, Task, run_task, task_key
from .base import ExecutionBackend, TaskOutcome

__all__ = ["LocalPoolBackend"]


def _pool_task(task: Task, wire_ctx: Dict):
    """Top-level worker entry point (must pickle under spawn too)."""
    return run_task(tuple(task), RunContext.from_wire(wire_ctx))


def _pool_init(parent_pid: int) -> None:
    """Exit the pool worker promptly if the coordinator dies.

    A coordinator killed hard (crash points, OOM, operator SIGKILL)
    orphans its pool: forked workers inherit the call-queue write ends,
    so they never see EOF and would idle forever — and hold the
    coordinator's stdio pipes open, wedging any script that captured
    them.  A watchdog thread turns that into a fast, silent exit.
    """
    def watch() -> None:
        while True:
            if os.getppid() != parent_pid:
                os._exit(0)
            time.sleep(0.5)
    threading.Thread(target=watch, daemon=True,
                     name="parent-watchdog").start()


class LocalPoolBackend(ExecutionBackend):
    """Fan tasks out to worker processes on this host."""

    name = "local"

    def __init__(self, jobs: int = 1):
        super().__init__()
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def run_tasks(self, tasks: Sequence[Task],
                  ctx: RunContext) -> Iterator[TaskOutcome]:
        wire_ctx = ctx.to_wire()
        pending = list(tasks)
        errors: Dict[Task, BaseException] = {}
        attempts = 0
        while pending and attempts <= ctx.retries:
            if attempts:
                time.sleep(ctx.backoff_s * 2 ** (attempts - 1))
                self._count("pool_rebuilds")
            errors = {}
            # A fresh pool per attempt: a worker killed hard breaks the
            # executor for every outstanding future, and a broken pool
            # cannot be reused.
            for task in pending:
                self._journal_event({"type": "lease",
                                     "task": task_key(task),
                                     "worker": "pool",
                                     "attempt": attempts + 1})
                maybe_crash("backend.lease")
            with ProcessPoolExecutor(
                    max_workers=min(self.jobs, len(pending)),
                    initializer=_pool_init,
                    initargs=(os.getpid(),)) as pool:
                futures = {task: pool.submit(_pool_task, task, wire_ctx)
                           for task in pending}
                self._count("leases_issued", len(pending))
                for task in pending:
                    try:
                        payload, snapshot = futures[task].result()
                    except (Exception, BrokenProcessPool) as exc:
                        errors[task] = exc
                    else:
                        self._count("results")
                        yield TaskOutcome(task, payload=payload,
                                          snapshot=snapshot,
                                          attempts=attempts + 1)
            retried = [t for t in pending if t in errors]
            if retried and attempts < ctx.retries:
                self._count("reassignments", len(retried))
            pending = retried
            attempts += 1
        for task in pending:
            yield TaskOutcome(task, error=errors[task], attempts=attempts)

    def plan(self, tasks: Sequence[Task], ctx: RunContext) -> Dict:
        n_workers = min(self.jobs, max(1, len(tasks)))
        return {"backend": self.name, "workers": n_workers,
                "n_tasks": len(tasks),
                "shards": self._shard_plan(tasks, ctx, n_workers)}

    def close(self) -> None:
        pass    # pools are scoped to run_tasks attempts
