"""LocalPoolBackend — the ProcessPool execution backend (the default).

This is the engine PR 2 built and PR 3 hardened, repackaged behind the
:class:`~repro.exp.backends.base.ExecutionBackend` interface: tasks fan
out to a :class:`~concurrent.futures.ProcessPoolExecutor`, and a worker
that dies outright (OOM kill, segfault) breaks the pool — so each retry
attempt rebuilds a **fresh pool** and resubmits only the unfinished
tasks, with exponential backoff.  Completed tasks are never recomputed;
a task still failing after the attempt budget is yielded as a failed
outcome and the scheduler decides (raise vs ``keep_going``).

Warm-worker fast paths (the pool twin of the socket backend's wire
batching): the :class:`~repro.exp.planner.RunContext` is decoded from
its wire form **once per worker process** — in the pool initializer,
not per submitted task — and tasks are submitted in chunks so a
many-tiny-cell grid pays one pickle/unpickle round trip per chunk
instead of per cell.  ``ctx_decodes`` records the per-pid decode count
observed by each chunk; the conformance wall asserts it is exactly 1
everywhere.

Futures are collected in submission (= request) order, never completion
order, so per-attempt progress and merged metrics stay deterministic.
A failure inside a chunk is caught per task; only a broken pool fails
the whole chunk (and the fresh-pool retry resubmits it).
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, Iterator, List, Sequence, Tuple

from ..chaos import maybe_crash
from ..planner import RunContext, Task, run_task, task_key
from .base import ExecutionBackend, TaskOutcome

__all__ = ["LocalPoolBackend"]

#: Per-worker-process state, populated exactly once by the pool
#: initializer: the decoded run context and how many times it was
#: decoded in this process (the conformance wall pins that at 1).
_POOL_STATE: Dict[str, object] = {"ctx": None, "decodes": 0}


def _pool_task(task: Task, wire_ctx: Dict):
    """Top-level single-task entry point (kept for API compatibility;
    decodes per call — the chunked path below is what the backend
    uses)."""
    return run_task(tuple(task), RunContext.from_wire(wire_ctx))


def _pool_init(parent_pid: int, wire_ctx: Dict) -> None:
    """Per-process setup: parent watchdog + one-time context decode.

    The watchdog exits the pool worker promptly if the coordinator
    dies: a coordinator killed hard (crash points, OOM, operator
    SIGKILL) orphans its pool — forked workers inherit the call-queue
    write ends, so they never see EOF and would idle forever, holding
    the coordinator's stdio pipes open.  A watchdog thread turns that
    into a fast, silent exit.

    The context decode here is the warm-worker fast path: every task
    this process ever runs shares one decoded
    :class:`~repro.exp.planner.RunContext` instead of rebuilding it
    from the wire dict per submit.
    """
    def watch() -> None:
        while True:
            if os.getppid() != parent_pid:
                os._exit(0)
            time.sleep(0.5)
    threading.Thread(target=watch, daemon=True,
                     name="parent-watchdog").start()
    _POOL_STATE["ctx"] = RunContext.from_wire(wire_ctx)
    _POOL_STATE["decodes"] = int(_POOL_STATE.get("decodes", 0)) + 1


def _pool_chunk(chunk: List[Task]) -> Tuple[int, int, List[Tuple]]:
    """Run a chunk of tasks against the process-wide decoded context.

    Returns ``(pid, decode_count, entries)`` where each entry is
    ``("ok", payload, snapshot)`` or ``("err", exception)`` — task
    failures are per-task data, not chunk failures, so one bad cell
    cannot take its chunk-mates down with it.
    """
    ctx = _POOL_STATE.get("ctx")
    if not isinstance(ctx, RunContext):
        raise RuntimeError("pool worker was not initialized with a "
                           "RunContext")
    entries: List[Tuple] = []
    for task in chunk:
        try:
            payload, snapshot = run_task(tuple(task), ctx)
        except Exception as exc:        # noqa: BLE001 — judged by parent
            entries.append(("err", exc))
        else:
            entries.append(("ok", payload, snapshot))
    return os.getpid(), int(_POOL_STATE.get("decodes", 0)), entries


class LocalPoolBackend(ExecutionBackend):
    """Fan tasks out to worker processes on this host."""

    name = "local"

    def __init__(self, jobs: int = 1):
        super().__init__()
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        #: pid → RunContext decode count observed by that worker's
        #: chunks (the once-per-process test asserts every value is 1)
        self.ctx_decodes: Dict[int, int] = {}

    def run_tasks(self, tasks: Sequence[Task],
                  ctx: RunContext) -> Iterator[TaskOutcome]:
        wire_ctx = ctx.to_wire()
        pending = list(tasks)
        errors: Dict[Task, BaseException] = {}
        attempts = 0
        while pending and attempts <= ctx.retries:
            if attempts:
                time.sleep(ctx.backoff_s * 2 ** (attempts - 1))
                self._count("pool_rebuilds")
            errors = {}
            # A fresh pool per attempt: a worker killed hard breaks the
            # executor for every outstanding future, and a broken pool
            # cannot be reused.
            for task in pending:
                self._journal_event({"type": "lease",
                                     "task": task_key(task),
                                     "worker": "pool",
                                     "attempt": attempts + 1})
                maybe_crash("backend.lease")
            max_workers = min(self.jobs, len(pending))
            # ~4 chunks per worker: big enough to amortise the pickle
            # round trip on tiny cells, small enough that a straggler
            # chunk cannot serialise the tail of the sweep
            chunk_size = max(1, -(-len(pending) // (max_workers * 4)))
            chunks = [pending[i:i + chunk_size]
                      for i in range(0, len(pending), chunk_size)]
            with ProcessPoolExecutor(
                    max_workers=max_workers,
                    initializer=_pool_init,
                    initargs=(os.getpid(), wire_ctx)) as pool:
                futures = [(chunk, pool.submit(_pool_chunk, chunk))
                           for chunk in chunks]
                self._count("leases_issued", len(pending))
                for chunk, future in futures:
                    try:
                        pid, decodes, entries = future.result()
                    except (Exception, BrokenProcessPool) as exc:
                        for task in chunk:      # the pool died under it
                            errors[task] = exc
                        continue
                    self.ctx_decodes[pid] = max(
                        self.ctx_decodes.get(pid, 0), decodes)
                    for task, entry in zip(chunk, entries):
                        if entry[0] == "ok":
                            self._count("results")
                            yield TaskOutcome(task, payload=entry[1],
                                              snapshot=entry[2],
                                              attempts=attempts + 1)
                        else:
                            errors[task] = entry[1]
            retried = [t for t in pending if t in errors]
            if retried and attempts < ctx.retries:
                self._count("reassignments", len(retried))
            pending = retried
            attempts += 1
        for task in pending:
            yield TaskOutcome(task, error=errors[task], attempts=attempts)

    def plan(self, tasks: Sequence[Task], ctx: RunContext) -> Dict:
        n_workers = min(self.jobs, max(1, len(tasks)))
        return {"backend": self.name, "workers": n_workers,
                "n_tasks": len(tasks),
                "shards": self._shard_plan(tasks, ctx, n_workers)}

    def close(self) -> None:
        pass    # pools are scoped to run_tasks attempts
