"""DryRunBackend — plan and shard a sweep without executing anything.

Answers "what would this run do" for free: how many tasks, how they
shard across workers, and which experiments the scheduler already
served from the result cache (cache prefetch happens *before* the
backend sees anything, so a dry run against a warm cache returns the
full byte-identical store while this backend executes zero tasks —
the conformance wall pins exactly that).

Every task that reaches :meth:`run_tasks` is yielded as a
``planned``-only outcome; the scheduler skips finalization for those,
so no simulation, no cache writes and no metrics happen.  The computed
plan is kept on :attr:`last_plan` for the CLI to print.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence

from ..planner import RunContext, Task, task_key
from .base import ExecutionBackend, TaskOutcome

__all__ = ["DryRunBackend"]


class DryRunBackend(ExecutionBackend):
    """Shard and report; never execute."""

    name = "dryrun"

    def __init__(self, workers: int = 1):
        super().__init__()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.last_plan: Optional[Dict] = None

    def run_tasks(self, tasks: Sequence[Task],
                  ctx: RunContext) -> Iterator[TaskOutcome]:
        self.last_plan = self.plan(tasks, ctx)
        self._count("tasks_planned", len(tasks))
        for task in tasks:
            yield TaskOutcome(task, planned=True)

    def plan(self, tasks: Sequence[Task], ctx: RunContext) -> Dict:
        per_exp: Dict[str, int] = {}
        for exp_id, _index in tasks:
            per_exp[exp_id] = per_exp.get(exp_id, 0) + 1
        return {"backend": self.name, "workers": self.workers,
                "n_tasks": len(tasks),
                "tasks_per_experiment": per_exp,
                "quick": ctx.quick,
                "tasks": [task_key(t) for t in tasks],
                "shards": self._shard_plan(tasks, ctx, self.workers)}

    def close(self) -> None:
        pass
