"""Pluggable execution backends for the experiment engine.

The scheduler (:mod:`repro.exp.scheduler`) decides *what* to run and
how results are assembled; a backend decides *where* tasks execute:

* :class:`LocalPoolBackend` — a process pool on this machine (the
  PR-3 behaviour, and the default for ``--jobs > 1``);
* :class:`SocketWorkerBackend` — lease tasks to worker processes over
  TCP (``python -m repro.exp.worker``), on this host or any other;
* :class:`DryRunBackend` — plan and shard without executing.

All backends execute the same task body
(:func:`repro.exp.planner.run_task`) and the scheduler reassembles
results in request order, so the rendered store is byte-identical to a
serial run regardless of backend, worker count, or arrival order —
``tests/test_exp_backends.py`` is the conformance wall pinning that.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from .base import ExecutionBackend, TaskOutcome
from .dryrun import DryRunBackend
from .local import LocalPoolBackend
from .socket import (NoWorkersError, RemoteTaskError, SocketWorkerBackend,
                     parse_address)

__all__ = ["ExecutionBackend", "TaskOutcome", "LocalPoolBackend",
           "SocketWorkerBackend", "DryRunBackend", "RemoteTaskError",
           "NoWorkersError", "BACKENDS", "create_backend", "parse_address"]

#: Name → class, the vocabulary of ``--backend``.
BACKENDS: Dict[str, Type[ExecutionBackend]] = {
    LocalPoolBackend.name: LocalPoolBackend,
    SocketWorkerBackend.name: SocketWorkerBackend,
    DryRunBackend.name: DryRunBackend,
}


def create_backend(name: str, *, jobs: int = 1,
                   workers: Optional[int] = None,
                   listen: Optional[str] = None,
                   cache_dir: Optional[str] = None,
                   lease_timeout_s: float = 30.0,
                   chaos: Optional[str] = None,
                   connect_budget_s: Optional[float] = None,
                   pipeline: Optional[int] = None
                   ) -> ExecutionBackend:
    """Build the backend ``name`` from scheduler/CLI-level knobs.

    ``jobs`` sizes the local pool; ``workers`` sizes socket/dry-run
    fan-out (defaulting to ``jobs``); ``listen`` switches the socket
    backend from spawn-local-workers to wait-for-external-workers;
    ``chaos`` arms a :class:`~repro.exp.chaos.ChaosPlan` proxy,
    ``connect_budget_s`` bounds the wait for the first worker handshake
    and ``pipeline`` forces the credit-based lease window
    (``--pipeline N``; default derives it from the grid size) — all
    three socket-only.
    """
    if name not in BACKENDS:
        known = ", ".join(sorted(BACKENDS))
        raise ValueError(f"unknown backend {name!r} (known: {known})")
    n_workers = workers if workers is not None else max(jobs, 1)
    if name == LocalPoolBackend.name:
        return LocalPoolBackend(jobs=max(jobs, n_workers))
    if name == SocketWorkerBackend.name:
        return SocketWorkerBackend(workers=n_workers, listen=listen,
                                   cache_dir=cache_dir,
                                   lease_timeout_s=lease_timeout_s,
                                   chaos=chaos,
                                   connect_budget_s=connect_budget_s,
                                   pipeline=pipeline)
    return DryRunBackend(workers=n_workers)
