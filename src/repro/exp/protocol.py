"""Length-prefixed JSON message protocol for distributed execution.

One frame = a 4-byte big-endian length followed by that many bytes of
canonical UTF-8 JSON (an object with a ``"type"`` key).  The message
vocabulary is deliberately tiny — the transport layering follows the
light-weight communication-library designs the ROADMAP cites:

========== =========== ==================================================
type       direction   meaning
========== =========== ==================================================
HELLO      worker→coord  join: protocol + package version + worker id
WELCOME    coord→worker  run config (:class:`~repro.exp.planner.RunContext`
                         wire form, slot, heartbeat/lease intervals)
LEASE      coord→worker  a task grant: lease id + task identity
HEARTBEAT  worker→coord  lease renewal while a task is computing
CACHE_GET  worker→coord  query the shared content-addressed cell cache
CACHE      coord→worker  cache answer (payload or null)
CACHE_PUT  worker→coord  publish a computed payload under its digest
RESULT     worker→coord  task outcome (payload/snapshot or error)
BYE        both          orderly goodbye (coordinator: no more work; may
                         carry ``"error"`` explaining a rejection)
========== =========== ==================================================

Version negotiation: HELLO and WELCOME both carry ``proto``
(:data:`PROTOCOL_VERSION`) and ``version`` (the installed
``repro.__version__``).  Either side seeing a mismatch **fails
closed** with :class:`VersionMismatchError` — a mixed-version pair
would compute under different source digests and silently disagree on
cache keys and result bytes, so it must not compute at all.  The
rejecting side sends a BYE with an ``error`` field first, so the peer
can report *why* instead of a bare disconnect.

Fail-closed by construction: a frame whose length prefix is zero,
negative-ish (> :data:`MAX_FRAME`), whose body is truncated, is not
UTF-8 JSON, is not an object, or lacks a ``"type"`` raises
:class:`ProtocolError` — the peer drops the connection instead of
guessing.  Every socket passed in must already carry a timeout, so a
stalled peer surfaces as ``socket.timeout``, never as a hang.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Dict, Optional

__all__ = ["PROTOCOL_VERSION", "MAX_FRAME", "MESSAGE_TYPES",
           "ProtocolError", "VersionMismatchError", "send_frame",
           "recv_frame", "decode_body", "package_version",
           "check_versions"]

#: v2 added the ``version`` field to HELLO/WELCOME (mixed-version
#: pairs now degrade cleanly instead of misparsing).
PROTOCOL_VERSION = 2

#: Hard ceiling on one frame body.  Quick-grid payloads are a few KB;
#: 16 MiB leaves room for full-sweep rows while making a garbage
#: length prefix (e.g. ASCII read as big-endian) fail immediately.
MAX_FRAME = 16 * 1024 * 1024

MESSAGE_TYPES = frozenset({
    "HELLO", "WELCOME", "LEASE", "HEARTBEAT",
    "CACHE_GET", "CACHE", "CACHE_PUT", "RESULT", "BYE",
})

_LEN = struct.Struct(">I")


class ProtocolError(Exception):
    """The peer sent something that is not a well-formed frame."""


class VersionMismatchError(ProtocolError):
    """The peer runs a different protocol or package version.

    A typed subclass so supervisors can distinguish "wrong software"
    (give up, fix the deployment) from "garbage on the wire" (drop the
    connection, keep serving).
    """


def package_version() -> str:
    """The installed ``repro.__version__`` (what HELLO/WELCOME carry)."""
    import repro
    return repro.__version__


def check_versions(message: Dict, who: str) -> None:
    """Fail closed unless ``message`` matches our proto + package.

    ``who`` names the peer ("worker"/"coordinator") for the error text.
    """
    proto = message.get("proto")
    if proto != PROTOCOL_VERSION:
        raise VersionMismatchError(
            f"{who} speaks protocol {proto!r}, we speak "
            f"{PROTOCOL_VERSION}")
    version = message.get("version")
    if version != package_version():
        raise VersionMismatchError(
            f"{who} runs repro {version!r}, we run "
            f"{package_version()!r} — mixed versions would disagree on "
            f"cache keys and result bytes")


def send_frame(sock: socket.socket, message: Dict) -> None:
    """Serialize ``message`` canonically and send it as one frame."""
    body = json.dumps(message, sort_keys=True,
                      separators=(",", ":")).encode()
    if len(body) > MAX_FRAME:
        raise ProtocolError(f"outgoing frame of {len(body)} bytes exceeds "
                            f"MAX_FRAME ({MAX_FRAME})")
    sock.sendall(_LEN.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Exactly ``n`` bytes, ``None`` on clean EOF *before* any byte,
    :class:`ProtocolError` on EOF mid-read (a truncated frame)."""
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError(f"connection closed mid-frame "
                                f"({got}/{n} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def decode_body(body: bytes) -> Dict:
    """Validate one frame body; the single point of fail-closed parsing
    shared by the blocking reader here and the coordinator's
    incremental buffer pump."""
    try:
        message = json.loads(body.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"frame body is {type(message).__name__}, "
                            f"not an object")
    mtype = message.get("type")
    if mtype not in MESSAGE_TYPES:
        raise ProtocolError(f"unknown message type {mtype!r}")
    return message


def recv_frame(sock: socket.socket) -> Optional[Dict]:
    """One message, ``None`` on clean EOF at a frame boundary.

    Anything malformed — bad length, truncation, garbage bytes, a
    non-object body, an unknown ``"type"`` — raises
    :class:`ProtocolError`; callers must treat that as fatal for the
    connection (fail closed), never retry-parse.
    """
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length == 0 or length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} outside (0, {MAX_FRAME}]")
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed between header and body")
    return decode_body(body)
