"""Length-prefixed JSON message protocol for distributed execution.

One frame = a 4-byte big-endian length followed by that many bytes of
canonical UTF-8 JSON (an object with a ``"type"`` key).  The message
vocabulary is deliberately tiny — the transport layering follows the
light-weight communication-library designs the ROADMAP cites:

========== =========== ==================================================
type       direction   meaning
========== =========== ==================================================
HELLO      worker→coord  join: protocol + package version + worker id
WELCOME    coord→worker  run config (:class:`~repro.exp.planner.RunContext`
                         wire form, slot, heartbeat/lease intervals,
                         optional shard-prefetch task list)
LEASE      coord→worker  a task grant: lease id + task identity + attempt
HEARTBEAT  worker→coord  lease renewal while a task is computing; may
                         carry ``"holding"`` (every lease id queued or
                         computing on this worker)
CACHE_GET  worker→coord  query the shared content-addressed cell cache
CACHE_MGET worker→coord  batched query: many keys in one round trip
CACHE      coord→worker  cache answer (single ``key``/``payload``, or a
                         batched ``entries`` map with an ``eom`` marker)
CACHE_PUT  worker→coord  publish a computed payload under its digest
CACHE_MPUT worker→coord  batched publish: ``entries`` maps key→payload
RESULT     worker→coord  task outcome (payload/snapshot or error)
BYE        both          orderly goodbye (coordinator: no more work; may
                         carry ``"error"`` explaining a rejection)
========== =========== ==================================================

Compressed frames: a body whose first byte is ``0x00`` is
:data:`COMPRESS_MAGIC` followed by a zlib stream of the canonical JSON.
Raw JSON bodies always start with ``{`` (0x7B), so the dispatch is
unambiguous.  Senders compress only when the body is at least
:data:`COMPRESS_MIN` bytes *and* compression actually shrinks it;
receivers inflate with a hard :data:`MAX_FRAME` output bound and fail
closed on truncated streams, trailing garbage, or decompression bombs.

Version negotiation: HELLO and WELCOME both carry ``proto``
(:data:`PROTOCOL_VERSION`) and ``version`` (the installed
``repro.__version__``).  Either side seeing a mismatch **fails
closed** with :class:`VersionMismatchError` — a mixed-version pair
would compute under different source digests and silently disagree on
cache keys and result bytes, so it must not compute at all.  The
rejecting side sends a BYE with an ``error`` field first, so the peer
can report *why* instead of a bare disconnect.

Fail-closed by construction: a frame whose length prefix is zero,
negative-ish (> :data:`MAX_FRAME`), whose body is truncated, is not
UTF-8 JSON, is not an object, or lacks a ``"type"`` raises
:class:`ProtocolError` — the peer drops the connection instead of
guessing.  Every socket passed in must already carry a timeout, so a
stalled peer surfaces as ``socket.timeout``, never as a hang.
"""

from __future__ import annotations

import json
import socket
import struct
import zlib
from typing import Dict, Optional, Tuple

__all__ = ["PROTOCOL_VERSION", "MAX_FRAME", "MESSAGE_TYPES",
           "COMPRESS_MIN", "COMPRESS_MAGIC", "FAIL_CLOSED_FIXTURES",
           "ProtocolError", "VersionMismatchError", "encode_frame",
           "send_frame", "recv_frame", "decode_body", "package_version",
           "check_versions"]

#: v2 added the ``version`` field to HELLO/WELCOME (mixed-version
#: pairs now degrade cleanly instead of misparsing).  v3 added the
#: batched cache frames (CACHE_MGET/CACHE_MPUT), lease pipelining
#: fields (LEASE ``attempt``, piggybacked ``holding`` lists) and the
#: zlib-compressed body encoding — a v2 peer would misparse all three,
#: so the handshake rejects it.
PROTOCOL_VERSION = 3

#: Hard ceiling on one frame body.  Quick-grid payloads are a few KB;
#: 16 MiB leaves room for full-sweep rows while making a garbage
#: length prefix (e.g. ASCII read as big-endian) fail immediately.
MAX_FRAME = 16 * 1024 * 1024

#: Bodies at least this large are eligible for the zlib fast path.
#: Control frames (LEASE, HEARTBEAT, small RESULTs) stay raw JSON —
#: compressing tiny bodies costs CPU and obscures debugging for no
#: wire saving.
COMPRESS_MIN = 8 * 1024

#: First body byte of a compressed frame.  Raw canonical JSON starts
#: with ``{`` so a single leading byte disambiguates.
COMPRESS_MAGIC = b"\x00"

MESSAGE_TYPES = frozenset({
    "HELLO", "WELCOME", "LEASE", "HEARTBEAT",
    "CACHE_GET", "CACHE_MGET", "CACHE", "CACHE_PUT", "CACHE_MPUT",
    "RESULT", "BYE",
})

#: One malformed frame *body* per message type that :func:`decode_body`
#: must reject with :class:`ProtocolError`.  The decode-fixture wall in
#: ``tests/test_exp_backends.py`` parametrizes over this dict, and the
#: PAR307 lint rule statically checks that every MESSAGE_TYPES entry
#: has a key here — so a new frame type cannot ship without a
#: fail-closed decode test.  Each fixture is type-specific on purpose:
#: a truncated JSON object naming the type, plus (for the batched
#: cache frames) a compressed-magic body whose zlib stream is garbage.
FAIL_CLOSED_FIXTURES: Dict[str, bytes] = {
    "HELLO": b'{"type":"HELLO","proto":',
    "WELCOME": b'{"type":"WELCOME","ctx":{',
    "LEASE": b'{"type":"LEASE","lease":1',
    "HEARTBEAT": b'{"type":"HEARTBEAT","holding":[1,',
    "CACHE_GET": b'{"type":"CACHE_GET","key":"',
    "CACHE_MGET": b'\x00CACHE_MGET not a zlib stream',
    "CACHE": b'{"type":"CACHE","entries":{',
    "CACHE_PUT": b'{"type":"CACHE_PUT","payload":',
    "CACHE_MPUT": b'\x00CACHE_MPUT not a zlib stream',
    "RESULT": b'{"type":"RESULT","lease":1,"payload":',
    "BYE": b'{"type":"BYE","error":"',
}

#: Message fields that only exist from a given protocol version on.
#: A peer older than the listed version simply omits the field, so
#: endpoint modules may only read these behind a version gate
#: (``check_versions`` / an explicit ``PROTOCOL_VERSION`` comparison);
#: the WIRE504 lint rule enforces that statically.
VERSION_GATED_FIELDS: Dict[str, int] = {
    "holding": 3,    # HEARTBEAT/RESULT piggybacked lease ledger
    "attempt": 3,    # LEASE retry counter (pipelined grants)
    "entries": 3,    # CACHE/CACHE_MPUT batched payload maps
    "keys": 3,       # CACHE_MGET batched query list
    "prefetch": 3,   # WELCOME shard-prefetch task list
    "eom": 3,        # CACHE end-of-multiget marker
}

_LEN = struct.Struct(">I")


class ProtocolError(Exception):
    """The peer sent something that is not a well-formed frame."""


class VersionMismatchError(ProtocolError):
    """The peer runs a different protocol or package version.

    A typed subclass so supervisors can distinguish "wrong software"
    (give up, fix the deployment) from "garbage on the wire" (drop the
    connection, keep serving).
    """


def package_version() -> str:
    """The installed ``repro.__version__`` (what HELLO/WELCOME carry)."""
    import repro
    return repro.__version__


def check_versions(message: Dict, who: str) -> None:
    """Fail closed unless ``message`` matches our proto + package.

    ``who`` names the peer ("worker"/"coordinator") for the error text.
    """
    proto = message.get("proto")
    if proto != PROTOCOL_VERSION:
        raise VersionMismatchError(
            f"{who} speaks protocol {proto!r}, we speak "
            f"{PROTOCOL_VERSION}")
    version = message.get("version")
    if version != package_version():
        raise VersionMismatchError(
            f"{who} runs repro {version!r}, we run "
            f"{package_version()!r} — mixed versions would disagree on "
            f"cache keys and result bytes")


def encode_frame(message: Dict) -> Tuple[bytes, bool]:
    """Serialize ``message`` canonically into one wire frame.

    Returns ``(frame_bytes, compressed)`` — the 4-byte length prefix
    plus the body, with the zlib fast path applied when the body is at
    least :data:`COMPRESS_MIN` bytes and compression actually shrinks
    it.  The ``compressed`` flag lets callers count wire savings
    (``exp/frames_compressed``) without re-inspecting bytes.
    """
    body = json.dumps(message, sort_keys=True,
                      separators=(",", ":")).encode()
    if len(body) > MAX_FRAME:
        # MAX_FRAME bounds the *decoded* body: receivers cap inflation
        # at MAX_FRAME, so a compressible-but-huge body must be
        # rejected here, not smuggled through the zlib path.
        raise ProtocolError(f"outgoing frame of {len(body)} bytes exceeds "
                            f"MAX_FRAME ({MAX_FRAME})")
    compressed = False
    if len(body) >= COMPRESS_MIN:
        packed = COMPRESS_MAGIC + zlib.compress(body, 6)
        if len(packed) < len(body):
            body = packed
            compressed = True
    return _LEN.pack(len(body)) + body, compressed


def send_frame(sock: socket.socket, message: Dict) -> bool:
    """Serialize ``message`` canonically and send it as one frame.

    Returns whether the body went out compressed (callers that don't
    count wire savings just ignore it).
    """
    frame, compressed = encode_frame(message)
    sock.sendall(frame)
    return compressed


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Exactly ``n`` bytes, ``None`` on clean EOF *before* any byte,
    :class:`ProtocolError` on EOF mid-read (a truncated frame)."""
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError(f"connection closed mid-frame "
                                f"({got}/{n} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def _inflate(body: bytes) -> bytes:
    """Inflate a compressed frame body, bounded and fail-closed.

    The output is capped at :data:`MAX_FRAME` — a tiny body must not
    be allowed to balloon into an arbitrarily large object (the
    decompression-bomb twin of the garbage-length-prefix check).
    Truncated streams and trailing garbage are protocol errors too.
    """
    inflater = zlib.decompressobj()
    try:
        out = inflater.decompress(body[len(COMPRESS_MAGIC):], MAX_FRAME)
    except zlib.error as exc:
        raise ProtocolError(f"compressed frame body is not a zlib "
                            f"stream: {exc}") from exc
    if inflater.unconsumed_tail:
        raise ProtocolError(f"compressed frame inflates past MAX_FRAME "
                            f"({MAX_FRAME})")
    if not inflater.eof:
        raise ProtocolError("compressed frame body is truncated")
    if inflater.unused_data:
        raise ProtocolError("compressed frame has trailing garbage")
    return out


def decode_body(body: bytes) -> Dict:
    """Validate one frame body; the single point of fail-closed parsing
    shared by the blocking reader here and the coordinator's
    incremental buffer pump."""
    if body[:1] == COMPRESS_MAGIC:
        body = _inflate(body)
    try:
        message = json.loads(body.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"frame body is {type(message).__name__}, "
                            f"not an object")
    mtype = message.get("type")
    if mtype not in MESSAGE_TYPES:
        raise ProtocolError(f"unknown message type {mtype!r}")
    return message


def recv_frame(sock: socket.socket) -> Optional[Dict]:
    """One message, ``None`` on clean EOF at a frame boundary.

    Anything malformed — bad length, truncation, garbage bytes, a
    non-object body, an unknown ``"type"`` — raises
    :class:`ProtocolError`; callers must treat that as fatal for the
    connection (fail closed), never retry-parse.
    """
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length == 0 or length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} outside (0, {MAX_FRAME}]")
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed between header and body")
    return decode_body(body)
