"""Deterministic, seeded chaos injection for the distributed harness.

:mod:`repro.faults` (PR 3) breaks the *simulated* wire; this module
breaks the *real* one — the length-prefixed JSON protocol between the
socket coordinator and its workers — so the lease/reassignment/cache
machinery can be proven correct under systematic transport hostility,
not just point-wise kill tests.

A :class:`ChaosPlan` parses from (and round-trips to) a compact spec
string in the :class:`~repro.faults.FaultPlan` grammar style:

``drop=P``
    Per-frame drop probability (the frame silently vanishes).
``dup=P``
    Per-frame duplication probability (the frame is delivered twice).
``reorder=P``
    Per-frame hold-back probability: the frame is delayed until after
    the *next* frame of its direction (a one-slot swap), released at
    connection end otherwise.
``corrupt=P``
    Per-frame corruption probability.  Corruption is deterministic and
    deterministically *detectable*: the first body byte is XORed with
    ``0xFF``, which can never be valid UTF-8 JSON — the receiver's
    fail-closed parser must raise, never mis-parse.
``reset@N``
    Hard connection reset (RST, not FIN) when the worker's ``N``-th
    worker→coordinator frame arrives at the proxy.  Repeatable.
``partition@N:M``
    Half-open partition: worker→coordinator frames ``N .. N+M-1`` are
    blackholed while coordinator→worker traffic still flows — the
    worker looks frozen (heartbeats lost) yet keeps receiving.
``freeze@N:S``
    The worker→coordinator pipe stalls for ``S`` seconds before frame
    ``N`` is forwarded (a frozen / GC-paused worker).  Repeatable.
``hbdelay=S``
    Every HEARTBEAT frame is delayed by ``S`` seconds.
``seed=N``
    Master seed for every probabilistic decision (default 0).

Tokens are comma-separated: ``"drop=0.1,dup=0.05,reset@7,seed=3"``.

Determinism contract
--------------------
Every probabilistic decision is drawn from a named
:class:`~repro.sim.rng.RngRegistry` stream keyed by ``(seed,
connection index, direction)``, and :class:`FrameInjector` draws **all
four** probabilities for **every** frame whether or not the earlier
decision already consumed the frame — so the decision for frame *k*
depends only on ``(seed, connection, direction, k)``, never on what
happened to frames before it.  Identical seed + identical frame
schedule ⇒ identical event sequence, which ``tests/test_exp_chaos.py``
pins.  Frame 0 of each direction (HELLO / WELCOME) is exempt from the
probabilistic faults so a connection can always *join*; resets,
partitions and freezes still exercise the handshake paths via worker
reconnect.

None of this machinery can change result *bytes*: it perturbs
delivery, and the lease layer's at-least-once reassignment plus the
scheduler's request-order assembly make delivery invisible — a chaos
run either completes byte-identical to a serial run or fails closed
with a typed error.  ``--chaos`` is therefore **not** part of any
cache key.

Crash points
------------
:func:`maybe_crash` is the coordinator-side SIGKILL hook: set
``REPRO_EXP_CRASH_POINT=<point>[:N]`` and the process kills itself
(``SIGKILL``, no cleanup, exactly like a power cut) the ``N``-th time
that named point is reached.  The journal/resume wall SIGKILLs the
coordinator at ``journal.plan``, ``backend.lease``, ``journal.result``
and ``scheduler.finalize`` and proves ``--resume`` completes the run
byte-identically.
"""

from __future__ import annotations

import os
import signal
import socket as socketlib
import struct
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..sim.rng import RngRegistry
from .protocol import MAX_FRAME, decode_body

__all__ = ["ChaosError", "ChaosPlan", "FrameInjector", "ResetInjected",
           "ChaosProxy", "CRASH_POINT_ENV", "maybe_crash",
           "reset_crash_counts"]

_LEN_BYTES = 4

#: ``point[:N]`` — SIGKILL this process the N-th time ``point`` is hit.
CRASH_POINT_ENV = "REPRO_EXP_CRASH_POINT"

#: The named protocol points :func:`maybe_crash` understands.
CRASH_POINTS = ("journal.plan", "backend.lease", "journal.result",
                "scheduler.finalize")

_crash_hits: Dict[str, int] = {}


def maybe_crash(point: str) -> None:
    """SIGKILL this process if ``REPRO_EXP_CRASH_POINT`` names ``point``.

    The spec is ``point`` or ``point:N`` (die on the N-th hit, default
    the first).  SIGKILL is deliberate: no atexit, no finally blocks,
    no flushes — exactly the failure ``--resume`` must survive.
    """
    spec = os.environ.get(CRASH_POINT_ENV)
    if not spec:
        return
    name, _, nth = spec.partition(":")
    if name != point:
        return
    _crash_hits[point] = _crash_hits.get(point, 0) + 1
    try:
        target = int(nth) if nth else 1
    except ValueError:
        target = 1
    if _crash_hits[point] >= target:
        os.kill(os.getpid(), signal.SIGKILL)


def reset_crash_counts() -> None:
    """Forget crash-point hit counts (test isolation)."""
    _crash_hits.clear()


class ChaosError(ValueError):
    """A chaos spec that cannot be parsed or applied."""


def _check_prob(name: str, value: float) -> float:
    value = float(value)
    if not 0.0 <= value < 1.0:
        raise ChaosError(f"{name} must be in [0, 1), got {value!r}")
    return value


@dataclass(frozen=True)
class ChaosPlan:
    """One immutable description of everything injected into the wire."""

    drop: float = 0.0
    dup: float = 0.0
    reorder: float = 0.0
    corrupt: float = 0.0
    resets: Tuple[int, ...] = field(default_factory=tuple)
    partitions: Tuple[Tuple[int, int], ...] = field(default_factory=tuple)
    freezes: Tuple[Tuple[int, float], ...] = field(default_factory=tuple)
    hb_delay_s: float = 0.0
    seed: int = 0

    def __post_init__(self):
        _check_prob("drop", self.drop)
        _check_prob("dup", self.dup)
        _check_prob("reorder", self.reorder)
        _check_prob("corrupt", self.corrupt)
        for at in self.resets:
            if at < 0:
                raise ChaosError(f"reset frame must be >= 0, got {at!r}")
        for start, count in self.partitions:
            if start < 0 or count <= 0:
                raise ChaosError(f"partition@{start}:{count} needs start "
                                 f">= 0 and length > 0")
        for at, seconds in self.freezes:
            if at < 0 or seconds <= 0:
                raise ChaosError(f"freeze@{at}:{seconds} needs frame >= 0 "
                                 f"and seconds > 0")
        if self.hb_delay_s < 0:
            raise ChaosError(f"hbdelay must be >= 0, got {self.hb_delay_s!r}")

    @property
    def is_noop(self) -> bool:
        return not (self.drop or self.dup or self.reorder or self.corrupt
                    or self.resets or self.partitions or self.freezes
                    or self.hb_delay_s)

    # -- spec grammar ---------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "ChaosPlan":
        """Parse a comma-separated chaos spec (see the module doc)."""
        kwargs: Dict = {"resets": [], "partitions": [], "freezes": []}
        for token in filter(None, (t.strip() for t in spec.split(","))):
            try:
                if token.startswith("reset@"):
                    kwargs["resets"].append(int(token[len("reset@"):]))
                elif token.startswith("partition@"):
                    start, _, count = token[len("partition@"):].partition(":")
                    kwargs["partitions"].append((int(start), int(count)))
                elif token.startswith("freeze@"):
                    at, _, seconds = token[len("freeze@"):].partition(":")
                    kwargs["freezes"].append((int(at), float(seconds)))
                elif "=" in token:
                    key, _, value = token.partition("=")
                    if key in ("drop", "dup", "reorder", "corrupt"):
                        kwargs[key] = float(value)
                    elif key == "hbdelay":
                        kwargs["hb_delay_s"] = float(value)
                    elif key == "seed":
                        kwargs["seed"] = int(value)
                    else:
                        raise ChaosError(f"unknown chaos token {token!r}")
                else:
                    raise ChaosError(f"unknown chaos token {token!r}")
            except (TypeError, ValueError) as exc:
                if isinstance(exc, ChaosError):
                    raise
                raise ChaosError(f"bad chaos token {token!r}: {exc}") from exc
        kwargs["resets"] = tuple(kwargs["resets"])
        kwargs["partitions"] = tuple(kwargs["partitions"])
        kwargs["freezes"] = tuple(kwargs["freezes"])
        return cls(**kwargs)

    def to_spec(self) -> str:
        """The canonical spec string (``parse(to_spec())`` round-trips)."""
        parts: List[str] = []
        for key in ("drop", "dup", "reorder", "corrupt"):
            value = getattr(self, key)
            if value:
                parts.append(f"{key}={value:g}")
        parts.extend(f"reset@{at}" for at in self.resets)
        parts.extend(f"partition@{start}:{count}"
                     for start, count in self.partitions)
        parts.extend(f"freeze@{at}:{seconds:g}"
                     for at, seconds in self.freezes)
        if self.hb_delay_s:
            parts.append(f"hbdelay={self.hb_delay_s:g}")
        parts.append(f"seed={self.seed}")
        return ",".join(parts)


class ResetInjected(Exception):
    """Internal: the plan calls for a hard connection reset here."""


class FrameInjector:
    """The per-(connection, direction) fault decision function.

    Pure in ``(plan.seed, conn_index, direction, frame number)``:
    :meth:`feed` draws every probability for every frame regardless of
    earlier decisions, so the stream never skews and two runs with the
    same frame schedule make identical decisions.  Directions are
    ``"w2c"`` (worker→coordinator — where resets, partitions, freezes
    and heartbeat delays apply) and ``"c2w"``.
    """

    __slots__ = ("plan", "conn_index", "direction", "_rng", "_frame_no",
                 "_held", "_record")

    def __init__(self, plan: ChaosPlan, conn_index: int, direction: str,
                 record: Optional[Callable] = None):
        self.plan = plan
        self.conn_index = conn_index
        self.direction = direction
        self._rng = RngRegistry(master_seed=plan.seed).stream(
            f"chaos:conn{conn_index}:{direction}")
        self._frame_no = 0
        self._held: Optional[bytes] = None
        self._record = record or (lambda *event: None)

    def _event(self, frame_no: int, mtype: Optional[str],
               action: str) -> None:
        self._record(self.conn_index, self.direction, frame_no,
                     mtype or "?", action)

    def feed(self, frame: bytes,
             mtype: Optional[str]) -> Tuple[float, List[bytes]]:
        """Decide the fate of one length-prefixed frame.

        Returns ``(pre_delay_s, frames_to_forward)``; raises
        :class:`ResetInjected` when the plan calls for a hard reset.
        """
        no = self._frame_no
        self._frame_no += 1
        # All four draws happen unconditionally so the decision for
        # frame k is a pure function of (seed, conn, direction, k).
        r_drop = self._rng.random()
        r_corrupt = self._rng.random()
        r_dup = self._rng.random()
        r_reorder = self._rng.random()
        w2c = self.direction == "w2c"

        if w2c and no in self.plan.resets:
            self._event(no, mtype, "reset")
            raise ResetInjected()

        delay = 0.0
        if w2c:
            for at, seconds in self.plan.freezes:
                if at == no:
                    delay += seconds
                    self._event(no, mtype, "freeze")
            if mtype == "HEARTBEAT" and self.plan.hb_delay_s:
                delay += self.plan.hb_delay_s
                self._event(no, mtype, "hb_delay")
            if any(start <= no < start + count
                   for start, count in self.plan.partitions):
                self._event(no, mtype, "partition_drop")
                return (delay, self._release_held([]))

        frames: List[bytes] = [frame]
        if no > 0:      # frame 0 = HELLO/WELCOME: joining must be possible
            if r_drop < self.plan.drop:
                self._event(no, mtype, "drop")
                return (delay, self._release_held([]))
            if r_corrupt < self.plan.corrupt:
                frames = [self._corrupt(frame)]
                self._event(no, mtype, "corrupt")
            if r_dup < self.plan.dup:
                frames = frames + frames
                self._event(no, mtype, "dup")
            if r_reorder < self.plan.reorder and self._held is None:
                self._held = frames.pop(0)
                self._event(no, mtype, "reorder_hold")
        return (delay, self._release_held(frames))

    def _release_held(self, frames: List[bytes]) -> List[bytes]:
        """A previously held frame lands *after* the current one — but
        only when something is actually forwarded this round (otherwise
        nothing would separate them and the hold would be a no-op)."""
        if frames and self._held is not None:
            frames = frames + [self._held]
            self._held = None
            self._event(self._frame_no - 1, None, "reorder_release")
        return frames

    def flush(self) -> List[bytes]:
        """Whatever is still held at connection end (never lose it)."""
        if self._held is None:
            return []
        held, self._held = self._held, None
        self._event(self._frame_no, None, "reorder_flush")
        return [held]

    @staticmethod
    def _corrupt(frame: bytes) -> bytes:
        """Deterministically *detectable* corruption: XOR the first body
        byte with 0xFF.  A JSON object body starts with ``{`` (0x7B), so
        the result (0x84) is an invalid UTF-8 start byte — the receiving
        fail-closed parser must raise :class:`ProtocolError`, and can
        never mis-parse the frame into different results."""
        if len(frame) <= _LEN_BYTES:
            return frame
        body_first = frame[_LEN_BYTES] ^ 0xFF
        return frame[:_LEN_BYTES] + bytes([body_first]) + frame[_LEN_BYTES + 1:]


class ChaosProxy:
    """A loopback TCP proxy injecting a :class:`ChaosPlan` per frame.

    Sits between the coordinator's listening socket (``target``) and its
    workers: workers connect to :attr:`address` instead, and every frame
    in either direction passes through a :class:`FrameInjector`.  The
    proxy parses the length-prefix framing (it must, to make per-frame
    decisions) but treats bodies as opaque except for a best-effort
    ``"type"`` peek used by heartbeat delays and the event log.  The
    peek goes through :func:`~repro.exp.protocol.decode_body`, so
    zlib-compressed bodies (the batched CACHE_MGET/MPUT fast path)
    still produce typed events; corrupting one flips its magic byte
    into garbage, which the receiver rejects fail-closed exactly like
    corrupted JSON.
    """

    def __init__(self, plan: ChaosPlan, target: Tuple[str, int],
                 io_timeout_s: float = 60.0):
        self.plan = plan
        self.target = target
        self.io_timeout_s = io_timeout_s
        self._events: List[Tuple[int, str, int, str, str]] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._conn_seq = 0
        self._socks: List[socketlib.socket] = []
        self._threads: List[threading.Thread] = []
        self._server = socketlib.socket(socketlib.AF_INET,
                                        socketlib.SOCK_STREAM)
        self._server.setsockopt(socketlib.SOL_SOCKET,
                                socketlib.SO_REUSEADDR, 1)
        self._server.bind(("127.0.0.1", 0))
        self._server.listen(16)
        self._server.settimeout(0.2)
        #: Where workers should connect (instead of the coordinator).
        self.address: Tuple[str, int] = self._server.getsockname()[:2]
        accept = threading.Thread(target=self._accept_loop, daemon=True)
        accept.start()
        self._threads.append(accept)

    # -- observability --------------------------------------------------
    def record(self, conn: int, direction: str, frame_no: int,
               mtype: str, action: str) -> None:
        with self._lock:
            self._events.append((conn, direction, frame_no, mtype, action))
        from ..obs import get_default_registry
        registry = get_default_registry()
        if registry is not None:
            registry.counter("exp", "chaos_events", action=action).inc()

    def events(self) -> List[Tuple[int, str, int, str, str]]:
        """Every injected event, in canonical (sorted) order."""
        with self._lock:
            return sorted(self._events)

    # -- plumbing -------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                client, _addr = self._server.accept()
            except socketlib.timeout:
                continue
            except OSError:
                return
            try:
                upstream = socketlib.create_connection(
                    self.target, timeout=self.io_timeout_s)
            except OSError:
                client.close()
                continue
            client.settimeout(0.2)
            upstream.settimeout(0.2)
            for sock in (client, upstream):
                try:
                    # keep the proxy hop as Nagle-free as the real link
                    sock.setsockopt(socketlib.IPPROTO_TCP,
                                    socketlib.TCP_NODELAY, 1)
                except OSError:
                    pass
            with self._lock:
                conn_index = self._conn_seq
                self._conn_seq += 1
                self._socks.extend([client, upstream])
            for src, dst, direction in ((client, upstream, "w2c"),
                                        (upstream, client, "c2w")):
                injector = FrameInjector(self.plan, conn_index, direction,
                                         record=self.record)
                thread = threading.Thread(
                    target=self._pump, args=(src, dst, injector),
                    daemon=True)
                thread.start()
                # close() walks this list from the main thread, so the
                # accept-loop append must happen under the same lock.
                with self._lock:
                    self._threads.append(thread)

    def _pump(self, src: socketlib.socket, dst: socketlib.socket,
              injector: FrameInjector) -> None:
        buffer = b""
        try:
            while not self._stop.is_set():
                try:
                    chunk = src.recv(65536)
                except socketlib.timeout:
                    continue
                except OSError:
                    break
                if not chunk:       # EOF: flush any held frame, half-close
                    for frame in injector.flush():
                        dst.sendall(frame)
                    try:
                        dst.shutdown(socketlib.SHUT_WR)
                    except OSError:
                        pass
                    return
                buffer += chunk
                while len(buffer) >= _LEN_BYTES:
                    length = int.from_bytes(buffer[:_LEN_BYTES], "big")
                    if length == 0 or length > MAX_FRAME:
                        # garbage framing: forward verbatim, let the
                        # receiver fail closed
                        dst.sendall(buffer)
                        buffer = b""
                        break
                    if len(buffer) < _LEN_BYTES + length:
                        break
                    frame = buffer[:_LEN_BYTES + length]
                    buffer = buffer[_LEN_BYTES + length:]
                    try:
                        body = decode_body(frame[_LEN_BYTES:])
                        mtype = body.get("type")
                    except Exception:
                        mtype = None
                    delay, frames = injector.feed(frame, mtype)
                    if delay:
                        time.sleep(delay)
                    for out in frames:
                        dst.sendall(out)
        except ResetInjected:
            self._reset(src)
            self._reset(dst)
        except OSError:
            pass
        finally:
            for sock in (src, dst):
                try:
                    sock.close()
                except OSError:
                    pass

    @staticmethod
    def _reset(sock: socketlib.socket) -> None:
        """Close with linger-0 so the peer sees RST, not FIN."""
        try:
            sock.setsockopt(socketlib.SOL_SOCKET, socketlib.SO_LINGER,
                            struct.pack("ii", 1, 0))
            sock.close()
        except OSError:
            pass

    def close(self) -> None:
        self._stop.set()
        try:
            self._server.close()
        except OSError:
            pass
        with self._lock:
            socks = list(self._socks)
            threads = list(self._threads)
        for sock in socks:
            try:
                sock.close()
            except OSError:
                pass
        for thread in threads:
            thread.join(timeout=5)
