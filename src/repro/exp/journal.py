"""The durable write-ahead run journal behind ``--journal``/``--resume``.

A journaled run appends one fsync'd, checksummed JSON line per event to
``<journal_dir>/<run_id>.jsonl`` *before* acting on it, and persists
every task payload in a content-addressed
:class:`~repro.exp.cache.CellCache` under
``<journal_dir>/<run_id>/cells/``.  Record vocabulary:

========== ==========================================================
type       meaning
========== ==========================================================
plan       the run's identity: experiment ids, quick/full, fault and
           flow specs, backend, task list, and the **plan digest**
           (a SHA-256 over ids + flags + package version + per-
           experiment source digests) that ``--resume`` must match
lease      a task grant (task key, worker, lease id, attempt)
result     a task completed; ``key`` addresses its payload in the
           journal's cell cache
error      a task failed on a worker (message, for post-mortems)
resume     a resume happened: how many tasks were skipped vs re-run
end        the run finished (failure count)
========== ==========================================================

Durability: each line is ``{"seq": n, "sha": ..., ...record...}`` where
``sha`` is the SHA-256 of the canonical ``(seq, record)`` encoding, and
the file handle is flushed **and fsync'd** after every append — a
SIGKILL (or power cut) can lose at most the record being written, never
a record that was acted upon.  On read, verification stops at the first
torn or corrupted line (everything after a torn write is suspect), and
resuming truncates the tail so new records never append after garbage.

``--resume RUN_ID`` then rebuilds the run: the plan record restores the
experiment set and flags, the plan digest is re-derived and must match
(a changed experiment source, package version or fault spec fails
closed with :class:`ResumeError` — silently "resuming" into different
numbers is the one unforgivable outcome), journaled results are
re-loaded from the cell cache, and only tasks without a journaled +
cached payload execute again.  Because every backend executes the same
idempotent task body and the scheduler assembles in request order, the
resumed store is byte-identical to an uninterrupted run — the resume
wall in ``tests/test_exp_journal.py`` pins exactly that.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .cache import CellCache, source_digest

__all__ = ["DEFAULT_JOURNAL_DIR", "JournalError", "ResumeError",
           "RunJournal", "plan_digest", "new_run_id"]

#: Journals live next to the result cache by default.
DEFAULT_JOURNAL_DIR = ".repro-cache/journal"

#: Run ids become file names; keep them boring.
_RUN_ID_RE = re.compile(r"\A[A-Za-z0-9][A-Za-z0-9._-]{0,63}\Z")


class JournalError(Exception):
    """The journal cannot be created, written, or parsed."""


class ResumeError(JournalError):
    """A resume that would not reproduce the original run fails closed."""


def _package_version() -> str:
    import repro
    return repro.__version__


def plan_digest(exp_ids: Sequence[str], quick: bool,
                faults_spec: Optional[str],
                flow_mode: Optional[str]) -> str:
    """The run-identity digest ``--resume`` verifies.

    Mirrors the cache-key ingredients: a resumed run whose digest still
    matches is guaranteed to hit the same cache keys and produce the
    same bytes as the interrupted one.
    """
    payload = {"ids": list(exp_ids), "quick": bool(quick),
               "faults": faults_spec or None,
               "flow": (flow_mode if flow_mode and flow_mode != "off"
                        else None),
               "version": _package_version(),
               "sources": {exp_id: source_digest(exp_id)
                           for exp_id in exp_ids}}
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()


def new_run_id() -> str:
    """A fresh, unique, filesystem-safe run id."""
    # Wall clock is fine here: run ids are operational metadata naming a
    # journal file; they never feed a result or a duration.
    now_ns = time.time_ns()  # repro-lint: disable=DET101,PAR306 -- run ids are operational metadata, never results or durations
    return f"run-{now_ns:016x}-{os.getpid():x}"


def _record_sha(seq: int, record: Dict) -> str:
    return hashlib.sha256(json.dumps([seq, record], sort_keys=True,
                                     separators=(",", ":")).encode()
                          ).hexdigest()


class RunJournal:
    """Append-only, fsync'd, checksummed event log of one run."""

    def __init__(self, root: Union[str, Path], run_id: str):
        if not _RUN_ID_RE.match(run_id):
            raise JournalError(f"malformed run id {run_id!r} (want "
                               f"[A-Za-z0-9][A-Za-z0-9._-]{{0,63}})")
        self.root = Path(root)
        self.run_id = run_id
        self.path = self.root / f"{run_id}.jsonl"
        #: Task payloads, content-addressed, under ``<root>/<run_id>/``.
        self.cells = CellCache(self.root / run_id)
        #: True when :meth:`records` found (and dropped) a torn tail.
        self.truncated = False
        self._seq = 0
        self._fh = None

    # -- lifecycle ------------------------------------------------------
    @classmethod
    def create(cls, root: Union[str, Path],
               run_id: Optional[str] = None) -> "RunJournal":
        """Open a fresh journal (the run id must not already exist)."""
        journal = cls(root, run_id or new_run_id())
        if journal.path.exists():
            raise JournalError(f"journal for run {journal.run_id!r} "
                               f"already exists at {journal.path}")
        journal.root.mkdir(parents=True, exist_ok=True)
        journal._fh = open(journal.path, "ab")
        return journal

    @classmethod
    def resume(cls, root: Union[str, Path], run_id: str) -> "RunJournal":
        """Reopen an existing journal for verification + continuation.

        Verifies every record checksum, drops (and physically truncates)
        a torn tail, and positions new appends after the last valid
        record.
        """
        journal = cls(root, run_id)
        if not journal.path.exists():
            raise ResumeError(f"no journal for run {run_id!r} under "
                              f"{journal.root} (known runs: "
                              f"{', '.join(journal.list_runs(root)) or 'none'})")
        valid_bytes = journal._scan()[1]
        if journal.truncated:
            with open(journal.path, "ab") as fh:
                fh.truncate(valid_bytes)
        journal._fh = open(journal.path, "ab")
        return journal

    @staticmethod
    def list_runs(root: Union[str, Path]) -> List[str]:
        """Run ids with a journal under ``root``, sorted."""
        root = Path(root)
        if not root.is_dir():
            return []
        return sorted(p.stem for p in root.glob("*.jsonl"))

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    # -- writing --------------------------------------------------------
    def append(self, record: Dict) -> None:
        """Durably append one record: write, flush, **fsync**.

        When this returns, the record survives a SIGKILL of this
        process — which is exactly when the caller may act on it.
        """
        if self._fh is None:
            raise JournalError("journal is not open for appending")
        seq = self._seq
        entry = {"seq": seq, "sha": _record_sha(seq, record)}
        entry.update(record)
        line = json.dumps(entry, sort_keys=True,
                          separators=(",", ":")) + "\n"
        self._fh.write(line.encode())
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._seq = seq + 1
        from ..obs import get_default_registry
        registry = get_default_registry()
        if registry is not None:
            registry.counter("exp", "journal_records",
                            type=str(record.get("type"))).inc()

    # -- reading --------------------------------------------------------
    def _scan(self):
        """(valid records, byte offset after the last valid line)."""
        records: List[Dict] = []
        valid_bytes = 0
        self.truncated = False
        try:
            raw = self.path.read_bytes()
        except OSError as exc:
            raise JournalError(f"cannot read journal {self.path}: "
                               f"{exc}") from exc
        offset = 0
        for line in raw.split(b"\n"):
            if not line:
                offset += 1
                continue
            try:
                entry = json.loads(line.decode())
                seq = entry["seq"]
                sha = entry["sha"]
                record = {k: v for k, v in entry.items()
                          if k not in ("seq", "sha")}
                ok = (seq == len(records)
                      and sha == _record_sha(seq, record))
            except (UnicodeDecodeError, ValueError, KeyError, TypeError):
                ok = False
            if not ok:
                # A torn or corrupted line: every later line is suspect
                # (appends happened after whatever tore this one).
                self.truncated = True
                break
            records.append(record)
            offset += len(line) + 1
            valid_bytes = offset
        self._seq = len(records)
        return records, valid_bytes

    def records(self) -> List[Dict]:
        """Every verified record, in append order (torn tail dropped)."""
        return self._scan()[0]

    def plan_record(self) -> Optional[Dict]:
        """The run's plan record (always record 0 when present)."""
        for record in self.records():
            if record.get("type") == "plan":
                return record
        return None

    def completed(self) -> Dict[str, str]:
        """``task key → cell-cache key`` for every journaled result."""
        return {str(record["task"]): str(record["key"])
                for record in self.records()
                if record.get("type") == "result" and record.get("key")}
